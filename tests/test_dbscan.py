"""Tests for DBSCAN and the k-distance parameter estimation."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.preprocessing.dbscan import NOISE, dbscan
from repro.preprocessing.kdistance import (
    elbow_point,
    estimate_dbscan_params,
    k_distance_curve,
)


def two_blobs(n=100, seed=0):
    rng = np.random.default_rng(seed)
    a = rng.normal((0, 0), 0.3, (n, 2))
    b = rng.normal((10, 10), 0.3, (n, 2))
    return np.vstack([a, b])


class TestDbscan:
    def test_two_blobs_two_clusters(self):
        points = two_blobs()
        result = dbscan(points, eps=1.0, min_points=5)
        assert result.n_clusters == 2
        assert result.n_noise == 0

    def test_blob_members_share_label(self):
        points = two_blobs()
        result = dbscan(points, eps=1.0, min_points=5)
        assert len(set(result.labels[:100])) == 1
        assert len(set(result.labels[100:])) == 1
        assert result.labels[0] != result.labels[150]

    def test_isolated_point_is_noise(self):
        points = np.vstack([two_blobs(), [[100.0, 100.0]]])
        result = dbscan(points, eps=1.0, min_points=5)
        assert result.labels[-1] == NOISE

    def test_min_points_counts_self(self):
        # a pair of close points is a cluster when min_points=2
        points = np.array([[0.0, 0.0], [0.1, 0.0], [50.0, 50.0]])
        result = dbscan(points, eps=1.0, min_points=2)
        assert result.labels[0] == result.labels[1] != NOISE
        assert result.labels[2] == NOISE

    def test_everything_noise_with_large_min_points(self):
        result = dbscan(two_blobs(10), eps=0.5, min_points=50)
        assert result.n_clusters == 0
        assert result.n_noise == 20

    def test_nan_rows_are_noise(self):
        points = two_blobs()
        points[0] = (np.nan, 0.0)
        result = dbscan(points, eps=1.0, min_points=5)
        assert result.labels[0] == NOISE
        assert result.n_missing == 1

    def test_cluster_sizes(self):
        result = dbscan(two_blobs(), eps=1.0, min_points=5)
        assert sorted(result.cluster_sizes().values()) == [100, 100]

    def test_core_mask_dense_points(self):
        result = dbscan(two_blobs(), eps=1.0, min_points=5)
        assert result.core_mask.sum() == 200

    def test_parameter_validation(self):
        points = two_blobs(5)
        with pytest.raises(ValueError):
            dbscan(points, eps=0.0, min_points=3)
        with pytest.raises(ValueError):
            dbscan(points, eps=1.0, min_points=0)
        with pytest.raises(ValueError):
            dbscan(points.ravel(), eps=1.0, min_points=3)

    def test_all_nan_input(self):
        points = np.full((5, 2), np.nan)
        result = dbscan(points, eps=1.0, min_points=2)
        assert result.n_noise == 5
        assert result.n_missing == 5

    @given(st.integers(0, 2**31 - 1))
    @settings(max_examples=15, deadline=None)
    def test_labels_partition_points(self, seed):
        rng = np.random.default_rng(seed)
        points = rng.uniform(0, 5, (80, 2))
        result = dbscan(points, eps=0.6, min_points=4)
        # every point is either noise or in a non-empty cluster
        assert len(result.labels) == 80
        sizes = result.cluster_sizes()
        assert sum(sizes.values()) + result.n_noise == 80
        # every cluster contains at least one core point (border points may
        # be claimed by an earlier cluster, so size >= min_points does NOT hold)
        for cluster_id in sizes:
            members = result.labels == cluster_id
            assert (members & result.core_mask).any()

    def test_noise_mask_matches_labels(self):
        result = dbscan(two_blobs(), eps=1.0, min_points=5)
        assert np.array_equal(result.noise_mask, result.labels == NOISE)


class TestKDistance:
    def test_curve_is_sorted(self):
        curve = k_distance_curve(two_blobs(), k=4)
        assert np.all(np.diff(curve) >= 0)

    def test_curve_length(self):
        curve = k_distance_curve(two_blobs(50), k=4)
        assert len(curve) == 100

    def test_curve_skips_nan(self):
        points = two_blobs(50)
        points[0] = (np.nan, np.nan)
        assert len(k_distance_curve(points, k=4)) == 99

    def test_too_few_points(self):
        assert len(k_distance_curve(np.zeros((3, 2)), k=5)) == 0

    def test_invalid_k(self):
        with pytest.raises(ValueError):
            k_distance_curve(two_blobs(), k=0)

    def test_elbow_on_hockey_stick(self):
        curve = np.concatenate([np.linspace(0, 1, 90), np.linspace(1.5, 40, 10)])
        index, value = elbow_point(curve)
        assert 80 <= index <= 99
        assert value > 0

    def test_elbow_on_flat_curve(self):
        index, value = elbow_point(np.full(10, 2.0))
        assert value == 2.0

    def test_elbow_tiny_curves(self):
        assert elbow_point(np.array([])) == (0, 0.0)
        assert elbow_point(np.array([1.0, 2.0]))[0] == 1


class TestAutoParams:
    def test_estimated_params_separate_blobs(self):
        points = two_blobs(100)
        est = estimate_dbscan_params(points)
        result = dbscan(points, est.eps, est.min_points)
        assert result.n_clusters == 2
        # the dense blobs should mostly survive as non-noise
        assert result.n_noise < 20

    def test_stabilization_recorded(self):
        est = estimate_dbscan_params(two_blobs(200))
        assert est.stabilized_at is not None
        assert est.min_points == est.stabilized_at + 1
        assert est.curve_for(est.stabilized_at) is not None

    def test_invalid_range(self):
        with pytest.raises(ValueError):
            estimate_dbscan_params(two_blobs(), min_points_range=(5, 3))

    def test_eps_positive(self):
        est = estimate_dbscan_params(two_blobs(50))
        assert est.eps > 0
