"""Tests for the geospatial substrate: distances, grid index, regions, GeoJSON."""

import json
import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.geo.distance import (
    equirectangular_km,
    haversine_km,
    haversine_km_vec,
    km_per_degree,
)
from repro.geo.geojson import (
    dumps,
    feature_collection,
    point_feature,
    polygon_feature,
    region_feature,
)
from repro.geo.grid import GridIndex
from repro.geo.regions import Granularity, Region, RegionHierarchy, point_in_polygon

TURIN = (45.0703, 7.6869)
MILAN = (45.4642, 9.1900)

coords = st.tuples(
    st.floats(44.0, 46.0, allow_nan=False), st.floats(7.0, 9.5, allow_nan=False)
)


class TestDistance:
    def test_zero_distance(self):
        assert haversine_km(*TURIN, *TURIN) == 0.0

    def test_turin_milan(self):
        # published road-free geodesic distance is ~125 km
        d = haversine_km(*TURIN, *MILAN)
        assert 120 < d < 130

    def test_symmetry(self):
        assert haversine_km(*TURIN, *MILAN) == pytest.approx(
            haversine_km(*MILAN, *TURIN)
        )

    @given(coords, coords)
    @settings(max_examples=100, deadline=None)
    def test_equirectangular_close_to_haversine_locally(self, p, q):
        h = haversine_km(*p, *q)
        e = equirectangular_km(*p, *q)
        assert abs(h - e) <= 0.01 * max(h, 1.0)  # <1% error at city scale

    def test_vectorized_matches_scalar(self):
        lats = np.array([TURIN[0], MILAN[0]])
        lons = np.array([TURIN[1], MILAN[1]])
        d = haversine_km_vec(lats, lons, np.full(2, TURIN[0]), np.full(2, TURIN[1]))
        assert d[0] == pytest.approx(0.0)
        assert d[1] == pytest.approx(haversine_km(*MILAN, *TURIN))

    def test_km_per_degree_at_equator(self):
        per_lat, per_lon = km_per_degree(0.0)
        assert per_lat == pytest.approx(per_lon)
        assert 110 < per_lat < 112

    def test_km_per_degree_shrinks_north(self):
        _, per_lon_turin = km_per_degree(45.0)
        _, per_lon_eq = km_per_degree(0.0)
        assert per_lon_turin < per_lon_eq


class TestGridIndex:
    def setup_method(self):
        rng = np.random.default_rng(0)
        self.lats = 45.05 + rng.uniform(0, 0.05, 300)
        self.lons = 7.65 + rng.uniform(0, 0.07, 300)
        self.index = GridIndex(self.lats, self.lons, cell_km=0.5)

    def test_all_points_indexed(self):
        assert self.index.n_points == 300

    def test_radius_query_matches_bruteforce(self):
        for probe in range(0, 300, 37):
            lat, lon = float(self.lats[probe]), float(self.lons[probe])
            got = sorted(self.index.query_radius(lat, lon, 0.8))
            want = sorted(
                i
                for i in range(300)
                if equirectangular_km(lat, lon, self.lats[i], self.lons[i]) <= 0.8
            )
            assert got == want

    def test_neighbors_include_self(self):
        assert 0 in self.index.neighbors_within(0, 0.1)

    def test_nan_points_skipped(self):
        lats = np.array([45.0, np.nan])
        lons = np.array([7.6, 7.6])
        idx = GridIndex(lats, lons, cell_km=1.0)
        assert idx.n_points == 1
        assert idx.query_radius(45.0, 7.6, 1.0) == [0]

    def test_nan_probe_returns_empty(self):
        assert self.index.query_radius(float("nan"), 7.6, 1.0) == []

    def test_invalid_cell_size(self):
        with pytest.raises(ValueError):
            GridIndex(np.array([45.0]), np.array([7.6]), cell_km=0.0)

    def test_misaligned_arrays(self):
        with pytest.raises(ValueError):
            GridIndex(np.array([45.0]), np.array([7.6, 7.7]), cell_km=1.0)

    def test_cells_cover_points(self):
        total = sum(len(v) for v in self.index.cells().values())
        assert total == 300


SQUARE = [(0.0, 0.0), (0.0, 10.0), (10.0, 10.0), (10.0, 0.0)]


class TestRegions:
    def test_point_in_polygon_inside(self):
        assert point_in_polygon(5.0, 5.0, SQUARE)

    def test_point_in_polygon_outside(self):
        assert not point_in_polygon(15.0, 5.0, SQUARE)

    def test_point_in_concave_polygon(self):
        # L-shape: the notch (7, 7) is outside
        ring = [(0, 0), (0, 10), (5, 10), (5, 5), (10, 5), (10, 0)]
        assert point_in_polygon(2.0, 2.0, ring)
        assert not point_in_polygon(7.0, 7.0, ring)

    def test_region_contains(self):
        r = Region("sq", Granularity.DISTRICT, SQUARE)
        assert r.contains(1.0, 1.0)
        assert not r.contains(-1.0, 1.0)

    def test_centroid(self):
        r = Region("sq", Granularity.DISTRICT, SQUARE)
        assert r.centroid() == (5.0, 5.0)

    def test_bounding_box(self):
        r = Region("sq", Granularity.DISTRICT, SQUARE)
        assert r.bounding_box() == (0.0, 0.0, 10.0, 10.0)

    def test_granularity_navigation(self):
        assert Granularity.CITY.finer() is Granularity.DISTRICT
        assert Granularity.UNIT.finer() is Granularity.UNIT
        assert Granularity.DISTRICT.coarser() is Granularity.CITY
        assert Granularity.CITY.coarser() is Granularity.CITY

    def make_hierarchy(self):
        city = Region("city", Granularity.CITY, SQUARE)
        west = Region(
            "west", Granularity.DISTRICT,
            [(0, 0), (0, 5), (10, 5), (10, 0)], parent="city",
        )
        east = Region(
            "east", Granularity.DISTRICT,
            [(0, 5), (0, 10), (10, 10), (10, 5)], parent="city",
        )
        nb = Region(
            "west-a", Granularity.NEIGHBOURHOOD,
            [(0, 0), (0, 5), (5, 5), (5, 0)], parent="west",
        )
        return RegionHierarchy(city=city, districts=[west, east], neighbourhoods=[nb])

    def test_region_of(self):
        h = self.make_hierarchy()
        assert h.region_of(2.0, 2.0, Granularity.DISTRICT).name == "west"
        assert h.region_of(2.0, 7.0, Granularity.DISTRICT).name == "east"
        assert h.region_of(20.0, 20.0, Granularity.DISTRICT) is None

    def test_assign_handles_nan(self):
        h = self.make_hierarchy()
        out = h.assign(np.array([2.0, np.nan]), np.array([2.0, 2.0]), Granularity.DISTRICT)
        assert out == ["west", None]

    def test_regions_at_unit_level_empty(self):
        h = self.make_hierarchy()
        assert h.regions_at(Granularity.UNIT) == []

    def test_children_of(self):
        h = self.make_hierarchy()
        assert [r.name for r in h.children_of("city")] == ["west", "east"]
        assert [r.name for r in h.children_of("west")] == ["west-a"]


class TestGeoJson:
    def test_point_feature_lonlat_order(self):
        f = point_feature(45.0, 7.6, {"v": 1})
        assert f["geometry"]["coordinates"] == [7.6, 45.0]

    def test_polygon_feature_closes_ring(self):
        f = polygon_feature(SQUARE)
        ring = f["geometry"]["coordinates"][0]
        assert ring[0] == ring[-1]
        assert len(ring) == len(SQUARE) + 1

    def test_region_feature_properties(self):
        r = Region("west", Granularity.DISTRICT, SQUARE)
        f = region_feature(r, {"mean": 2.5})
        assert f["properties"]["name"] == "west"
        assert f["properties"]["level"] == "district"
        assert f["properties"]["mean"] == 2.5

    def test_feature_collection_roundtrip(self):
        fc = feature_collection([point_feature(45.0, 7.6)])
        parsed = json.loads(dumps(fc))
        assert parsed["type"] == "FeatureCollection"
        assert len(parsed["features"]) == 1

    def test_dumps_rejects_nan(self):
        fc = feature_collection([point_feature(float("nan"), 7.6)])
        with pytest.raises(ValueError):
            dumps(fc)

    def test_loads_roundtrip(self):
        from repro.geo.geojson import loads

        fc = feature_collection([point_feature(45.0, 7.6, {"eph": 80.0})])
        parsed = loads(dumps(fc))
        assert parsed == fc

    def test_loads_validates_shape(self):
        from repro.geo.geojson import loads

        with pytest.raises(ValueError, match="type"):
            loads("{}")
        with pytest.raises(ValueError, match="features"):
            loads('{"type": "FeatureCollection"}')

    def test_points_from_collection(self):
        from repro.geo.geojson import points_from_collection

        fc = feature_collection(
            [
                point_feature(45.0, 7.6, {"eph": 80.0}),
                polygon_feature(SQUARE, {"name": "x"}),
                point_feature(45.1, 7.7),
            ]
        )
        points = points_from_collection(fc)
        assert len(points) == 2
        assert points[0] == (45.0, 7.6, {"eph": 80.0})

    def test_map_export_roundtrips_markers(self):
        """Certificate markers exported by a map come back intact."""
        from repro.dashboard.maps import scatter_map
        from repro.geo.geojson import loads, points_from_collection

        lats = np.array([45.05, 45.06])
        lons = np.array([7.65, 7.66])
        values = np.array([80.0, 120.0])
        render = scatter_map(lats, lons, values, "eph")
        parsed = loads(dumps(render.geojson))
        points = points_from_collection(parsed)
        assert len(points) == 2
        assert points[1][2]["eph"] == 120.0
