"""Tests for K-means, standardization and the SSE elbow rule."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analytics.kmeans import (
    UNASSIGNED,
    choose_k_elbow,
    kmeans,
    kmeans_auto,
    sse_curve,
    standardize,
)


def blobs(centers, n_per=50, spread=0.2, seed=0):
    rng = np.random.default_rng(seed)
    return np.vstack([rng.normal(c, spread, (n_per, len(c))) for c in centers])


class TestStandardize:
    def test_zero_mean_unit_std(self):
        rng = np.random.default_rng(0)
        m = rng.normal(5, 3, (200, 3))
        z, params = standardize(m)
        assert np.allclose(z.mean(axis=0), 0, atol=1e-10)
        assert np.allclose(z.std(axis=0), 1, atol=1e-10)

    def test_nan_preserved(self):
        m = np.array([[1.0, 2.0], [np.nan, 4.0], [3.0, 6.0]])
        z, __ = standardize(m)
        assert np.isnan(z[1, 0])
        assert not np.isnan(z[1, 1])

    def test_constant_column_maps_to_zero(self):
        m = np.column_stack([np.full(10, 7.0), np.arange(10.0)])
        z, __ = standardize(m)
        assert np.allclose(z[:, 0], 0.0)

    def test_inverse_roundtrip(self):
        rng = np.random.default_rng(1)
        m = rng.normal(0, 2, (50, 2))
        z, params = standardize(m)
        assert np.allclose(params.inverse(z), m)


class TestKMeans:
    def test_recovers_separated_blobs(self):
        points = blobs([(0, 0), (10, 0), (0, 10)])
        result = kmeans(points, k=3, seed=1)
        # each blob must be pure: one label per 50-row block
        for start in (0, 50, 100):
            block = result.labels[start : start + 50]
            assert len(set(block.tolist())) == 1
        assert result.k == 3
        assert len(result.cluster_sizes()) == 3

    def test_sse_is_within_cluster_scatter(self):
        points = blobs([(0, 0), (10, 10)])
        result = kmeans(points, k=2, seed=0)
        manual = 0.0
        for c in range(2):
            members = points[result.labels == c]
            manual += np.sum((members - members.mean(axis=0)) ** 2)
        assert result.sse == pytest.approx(manual, rel=1e-9)

    def test_missing_rows_unassigned(self):
        points = blobs([(0, 0), (10, 10)])
        points[3, 0] = np.nan
        result = kmeans(points, k=2, seed=0)
        assert result.labels[3] == UNASSIGNED
        assert (result.labels != UNASSIGNED).sum() == len(points) - 1

    def test_k_larger_than_rows_rejected(self):
        with pytest.raises(ValueError, match="complete rows"):
            kmeans(np.zeros((3, 2)), k=5)

    def test_invalid_k(self):
        with pytest.raises(ValueError):
            kmeans(np.zeros((5, 2)), k=0)

    def test_k_equal_n_rows(self):
        points = np.arange(10.0).reshape(5, 2)
        result = kmeans(points, k=5, seed=0)
        assert result.sse == pytest.approx(0.0)

    def test_deterministic_for_seed(self):
        points = blobs([(0, 0), (5, 5)], seed=3)
        a = kmeans(points, k=2, seed=42)
        b = kmeans(points, k=2, seed=42)
        assert np.array_equal(a.labels, b.labels)
        assert a.sse == b.sse

    def test_duplicate_points_handled(self):
        points = np.tile([[1.0, 1.0]], (20, 1))
        result = kmeans(points, k=3, seed=0)
        assert result.sse == pytest.approx(0.0)

    def test_converged_flag(self):
        points = blobs([(0, 0), (10, 10)])
        result = kmeans(points, k=2, seed=0)
        assert result.converged

    def test_cluster_indices(self):
        points = blobs([(0, 0), (10, 10)])
        result = kmeans(points, k=2, seed=0)
        idx = result.cluster_indices(int(result.labels[0]))
        assert 0 in idx

    @given(st.integers(2, 5), st.integers(0, 1000))
    @settings(max_examples=20, deadline=None)
    def test_sse_never_increases_with_k(self, k, seed):
        rng = np.random.default_rng(seed)
        points = rng.normal(0, 1, (60, 2))
        sse_k = kmeans(points, k=k, seed=1, n_init=5).sse
        sse_k1 = kmeans(points, k=k + 1, seed=1, n_init=5).sse
        # with enough restarts SSE is non-increasing in k (tiny slack for
        # local optima in the randomized init)
        assert sse_k1 <= sse_k * 1.05


class TestElbow:
    def test_sse_curve_keys(self):
        points = blobs([(0, 0), (10, 10)])
        curve = sse_curve(points, (2, 5), seed=0, n_init=2)
        assert sorted(curve) == [2, 3, 4, 5]

    def test_invalid_range(self):
        with pytest.raises(ValueError):
            sse_curve(np.zeros((10, 2)), (5, 2))

    def test_elbow_on_synthetic_curve(self):
        # sharp elbow at k=4: big drops until 4, tiny after
        curve = {2: 1000.0, 3: 600.0, 4: 200.0, 5: 180.0, 6: 170.0}
        assert choose_k_elbow(curve) == 4

    def test_elbow_empty_curve(self):
        with pytest.raises(ValueError):
            choose_k_elbow({})

    def test_elbow_short_curve(self):
        assert choose_k_elbow({2: 10.0, 3: 5.0}) == 2

    def test_auto_finds_true_k(self):
        points = blobs([(0, 0), (10, 0), (0, 10), (10, 10)], n_per=60, spread=0.3)
        auto = kmeans_auto(points, (2, 8), seed=0, n_init=5)
        assert auto.chosen_k == 4
        assert auto.result.k == 4
        assert len(auto.curve) == 7
