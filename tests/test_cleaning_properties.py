"""Property-based tests for address cleaning recovery guarantees."""

import numpy as np
import pytest
from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.dataset import generate_street_map
from repro.preprocessing.address_cleaner import AddressCleaner, CleaningConfig, MatchStatus
from repro.text.levenshtein import similarity
from repro.text.normalize import normalize_address


@pytest.fixture(scope="module")
def setup():
    street_map, hierarchy = generate_street_map(seed=5, streets_per_neighbourhood=8)
    cleaner = AddressCleaner(street_map, CleaningConfig(phi=0.8, use_geocoder=False))
    return street_map, cleaner


_ALPHABET = "abcdefghijklmnopqrstuvwxyz"


def apply_edits(rng, text, n_edits):
    chars = list(text)
    for __ in range(n_edits):
        op = rng.integers(0, 3)
        pos = int(rng.integers(0, max(len(chars), 1)))
        if op == 0 and chars:
            chars[pos % len(chars)] = _ALPHABET[rng.integers(0, 26)]
        elif op == 1 and len(chars) > 1:
            del chars[pos % len(chars)]
        else:
            chars.insert(pos % (len(chars) + 1), _ALPHABET[rng.integers(0, 26)])
    return "".join(chars)


class TestRecoveryProperties:
    @given(st.integers(0, 10_000))
    @settings(max_examples=80, deadline=None)
    def test_single_edit_always_recovered(self, setup, seed):
        """One typo on a street of >= 10 chars keeps similarity >= 0.9,
        far above phi=0.8 — the cleaner must resolve it to SOME street
        with at least that similarity (usually the true one)."""
        street_map, cleaner = setup
        rng = np.random.default_rng(seed)
        streets = street_map.street_names()
        truth = streets[rng.integers(0, len(streets))]
        assume(len(truth) >= 10)
        corrupted = apply_edits(rng, truth, 1)
        resolved, status, sim = cleaner.resolve_street(corrupted)
        assert status in (MatchStatus.EXACT, MatchStatus.MATCHED)
        assert resolved is not None
        # whatever the match, it is at least as similar as the truth
        assert sim >= similarity(normalize_address(corrupted), truth) - 1e-9

    @given(st.integers(0, 10_000))
    @settings(max_examples=50, deadline=None)
    def test_resolution_never_invents_streets(self, setup, seed):
        """Any resolved street must exist in the gazetteer."""
        street_map, cleaner = setup
        rng = np.random.default_rng(seed)
        streets = set(street_map.street_names())
        truth = list(streets)[rng.integers(0, len(streets))]
        corrupted = apply_edits(rng, truth, int(rng.integers(0, 6)))
        resolved, status, __ = cleaner.resolve_street(corrupted)
        if resolved is not None:
            assert resolved in streets

    @given(st.integers(0, 10_000))
    @settings(max_examples=50, deadline=None)
    def test_similarity_reported_matches_definition(self, setup, seed):
        """The similarity the cleaner reports equals the Levenshtein
        similarity between the normalized query and the matched street."""
        street_map, cleaner = setup
        rng = np.random.default_rng(seed)
        streets = street_map.street_names()
        truth = streets[rng.integers(0, len(streets))]
        corrupted = apply_edits(rng, truth, int(rng.integers(1, 4)))
        resolved, status, sim = cleaner.resolve_street(corrupted)
        if status is MatchStatus.MATCHED:
            expected = similarity(normalize_address(corrupted), resolved)
            assert sim == pytest.approx(expected)
            assert sim >= 0.8  # phi respected

    @given(st.integers(0, 10_000))
    @settings(max_examples=40, deadline=None)
    def test_unresolved_means_no_candidate_above_phi(self, setup, seed):
        """UNRESOLVED is a promise: no gazetteer street clears phi."""
        street_map, cleaner = setup
        rng = np.random.default_rng(seed)
        streets = street_map.street_names()
        truth = streets[rng.integers(0, len(streets))]
        corrupted = apply_edits(rng, truth, 10)  # heavy corruption
        resolved, status, __ = cleaner.resolve_street(corrupted)
        if status is MatchStatus.UNRESOLVED:
            normalized = normalize_address(corrupted)
            best = max(similarity(normalized, s) for s in streets)
            assert best < 0.8
