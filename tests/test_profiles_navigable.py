"""Tests for cluster profiling, the navigable dashboard, dendrogram chart
and the categorical choropleth."""

import numpy as np
import pytest

from repro import Granularity, Indice, IndiceConfig, Stakeholder
from repro.analytics.hierarchical import agglomerative
from repro.analytics.profiles import profile_clusters
from repro.dashboard.charts import dendrogram_chart
from repro.dashboard.dashboard import Dashboard, NavigableDashboard, Panel
from repro.dashboard.maps import categorical_choropleth_map
from repro.dataset import SyntheticConfig, generate_epc_collection
from repro.dataset.streetmap import turin_like_hierarchy
from repro.dataset.table import Column, Table


def cluster_table():
    rng = np.random.default_rng(0)
    n = 300
    cluster = np.array(["0"] * 150 + ["1"] * 150, dtype=object)
    u_o = np.concatenate([rng.normal(0.3, 0.03, 150), rng.normal(0.95, 0.05, 150)])
    eta = np.concatenate([rng.normal(0.92, 0.02, 150), rng.normal(0.55, 0.03, 150)])
    eph = np.concatenate([rng.normal(40, 5, 150), rng.normal(180, 15, 150)])
    period = ["after 2005"] * 150 + ["before 1918"] * 150
    return Table(
        [
            Column.categorical("cluster", cluster),
            Column.numeric("u_value_opaque", u_o),
            Column.numeric("eta_h", eta),
            Column.numeric("eph", eph),
            Column.categorical("construction_period", period),
        ]
    )


class TestClusterProfiles:
    def test_profiles_ordered_by_response(self):
        profiles = profile_clusters(
            cluster_table(), "cluster", ["u_value_opaque", "eta_h"], "eph"
        )
        assert [p.cluster for p in profiles] == ["0", "1"]
        assert profiles[0].response_mean < profiles[1].response_mean

    def test_sizes_and_shares(self):
        profiles = profile_clusters(
            cluster_table(), "cluster", ["u_value_opaque"], "eph"
        )
        assert all(p.size == 150 for p in profiles)
        assert sum(p.share for p in profiles) == pytest.approx(1.0)

    def test_z_deviations_signal_the_difference(self):
        profiles = profile_clusters(
            cluster_table(), "cluster", ["u_value_opaque", "eta_h"], "eph"
        )
        efficient, wasteful = profiles
        assert efficient.feature_z["u_value_opaque"] < -0.5
        assert wasteful.feature_z["u_value_opaque"] > 0.5

    def test_response_levels(self):
        profiles = profile_clusters(
            cluster_table(), "cluster", ["u_value_opaque"], "eph"
        )
        assert profiles[0].response_level == "low demand"
        assert profiles[1].response_level == "high demand"

    def test_tags_name_the_reasons(self):
        profiles = profile_clusters(
            cluster_table(), "cluster", ["u_value_opaque", "eta_h"], "eph"
        )
        assert "well-insulated walls" in profiles[0].tag
        assert "dispersive walls" in profiles[1].tag

    def test_dominant_categories(self):
        profiles = profile_clusters(
            cluster_table(), "cluster", ["u_value_opaque"], "eph",
            categorical_attributes=["construction_period"],
        )
        value, share = profiles[1].dominant_categories["construction_period"]
        assert value == "before 1918"
        assert share == 1.0

    def test_distinctive_features_sorted(self):
        profiles = profile_clusters(
            cluster_table(), "cluster", ["u_value_opaque", "eta_h"], "eph"
        )
        distinctive = profiles[0].distinctive_features()
        assert len(distinctive) == 2
        assert abs(distinctive[0][1]) >= abs(distinctive[1][1])

    def test_missing_cluster_labels_skipped(self):
        table = cluster_table()
        labels = np.array(table["cluster"], dtype=object)
        labels[:10] = None
        table = table.with_column(Column.categorical("cluster", labels))
        profiles = profile_clusters(table, "cluster", ["eta_h"], "eph")
        assert sum(p.size for p in profiles) == 290


class TestDendrogramChart:
    def test_marks_suggested_k(self):
        rng = np.random.default_rng(0)
        points = np.vstack(
            [rng.normal((0, 0), 0.3, (40, 2)), rng.normal((6, 6), 0.3, (40, 2))]
        )
        result = agglomerative(points)
        svg = dendrogram_chart(result.heights(), suggested_k=result.suggest_k())
        assert "suggested K = 2" in svg
        assert "#d73027" in svg  # the suggested cut is highlighted

    def test_empty_heights(self):
        svg = dendrogram_chart([])
        assert svg.startswith("<svg")


class TestCategoricalChoropleth:
    def test_regions_colored_by_mode(self):
        hierarchy = turin_like_hierarchy()
        modes = {
            d.name: ("C", 0.5 + 0.05 * i) for i, d in enumerate(hierarchy.districts)
        }
        modes[hierarchy.districts[0].name] = ("G", 0.9)
        render = categorical_choropleth_map(
            hierarchy, Granularity.DISTRICT, modes, "energy_class"
        )
        assert render.svg.count("<polygon") == 8
        assert "energy_class = G (90%)" in render.svg
        props = [f["properties"] for f in render.geojson["features"]]
        assert any(p.get("energy_class") == "G" for p in props)

    def test_missing_region_gray(self):
        hierarchy = turin_like_hierarchy()
        render = categorical_choropleth_map(
            hierarchy, Granularity.DISTRICT, {}, "energy_class"
        )
        assert "no data" in render.svg

    def test_unit_level_rejected(self):
        with pytest.raises(ValueError):
            categorical_choropleth_map(
                turin_like_hierarchy(), Granularity.UNIT, {}, "x"
            )


class TestNavigableDashboard:
    @pytest.fixture(scope="class")
    def engine(self):
        collection = generate_epc_collection(
            SyntheticConfig(n_certificates=1200, seed=17)
        )
        eng = Indice(
            collection,
            IndiceConfig(kmeans_n_init=2, k_range=(2, 5),
                         run_multivariate_outliers=False),
        )
        eng.preprocess()
        eng.analyze()
        return eng

    def test_one_tab_per_granularity(self, engine):
        nav = engine.build_navigable_dashboard(Stakeholder.PUBLIC_ADMINISTRATION)
        assert nav.tab_labels() == ["City", "District", "Neighbourhood", "Unit"]

    def test_html_contains_all_tabs_and_script(self, engine):
        nav = engine.build_navigable_dashboard(
            Stakeholder.CITIZEN, granularities=(Granularity.CITY, Granularity.UNIT)
        )
        html = nav.to_html()
        assert html.count("tab-body") >= 2
        assert "showTab" in html
        assert "data-tab='City'" in html

    def test_first_tab_active(self, engine):
        nav = engine.build_navigable_dashboard(
            Stakeholder.CITIZEN, granularities=(Granularity.CITY, Granularity.UNIT)
        )
        html = nav.to_html()
        assert "<div class='tab-body active' data-tab='City'" in html

    def test_save(self, engine, tmp_path):
        nav = engine.build_navigable_dashboard(
            Stakeholder.CITIZEN, granularities=(Granularity.DISTRICT,)
        )
        path = nav.save(tmp_path / "nav.html")
        assert path.read_text().startswith("<!DOCTYPE html>")

    def test_empty_tabs_rejected(self):
        with pytest.raises(ValueError):
            NavigableDashboard("t").to_html()

    def test_manual_assembly(self):
        nav = NavigableDashboard("t", "s")
        nav.add_tab("A", Dashboard("a", panels=[Panel("p", "c", "<p>x</p>")]))
        assert "x" in nav.to_html()
