"""Tests for the plain-language report and the choropleth+scatter overlay."""

import numpy as np
import pytest

from repro import Indice, IndiceConfig, Stakeholder
from repro.core.report import generate_report
from repro.dashboard.maps import choropleth_with_scatter_map
from repro.dataset import (
    NoiseConfig,
    SyntheticConfig,
    apply_noise,
    generate_epc_collection,
)
from repro.geo.regions import Granularity


@pytest.fixture(scope="module")
def engine():
    collection = generate_epc_collection(SyntheticConfig(n_certificates=1500, seed=23))
    noisy = apply_noise(collection, NoiseConfig(seed=4))
    collection.table = noisy.table
    eng = Indice(
        collection,
        IndiceConfig(kmeans_n_init=2, k_range=(2, 6), run_multivariate_outliers=False),
    )
    eng.preprocess()
    eng.analyze()
    return eng


class TestReport:
    def test_report_sections_present(self, engine):
        report = generate_report(engine)
        for heading in (
            "# INDICE analysis report",
            "## Data cleaning",
            "## Feature check",
            "## Groups of similar buildings",
            "## What drives the heating demand",
            "## Where to act",
        ):
            assert heading in report

    def test_numbers_consistent_with_outcomes(self, engine):
        report = generate_report(engine)
        analysis = engine._analyzed
        assert f"K = {analysis.clustering.chosen_k}" in report
        assert f"{analysis.table.n_rows} certificates analyzed" in report
        assert f"{engine._preprocessed.cleaning_report.resolution_rate():.1%}" in report

    def test_every_cluster_described(self, engine):
        report = generate_report(engine)
        for cluster in range(engine._analyzed.clustering.chosen_k):
            assert f"**Group {cluster}**" in report

    def test_rules_in_plain_language(self, engine):
        report = generate_report(engine)
        if engine._analyzed.rules:
            rules_section = report.split("## What drives")[1].split("## Where")[0]
            assert "when " in rules_section
            assert "confidence" in rules_section
            # no raw {attr=value} -> {attr=value} syntax leaks through
            assert "->" not in rules_section
            assert "{" not in rules_section
            assert "_" not in rules_section  # attribute names are humanized

    def test_custom_title(self, engine):
        assert generate_report(engine, title="Custom").startswith("# Custom")

    def test_requires_completed_run(self):
        collection = generate_epc_collection(SyntheticConfig(n_certificates=200, seed=1))
        with pytest.raises(RuntimeError):
            generate_report(Indice(collection))


class TestChoroplethScatterOverlay:
    def test_both_layers_rendered(self, engine):
        analysis = engine._analyzed
        table = analysis.table
        means = table.aggregate("neighbourhood", "eph", np.mean)
        means.pop(None, None)
        render = choropleth_with_scatter_map(
            engine.collection.hierarchy, Granularity.NEIGHBOURHOOD, means,
            table["latitude"], table["longitude"], table["eph"], "eph",
        )
        n_regions = len(engine.collection.hierarchy.neighbourhoods)
        located = int(
            (~(np.isnan(table["latitude"]) | np.isnan(table["longitude"]))).sum()
        )
        assert render.svg.count("<polygon") == n_regions
        assert render.svg.count("<circle") == located
        assert len(render.geojson["features"]) == n_regions + located

    def test_subsampling_cap(self, engine):
        table = engine._analyzed.table
        means = table.aggregate("district", "eph", np.mean)
        means.pop(None, None)
        render = choropleth_with_scatter_map(
            engine.collection.hierarchy, Granularity.DISTRICT, means,
            table["latitude"], table["longitude"], table["eph"], "eph",
            max_points=50,
        )
        assert render.svg.count("<circle") <= 50

    def test_shared_scale_single_legend(self, engine):
        table = engine._analyzed.table
        means = table.aggregate("district", "eph", np.mean)
        means.pop(None, None)
        render = choropleth_with_scatter_map(
            engine.collection.hierarchy, Granularity.DISTRICT, means,
            table["latitude"], table["longitude"], table["eph"], "eph",
            max_points=100,
        )
        # exactly one legend label for the shared scale
        assert render.svg.count(">eph</text>") == 1

    def test_unit_level_rejected(self, engine):
        with pytest.raises(ValueError):
            choropleth_with_scatter_map(
                engine.collection.hierarchy, Granularity.UNIT, {},
                np.array([45.07]), np.array([7.68]), np.array([1.0]), "eph",
            )
