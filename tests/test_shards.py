"""Sharded pipeline tier: spill codec, shard plans, merge equivalence.

The tier's one invariant — the property these tests pin down from every
angle — is **bit-identity**: for *any* shard partitioning (1, 4 or 17
parts, by-district, by-zip; generated per shard or sliced from a resident
table), the sharded run's merged output satisfies ``Table.__eq__``
against the monolithic serial pipeline over the same rows, including
under injected worker crashes and spill-write faults (a shard retry must
never duplicate or drop a row).
"""

import dataclasses

import numpy as np
import pytest

from repro import Indice, IndiceConfig
from repro.dataset import (
    NoiseConfig,
    SyntheticConfig,
    apply_noise,
    generate_epc_collection,
)
from repro.dataset.synthetic import (
    ShardRecipe,
    generate_epc_shard,
    merge_epc_collections,
    plan_generation_shards,
)
from repro.faults import FaultInjector, FaultPlan
from repro.perf.cache import StageCache
from repro.perf.shards import ShardPlan, ShardRunner
from repro.perf.spill import SpillError, SpillFile, write_spill

N = 1600
SEED = 17

#: Quota high enough that it never binds: per-shard cleaning is then a
#: pure per-row function and sharded output is provably bit-identical
#: (the documented equivalence caveat).
QUOTA = 10**9


def _dirty_collection(n=N, seed=SEED):
    clean = generate_epc_collection(SyntheticConfig(n_certificates=n, seed=seed))
    noisy = apply_noise(clean, NoiseConfig(seed=seed + 1))
    return dataclasses.replace(clean, table=noisy.table)


def _config(**overrides):
    base = dict(geocoder_quota=QUOTA, stage_cache=False)
    base.update(overrides)
    return IndiceConfig(**base)


@pytest.fixture(scope="module")
def collection():
    return _dirty_collection()


@pytest.fixture(scope="module")
def monolithic(collection):
    """The monolithic serial pipeline over the shared dirty collection."""
    engine = Indice(collection, _config())
    preprocessing = engine.preprocess()
    analytics = engine.analyze()
    return preprocessing, analytics


# ---------------------------------------------------------------------------
# spill codec
# ---------------------------------------------------------------------------


class TestSpillCodec:
    def test_round_trip_bit_identical(self, collection, tmp_path):
        path = tmp_path / "table.spill"
        size = write_spill(collection.table, path)
        assert path.stat().st_size == size
        with SpillFile.open(path) as spill:
            assert spill.n_rows == collection.table.n_rows
            assert spill.column_names == collection.table.column_names
            spill.verify()
            assert spill.to_table() == collection.table

    def test_column_projection_reads(self, collection, tmp_path):
        path = tmp_path / "table.spill"
        write_spill(collection.table, path)
        with SpillFile.open(path) as spill:
            narrow = spill.to_table(["eph", "district"])
            assert narrow.column_names == ["eph", "district"]
            assert narrow.column("eph") == collection.table.column("eph")
            assert narrow.column("district") == collection.table.column("district")

    def test_truncated_file_raises(self, collection, tmp_path):
        path = tmp_path / "table.spill"
        write_spill(collection.table, path)
        data = path.read_bytes()
        path.write_bytes(data[: len(data) // 2])
        with pytest.raises(SpillError):
            SpillFile.open(path)

    def test_corrupted_payload_fails_verify(self, collection, tmp_path):
        path = tmp_path / "table.spill"
        write_spill(collection.table, path)
        data = bytearray(path.read_bytes())
        data[-20] ^= 0xFF  # flip one payload byte, keep the size intact
        path.write_bytes(bytes(data))
        spill = SpillFile.open(path)
        try:
            with pytest.raises(SpillError):
                spill.verify()
        finally:
            spill.close()

    def test_missing_file_raises(self, tmp_path):
        with pytest.raises(SpillError):
            SpillFile.open(tmp_path / "absent.spill")

    def test_closed_spill_refuses_reads(self, collection, tmp_path):
        path = tmp_path / "table.spill"
        write_spill(collection.table, path)
        spill = SpillFile.open(path)
        spill.close()
        spill.close()  # idempotent
        with pytest.raises(SpillError):
            spill.column("eph")

    def test_injected_write_fault_leaves_no_file(self, collection, tmp_path):
        injector = FaultInjector(FaultPlan.parse("dataset.write:io_error"))
        path = tmp_path / "table.spill"
        with pytest.raises(Exception):
            write_spill(collection.table, path, injector)
        assert not path.exists()
        assert not list(tmp_path.iterdir())  # no temp file debris either

    def test_injected_read_corruption_raises(self, collection, tmp_path):
        path = tmp_path / "table.spill"
        write_spill(collection.table, path)
        injector = FaultInjector(FaultPlan.parse("dataset.read:corrupt"))
        with pytest.raises(SpillError):
            SpillFile.open(path, injector)


# ---------------------------------------------------------------------------
# shard plans
# ---------------------------------------------------------------------------


class TestShardPlans:
    def test_generation_shards_partition_the_total(self):
        cfg = SyntheticConfig(n_certificates=5000, seed=3)
        for by in ("by-district", "by-zip", 7):
            recipes = plan_generation_shards(cfg, by)
            assert sum(r.n_certificates for r in recipes) == 5000
            assert len({r.key for r in recipes}) == len(recipes)

    def test_shard_bytes_independent_of_siblings(self):
        """Shard N's bytes are identical whether generated alone or in a
        full sweep — the property that makes shard-granular caching
        sound."""
        cfg = SyntheticConfig(n_certificates=2000, seed=5)
        recipes = plan_generation_shards(cfg, "by-district")
        alone = generate_epc_shard(cfg, recipes[2])
        in_sweep = [generate_epc_shard(cfg, r) for r in recipes]
        assert in_sweep[2].table == alone.table
        merged = merge_epc_collections(in_sweep)
        assert merged.table.n_rows == 2000
        ids = list(merged.table["certificate_id"])
        assert len(set(ids)) == len(ids)  # globally unique across shards

    def test_unknown_scheme_rejected(self, collection):
        with pytest.raises(ValueError):
            plan_generation_shards(SyntheticConfig(), "by-planet")
        with pytest.raises(ValueError):
            ShardPlan.from_collection(collection, "by-planet")

    def test_partition_covers_every_row_once(self, collection):
        for by in ("by-district", "by-zip", 5):
            plan = ShardPlan.from_collection(collection, by)
            rows = np.concatenate([s.original_rows() for s in plan.shards])
            assert len(rows) == collection.table.n_rows
            assert len(np.unique(rows)) == len(rows)
            assert plan.merged_input_table() == collection.table

    def test_per_shard_noise_is_keyed_and_stable(self):
        plan = ShardPlan.from_generator(
            SyntheticConfig(n_certificates=1000, seed=2), 4,
            noise=NoiseConfig(seed=9),
        )
        a = plan._shard_noise("part:00")
        b = plan._shard_noise("part:00")
        c = plan._shard_noise("part:01")
        assert a == b
        assert a.seed != c.seed

    def test_runner_rejects_foreign_collection(self, collection):
        plan = ShardPlan.from_collection(collection, 2)
        other = _dirty_collection(n=400, seed=99)
        with pytest.raises(ValueError):
            ShardRunner(Indice(other, _config()), plan)


# ---------------------------------------------------------------------------
# merge equivalence (the tier's core property)
# ---------------------------------------------------------------------------


class TestShardedEquivalence:
    @pytest.mark.parametrize("by", [1, 4, 17, "by-district", "by-zip"])
    def test_any_partitioning_merges_bit_identical(
        self, collection, monolithic, by, tmp_path
    ):
        plan = ShardPlan.from_collection(collection, by)
        config = _config(spill_dir=str(tmp_path / "spills"))
        engine = Indice(plan.collection, config)
        outcome = engine.run_sharded(plan)
        pre, analytics = monolithic
        assert outcome.preprocessing.table == pre.table
        assert outcome.analytics.table == analytics.table
        assert outcome.analytics.rules == analytics.rules
        assert (
            outcome.analytics.clustering.chosen_k == analytics.clustering.chosen_k
        )

    def test_generator_mode_matches_monolithic_over_merged_input(self, tmp_path):
        synth = SyntheticConfig(n_certificates=1200, seed=23)
        plan = ShardPlan.from_generator(
            synth, "by-district", noise=NoiseConfig(seed=31)
        )
        config = _config(spill_dir=str(tmp_path / "spills"))
        outcome = Indice(plan.collection, config).run_sharded(plan)

        merged_input = plan.merged_input_table()
        mono_coll = dataclasses.replace(plan.collection, table=merged_input)
        engine = Indice(mono_coll, _config())
        pre = engine.preprocess()
        analytics = engine.analyze()
        assert outcome.preprocessing.table == pre.table
        assert outcome.analytics.table == analytics.table

    def test_narrow_columns_keep_analytics_identical(
        self, collection, monolithic, tmp_path
    ):
        """A narrow merge projection bounds memory without changing any
        analytic output (the million-row configuration)."""
        cfg = IndiceConfig()
        columns = tuple(
            dict.fromkeys(
                list(cfg.features)
                + [cfg.response, "city", "building_type", "district",
                   "neighbourhood", "latitude", "longitude",
                   "certificate_year"]
            )
        )
        plan = ShardPlan.from_collection(collection, 4, columns=columns)
        config = _config(spill_dir=str(tmp_path / "spills"))
        outcome = Indice(plan.collection, config).run_sharded(plan)
        __, analytics = monolithic
        assert outcome.preprocessing.table.column_names == list(columns)
        assert outcome.analytics.clustering.chosen_k == analytics.clustering.chosen_k
        assert outcome.analytics.rules == analytics.rules
        for name in columns:
            assert outcome.analytics.table.column(name) == analytics.table.column(name)


# ---------------------------------------------------------------------------
# chaos: retries must never duplicate or drop rows
# ---------------------------------------------------------------------------


class TestShardedChaos:
    def _run(self, collection, tmp_path, spec=None, **config):
        injector = FaultInjector(FaultPlan.parse(spec)) if spec else None
        plan = ShardPlan.from_collection(collection, "by-district")
        cfg = _config(spill_dir=str(tmp_path), **config)
        engine = Indice(plan.collection, cfg, injector=injector)
        return engine, engine.run_sharded(plan)

    def test_worker_crash_recovers_bit_identical(self, collection, tmp_path):
        __, baseline = self._run(collection, tmp_path / "a")
        engine, chaotic = self._run(
            collection, tmp_path / "b",
            spec="parallel.worker:crash@0.5;seed=7", n_jobs=2,
        )
        assert chaotic.preprocessing.table == baseline.preprocessing.table
        assert chaotic.analytics.table == baseline.analytics.table

    def test_spill_write_fault_retries_without_dup_or_drop(
        self, collection, tmp_path
    ):
        __, baseline = self._run(collection, tmp_path / "a")
        engine, chaotic = self._run(
            collection, tmp_path / "b",
            spec="dataset.write:transient*2;seed=11",
        )
        ids = list(chaotic.preprocessing.table["certificate_id"])
        assert len(set(ids)) == len(ids)  # a retried spill never duplicates
        assert chaotic.preprocessing.table == baseline.preprocessing.table
        assert chaotic.analytics.table == baseline.analytics.table

    def test_corrupt_warm_spill_degrades_to_recompute(self, collection, tmp_path):
        cache = StageCache()
        plan = ShardPlan.from_collection(collection, "by-district")
        cfg = _config(spill_dir=str(tmp_path), stage_cache=True)
        engine = Indice(plan.collection, cfg, cache=cache)
        baseline = engine.run_sharded(plan)
        assert cache.shard_misses == len(plan.shards)

        # corrupt one spill on disk, then re-run warm: the bad shard must
        # be recomputed (a miss), never served wrong
        victim = sorted(tmp_path.glob("*.spill"))[0]
        data = bytearray(victim.read_bytes())
        data[-10] ^= 0xFF
        victim.write_bytes(bytes(data))
        engine2 = Indice(plan.collection, cfg, cache=cache)
        warm = engine2.run_sharded(plan)
        assert cache.shard_misses == len(plan.shards) + 1
        assert cache.shard_hits == len(plan.shards) - 1
        assert warm.preprocessing.table == baseline.preprocessing.table


# ---------------------------------------------------------------------------
# shard-granular caching
# ---------------------------------------------------------------------------


class TestShardCache:
    def test_warm_run_hits_every_shard(self, collection, tmp_path):
        cache = StageCache()
        plan = ShardPlan.from_collection(collection, "by-district")
        cfg = _config(spill_dir=str(tmp_path), stage_cache=True)
        first = Indice(plan.collection, cfg, cache=cache).run_sharded(plan)
        assert cache.shard_hits == 0
        assert cache.shard_misses == len(plan.shards)
        warm = Indice(plan.collection, cfg, cache=cache).run_sharded(plan)
        assert cache.shard_hits == len(plan.shards)
        assert warm.preprocessing.table == first.preprocessing.table
        assert all(s.cache_hit for s in warm.shard_stats)

    def test_editing_one_district_rerurns_one_shard(self, collection, tmp_path):
        cache = StageCache()
        plan = ShardPlan.from_collection(collection, "by-district")
        cfg = _config(spill_dir=str(tmp_path), stage_cache=True)
        Indice(plan.collection, cfg, cache=cache).run_sharded(plan)
        misses_cold = cache.shard_misses

        # dirty exactly one row of one district's shard
        table = collection.table
        eph = table.column("eph").values.copy()
        district = table.column("district").values
        victim_district = next(d for d in district if d is not None)
        victim_row = int(np.flatnonzero(district == victim_district)[0])
        eph[victim_row] = eph[victim_row] + 1.0 if not np.isnan(eph[victim_row]) else 1.0
        from repro.dataset.table import Column, ColumnKind

        dirty_table = table.with_column(
            Column("eph", ColumnKind.NUMERIC, eph)
        ).select(table.column_names)
        dirty_coll = dataclasses.replace(collection, table=dirty_table)
        plan2 = ShardPlan.from_collection(dirty_coll, "by-district")
        engine = Indice(plan2.collection, cfg, cache=cache)
        outcome = engine.run_sharded(plan2)
        assert cache.shard_misses == misses_cold + 1  # only the edited shard
        assert cache.shard_hits == len(plan2.shards) - 1
        recomputed = [s for s in outcome.shard_stats if not s.cache_hit]
        assert [s.key for s in recomputed] == [f"district:{victim_district}"]

    def test_degraded_shard_never_cached(self, collection, tmp_path):
        # a binding quota degrades cleaning: that shard must not be cached
        cache = StageCache()
        plan = ShardPlan.from_collection(collection, "by-district")
        cfg = _config(
            spill_dir=str(tmp_path), stage_cache=True, geocoder_quota=0
        )
        Indice(plan.collection, cfg, cache=cache).run_sharded(plan)
        first_misses = cache.shard_misses
        assert first_misses == len(plan.shards)
        Indice(plan.collection, cfg, cache=cache).run_sharded(plan)
        # every degraded shard misses again on the warm run
        assert cache.shard_misses > first_misses

    def test_provenance_exposes_shard_counters(self, collection, tmp_path):
        cache = StageCache()
        plan = ShardPlan.from_collection(collection, 3)
        cfg = _config(spill_dir=str(tmp_path), stage_cache=True)
        engine = Indice(plan.collection, cfg, cache=cache)
        engine.run_sharded(plan)
        steps = [s for s in engine.log.steps if s.stage == "sharding"]
        actions = [s.action for s in steps]
        assert "plan" in actions
        assert actions.count("shard_transform") == len(plan.shards)
        counter_steps = [s for s in steps if s.action == "shard_cache"]
        assert counter_steps[-1].detail["misses"] == len(plan.shards)
        assert "merge" in actions
