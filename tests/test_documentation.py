"""Meta-tests: documentation and API-surface invariants.

These lock in repository-level properties a reviewer checks by hand:
every public item carries a docstring, every module has a module
docstring, and the packages' ``__all__`` lists only export names that
actually exist.
"""

import ast
import importlib
from pathlib import Path

import pytest

SRC = Path(__file__).parent.parent / "src" / "repro"
MODULES = sorted(p for p in SRC.rglob("*.py"))

PACKAGES = [
    "repro",
    "repro.dataset",
    "repro.text",
    "repro.geo",
    "repro.preprocessing",
    "repro.query",
    "repro.analytics",
    "repro.dashboard",
    "repro.core",
    "repro.perf",
    "repro.faults",
    "repro.checks",
]


@pytest.mark.parametrize("path", MODULES, ids=lambda p: str(p.relative_to(SRC)))
def test_module_has_docstring(path):
    tree = ast.parse(path.read_text())
    assert ast.get_docstring(tree), f"{path} lacks a module docstring"


@pytest.mark.parametrize("path", MODULES, ids=lambda p: str(p.relative_to(SRC)))
def test_public_items_documented(path):
    tree = ast.parse(path.read_text())
    undocumented = []

    def check(node):
        if isinstance(node, (ast.FunctionDef, ast.ClassDef)):
            if not node.name.startswith("_") and not ast.get_docstring(node):
                undocumented.append(node.name)

    for node in tree.body:
        check(node)
        if isinstance(node, ast.ClassDef):
            for sub in node.body:
                check(sub)
    assert not undocumented, f"{path}: missing docstrings on {undocumented}"


@pytest.mark.parametrize("package", PACKAGES)
def test_all_exports_resolve(package):
    module = importlib.import_module(package)
    missing = [name for name in getattr(module, "__all__", []) if not hasattr(module, name)]
    assert not missing, f"{package}.__all__ exports unresolved names: {missing}"


@pytest.mark.parametrize("package", PACKAGES)
def test_star_import_is_safe(package):
    """``from repro.x import *`` must not raise (a common consumer idiom)."""
    namespace = {}
    exec(f"from {package} import *", namespace)  # noqa: S102 (test-only)
    assert namespace
