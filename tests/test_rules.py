"""Tests for Apriori itemset mining and association-rule generation."""

import math

import numpy as np
import pytest

from repro.analytics.apriori import (
    Item,
    ItemsetMiner,
    transactions_from_table,
)
from repro.analytics.rules import (
    AssociationRule,
    RuleConstraints,
    RuleMiner,
    RuleTemplate,
    generate_rules,
)
from repro.dataset.table import Column, Table


def item(attribute, value):
    return Item(attribute, value)


@pytest.fixture
def market_table():
    """A tiny table with a planted perfect implication a=1 -> b=1."""
    a = ["1", "1", "1", "1", "0", "0", "0", "0"]
    b = ["1", "1", "1", "1", "1", "0", "0", "0"]
    c = ["x", "y", "x", "y", "x", "y", "x", "y"]
    return Table(
        [Column.categorical("a", a), Column.categorical("b", b), Column.categorical("c", c)]
    )


class TestTransactions:
    def test_items_per_row(self, market_table):
        tx = transactions_from_table(market_table, ["a", "b"])
        assert len(tx) == 8
        assert set(tx[0]) == {item("a", "1"), item("b", "1")}

    def test_missing_values_skipped(self):
        t = Table([Column.categorical("a", ["1", None])])
        tx = transactions_from_table(t, ["a"])
        assert tx[1] == []

    def test_numeric_rejected(self):
        t = Table([Column.numeric("x", [1.0])])
        with pytest.raises(ValueError, match="discretize"):
            transactions_from_table(t, ["x"])


class TestItemsetMiner:
    def test_singleton_supports(self, market_table):
        tx = transactions_from_table(market_table, ["a", "b"])
        itemsets = ItemsetMiner(min_support=0.1).mine(tx)
        assert itemsets.support((item("a", "1"),)) == pytest.approx(0.5)
        assert itemsets.support((item("b", "1"),)) == pytest.approx(5 / 8)

    def test_pair_support(self, market_table):
        tx = transactions_from_table(market_table, ["a", "b"])
        itemsets = ItemsetMiner(min_support=0.1).mine(tx)
        pair = tuple(sorted((item("a", "1"), item("b", "1"))))
        assert itemsets.support(pair) == pytest.approx(0.5)

    def test_min_support_filters(self, market_table):
        tx = transactions_from_table(market_table, ["a", "b"])
        itemsets = ItemsetMiner(min_support=0.6).mine(tx)
        assert (item("b", "1"),) in itemsets.supports
        assert (item("a", "1"),) not in itemsets.supports  # support 0.5 < 0.6

    def test_same_attribute_never_pairs(self, market_table):
        tx = transactions_from_table(market_table, ["a", "b", "c"])
        itemsets = ItemsetMiner(min_support=0.01).mine(tx)
        for itemset in itemsets.supports:
            attrs = [i.attribute for i in itemset]
            assert len(attrs) == len(set(attrs))

    def test_max_length_cap(self, market_table):
        tx = transactions_from_table(market_table, ["a", "b", "c"])
        itemsets = ItemsetMiner(min_support=0.01, max_length=2).mine(tx)
        assert all(len(s) <= 2 for s in itemsets.supports)

    def test_downward_closure_holds(self, market_table):
        tx = transactions_from_table(market_table, ["a", "b", "c"])
        itemsets = ItemsetMiner(min_support=0.1).mine(tx)
        for itemset, support in itemsets.supports.items():
            for drop in range(len(itemset)):
                subset = itemset[:drop] + itemset[drop + 1 :]
                if subset:
                    assert itemsets.supports[subset] >= support

    def test_empty_transactions(self):
        itemsets = ItemsetMiner().mine([])
        assert len(itemsets) == 0

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            ItemsetMiner(min_support=0.0)
        with pytest.raises(ValueError):
            ItemsetMiner(max_length=0)

    def test_supports_match_bruteforce(self):
        rng = np.random.default_rng(0)
        rows = [
            {"a": str(rng.integers(0, 2)), "b": str(rng.integers(0, 3)), "c": str(rng.integers(0, 2))}
            for __ in range(200)
        ]
        t = Table(
            [
                Column.categorical("a", [r["a"] for r in rows]),
                Column.categorical("b", [r["b"] for r in rows]),
                Column.categorical("c", [r["c"] for r in rows]),
            ]
        )
        tx = transactions_from_table(t, ["a", "b", "c"])
        itemsets = ItemsetMiner(min_support=0.05).mine(tx)
        for itemset, support in itemsets.supports.items():
            count = sum(1 for row in rows if all(row[i.attribute] == i.value for i in itemset))
            assert support == pytest.approx(count / 200)


class TestRuleGeneration:
    def mine(self, table, attributes, **kw):
        tx = transactions_from_table(table, attributes)
        itemsets = ItemsetMiner(min_support=kw.pop("min_support", 0.1)).mine(tx)
        return generate_rules(itemsets, RuleConstraints(min_support=0.1, **kw))

    def test_perfect_rule_found(self, market_table):
        rules = self.mine(market_table, ["a", "b"], min_confidence=0.9)
        perfect = [r for r in rules if r.antecedent == (item("a", "1"),)
                   and r.consequent == (item("b", "1"),)]
        assert len(perfect) == 1
        rule = perfect[0]
        assert rule.confidence == pytest.approx(1.0)
        assert rule.lift == pytest.approx(1.0 / (5 / 8))
        assert math.isinf(rule.conviction)

    def test_quality_indices_formulas(self, market_table):
        rules = self.mine(market_table, ["a", "b"], min_confidence=0.0, min_lift=0.0,
                          min_conviction=0.0)
        # b=1 -> a=1: supp 0.5, conf 0.5/0.625 = 0.8, lift 0.8/0.5 = 1.6
        rule = next(r for r in rules if r.antecedent == (item("b", "1"),)
                    and r.consequent == (item("a", "1"),))
        assert rule.support == pytest.approx(0.5)
        assert rule.confidence == pytest.approx(0.8)
        assert rule.lift == pytest.approx(1.6)
        assert rule.conviction == pytest.approx((1 - 0.5) / (1 - 0.8))

    def test_antecedent_consequent_disjoint(self, market_table):
        rules = self.mine(market_table, ["a", "b", "c"], min_confidence=0.0,
                          min_lift=0.0, min_conviction=0.0)
        for rule in rules:
            assert not set(rule.antecedent) & set(rule.consequent)
            assert rule.antecedent and rule.consequent

    def test_constraints_filter(self, market_table):
        strict = self.mine(market_table, ["a", "b"], min_confidence=0.99)
        loose = self.mine(market_table, ["a", "b"], min_confidence=0.1,
                          min_lift=0.0, min_conviction=0.0)
        assert len(strict) < len(loose)
        assert all(r.confidence >= 0.99 for r in strict)

    def test_template_consequent_restriction(self, market_table):
        tx = transactions_from_table(market_table, ["a", "b", "c"])
        itemsets = ItemsetMiner(min_support=0.1).mine(tx)
        template = RuleTemplate(consequent_attributes=("b",))
        rules = generate_rules(
            itemsets,
            RuleConstraints(min_support=0.1, min_confidence=0.0, min_lift=0.0,
                            min_conviction=0.0),
            template,
        )
        assert rules
        assert all(i.attribute == "b" for r in rules for i in r.consequent)

    def test_template_antecedent_exclusion(self, market_table):
        tx = transactions_from_table(market_table, ["a", "b", "c"])
        itemsets = ItemsetMiner(min_support=0.1).mine(tx)
        template = RuleTemplate(antecedent_excludes=("c",))
        rules = generate_rules(
            itemsets,
            RuleConstraints(min_support=0.1, min_confidence=0.0, min_lift=0.0,
                            min_conviction=0.0),
            template,
        )
        assert all(i.attribute != "c" for r in rules for i in r.antecedent)

    def test_template_max_antecedent(self, market_table):
        tx = transactions_from_table(market_table, ["a", "b", "c"])
        itemsets = ItemsetMiner(min_support=0.05).mine(tx)
        template = RuleTemplate(max_antecedent=1)
        rules = generate_rules(
            itemsets,
            RuleConstraints(min_support=0.05, min_confidence=0.0, min_lift=0.0,
                            min_conviction=0.0),
            template,
        )
        assert all(len(r.antecedent) == 1 for r in rules)

    def test_rule_str(self):
        rule = AssociationRule(
            (item("u", "High"),), (item("eph", "High"),), 0.2, 0.8, 1.5, 2.0
        )
        assert str(rule) == "{u=High} -> {eph=High}"


class TestRuleMiner:
    def test_end_to_end(self, market_table):
        miner = RuleMiner(
            RuleConstraints(min_support=0.1, min_confidence=0.8, min_lift=1.0,
                            min_conviction=0.0)
        )
        rules = miner.mine(market_table, ["a", "b"])
        assert any(
            r.antecedent == (item("a", "1"),) and r.consequent == (item("b", "1"),)
            for r in rules
        )

    def test_top_k_orders_by_index(self, market_table):
        miner = RuleMiner(
            RuleConstraints(min_support=0.1, min_confidence=0.0, min_lift=0.0,
                            min_conviction=0.0)
        )
        rules = miner.mine(market_table, ["a", "b", "c"])
        top = RuleMiner.top_k(rules, 3, by="confidence")
        assert len(top) == 3
        assert top[0].confidence >= top[1].confidence >= top[2].confidence

    def test_top_k_unknown_index(self):
        with pytest.raises(ValueError):
            RuleMiner.top_k([], 3, by="magic")
