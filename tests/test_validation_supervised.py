"""Tests for cluster-validation indices and the supervised module."""

import numpy as np
import pytest

from repro.analytics.cart import RegressionTree
from repro.analytics.supervised import (
    KnnClassifier,
    accuracy,
    confusion_matrix,
    mean_absolute_error,
    r2_score,
    train_test_split,
)
from repro.analytics.validation import davies_bouldin, silhouette_score


def blobs(seed=0, n=50):
    rng = np.random.default_rng(seed)
    points = np.vstack(
        [rng.normal((0, 0), 0.3, (n, 2)), rng.normal((8, 8), 0.3, (n, 2))]
    )
    labels = np.array([0] * n + [1] * n)
    return points, labels


class TestSilhouette:
    def test_separated_blobs_near_one(self):
        points, labels = blobs()
        assert silhouette_score(points, labels) > 0.85

    def test_random_labels_near_zero(self):
        rng = np.random.default_rng(0)
        points = rng.normal(0, 1, (200, 2))
        labels = rng.integers(0, 2, 200)
        assert abs(silhouette_score(points, labels)) < 0.15

    def test_bad_labels_negative(self):
        points, labels = blobs()
        # swap half of each blob's labels: many points closer to the other group
        wrong = labels.copy()
        wrong[:25] = 1
        wrong[50:75] = 0
        assert silhouette_score(points, wrong) < silhouette_score(points, labels)

    def test_single_cluster_nan(self):
        points, __ = blobs()
        assert np.isnan(silhouette_score(points, np.zeros(len(points))))

    def test_unassigned_ignored(self):
        points, labels = blobs()
        labels = labels.copy()
        labels[0] = -1
        assert silhouette_score(points, labels) > 0.85

    def test_subsampling_close_to_exact(self):
        points, labels = blobs(n=300)
        exact = silhouette_score(points, labels, max_points=10_000)
        sampled = silhouette_score(points, labels, max_points=150, seed=3)
        assert abs(exact - sampled) < 0.1

    def test_misaligned_rejected(self):
        with pytest.raises(ValueError):
            silhouette_score(np.zeros((3, 2)), np.zeros(4))


class TestDaviesBouldin:
    def test_separated_blobs_small(self):
        points, labels = blobs()
        assert davies_bouldin(points, labels) < 0.2

    def test_worse_for_overlapping(self):
        rng = np.random.default_rng(1)
        near = np.vstack(
            [rng.normal((0, 0), 1.0, (50, 2)), rng.normal((1, 1), 1.0, (50, 2))]
        )
        labels = np.array([0] * 50 + [1] * 50)
        points, good_labels = blobs()
        assert davies_bouldin(near, labels) > davies_bouldin(points, good_labels)

    def test_single_cluster_nan(self):
        points, __ = blobs()
        assert np.isnan(davies_bouldin(points, np.zeros(len(points))))

    def test_identical_centroids_inf(self):
        points = np.zeros((10, 2))
        labels = np.array([0] * 5 + [1] * 5)
        assert davies_bouldin(points, labels) == np.inf


class TestSplit:
    def test_partition(self):
        train, test = train_test_split(100, 0.25, seed=0)
        assert len(train) + len(test) == 100
        assert len(set(train.tolist()) & set(test.tolist())) == 0
        assert len(test) == 25

    def test_deterministic(self):
        a = train_test_split(50, 0.3, seed=7)
        b = train_test_split(50, 0.3, seed=7)
        assert np.array_equal(a[0], b[0])

    def test_validation(self):
        with pytest.raises(ValueError):
            train_test_split(10, 0.0)


class TestKnn:
    def test_classifies_blobs(self):
        points, labels = blobs()
        names = ["low" if v == 0 else "high" for v in labels]
        train, test = train_test_split(len(points), 0.3, seed=0)
        clf = KnnClassifier(k=5).fit(points[train], [names[i] for i in train])
        predictions = clf.predict(points[test])
        assert accuracy([names[i] for i in test], predictions) == 1.0

    def test_nan_row_predicts_none(self):
        points, labels = blobs()
        clf = KnnClassifier(k=3).fit(points, labels.tolist())
        assert clf.predict(np.array([[np.nan, 0.0]])) == [None]

    def test_k_larger_than_train(self):
        points = np.array([[0.0, 0.0], [1.0, 1.0]])
        clf = KnnClassifier(k=50).fit(points, ["a", "b"])
        assert clf.predict(np.array([[0.1, 0.1]])) == ["a"]

    def test_tie_breaks_to_closest(self):
        points = np.array([[0.0], [1.0]])
        clf = KnnClassifier(k=2).fit(points, ["near", "far"])
        assert clf.predict(np.array([[0.2]])) == ["near"]

    def test_unfitted(self):
        with pytest.raises(RuntimeError):
            KnnClassifier().predict(np.zeros((1, 2)))

    def test_none_labels_dropped_in_fit(self):
        points = np.array([[0.0], [1.0], [2.0]])
        clf = KnnClassifier(k=1).fit(points, ["a", None, "c"])
        assert clf.predict(np.array([[1.1]])) == ["c"]

    def test_invalid_k(self):
        with pytest.raises(ValueError):
            KnnClassifier(k=0)

    def test_1d_query(self):
        points, labels = blobs()
        clf = KnnClassifier(k=3).fit(points, labels.tolist())
        assert clf.predict(points[0]) == [0]


class TestMetrics:
    def test_accuracy_skips_none(self):
        assert accuracy(["a", "b", None], ["a", "x", "a"]) == 0.5

    def test_accuracy_empty_nan(self):
        assert np.isnan(accuracy([None], ["a"]))

    def test_confusion_matrix(self):
        cm = confusion_matrix(["a", "a", "b"], ["a", "b", "b"])
        assert cm == {("a", "a"): 1, ("a", "b"): 1, ("b", "b"): 1}

    def test_mae(self):
        assert mean_absolute_error([1.0, 2.0], [2.0, 4.0]) == 1.5

    def test_mae_skips_nan(self):
        assert mean_absolute_error([1.0, np.nan], [2.0, 5.0]) == 1.0

    def test_r2_perfect(self):
        y = np.arange(10.0)
        assert r2_score(y, y) == 1.0

    def test_r2_mean_predictor_zero(self):
        y = np.arange(10.0)
        pred = np.full(10, y.mean())
        assert r2_score(y, pred) == pytest.approx(0.0)

    def test_r2_constant_truth_nan(self):
        assert np.isnan(r2_score(np.ones(5), np.arange(5.0)))

    def test_cart_as_regressor_beats_mean(self):
        """RegressionTree + metrics: tree R2 on held-out data must beat 0."""
        rng = np.random.default_rng(0)
        x = rng.uniform(0, 4, (800, 1))
        y = np.floor(x[:, 0]) * 10 + rng.normal(0, 1, 800)
        train, test = train_test_split(800, 0.25, seed=0)
        tree = RegressionTree(max_depth=4, min_samples_leaf=20).fit(x[train], y[train])
        pred = tree.predict(x[test])
        assert r2_score(y[test], pred) > 0.9
