"""Unit and property tests for the columnar Table substrate."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dataset.table import Column, ColumnKind, Table, TableError


def make_table():
    return Table(
        [
            Column.numeric("x", [1.0, 2.0, None, 4.0]),
            Column.categorical("c", ["a", "b", "a", None]),
            Column.text("t", ["via roma", None, "corso francia", "via po"]),
        ]
    )


class TestColumn:
    def test_numeric_missing_becomes_nan(self):
        col = Column.numeric("x", [1, None, 3])
        assert np.isnan(col.values[1])
        assert col.is_missing().tolist() == [False, True, False]

    def test_categorical_coerces_to_str(self):
        col = Column.categorical("c", [1, "b", None])
        assert col.values[0] == "1"
        assert col.values[2] is None

    def test_non_missing(self):
        col = Column.numeric("x", [1.0, None, 3.0])
        assert col.non_missing().tolist() == [1.0, 3.0]

    def test_unique_sorted(self):
        col = Column.categorical("c", ["b", "a", "b", None])
        assert col.unique() == ["a", "b"]

    def test_numeric_unique(self):
        col = Column.numeric("x", [3.0, 1.0, 3.0])
        assert col.unique() == [1.0, 3.0]

    def test_equality_with_nan(self):
        a = Column.numeric("x", [1.0, None])
        b = Column.numeric("x", [1.0, None])
        assert a == b

    def test_equality_kind_mismatch(self):
        a = Column.categorical("c", ["1"])
        b = Column.text("c", ["1"])
        assert a != b

    def test_take_reorders(self):
        col = Column.numeric("x", [1.0, 2.0, 3.0])
        assert col.take(np.array([2, 0])).values.tolist() == [3.0, 1.0]

    def test_renamed_shares_buffer(self):
        col = Column.numeric("x", [1.0])
        renamed = col.renamed("y")
        assert renamed.name == "y"
        assert renamed.values is col.values

    def test_from_kind_dispatch(self):
        assert Column.from_kind("a", ColumnKind.NUMERIC, [1]).kind is ColumnKind.NUMERIC
        assert Column.from_kind("a", ColumnKind.TEXT, ["x"]).kind is ColumnKind.TEXT

    def test_unhashable(self):
        with pytest.raises(TypeError):
            hash(Column.numeric("x", [1.0]))


class TestTableConstruction:
    def test_duplicate_names_rejected(self):
        with pytest.raises(TableError, match="duplicate"):
            Table([Column.numeric("x", [1]), Column.numeric("x", [2])])

    def test_length_mismatch_rejected(self):
        with pytest.raises(TableError, match="differing lengths"):
            Table([Column.numeric("x", [1]), Column.numeric("y", [1, 2])])

    def test_from_columns_requires_kinds(self):
        with pytest.raises(TableError, match="no kind"):
            Table.from_columns({"x": [1]}, {})

    def test_from_rows_missing_keys(self):
        t = Table.from_rows(
            [{"x": 1}, {"x": 2, "c": "a"}],
            {"x": ColumnKind.NUMERIC, "c": ColumnKind.CATEGORICAL},
        )
        assert t["c"][0] is None
        assert t["c"][1] == "a"

    def test_empty_table(self):
        t = Table.empty()
        assert t.n_rows == 0
        assert t.n_columns == 0

    def test_repr(self):
        assert "4 rows x 3 columns" in repr(make_table())


class TestTableAccess:
    def test_unknown_column(self):
        with pytest.raises(TableError, match="unknown column"):
            make_table().column("nope")

    def test_kind_lookup(self):
        t = make_table()
        assert t.kind("x") is ColumnKind.NUMERIC
        assert t.kind("c") is ColumnKind.CATEGORICAL
        assert t.kind("t") is ColumnKind.TEXT

    def test_kind_buckets(self):
        t = make_table()
        assert t.numeric_columns() == ["x"]
        assert t.categorical_columns() == ["c"]
        assert t.text_columns() == ["t"]

    def test_row_and_to_rows(self):
        t = make_table()
        assert t.row(0)["c"] == "a"
        assert len(t.to_rows()) == 4

    def test_row_out_of_range(self):
        with pytest.raises(TableError, match="out of range"):
            make_table().row(10)

    def test_contains(self):
        assert "x" in make_table()
        assert "nope" not in make_table()


class TestTableTransforms:
    def test_select_order(self):
        t = make_table().select(["c", "x"])
        assert t.column_names == ["c", "x"]

    def test_drop(self):
        t = make_table().drop(["t"])
        assert t.column_names == ["x", "c"]

    def test_drop_unknown(self):
        with pytest.raises(TableError):
            make_table().drop(["nope"])

    def test_with_column_appends(self):
        t = make_table().with_column(Column.numeric("y", [9, 9, 9, 9]))
        assert t.column_names[-1] == "y"

    def test_with_column_replaces_in_place_name(self):
        t = make_table().with_column(Column.numeric("x", [9, 9, 9, 9]))
        assert t["x"].tolist() == [9, 9, 9, 9]
        assert t.n_columns == 3

    def test_with_column_length_check(self):
        with pytest.raises(TableError):
            make_table().with_column(Column.numeric("y", [1]))

    def test_rename(self):
        t = make_table().rename({"x": "value"})
        assert "value" in t.column_names
        assert "x" not in t.column_names

    def test_where(self):
        t = make_table()
        out = t.where(np.array([True, False, True, False]))
        assert out.n_rows == 2
        assert out["c"].tolist() == ["a", "a"]

    def test_where_shape_check(self):
        with pytest.raises(TableError):
            make_table().where(np.array([True]))

    def test_head(self):
        assert make_table().head(2).n_rows == 2
        assert make_table().head(100).n_rows == 4

    def test_sort_numeric_missing_last(self):
        t = make_table().sort_by("x")
        assert t["x"].tolist()[:3] == [1.0, 2.0, 4.0]
        assert np.isnan(t["x"][3])

    def test_sort_descending_missing_last(self):
        t = make_table().sort_by("x", descending=True)
        assert t["x"].tolist()[:3] == [4.0, 2.0, 1.0]
        assert np.isnan(t["x"][3])

    def test_sort_categorical(self):
        t = make_table().sort_by("c")
        assert t["c"].tolist()[:3] == ["a", "a", "b"]
        assert t["c"][3] is None

    def test_drop_missing_all(self):
        # only row 0 is fully present (rows 1-3 each miss one field)
        t = make_table().drop_missing()
        assert t.n_rows == 1

    def test_drop_missing_subset(self):
        t = make_table().drop_missing(["x"])
        assert t.n_rows == 3


class TestGroupJoin:
    def test_group_by_categorical(self):
        groups = make_table().group_by("c")
        assert set(groups) == {"a", "b", None}
        assert groups["a"].n_rows == 2

    def test_group_by_numeric_keys_are_floats(self):
        t = Table([Column.numeric("k", [1, 1, 2])])
        groups = t.group_by("k")
        assert set(groups) == {1.0, 2.0}

    def test_group_indices_cover_all_rows(self):
        idx = make_table().group_indices("c")
        total = sum(len(v) for v in idx.values())
        assert total == 4

    def test_inner_join(self):
        left = Table(
            [Column.categorical("k", ["a", "b", "c"]), Column.numeric("x", [1, 2, 3])]
        )
        right = Table(
            [Column.categorical("k", ["b", "c", "d"]), Column.numeric("y", [20, 30, 40])]
        )
        out = left.join(right, on="k")
        assert out.n_rows == 2
        assert out["y"].tolist() == [20.0, 30.0]

    def test_left_join_fills_missing(self):
        left = Table([Column.categorical("k", ["a", "b"]), Column.numeric("x", [1, 2])])
        right = Table([Column.categorical("k", ["b"]), Column.numeric("y", [20])])
        out = left.join(right, on="k", how="left")
        assert out.n_rows == 2
        assert np.isnan(out["y"][0])
        assert out["y"][1] == 20.0

    def test_join_name_clash_gets_suffix(self):
        left = Table([Column.categorical("k", ["a"]), Column.numeric("x", [1])])
        right = Table([Column.categorical("k", ["a"]), Column.numeric("x", [9])])
        out = left.join(right, on="k")
        assert "x_right" in out.column_names

    def test_join_unsupported_how(self):
        t = Table([Column.categorical("k", ["a"])])
        with pytest.raises(TableError):
            t.join(t, on="k", how="outer")

    def test_join_duplicate_right_keys_multiply(self):
        left = Table([Column.categorical("k", ["a"]), Column.numeric("x", [1])])
        right = Table([Column.categorical("k", ["a", "a"]), Column.numeric("y", [1, 2])])
        out = left.join(right, on="k")
        assert out.n_rows == 2


class TestAggregateStackMatrix:
    def test_aggregate_mean(self):
        t = Table(
            [
                Column.categorical("g", ["a", "a", "b"]),
                Column.numeric("v", [1.0, 3.0, 5.0]),
            ]
        )
        out = t.aggregate("g", "v", np.mean)
        assert out["a"] == 2.0
        assert out["b"] == 5.0

    def test_aggregate_ignores_missing(self):
        t = Table(
            [
                Column.categorical("g", ["a", "a"]),
                Column.numeric("v", [1.0, None]),
            ]
        )
        assert t.aggregate("g", "v", np.mean)["a"] == 1.0

    def test_aggregate_empty_group_is_nan(self):
        t = Table(
            [Column.categorical("g", ["a"]), Column.numeric("v", [None])]
        )
        assert np.isnan(t.aggregate("g", "v", np.mean)["a"])

    def test_aggregate_requires_numeric(self):
        t = make_table()
        with pytest.raises(TableError):
            t.aggregate("c", "t", np.mean)

    def test_vstack(self):
        t = make_table()
        out = t.vstack(t)
        assert out.n_rows == 8

    def test_vstack_schema_mismatch(self):
        t = make_table()
        with pytest.raises(TableError):
            t.vstack(t.select(["x", "c"]))

    def test_to_matrix_shape(self):
        t = make_table()
        m = t.to_matrix(["x"])
        assert m.shape == (4, 1)

    def test_to_matrix_rejects_categorical(self):
        with pytest.raises(TableError):
            make_table().to_matrix(["c"])

    def test_to_matrix_empty(self):
        m = make_table().to_matrix([])
        assert m.shape == (4, 0)


@st.composite
def tables(draw):
    n = draw(st.integers(min_value=0, max_value=30))
    xs = draw(
        st.lists(
            st.one_of(st.none(), st.floats(-1e6, 1e6, allow_nan=False)),
            min_size=n, max_size=n,
        )
    )
    cs = draw(
        st.lists(
            st.one_of(st.none(), st.sampled_from(["a", "b", "c"])),
            min_size=n, max_size=n,
        )
    )
    return Table([Column.numeric("x", xs), Column.categorical("c", cs)])


class TestTableProperties:
    @given(tables())
    @settings(max_examples=60, deadline=None)
    def test_where_then_count(self, t):
        mask = ~t.column("x").is_missing()
        filtered = t.where(mask)
        assert filtered.n_rows == int(mask.sum())
        assert not filtered.column("x").is_missing().any()

    @given(tables())
    @settings(max_examples=60, deadline=None)
    def test_group_by_partitions(self, t):
        groups = t.group_by("c")
        assert sum(g.n_rows for g in groups.values()) == t.n_rows

    @given(tables())
    @settings(max_examples=60, deadline=None)
    def test_sort_is_permutation(self, t):
        out = t.sort_by("x")
        a = np.sort(t["x"][~np.isnan(t["x"])])
        b = np.sort(out["x"][~np.isnan(out["x"])])
        assert np.array_equal(a, b)

    @given(tables())
    @settings(max_examples=60, deadline=None)
    def test_vstack_length_adds(self, t):
        assert t.vstack(t).n_rows == 2 * t.n_rows
