"""Tests for the synthetic EPC collection: schema, street map, generator, noise."""

import numpy as np
import pytest

from repro.dataset import (
    ERA_REGIMES,
    GEO_ATTRIBUTES,
    PAPER_CLUSTERING_FEATURES,
    PAPER_RESPONSE,
    ColumnKind,
    NoiseConfig,
    SyntheticConfig,
    apply_noise,
    epc_schema,
    generate_epc_collection,
    generate_street_map,
)
from repro.geo.regions import Granularity
from repro.text.normalize import normalize_address


@pytest.fixture(scope="module")
def small_collection():
    return generate_epc_collection(SyntheticConfig(n_certificates=3000, seed=11))


@pytest.fixture(scope="module")
def noisy(small_collection):
    return apply_noise(small_collection, NoiseConfig(seed=5))


class TestSchema:
    def test_paper_attribute_counts(self):
        schema = epc_schema()
        assert len(schema) == 132
        assert len(schema.quantitative_names()) == 43
        assert len(schema.categorical_names()) == 89

    def test_paper_features_present(self):
        schema = epc_schema()
        for name in PAPER_CLUSTERING_FEATURES + (PAPER_RESPONSE,) + GEO_ATTRIBUTES:
            assert name in schema

    def test_spec_lookup_and_unknown(self):
        schema = epc_schema()
        assert schema.spec("eph").unit == "kWh/m2y"
        with pytest.raises(KeyError):
            schema.spec("nonexistent")

    def test_validate_numeric_bounds(self):
        spec = epc_schema().spec("eta_h")
        assert spec.validate_value(0.8)
        assert not spec.validate_value(9.0)
        assert spec.validate_value(None)
        assert spec.validate_value(float("nan"))

    def test_validate_categorical_vocabulary(self):
        spec = epc_schema().spec("energy_class")
        assert spec.validate_value("A4")
        assert not spec.validate_value("Z")

    def test_kinds_cover_all(self):
        schema = epc_schema()
        assert set(schema.kinds()) == set(schema.names)


class TestStreetMap:
    def test_deterministic(self):
        a, _ = generate_street_map(seed=3, streets_per_neighbourhood=5)
        b, _ = generate_street_map(seed=3, streets_per_neighbourhood=5)
        assert a.records == b.records

    def test_seed_changes_layout(self):
        a, _ = generate_street_map(seed=3, streets_per_neighbourhood=5)
        b, _ = generate_street_map(seed=4, streets_per_neighbourhood=5)
        assert a.records != b.records

    def test_streets_are_normalized(self):
        sm, _ = generate_street_map(seed=3, streets_per_neighbourhood=5)
        for name in sm.street_names()[:50]:
            assert name == normalize_address(name)

    def test_records_inside_their_neighbourhood(self):
        sm, hierarchy = generate_street_map(seed=3, streets_per_neighbourhood=5)
        by_name = {r.name: r for r in hierarchy.neighbourhoods}
        for rec in sm.records[::97]:
            region = by_name[rec.neighbourhood]
            assert region.contains(rec.latitude, rec.longitude)

    def test_zip_unique_per_neighbourhood(self):
        sm, _ = generate_street_map(seed=3, streets_per_neighbourhood=5)
        zips_per_n: dict[str, set] = {}
        for rec in sm.records:
            zips_per_n.setdefault(rec.neighbourhood, set()).add(rec.zip_code)
        assert all(len(z) == 1 for z in zips_per_n.values())

    def test_hierarchy_shape(self):
        _, h = generate_street_map(seed=3, streets_per_neighbourhood=5)
        assert len(h.districts) == 8
        assert len(h.neighbourhoods) == 26
        assert all(n.parent in {d.name for d in h.districts} for n in h.neighbourhoods)


class TestGenerator:
    def test_row_and_column_counts(self, small_collection):
        assert small_collection.n_certificates == 3000
        assert small_collection.table.n_columns == 132

    def test_deterministic(self):
        a = generate_epc_collection(SyntheticConfig(n_certificates=200, seed=9))
        b = generate_epc_collection(SyntheticConfig(n_certificates=200, seed=9))
        assert a.table.column("eph") == b.table.column("eph")
        assert a.era_labels == b.era_labels

    def test_values_respect_schema_bounds(self, small_collection):
        schema = small_collection.schema
        table = small_collection.table
        for name in ("aspect_ratio", "u_value_opaque", "u_value_windows", "eta_h", "eph"):
            spec = schema.spec(name)
            values = table.column(name).non_missing()
            assert values.min() >= spec.lo
            assert values.max() <= spec.hi

    def test_categorical_vocabularies_respected(self, small_collection):
        schema = small_collection.schema
        table = small_collection.table
        for name in ("energy_class", "heating_fuel", "building_type", "glazing_type"):
            spec = schema.spec(name)
            observed = set(table.column(name).non_missing())
            assert observed <= set(spec.categories)

    def test_turin_rows_have_gazetteer_backing(self, small_collection):
        c = small_collection
        cities = c.table["city"]
        for i in range(0, c.n_certificates, 211):
            if cities[i] == "Turin":
                assert c.gazetteer_index[i] >= 0
                rec = c.street_map.records[c.gazetteer_index[i]]
                assert c.table["address"][i] == rec.street
                assert c.table["zip_code"][i] == rec.zip_code
            else:
                assert c.gazetteer_index[i] == -1

    def test_turin_share(self, small_collection):
        cities = small_collection.table["city"]
        share = sum(1 for c in cities if c == "Turin") / len(cities)
        assert 0.65 < share < 0.75

    def test_e11_share(self, small_collection):
        types = small_collection.table["building_type"]
        share = sum(1 for t in types if t == "E.1.1") / len(types)
        assert 0.55 < share < 0.70

    def test_era_labels_cover_rows(self, small_collection):
        assert len(small_collection.era_labels) == small_collection.n_certificates
        assert set(small_collection.era_labels) <= {r.name for r in ERA_REGIMES}

    def test_eph_ordered_by_era(self, small_collection):
        """The planted physics: older eras consume more (paper's premise)."""
        table = small_collection.table
        eras = np.array(small_collection.era_labels)
        eph = table["eph"]
        means = [float(eph[eras == r.name].mean()) for r in ERA_REGIMES]
        assert means == sorted(means, reverse=True)

    def test_weak_feature_correlations(self, small_collection):
        """Figure 3 premise: the five clustering features are weakly correlated."""
        m = small_collection.table.to_matrix(list(PAPER_CLUSTERING_FEATURES))
        corr = np.corrcoef(m, rowvar=False)
        off_diag = corr[~np.eye(len(corr), dtype=bool)]
        assert np.abs(off_diag).max() < 0.5

    def test_construction_period_consistent_with_year(self, small_collection):
        table = small_collection.table
        years = table["year_of_construction"]
        periods = table["construction_period"]
        for i in range(0, len(years), 173):
            if periods[i] == "after 2005":
                assert years[i] > 2005
            if periods[i] == "before 1918":
                assert years[i] <= 1918

    def test_turin_coordinates_inside_city(self, small_collection):
        c = small_collection
        city_region = c.hierarchy.city
        lat, lon = c.table["latitude"], c.table["longitude"]
        for i in range(0, c.n_certificates, 157):
            if c.table["city"][i] == "Turin":
                assert city_region.contains(float(lat[i]), float(lon[i]))

    def test_district_assignment_matches_column(self, small_collection):
        c = small_collection
        turin_rows = [i for i in range(0, c.n_certificates, 301) if c.table["city"][i] == "Turin"]
        lat = c.table["latitude"][turin_rows]
        lon = c.table["longitude"][turin_rows]
        assigned = c.hierarchy.assign(lat, lon, Granularity.DISTRICT)
        stored = [c.table["district"][i] for i in turin_rows]
        assert assigned == stored


class TestNoise:
    def test_original_untouched(self, small_collection, noisy):
        # the clean table must not share corrupted buffers with the dirty one;
        # events chain per cell, so only the FIRST event's original matches the
        # clean value (a typo may be followed by an abbreviation event).
        clean_addr = small_collection.table["address"]
        seen_rows: set[int] = set()
        checked = 0
        for ev in noisy.events:
            if ev.attribute == "address" and ev.row not in seen_rows:
                seen_rows.add(ev.row)
                assert clean_addr[ev.row] == ev.original
                checked += 1
                if checked >= 50:
                    break
        assert checked > 0

    def test_events_describe_real_changes(self, small_collection, noisy):
        table = noisy.table
        for ev in noisy.events[:200]:
            kind = table.kind(ev.attribute)
            value = table[ev.attribute][ev.row]
            if ev.corrupted is None:
                if kind is ColumnKind.NUMERIC:
                    assert np.isnan(value)
                else:
                    assert value is None

    def test_deterministic(self, small_collection):
        a = apply_noise(small_collection, NoiseConfig(seed=5))
        b = apply_noise(small_collection, NoiseConfig(seed=5))
        assert len(a.events) == len(b.events)
        assert a.table.column("address") == b.table.column("address")

    def test_noise_rates_in_expected_range(self, noisy, small_collection):
        n = small_collection.n_certificates
        by_kind = noisy.events_by_kind()
        assert 0.10 * n < len(by_kind["typo"]) < 0.25 * n
        assert len(by_kind.get("outlier", [])) > 0

    def test_rows_touched_filter(self, noisy):
        addr_rows = noisy.rows_touched("address")
        assert addr_rows <= noisy.rows_touched()

    def test_outliers_are_extreme(self, small_collection, noisy):
        for ev in noisy.events_by_kind().get("outlier", [])[:50]:
            ratio = ev.corrupted / ev.original
            assert any(ratio == pytest.approx(f) for f in (10.0, 100.0, 0.1))

    def test_schema_order_preserved(self, small_collection, noisy):
        assert noisy.table.column_names == small_collection.table.column_names
