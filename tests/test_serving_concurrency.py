"""Socket-level concurrency harness for the production serving tier.

The contracts under test, each through real TCP connections against a
:class:`~repro.serving.PooledHTTPServer`:

* **coalescing** — 50 concurrent cold hits on the same artifact trigger
  exactly one render (the single-flight lock), and every client gets the
  same bytes;
* **conditional GETs** — a matching ``If-None-Match`` is a 304 with an
  empty body; a stale validator gets the full 200;
* **byte identity** — bodies are bit-identical across workers and across
  plain/gzip representations (``mtime=0`` compression);
* **load shedding** — past ``max_inflight`` the server answers
  ``503 + Retry-After`` within the admission deadline instead of
  queueing, and recovers as soon as slots free up;
* **graceful reload** — a request in flight across
  :meth:`~repro.serving.ArtifactServer.reload` finishes against the
  store it started on, while every later request sees the new version;
* **lock sanitizing** — the same bursts run instrumented under the
  :mod:`repro.checks.lockdep` sanitizer and must stay silent (the load
  harness doubles as a dynamic race detector), a seeded lock-order
  inversion against the store's real locks is caught deterministically,
  and the instrumentation overhead on the 50-client cold burst stays
  below 10%.
"""

import gzip
import http.client
import threading
import time

import pytest

from repro import Indice, IndiceConfig
from repro.checks.lockdep import LockDep, LockOrderError, SanitizedLock
from repro.dataset import SyntheticConfig, generate_epc_collection
from repro.serving import ArtifactServer, ArtifactStore, build_store

pytestmark = pytest.mark.serving

CLIENTS = 50


@pytest.fixture(scope="module")
def engine():
    collection = generate_epc_collection(SyntheticConfig(n_certificates=1000, seed=77))
    engine = Indice(
        collection,
        IndiceConfig(kmeans_n_init=2, k_range=(2, 5), run_multivariate_outliers=False),
    )
    engine.preprocess()
    engine.analyze()
    return engine


@pytest.fixture(scope="module")
def warm(engine):
    """A server over a fully pre-rendered store, listening on localhost."""
    store = build_store(engine)
    store.prerender()
    server = ArtifactServer(store)
    with server.serving(workers=4) as (httpd, url):
        yield server, httpd.server_address[1]


def request(port, path, headers=None, method="GET", timeout=30.0):
    """One real round-trip; returns ``(status, headers_dict, body)``."""
    conn = http.client.HTTPConnection("127.0.0.1", port, timeout=timeout)
    try:
        conn.request(method, path, headers=headers or {})
        response = conn.getresponse()
        return response.status, dict(response.getheaders()), response.read()
    finally:
        conn.close()


def burst(port, path, n, headers=None):
    """*n* clients released simultaneously against *path*."""
    barrier = threading.Barrier(n)
    results = []
    results_lock = threading.Lock()

    def hit():
        barrier.wait()
        outcome = request(port, path, headers=headers)
        with results_lock:
            results.append(outcome)

    threads = [threading.Thread(target=hit) for __ in range(n)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join(timeout=60.0)
    assert len(results) == n, "some clients never completed"
    return results


def wait_until(predicate, timeout=5.0):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(0.005)
    return predicate()


class TestColdBurstCoalescing:
    def test_fifty_cold_hits_render_once(self, engine):
        store = build_store(engine)
        server = ArtifactServer(store)
        path = "/dashboard/citizen"
        assert store.render_count(path) == 0  # genuinely cold
        with server.serving(workers=8) as (httpd, __):
            results = burst(httpd.server_address[1], path, CLIENTS)
        assert {status for status, __, ___ in results} == {200}
        bodies = {body for __, ___, body in results}
        assert len(bodies) == 1, "coalesced clients saw different bytes"
        # the whole point: one render for fifty concurrent cold clients
        assert store.render_count(path) == 1
        assert store.render_attempts == 1
        etags = {headers["ETag"] for __, headers, ___ in results}
        assert len(etags) == 1


class TestConditionalGets:
    def test_if_none_match_is_304_with_empty_body(self, warm):
        server, port = warm
        status, headers, body = request(port, "/report")
        assert status == 200 and body
        etag = headers["ETag"]
        status, headers, body = request(
            port, "/report", headers={"If-None-Match": etag}
        )
        assert status == 304
        assert body == b""
        assert headers["ETag"] == etag
        assert server.stats["not_modified"] >= 1

    def test_stale_validator_gets_full_response(self, warm):
        __, port = warm
        status, ___, body = request(
            port, "/report", headers={"If-None-Match": '"deadbeef"'}
        )
        assert status == 200 and body

    def test_wildcard_matches(self, warm):
        __, port = warm
        status, ___, body = request(
            port, "/report", headers={"If-None-Match": "*"}
        )
        assert status == 304 and body == b""


class TestByteIdentity:
    def test_bodies_identical_across_workers(self, warm):
        # 16 clients spread over the 4-worker pool: every thread must
        # serve the same immutable bytes
        __, port = warm
        results = burst(port, "/geojson/points", 16)
        assert {status for status, ___, ____ in results} == {200}
        assert len({body for __, ___, body in results}) == 1

    def test_gzip_twin_is_the_same_bytes(self, warm):
        __, port = warm
        ___, plain_headers, plain = request(port, "/")
        status, headers, compressed = request(
            port, "/", headers={"Accept-Encoding": "gzip"}
        )
        assert status == 200
        assert headers["Content-Encoding"] == "gzip"
        assert gzip.decompress(compressed) == plain
        # same strong validator for both representations of the artifact
        assert headers["ETag"] == plain_headers["ETag"]
        # mtime=0: the compressed representation is itself reproducible
        ____, _____, again = request(
            port, "/", headers={"Accept-Encoding": "gzip"}
        )
        assert again == compressed


class TestLoadShedding:
    def _blocking_store(self, release):
        def slow():
            assert release.wait(timeout=30.0), "test never released the render"
            return "slow artifact"

        return ArtifactStore(
            "v-slow",
            {"/slow": ("text/plain", slow), "/other": ("text/plain", slow)},
        )

    def test_saturation_sheds_503_then_recovers(self):
        release = threading.Event()
        store = self._blocking_store(release)
        server = ArtifactServer(store, max_inflight=2, shed_after_s=0.05)
        with server.serving(workers=4) as (httpd, __):
            port = httpd.server_address[1]
            held = []

            def hold():
                held.append(request(port, "/slow"))

            blockers = [threading.Thread(target=hold) for __ in range(2)]
            for thread in blockers:
                thread.start()
            # both admission slots taken: one rendering, one coalesced
            assert wait_until(lambda: server.inflight == 2)

            status, headers, body = request(port, "/other")
            assert status == 503
            assert headers["Retry-After"] == "1"
            assert b"Traceback" not in body
            assert server.stats["shed"] == 1

            release.set()
            for thread in blockers:
                thread.join(timeout=30.0)
            assert [status for status, __, ___ in held] == [200, 200]
            # slots free again: the same request now succeeds
            status, __, body = request(port, "/other")
            assert status == 200 and body == b"slow artifact"

    def test_shed_does_not_leak_slots(self):
        # a shed request must not consume an admission slot: after many
        # sheds the server still serves normally
        release = threading.Event()
        release.set()  # renders never block in this test
        store = self._blocking_store(release)
        server = ArtifactServer(store, max_inflight=1, shed_after_s=0.01)
        for __ in range(5):
            assert server.respond("GET", "/slow").status == 200
        assert server.inflight == 0


class TestGracefulReload:
    def test_inflight_finishes_on_old_store_new_requests_see_new(self):
        started = threading.Event()
        release = threading.Event()

        def slow_old():
            started.set()
            assert release.wait(timeout=30.0)
            return "old body"

        old = ArtifactStore("v-old", {"/page": ("text/plain", slow_old)})
        new = ArtifactStore("v-new", {"/page": ("text/plain", lambda: "new body")})
        server = ArtifactServer(old)
        with server.serving(workers=4) as (httpd, __):
            port = httpd.server_address[1]
            inflight_result = {}

            def old_reader():
                inflight_result["r"] = request(port, "/page")

            reader = threading.Thread(target=old_reader)
            reader.start()
            assert started.wait(timeout=10.0)

            # swap stores while the first request is mid-render
            assert server.reload(new) == "v-new"
            status, headers, body = request(port, "/page")
            assert status == 200
            assert body == b"new body"
            assert headers["X-Analysis-Version"] == "v-new"

            release.set()
            reader.join(timeout=30.0)
            status, headers, body = inflight_result["r"]
            assert status == 200
            assert body == b"old body"  # pinned to the store it started on
            assert headers["X-Analysis-Version"] == "v-old"

            ___, ____, health = request(port, "/healthz")
            assert b'"version": "v-new"' in health
        assert server.stats["reloads"] == 1


class TestLockdepSanitized:
    """The burst harness re-run as a dynamic race detector."""

    def test_sanitized_cold_burst_is_silent_and_still_coalesces(self, engine):
        dep = LockDep("burst")
        store = build_store(engine, lockdep=dep)
        server = ArtifactServer(store, lockdep=dep)
        path = "/dashboard/citizen"
        with server.serving(workers=8) as (httpd, __):
            results = burst(httpd.server_address[1], path, CLIENTS)
        assert {status for status, __, ___ in results} == {200}
        assert store.render_count(path) == 1
        # the run was observed...
        assert dep.n_acquires > CLIENTS
        # ...and no inversion, fork-while-held or wedge was recorded
        assert dep.violations == []
        dep.assert_clean()
        # the observed order is the designed one: admission slot, then
        # stats; key lock, then store meta — never the reverse
        assert ("server.slots", "server.stats") in dep.edges
        assert (f"store.key:{path}", "store.meta") in dep.edges
        assert ("store.meta", f"store.key:{path}") not in dep.edges

    def test_sanitized_graceful_reload_is_silent(self, engine):
        dep = LockDep("reload")
        server = ArtifactServer(build_store(engine, lockdep=dep), lockdep=dep)
        with server.serving(workers=4) as (httpd, __):
            port = httpd.server_address[1]
            results = burst(port, "/report", 12)
            assert {status for status, __, ___ in results} == {200}
            server.reload(build_store(engine, lockdep=dep))
            results = burst(port, "/report", 12)
            assert {status for status, __, ___ in results} == {200}
        assert dep.violations == []
        dep.assert_clean()

    def test_seeded_inversion_is_caught_in_the_store_path(self):
        # teach the sanitizer an (inverted) meta -> key order, as if some
        # code path acquired the per-key lock while holding the meta
        # lock; the store's real key -> meta acquisition then closes the
        # cycle and must raise at the acquisition site, first attempt
        dep = LockDep("seeded")
        store = ArtifactStore(
            "v", {"/x": ("text/plain", lambda: "x")}, lockdep=dep
        )
        outer = SanitizedLock(threading.Lock(), "store.meta", dep)
        inner = SanitizedLock(threading.Lock(), "store.key:/x", dep)
        with outer:
            with inner:
                pass
        with pytest.raises(LockOrderError, match="inversion"):
            store.get("/x")
        assert store.render_count("/x") == 0  # nothing half-published

    def test_instrumentation_overhead_on_cold_burst(self, engine):
        def cold_burst(lockdep):
            store = build_store(engine, lockdep=lockdep)
            server = ArtifactServer(store, lockdep=lockdep)
            path = "/dashboard/citizen"
            barrier = threading.Barrier(CLIENTS + 1)

            def hit():
                barrier.wait()
                assert server.respond("GET", path).status == 200

            threads = [threading.Thread(target=hit) for __ in range(CLIENTS)]
            for thread in threads:
                thread.start()
            barrier.wait()
            started = time.perf_counter()
            for thread in threads:
                thread.join(timeout=60.0)
            return time.perf_counter() - started

        # min-of-3 each: scheduler noise, not the mean, is the enemy
        plain = min(cold_burst(None) for __ in range(3))
        sanitized = min(cold_burst(LockDep("overhead")) for __ in range(3))
        # <10% relative, with an absolute floor for sub-ms timer jitter
        assert sanitized <= plain * 1.10 + 0.010, (
            f"sanitizer overhead too high: plain={plain:.4f}s "
            f"sanitized={sanitized:.4f}s"
        )
