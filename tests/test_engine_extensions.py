"""Tests for engine extensions: per-attribute outlier overrides and
per-group rule mining."""

import numpy as np
import pytest

from repro import Indice, IndiceConfig
from repro.dataset import SyntheticConfig, generate_epc_collection
from repro.preprocessing.outliers import OutlierMethod


@pytest.fixture(scope="module")
def collection():
    return generate_epc_collection(SyntheticConfig(n_certificates=2000, seed=55))


class TestOutlierOverrides:
    def test_override_changes_method_for_one_attribute(self, collection):
        engine = Indice(
            collection,
            IndiceConfig(
                outlier_overrides={
                    "eta_h": (OutlierMethod.GESD, {"max_outliers": 5}),
                },
                kmeans_n_init=2,
                run_multivariate_outliers=False,
            ),
        )
        engine.preprocess()
        outcome = engine._preprocessed
        assert outcome.univariate_outliers["eta_h"].method is OutlierMethod.GESD
        assert outcome.univariate_outliers["eph"].method is OutlierMethod.MAD

    def test_override_recorded_in_provenance(self, collection):
        engine = Indice(
            collection,
            IndiceConfig(
                outlier_overrides={"eta_h": (OutlierMethod.BOXPLOT, {"whisker": 3.0})},
                kmeans_n_init=2,
                run_multivariate_outliers=False,
            ),
        )
        engine.preprocess()
        steps = [
            s for s in engine.log.for_stage("preprocessing")
            if s.action == "univariate_outliers" and s.detail["attribute"] == "eta_h"
        ]
        assert steps[0].detail["method"] == "boxplot"


class TestRulesByGroup:
    @pytest.fixture(scope="class")
    def engine(self, collection):
        eng = Indice(
            collection,
            IndiceConfig(kmeans_n_init=2, k_range=(2, 5),
                         run_multivariate_outliers=False),
        )
        eng.preprocess()
        eng.analyze()
        return eng

    def test_rules_per_cluster(self, engine):
        by_cluster = engine.mine_rules_by_group("cluster", min_group_size=50)
        assert by_cluster  # at least one cluster is large enough
        for rules in by_cluster.values():
            for rule in rules:
                assert all(i.attribute == "eph" for i in rule.consequent)

    def test_rules_per_district(self, engine):
        by_district = engine.mine_rules_by_group("district", min_group_size=50)
        assert by_district
        assert all(name.startswith("Circoscrizione") for name in by_district)

    def test_small_groups_skipped(self, engine):
        huge_floor = engine._analyzed.table.n_rows + 1
        assert engine.mine_rules_by_group("district", min_group_size=huge_floor) == {}

    def test_provenance_records_groups(self, engine):
        engine.mine_rules_by_group("cluster", min_group_size=50)
        steps = [
            s for s in engine.log.for_stage("analytics")
            if s.action == "rules_by_group"
        ]
        assert steps
