"""Smoke tests running every example script end to end.

These take minutes in total, so they only run when ``RUN_EXAMPLES=1`` is
set (CI's nightly job, or a release check):

    RUN_EXAMPLES=1 pytest tests/test_examples_smoke.py -q
"""

import os
import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES = sorted((Path(__file__).parent.parent / "examples").glob("*.py"))

pytestmark = pytest.mark.skipif(
    os.environ.get("RUN_EXAMPLES") != "1",
    reason="set RUN_EXAMPLES=1 to run the (slow) example smoke tests",
)


@pytest.mark.parametrize("script", EXAMPLES, ids=lambda p: p.name)
def test_example_runs_clean(script):
    result = subprocess.run(
        [sys.executable, str(script)],
        capture_output=True,
        text=True,
        timeout=600,
    )
    assert result.returncode == 0, result.stderr[-2000:]
    # every example narrates its work
    assert result.stdout.strip()
