"""End-to-end chaos harness: seeded fault plans over the full pipeline.

The contract under test (the resilience tier's one invariant):

    For every fault plan, the pipeline either *recovers* — outputs
    bit-identical to the fault-free run — or *degrades gracefully* with
    the degradation recorded in the provenance log.  Never a silent
    difference, never a crash.

Two tiers of coverage:

* ``TestChaosSmoke`` — a handful of plans over a small collection, fast
  enough for the default test run;
* ``TestChaosSweep`` (``@pytest.mark.chaos``) — 20+ plans over the
  8000-certificate pipeline, deselected by default (``addopts`` carries
  ``-m "not chaos"``); run it alone with ``pytest -m chaos``.

Every plan is a plain ``--fault-plan`` spec string, so any failing sweep
case reproduces from the CLI verbatim.
"""

import threading

import pytest

from repro import Indice, IndiceConfig
from repro.dataset import (
    NoiseConfig,
    SyntheticConfig,
    apply_noise,
    generate_epc_collection,
)
from repro.faults import FaultInjector, FaultPlan, ResiliencePolicy
from repro.perf.cache import fingerprint_table

SMOKE_N = 1200
SWEEP_N = 8000


def _make_collection(n, seed):
    collection = generate_epc_collection(
        SyntheticConfig(n_certificates=n, seed=seed)
    )
    noisy = apply_noise(collection, NoiseConfig(seed=seed + 1))
    collection.table = noisy.table
    return collection


def _chaos_config(cache_dir=None, n_jobs=2):
    """A fast pipeline config with near-zero retry delays.

    ``breaker_recovery_s`` is huge so an opened circuit stays open for the
    rest of the run — half-open probe timing must never make a chaos run
    depend on the wall clock.
    """
    return IndiceConfig(
        kmeans_n_init=2,
        k_range=(2, 4),
        run_multivariate_outliers=False,
        n_jobs=n_jobs,
        cache_dir=str(cache_dir) if cache_dir else None,
        resilience=ResiliencePolicy(
            retry_base_delay_s=0.0005,
            retry_max_delay_s=0.002,
            breaker_recovery_s=3600.0,
        ),
    )


def _run_pipeline(collection, injector=None, cache_dir=None):
    engine = Indice(
        collection, _chaos_config(cache_dir), injector=injector
    )
    # force the parallel path at test scale so parallel.worker faults
    # actually arrive (the production threshold assumes larger inputs)
    engine.executor.min_parallel_items = 64
    engine.preprocess()
    engine.analyze()
    return engine


def _signature(engine):
    """Every pipeline output, reduced to one comparable value."""
    analytics = engine._require_analyzed()
    return (
        fingerprint_table(engine._require_preprocessed().table),
        fingerprint_table(analytics.table),
        analytics.clustering.chosen_k,
        tuple(repr(rule) for rule in analytics.rules),
    )


def _degradation_kinds(engine):
    return {step.detail["kind"] for step in engine.log.degradations()}


def _assert_invariant(spec, engine, signature, reference):
    """The chaos invariant: bit-identical, or a logged degradation."""
    if signature != reference:
        assert engine.log.degradations(), (
            f"plan {spec!r} changed the pipeline output without recording "
            "any degradation — silent divergence"
        )


# ---------------------------------------------------------------------------
# Smoke tier: runs in the default suite
# ---------------------------------------------------------------------------

#: (spec, must_be_identical, degradation kind that must be logged or None)
SMOKE_PLANS = [
    ("geocoder.request:transient*2;seed=1", True, None),
    ("geocoder.request:quota", False, "geocoder_quota_exhausted"),
    ("parallel.worker:crash*1", True, None),
    ("cache.write:io_error*1", True, "cache_write_failed"),
    ("geocoder.request:transient;seed=3", False, "geocoder_transient_failures"),
    ("geocoder.request:transient*1;cache.write:corrupt;seed=4", True, None),
]


@pytest.fixture(scope="module")
def smoke_collection():
    return _make_collection(SMOKE_N, seed=11)


@pytest.fixture(scope="module")
def smoke_reference(smoke_collection, tmp_path_factory):
    engine = _run_pipeline(
        smoke_collection, cache_dir=tmp_path_factory.mktemp("ref-cache")
    )
    assert engine.log.degradations() == []  # the reference run is clean
    return _signature(engine)


class TestChaosSmoke:
    @pytest.mark.parametrize(
        "spec,identical,required_kind",
        SMOKE_PLANS,
        ids=[p[0] for p in SMOKE_PLANS],
    )
    def test_recovers_or_degrades(
        self, smoke_collection, smoke_reference, tmp_path,
        spec, identical, required_kind,
    ):
        injector = FaultInjector(FaultPlan.parse(spec))
        engine = _run_pipeline(
            smoke_collection, injector=injector, cache_dir=tmp_path / "cache"
        )
        signature = _signature(engine)
        _assert_invariant(spec, engine, signature, smoke_reference)
        if identical:
            assert signature == smoke_reference, (
                f"plan {spec!r} should have recovered bit-identically"
            )
        if required_kind is not None:
            assert required_kind in _degradation_kinds(engine)
        # a parallel fallback is a recovery, but it is still never silent
        if engine.executor.fallbacks:
            assert "parallel_fallback" in _degradation_kinds(engine)

    def test_parallel_shm_output_equals_serial(self, smoke_collection):
        # the shared-memory parallel path must be Table.__eq__-identical
        # to the serial path, not merely fingerprint-identical
        outputs = []
        for jobs in (1, 2):
            engine = Indice(smoke_collection, _chaos_config(n_jobs=jobs))
            engine.executor.min_parallel_items = 64
            engine.preprocess()
            engine.analyze()
            outputs.append(
                (
                    engine._require_preprocessed().table,
                    engine._require_analyzed().table,
                )
            )
        (serial_pre, serial_out), (parallel_pre, parallel_out) = outputs
        assert serial_pre == parallel_pre
        assert serial_out == parallel_out

    def test_faults_actually_fired(self, smoke_collection, tmp_path):
        # guard against the harness testing nothing: the always-on quota
        # plan must reach the geocoder site
        injector = FaultInjector(FaultPlan.parse("geocoder.request:quota"))
        _run_pipeline(
            smoke_collection, injector=injector, cache_dir=tmp_path / "cache"
        )
        assert injector.injections("geocoder.request") == 1

    def test_cache_read_corruption_recovers_and_is_logged(
        self, smoke_collection, tmp_path
    ):
        # warm a disk cache fault-free, then re-run with every cache read
        # corrupted: the entries must degrade to misses (recompute), the
        # recomputed outputs must match, and the recovery must be logged
        cache_dir = tmp_path / "cache"
        warm = _run_pipeline(smoke_collection, cache_dir=cache_dir)
        injector = FaultInjector(FaultPlan.parse("cache.read:corrupt"))
        rerun = _run_pipeline(
            smoke_collection, injector=injector, cache_dir=cache_dir
        )
        assert _signature(rerun) == _signature(warm)
        assert injector.injections("cache.read") > 0
        assert "cache_read_failed" in _degradation_kinds(rerun)

    def test_fault_plan_cli_knob(self, tmp_path, capsys):
        from repro.cli import main

        out = tmp_path / "dash.html"
        code = main(
            [
                "run", str(out),
                "--certificates", "400",
                "--fault-plan", "geocoder.request:quota",
            ]
        )
        assert code == 0
        assert out.exists()
        printed = capsys.readouterr().out
        assert "degradation" in printed


# ---------------------------------------------------------------------------
# Full sweep: pytest -m chaos
# ---------------------------------------------------------------------------

SWEEP_PLANS = [
    # recoverable transients (retries absorb them)
    "geocoder.request:transient*1",
    "geocoder.request:transient*2;seed=1",
    "geocoder.request:transient*3;seed=2",
    "geocoder.request:transient@0.15;seed=3",
    "geocoder.request:transient@0.3;seed=4",
    # persistent geocoder failure and quota exhaustion (graceful degradation)
    "geocoder.request:transient",
    "geocoder.request:quota",
    "geocoder.request:quota+5;seed=5",
    "geocoder.request:quota+25;seed=6",
    # worker crashes and stragglers
    "parallel.worker:crash*1",
    "parallel.worker:crash*1+1;seed=7",
    "parallel.worker:crash",
    "parallel.worker:delay*2;seed=8",
    "parallel.worker:delay@0.5;seed=9",
    "parallel.worker:crash@0.3;seed=15",
    # cache write failures (outputs never depend on the cache)
    "cache.write:io_error",
    "cache.write:corrupt",
    "cache.write:truncate",
    "cache.write:io_error@0.5;seed=10",
    # compound plans: several sites failing in one run
    "geocoder.request:transient*2;parallel.worker:crash*1;seed=11",
    "geocoder.request:transient*1;cache.write:io_error;seed=12",
    "geocoder.request:quota+10;parallel.worker:delay*1;seed=13",
    "geocoder.request:transient@0.2;cache.write:corrupt@0.5;"
    "parallel.worker:crash*1;seed=14",
]


def test_sweep_is_large_enough():
    assert len(SWEEP_PLANS) >= 20


@pytest.mark.chaos
class TestChaosSweep:
    @pytest.fixture(scope="class")
    def sweep_collection(self):
        return _make_collection(SWEEP_N, seed=29)

    @pytest.fixture(scope="class")
    def sweep_reference(self, sweep_collection, tmp_path_factory):
        engine = _run_pipeline(
            sweep_collection, cache_dir=tmp_path_factory.mktemp("sweep-ref")
        )
        assert engine.log.degradations() == []
        return _signature(engine)

    @pytest.mark.parametrize("spec", SWEEP_PLANS, ids=SWEEP_PLANS)
    def test_plan_recovers_or_degrades(
        self, sweep_collection, sweep_reference, tmp_path, spec
    ):
        injector = FaultInjector(FaultPlan.parse(spec))
        engine = _run_pipeline(
            sweep_collection, injector=injector, cache_dir=tmp_path / "cache"
        )
        signature = _signature(engine)
        _assert_invariant(spec, engine, signature, sweep_reference)
        if engine.executor.fallbacks:
            assert "parallel_fallback" in _degradation_kinds(engine)

    def test_sweep_is_deterministic(
        self, sweep_collection, sweep_reference, tmp_path
    ):
        # the same plan twice: same injected events, same outputs, same
        # degradations — a chaos failure always reproduces from its spec
        spec = "geocoder.request:transient@0.3;parallel.worker:crash*1;seed=4"
        runs = []
        for i in range(2):
            injector = FaultInjector(FaultPlan.parse(spec))
            engine = _run_pipeline(
                sweep_collection, injector=injector,
                cache_dir=tmp_path / f"cache-{i}",
            )
            runs.append(
                (_signature(engine), injector.events, _degradation_kinds(engine))
            )
        assert runs[0] == runs[1]


# ---------------------------------------------------------------------------
# Serving tier: injected render failures under a concurrent burst
# ---------------------------------------------------------------------------


class TestServingChaos:
    """Chaos at the ``serve.request`` site.

    The serving twin of the pipeline invariant: a failing render costs
    exactly the requests whose attempt failed (a per-request 500 page,
    never a traceback), it never wedges the single-flight lock, and the
    next attempt recovers.  The plan is a plain spec string, so the same
    failure reproduces from the CLI via
    ``repro serve --fault-plan 'serve.request:transient*3;seed=5'``.
    """

    BURST = 12
    SPEC = "serve.request:transient*3;seed=5"

    @pytest.fixture(scope="class")
    def serve_engine(self, smoke_collection):
        engine = Indice(smoke_collection, _chaos_config())
        engine.preprocess()
        engine.analyze()
        return engine

    def test_render_faults_give_500_pages_and_recover(self, serve_engine):
        from repro.serving import ArtifactServer, build_store

        injector = FaultInjector(FaultPlan.parse(self.SPEC))
        store = build_store(serve_engine, injector=injector)
        server = ArtifactServer(store)
        path = "/dashboard/citizen"

        barrier = threading.Barrier(self.BURST)
        results, results_lock = [], threading.Lock()

        def hit():
            barrier.wait()
            response = server.respond("GET", path)
            with results_lock:
                results.append(response)

        threads = [threading.Thread(target=hit) for __ in range(self.BURST)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=60.0)
        assert len(results) == self.BURST

        # the single-flight lock serializes render attempts, so the plan
        # is deterministic even under a concurrent burst: attempts 1-3
        # fail (one 500 each), attempt 4 publishes, the rest coalesce
        statuses = sorted(response.status for response in results)
        assert statuses == [200] * (self.BURST - 3) + [500] * 3
        for response in results:
            if response.status == 500:
                body = response.body.decode("utf-8")
                assert body.startswith("<!DOCTYPE html>")
                assert "Traceback" not in body
        assert injector.injections("serve.request") == 3
        assert server.stats["errors"] == 3
        # exactly one successful render despite the burst and the faults
        assert store.render_count(path) == 1
        assert store.render_attempts == 4

    def test_no_wedged_lock_after_faults(self, serve_engine):
        from repro.serving import ArtifactServer, build_store

        injector = FaultInjector(FaultPlan.parse(self.SPEC))
        store = build_store(serve_engine, injector=injector)
        server = ArtifactServer(store)
        # serially burn the three injected failures on one path
        failures = [
            server.respond("GET", "/report").status for __ in range(3)
        ]
        assert failures == [500, 500, 500]
        # every route now serves cleanly: nothing is wedged, nothing cached
        # a failure by mistake
        for path in store.paths():
            assert server.respond("GET", path).status == 200
        assert server.inflight == 0

    def test_fault_burst_under_lock_sanitizer_stays_deterministic(
        self, serve_engine
    ):
        # the same chaos burst, instrumented: injected render failures
        # must neither reorder the locks nor leave one held, and the
        # deterministic 3x500-then-coalesce outcome is unchanged
        from repro.checks.lockdep import LockDep
        from repro.serving import ArtifactServer, build_store

        dep = LockDep("chaos")
        injector = FaultInjector(FaultPlan.parse(self.SPEC))
        store = build_store(serve_engine, injector=injector, lockdep=dep)
        server = ArtifactServer(store, lockdep=dep)
        path = "/dashboard/citizen"

        barrier = threading.Barrier(self.BURST)
        results, results_lock = [], threading.Lock()

        def hit():
            barrier.wait()
            response = server.respond("GET", path)
            with results_lock:
                results.append(response)

        threads = [threading.Thread(target=hit) for __ in range(self.BURST)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=60.0)

        statuses = sorted(response.status for response in results)
        assert statuses == [200] * (self.BURST - 3) + [500] * 3
        assert store.render_count(path) == 1
        # the sanitizer saw the whole burst and stayed silent — failed
        # renders released every lock they held
        assert dep.n_acquires > self.BURST
        assert dep.violations == []
        dep.assert_clean()
