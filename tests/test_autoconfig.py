"""Tests for the automatic configuration advisor."""

import numpy as np
import pytest

from repro.core.autoconfig import _count_modes, suggest_config
from repro.core.config import IndiceConfig
from repro.dataset import SyntheticConfig, generate_epc_collection
from repro.dataset.table import Column, Table
from repro.preprocessing import ExpertConfigStore, OutlierMethod


@pytest.fixture(scope="module")
def collection():
    return generate_epc_collection(SyntheticConfig(n_certificates=2000, seed=3))


def synthetic_table(columns: dict[str, np.ndarray]) -> Table:
    return Table([Column.numeric(name, vals) for name, vals in columns.items()])


class TestModeCounting:
    def test_unimodal(self):
        rng = np.random.default_rng(0)
        assert _count_modes(rng.normal(0, 1, 3000)) == 1

    def test_bimodal(self):
        rng = np.random.default_rng(0)
        values = np.concatenate([rng.normal(0, 1, 1500), rng.normal(10, 1, 1500)])
        assert _count_modes(values) == 2

    def test_tiny_sample(self):
        assert _count_modes(np.arange(5.0)) == 1


class TestAdvice:
    def test_near_normal_gets_gesd(self):
        rng = np.random.default_rng(1)
        table = synthetic_table(
            {
                "aspect_ratio": rng.normal(0.5, 0.05, 2000),
                "u_value_opaque": rng.normal(0.6, 0.05, 2000),
                "u_value_windows": rng.normal(2.0, 0.1, 2000),
                "heated_surface": rng.normal(90, 5, 2000),
                "eta_h": rng.normal(0.8, 0.02, 2000),
                "eph": rng.normal(100, 5, 2000),
            }
        )
        advice = suggest_config(table)
        assert advice.attribute_advice["eta_h"].method is OutlierMethod.GESD
        assert advice.config.outlier_method is OutlierMethod.GESD

    def test_real_stock_gets_mad(self, collection):
        """The era-structured stock is skewed/multi-modal -> MAD dominates."""
        advice = suggest_config(collection.table)
        assert advice.config.outlier_method is OutlierMethod.MAD

    def test_small_sample_gets_boxplot(self):
        table = synthetic_table(
            {name: np.arange(10.0) for name in (
                "aspect_ratio", "u_value_opaque", "u_value_windows",
                "heated_surface", "eta_h", "eph",
            )}
        )
        advice = suggest_config(table)
        assert advice.attribute_advice["eph"].method is OutlierMethod.BOXPLOT

    def test_min_support_scales_with_size(self, collection):
        small = suggest_config(collection.table.head(500))
        large = suggest_config(collection.table)
        assert small.config.rule_constraints.min_support >= (
            large.config.rule_constraints.min_support
        )

    def test_support_bounds(self, collection):
        advice = suggest_config(collection.table.head(100))
        assert 0.01 <= advice.config.rule_constraints.min_support <= 0.1

    def test_k_range_grows_with_size(self, collection):
        small = suggest_config(collection.table.head(200))
        large = suggest_config(collection.table)
        assert large.config.k_range[1] >= small.config.k_range[1]

    def test_expert_history_overrides(self, collection):
        store = ExpertConfigStore()
        store.record_choice("eta_h", OutlierMethod.BOXPLOT, {"whisker": 2.0})
        advice = suggest_config(collection.table, expert_store=store)
        assert advice.attribute_advice["eta_h"].method is OutlierMethod.BOXPLOT
        assert "expert history" in advice.attribute_advice["eta_h"].reason

    def test_discretization_classes_clamped(self, collection):
        advice = suggest_config(collection.table)
        for item in advice.attribute_advice.values():
            assert 2 <= item.n_classes <= 4

    def test_response_plan_preserved(self, collection):
        base = IndiceConfig()
        advice = suggest_config(collection.table, base=base)
        assert advice.config.discretization_plan["eph"] == (
            base.discretization_plan["eph"]
        )

    def test_describe_mentions_each_attribute(self, collection):
        advice = suggest_config(collection.table)
        text = advice.describe()
        for name in IndiceConfig().features:
            assert name in text

    def test_suggested_config_is_runnable(self, collection):
        """The advisor's output must be a valid IndiceConfig."""
        advice = suggest_config(collection.table)
        assert isinstance(advice.config, IndiceConfig)
        assert advice.config.response == "eph"
        assert advice.config.rule_template is not None
