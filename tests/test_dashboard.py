"""Tests for colors, SVG, marker clustering, maps, charts and dashboards."""

import json

import numpy as np
import pytest

from repro.analytics.correlation import correlation_matrix
from repro.analytics.rules import AssociationRule
from repro.analytics.apriori import Item
from repro.analytics.stats import grouped_histograms, histogram, summarize_table
from repro.dashboard.colors import (
    GrayScale,
    SequentialScale,
    categorical_color,
    hex_to_rgb,
    interpolate_hex,
    rgb_to_hex,
)
from repro.dashboard.charts import (
    bar_chart,
    boxplot_chart,
    correlation_matrix_chart,
    grouped_histogram_chart,
    histogram_chart,
    rules_table_html,
    summary_table_html,
)
from repro.dashboard.dashboard import Dashboard, DashboardBuilder, Panel
from repro.dashboard.markercluster import (
    ClusterMarker,
    cluster_markers,
    marker_radius,
)
from repro.dashboard.maps import (
    MapCanvas,
    choropleth_map,
    cluster_marker_map,
    scatter_map,
)
from repro.dashboard.svg import SvgDocument
from repro.dataset.streetmap import turin_like_hierarchy
from repro.dataset.table import Column, Table
from repro.geo.regions import Granularity
from repro.preprocessing.outliers import boxplot_outliers


class TestColors:
    def test_hex_roundtrip(self):
        assert rgb_to_hex(hex_to_rgb("#a1b2c3")) == "#a1b2c3"

    def test_hex_validation(self):
        with pytest.raises(ValueError):
            hex_to_rgb("#abc")

    def test_interpolation_endpoints(self):
        assert interpolate_hex("#000000", "#ffffff", 0.0) == "#000000"
        assert interpolate_hex("#000000", "#ffffff", 1.0) == "#ffffff"
        assert interpolate_hex("#000000", "#ffffff", 0.5) == "#808080"

    def test_scale_colors_span_ramp(self):
        scale = SequentialScale(0.0, 100.0)
        assert scale.color(0.0) == scale.stops[0]
        assert scale.color(100.0) == scale.stops[-1]

    def test_scale_clamps(self):
        scale = SequentialScale(0.0, 1.0)
        assert scale.color(-5.0) == scale.color(0.0)
        assert scale.color(99.0) == scale.color(1.0)

    def test_scale_missing(self):
        scale = SequentialScale(0.0, 1.0)
        assert scale.color(float("nan")) == scale.missing_color

    def test_scale_from_values_ignores_nan(self):
        scale = SequentialScale.from_values([1.0, float("nan"), 3.0])
        assert scale.vmin == 1.0
        assert scale.vmax == 3.0

    def test_scale_from_all_nan(self):
        scale = SequentialScale.from_values([float("nan")])
        assert scale.vmin == 0.0

    def test_degenerate_domain(self):
        scale = SequentialScale(5.0, 5.0)
        assert scale.normalized(5.0) == 0.5

    def test_legend_ticks(self):
        ticks = SequentialScale(0.0, 10.0).legend_ticks(3)
        assert [v for v, __ in ticks] == [0.0, 5.0, 10.0]

    def test_legend_needs_two(self):
        with pytest.raises(ValueError):
            SequentialScale(0.0, 1.0).legend_ticks(1)

    def test_gray_scale(self):
        gray = GrayScale()
        assert gray.color(0.0) == "#ffffff"
        assert gray.color(1.0) == "#000000"
        assert gray.color(-1.0) == "#000000"  # uses |rho|
        assert gray.color(float("nan")) == "#ffffff"

    def test_categorical_cycles(self):
        assert categorical_color(0) == categorical_color(10)


class TestSvg:
    def test_render_well_formed(self):
        doc = SvgDocument(100, 50)
        doc.circle(10, 10, 5, title="a point")
        doc.text(5, 40, "hello & <goodbye>")
        out = doc.render()
        assert out.startswith("<svg")
        assert out.endswith("</svg>")
        assert "&amp;" in out and "&lt;goodbye&gt;" in out
        assert "<title>a point</title>" in out

    def test_invalid_viewport(self):
        with pytest.raises(ValueError):
            SvgDocument(0, 10)

    def test_save(self, tmp_path):
        doc = SvgDocument(10, 10)
        path = tmp_path / "t.svg"
        doc.save(path)
        assert path.read_text().startswith("<svg")


class TestMarkerCluster:
    def make_points(self):
        # two tight packs ~5 km apart
        rng = np.random.default_rng(0)
        lats = np.concatenate([45.05 + rng.normal(0, 0.001, 40),
                               45.10 + rng.normal(0, 0.001, 60)])
        lons = np.concatenate([7.65 + rng.normal(0, 0.001, 40),
                               7.70 + rng.normal(0, 0.001, 60)])
        values = np.concatenate([np.full(40, 100.0), np.full(60, 200.0)])
        return lats, lons, values

    def test_two_packs_two_markers_at_coarse_zoom(self):
        lats, lons, values = self.make_points()
        markers = cluster_markers(lats, lons, values, Granularity.CITY)
        assert len(markers) == 2
        assert sorted(m.count for m in markers) == [40, 60]

    def test_cardinality_is_label(self):
        lats, lons, values = self.make_points()
        markers = cluster_markers(lats, lons, values, Granularity.CITY)
        assert {m.label for m in markers} == {"40", "60"}

    def test_mean_value_per_marker(self):
        lats, lons, values = self.make_points()
        markers = sorted(cluster_markers(lats, lons, values, Granularity.CITY),
                         key=lambda m: m.count)
        assert markers[0].mean_value == pytest.approx(100.0)
        assert markers[1].mean_value == pytest.approx(200.0)

    def test_unit_granularity_one_marker_per_point(self):
        lats, lons, values = self.make_points()
        markers = cluster_markers(lats, lons, values, Granularity.UNIT)
        assert len(markers) == 100
        assert all(m.count == 1 for m in markers)

    def test_drill_down_monotone(self):
        """Finer zoom never produces fewer markers (the paper's drill-down)."""
        lats, lons, values = self.make_points()
        counts = [
            len(cluster_markers(lats, lons, values, g))
            for g in (Granularity.CITY, Granularity.DISTRICT,
                      Granularity.NEIGHBOURHOOD, Granularity.UNIT)
        ]
        assert counts == sorted(counts)

    def test_counts_conserve_points(self):
        lats, lons, values = self.make_points()
        for g in (Granularity.CITY, Granularity.NEIGHBOURHOOD):
            markers = cluster_markers(lats, lons, values, g)
            assert sum(m.count for m in markers) == 100

    def test_nan_coordinates_skipped(self):
        lats = np.array([45.0, np.nan])
        lons = np.array([7.6, 7.6])
        markers = cluster_markers(lats, lons, np.array([1.0, 2.0]), Granularity.CITY)
        assert sum(m.count for m in markers) == 1

    def test_missing_values_count_but_dont_average(self):
        lats = np.full(3, 45.0)
        lons = np.full(3, 7.6)
        values = np.array([10.0, np.nan, 20.0])
        markers = cluster_markers(lats, lons, values, Granularity.CITY)
        assert len(markers) == 1
        assert markers[0].count == 3
        assert markers[0].mean_value == pytest.approx(15.0)

    def test_misaligned_rejected(self):
        with pytest.raises(ValueError):
            cluster_markers(np.zeros(2), np.zeros(3), np.zeros(2))

    def test_marker_radius_scales(self):
        small = marker_radius(1, 100)
        big = marker_radius(100, 100)
        assert small < big
        assert big == 26.0

    def test_marker_radius_validation(self):
        with pytest.raises(ValueError):
            marker_radius(0, 10)
        with pytest.raises(ValueError):
            marker_radius(20, 10)


@pytest.fixture(scope="module")
def hierarchy():
    return turin_like_hierarchy()


@pytest.fixture(scope="module")
def points():
    rng = np.random.default_rng(1)
    n = 300
    lats = 45.0703 + rng.uniform(-0.05, 0.05, n)
    lons = 7.6869 + rng.uniform(-0.08, 0.08, n)
    values = rng.uniform(30, 300, n)
    return lats, lons, values


class TestMaps:
    def test_choropleth_one_polygon_per_region(self, hierarchy):
        values = {d.name: float(i * 10) for i, d in enumerate(hierarchy.districts)}
        render = choropleth_map(hierarchy, Granularity.DISTRICT, values, "eph")
        assert render.svg.count("<polygon") == 8
        assert len(render.geojson["features"]) == 8

    def test_choropleth_missing_region_gray(self, hierarchy):
        values = {hierarchy.districts[0].name: 10.0}
        render = choropleth_map(hierarchy, Granularity.DISTRICT, values, "eph")
        assert "#cccccc" in render.svg
        assert "no data" in render.svg

    def test_choropleth_unit_level_rejected(self, hierarchy):
        with pytest.raises(ValueError):
            choropleth_map(hierarchy, Granularity.UNIT, {}, "eph")

    def test_scatter_point_per_certificate(self, hierarchy, points):
        lats, lons, values = points
        render = scatter_map(lats, lons, values, "eph", hierarchy=hierarchy)
        assert render.svg.count("<circle") == len(lats)
        assert len(render.geojson["features"]) == len(lats)

    def test_scatter_subsampling(self, hierarchy, points):
        lats, lons, values = points
        render = scatter_map(lats, lons, values, "eph", hierarchy=hierarchy,
                             max_points=50)
        assert render.svg.count("<circle") <= 50

    def test_scatter_without_hierarchy(self, points):
        lats, lons, values = points
        render = scatter_map(lats, lons, values, "eph")
        assert render.svg.count("<circle") == len(lats)

    def test_cluster_marker_map_labels(self, hierarchy, points):
        lats, lons, values = points
        render = cluster_marker_map(lats, lons, values, "eph",
                                    Granularity.CITY, hierarchy=hierarchy)
        assert "certificates; mean eph" in render.svg
        total = sum(f["properties"]["count"] for f in render.geojson["features"])
        assert total == len(lats)

    def test_cluster_marker_map_with_analytic_labels(self, hierarchy, points):
        lats, lons, values = points
        labels = np.array([0, 1] * 150)
        render = cluster_marker_map(lats, lons, values, "eph",
                                    Granularity.CITY, hierarchy=hierarchy,
                                    cluster_labels=labels)
        total = sum(f["properties"]["count"] for f in render.geojson["features"])
        assert total == len(lats)

    def test_cluster_marker_unassigned_excluded(self, hierarchy, points):
        lats, lons, values = points
        labels = np.full(len(lats), -1)
        labels[:10] = 0
        render = cluster_marker_map(lats, lons, values, "eph",
                                    Granularity.CITY, hierarchy=hierarchy,
                                    cluster_labels=labels)
        total = sum(f["properties"]["count"] for f in render.geojson["features"])
        assert total == 10

    def test_geojson_serializable(self, hierarchy, points):
        lats, lons, values = points
        render = scatter_map(lats, lons, values, "eph", hierarchy=hierarchy)
        text = json.dumps(render.geojson)
        assert "FeatureCollection" in text

    def test_canvas_projection_orientation(self, hierarchy):
        canvas = MapCanvas.for_regions(hierarchy.regions_at(Granularity.CITY))
        x_w, y_n = canvas.project(45.12, 7.60)
        x_e, y_s = canvas.project(45.02, 7.77)
        assert x_w < x_e  # east is right
        assert y_n < y_s  # north is up

    def test_canvas_degenerate_bounds(self):
        with pytest.raises(ValueError):
            MapCanvas((45.0, 7.0, 45.0, 8.0))

    def test_canvas_for_points_needs_located(self):
        with pytest.raises(ValueError):
            MapCanvas.for_points([np.nan], [np.nan])

    def test_map_save(self, hierarchy, points, tmp_path):
        lats, lons, values = points
        render = scatter_map(lats, lons, values, "eph", hierarchy=hierarchy)
        render.save_svg(tmp_path / "m.svg")
        render.save_geojson(tmp_path / "m.geojson")
        assert (tmp_path / "m.svg").exists()
        assert json.loads((tmp_path / "m.geojson").read_text())["type"] == "FeatureCollection"


class TestCharts:
    def test_histogram_chart(self):
        h = histogram(np.random.default_rng(0).normal(0, 1, 200), bins=10, attribute="eph")
        svg = histogram_chart(h)
        assert svg.count("<rect") >= 10

    def test_grouped_histogram_chart(self):
        t = Table(
            [
                Column.numeric("eph", list(np.arange(100.0))),
                Column.categorical("g", ["a"] * 50 + ["b"] * 50),
            ]
        )
        hists = grouped_histograms(t, "eph", by="g")
        svg = grouped_histogram_chart(hists, "eph")
        assert "a (n=50)" in svg
        assert "b (n=50)" in svg

    def test_grouped_histogram_empty(self):
        svg = grouped_histogram_chart({}, "eph")
        assert svg.startswith("<svg")

    def test_bar_chart(self):
        svg = bar_chart([("A", 10), ("B", 5)], "energy_class")
        assert "A: 10" in svg

    def test_boxplot_chart_marks_outliers(self):
        values = np.concatenate([np.random.default_rng(0).normal(10, 1, 200), [99.0]])
        result = boxplot_outliers(values)
        svg = boxplot_chart(result, values, "u_value")
        assert "outlier: 99" in svg

    def test_boxplot_chart_empty(self):
        values = np.array([np.nan])
        svg = boxplot_chart(boxplot_outliers(values), values, "x")
        assert svg.startswith("<svg")

    def test_correlation_chart_cells(self):
        t = Table(
            [
                Column.numeric("a", list(np.arange(50.0))),
                Column.numeric("b", list(np.arange(50.0) * 2)),
            ]
        )
        cm = correlation_matrix(t, ["a", "b"])
        svg = correlation_matrix_chart(cm)
        assert "rho(a, b) = 1.000" in svg

    def test_rules_table(self):
        rule = AssociationRule(
            (Item("u", "High"),), (Item("eph", "High"),), 0.3, 0.9, 1.4, float("inf")
        )
        html = rules_table_html([rule])
        assert "{u=High} -&gt; {eph=High}" in html or "{u=High} -> {eph=High}" in html
        assert "&infin;" in html

    def test_summary_table_both_kinds(self):
        t = Table(
            [Column.numeric("x", [1.0, 2.0]), Column.categorical("c", ["a", "a"])]
        )
        html = summary_table_html(summarize_table(t))
        assert "Median" in html
        assert "Mode" in html


class TestDashboard:
    def test_builder_assembles_panels(self):
        h = histogram(np.arange(50.0), bins=5, attribute="eph")
        builder = DashboardBuilder("Test", "subtitle")
        builder.add_histogram(h, caption="the response")
        builder.add_bar_chart([("A", 1)], "energy_class")
        dash = builder.build()
        assert len(dash.panels) == 2
        assert dash.panels_of_kind("frequency_distribution")

    def test_html_self_contained(self):
        dash = Dashboard("T", "S", [Panel("P", "c", "<svg></svg>", "map")])
        html = dash.to_html()
        assert html.startswith("<!DOCTYPE html>")
        assert "<svg></svg>" in html
        assert "http://" not in html.replace("http://www.w3.org", "")  # no external assets

    def test_save(self, tmp_path):
        dash = Dashboard("T", "S", [Panel("P", "c", "<p>x</p>")])
        path = dash.save(tmp_path / "out" / "dash.html")
        assert path.exists()
        assert "<p>x</p>" in path.read_text()

    def test_escaping(self):
        dash = Dashboard("A & B", "<subtitle>", [Panel("P<", "c&", "<p>x</p>")])
        html = dash.to_html()
        assert "A &amp; B" in html
        assert "&lt;subtitle&gt;" in html
