"""Tests for CSV round-tripping."""

import numpy as np
import pytest

from repro.dataset.io import read_csv, write_csv
from repro.dataset.table import Column, ColumnKind, Table


@pytest.fixture
def table():
    return Table(
        [
            Column.numeric("x", [1.5, None, 3.25]),
            Column.numeric("n", [1, 2, None]),
            Column.categorical("c", ["a", None, "b,with comma"]),
            Column.text("t", ['quoted "text"', "plain", None]),
        ]
    )


class TestRoundTrip:
    def test_roundtrip_with_explicit_kinds(self, table, tmp_path):
        path = tmp_path / "t.csv"
        write_csv(table, path)
        kinds = {n: table.kind(n) for n in table.column_names}
        back = read_csv(path, kinds=kinds)
        for name in table.column_names:
            assert back.column(name) == table.column(name)

    def test_roundtrip_inferred(self, table, tmp_path):
        path = tmp_path / "t.csv"
        write_csv(table, path)
        back = read_csv(path)
        assert back.kind("x") is ColumnKind.NUMERIC
        assert back.kind("c") is ColumnKind.CATEGORICAL
        assert back["x"][0] == 1.5
        assert np.isnan(back["x"][1])

    def test_integral_column_written_without_decimal(self, table, tmp_path):
        path = tmp_path / "t.csv"
        write_csv(table, path)
        text = path.read_text()
        assert ",1," in text.splitlines()[1]  # n column stays integer-looking

    def test_text_columns_forced(self, table, tmp_path):
        path = tmp_path / "t.csv"
        write_csv(table, path)
        back = read_csv(path, text_columns=("t",))
        assert back.kind("t") is ColumnKind.TEXT

    def test_comma_and_quote_preserved(self, table, tmp_path):
        path = tmp_path / "t.csv"
        write_csv(table, path)
        back = read_csv(path)
        assert back["c"][2] == "b,with comma"
        assert back["t"][0] == 'quoted "text"'

    def test_empty_file(self, tmp_path):
        path = tmp_path / "empty.csv"
        path.write_text("")
        t = read_csv(path)
        assert t.n_rows == 0
        assert t.n_columns == 0

    def test_header_only(self, tmp_path):
        path = tmp_path / "h.csv"
        path.write_text("a,b\n")
        t = read_csv(path)
        assert t.n_rows == 0
        assert t.column_names == ["a", "b"]

    def test_all_missing_column_defaults_categorical(self, tmp_path):
        path = tmp_path / "m.csv"
        path.write_text("a\n\n\n")
        t = read_csv(path)
        assert t.kind("a") is ColumnKind.CATEGORICAL
