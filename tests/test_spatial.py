"""Tests for Moran's I spatial autocorrelation."""

import numpy as np
import pytest

from repro.analytics.spatial import (
    morans_i,
    morans_i_for_regions,
    region_adjacency,
)
from repro.dataset import SyntheticConfig, generate_epc_collection
from repro.geo.regions import Granularity


def grid_weights(rows: int, cols: int) -> np.ndarray:
    """Rook adjacency on a rows x cols lattice."""
    n = rows * cols
    w = np.zeros((n, n))
    for r in range(rows):
        for c in range(cols):
            i = r * cols + c
            if c + 1 < cols:
                j = i + 1
                w[i, j] = w[j, i] = 1
            if r + 1 < rows:
                j = i + cols
                w[i, j] = w[j, i] = 1
    return w


class TestMoransI:
    def test_smooth_gradient_is_clustered(self):
        w = grid_weights(5, 5)
        values = np.arange(25.0)  # strong gradient across the lattice
        result = morans_i(values, w, n_permutations=499, seed=0)
        assert result.statistic > 0.5
        assert result.p_value < 0.05
        assert result.is_clustered

    def test_checkerboard_is_dispersed(self):
        w = grid_weights(6, 6)
        values = np.array([(r + c) % 2 for r in range(6) for c in range(6)], dtype=float)
        result = morans_i(values, w, n_permutations=199, seed=0)
        assert result.statistic < result.expected
        assert not result.is_clustered

    def test_random_values_near_expected(self):
        rng = np.random.default_rng(3)
        w = grid_weights(8, 8)
        result = morans_i(rng.normal(0, 1, 64), w, n_permutations=199, seed=1)
        assert abs(result.statistic - result.expected) < 0.25
        assert result.p_value > 0.01

    def test_constant_values_zero(self):
        w = grid_weights(3, 3)
        result = morans_i(np.full(9, 5.0), w, n_permutations=49)
        assert result.statistic == 0.0

    def test_nan_rows_dropped(self):
        w = grid_weights(3, 3)
        values = np.arange(9.0)
        values[0] = np.nan
        result = morans_i(values, w, n_permutations=49)
        assert result.n_regions == 8

    def test_validation(self):
        with pytest.raises(ValueError, match=r"\(n, n\)"):
            morans_i(np.arange(4.0), np.zeros((3, 3)))
        bad = np.eye(4)
        with pytest.raises(ValueError, match="diagonal"):
            morans_i(np.arange(4.0), bad)
        with pytest.raises(ValueError, match="at least 3"):
            morans_i(np.arange(2.0), np.zeros((2, 2)))
        with pytest.raises(ValueError, match="non-zero"):
            morans_i(np.arange(4.0), np.zeros((4, 4)))

    def test_expected_value(self):
        w = grid_weights(4, 4)
        result = morans_i(np.arange(16.0), w, n_permutations=9)
        assert result.expected == pytest.approx(-1 / 15)


class TestRegionAdjacency:
    def test_district_grid_adjacency(self):
        collection = generate_epc_collection(SyntheticConfig(n_certificates=200, seed=1))
        names, w = region_adjacency(collection.hierarchy, Granularity.DISTRICT)
        assert len(names) == 8
        assert np.array_equal(w, w.T)
        # the 4x2 district grid: corners have 3 neighbours (queen adjacency)
        degrees = w.sum(axis=1)
        assert degrees.min() == 3
        assert degrees.max() <= 5

    def test_neighbourhood_adjacency_connected(self):
        collection = generate_epc_collection(SyntheticConfig(n_certificates=200, seed=1))
        __, w = region_adjacency(collection.hierarchy, Granularity.NEIGHBOURHOOD)
        assert (w.sum(axis=1) > 0).all()  # no isolated neighbourhood


class TestEndToEnd:
    def test_eph_is_spatially_clustered(self):
        """The maps' premise: heating demand clusters in space (era mixes
        differ per district in the synthetic city, as in real Turin)."""
        collection = generate_epc_collection(SyntheticConfig(n_certificates=6000, seed=2322))
        turin = collection.table.where(
            np.array([c == "Turin" for c in collection.table["city"]])
        )
        result = morans_i_for_regions(
            turin, collection.hierarchy, Granularity.NEIGHBOURHOOD, "eph",
            n_permutations=499, seed=0,
        )
        assert result.statistic > result.expected
        assert result.is_clustered
