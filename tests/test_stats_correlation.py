"""Tests for descriptive statistics, histograms and correlation matrices."""

import numpy as np
import pytest

from repro.analytics.correlation import CorrelationMatrix, correlation_matrix, pearson
from repro.analytics.stats import (
    grouped_histograms,
    histogram,
    quantile_bins,
    summarize_categorical,
    summarize_numeric,
    summarize_table,
)
from repro.dataset.table import Column, Table


class TestPearson:
    def test_perfect_positive(self):
        x = np.arange(100.0)
        assert pearson(x, 2 * x + 3) == pytest.approx(1.0)

    def test_perfect_negative(self):
        x = np.arange(100.0)
        assert pearson(x, -x) == pytest.approx(-1.0)

    def test_independent_near_zero(self):
        rng = np.random.default_rng(0)
        assert abs(pearson(rng.normal(0, 1, 5000), rng.normal(0, 1, 5000))) < 0.05

    def test_pairwise_complete(self):
        x = np.array([1.0, 2.0, np.nan, 4.0, 5.0])
        y = np.array([1.0, 2.0, 3.0, 4.0, np.nan])
        assert pearson(x, y) == pytest.approx(1.0)

    def test_constant_is_nan(self):
        assert np.isnan(pearson(np.full(10, 1.0), np.arange(10.0)))

    def test_too_few_pairs_nan(self):
        assert np.isnan(pearson(np.array([1.0, np.nan]), np.array([np.nan, 1.0])))


class TestCorrelationMatrix:
    def make(self):
        rng = np.random.default_rng(1)
        a = rng.normal(0, 1, 500)
        b = a * 0.9 + rng.normal(0, 0.1, 500)  # strongly tied to a
        c = rng.normal(0, 1, 500)              # independent
        t = Table([Column.numeric("a", a), Column.numeric("b", b), Column.numeric("c", c)])
        return correlation_matrix(t, ["a", "b", "c"])

    def test_symmetric_unit_diagonal(self):
        cm = self.make()
        assert np.allclose(cm.matrix, cm.matrix.T, equal_nan=True)
        assert np.allclose(np.diag(cm.matrix), 1.0)

    def test_value_lookup(self):
        cm = self.make()
        assert cm.value("a", "b") == cm.value("b", "a")
        assert cm.value("a", "b") > 0.9

    def test_eligibility(self):
        cm = self.make()
        assert not cm.is_eligible()  # a-b pair is evidently correlated
        weak = correlation_matrix(
            Table(
                [
                    Column.numeric("x", np.random.default_rng(0).normal(0, 1, 500)),
                    Column.numeric("y", np.random.default_rng(1).normal(0, 1, 500)),
                ]
            ),
            ["x", "y"],
        )
        assert weak.is_eligible()

    def test_off_diagonal_count(self):
        cm = self.make()
        assert len(cm.off_diagonal()) == 3  # C(3, 2)

    def test_gray_levels_bounds(self):
        levels = self.make().gray_levels()
        assert levels.min() >= 0.0
        assert levels.max() <= 1.0

    def test_pairs_above(self):
        cm = self.make()
        pairs = cm.pairs_above(0.5)
        assert pairs[0][:2] == ("a", "b")

    def test_nan_pair_not_eligible_blocker(self):
        t = Table(
            [
                Column.numeric("x", [1.0, 2.0, 3.0]),
                Column.numeric("const", [5.0, 5.0, 5.0]),
            ]
        )
        cm = correlation_matrix(t, ["x", "const"])
        assert np.isnan(cm.value("x", "const"))
        assert cm.is_eligible()  # NaN pairs don't count as correlated


class TestNumericSummary:
    def test_paper_panel_fields(self):
        s = summarize_numeric(np.arange(1.0, 101.0), "x")
        assert s.count == 100
        assert s.mean == pytest.approx(50.5)
        assert s.median == pytest.approx(50.5)
        assert s.q1 < s.median < s.q3
        assert s.minimum == 1.0
        assert s.maximum == 100.0

    def test_nan_ignored(self):
        s = summarize_numeric(np.array([1.0, np.nan, 3.0]))
        assert s.count == 2
        assert s.mean == pytest.approx(2.0)

    def test_empty(self):
        s = summarize_numeric(np.array([]))
        assert s.count == 0
        assert np.isnan(s.mean)

    def test_single_value_std_zero(self):
        assert summarize_numeric(np.array([4.0])).std == 0.0

    def test_as_dict_keys(self):
        d = summarize_numeric(np.arange(10.0)).as_dict()
        assert set(d) == {"count", "mean", "std", "q1", "median", "q3", "min", "max"}


class TestCategoricalSummary:
    def test_mode_and_topk(self):
        s = summarize_categorical(["a", "a", "b", None, "c", "a"], "x", top_k=2)
        assert s.count == 5
        assert s.n_distinct == 3
        assert s.mode == "a"
        assert s.mode_frequency == 3
        assert len(s.top_values) == 2

    def test_empty(self):
        s = summarize_categorical([None, None])
        assert s.count == 0
        assert s.mode is None


class TestSummarizeTable:
    def test_dispatch_by_kind(self):
        t = Table(
            [Column.numeric("x", [1.0, 2.0]), Column.categorical("c", ["a", "b"])]
        )
        out = summarize_table(t)
        assert out["x"].mean == pytest.approx(1.5)
        assert out["c"].n_distinct == 2


class TestHistograms:
    def test_counts_sum_to_present(self):
        values = np.array([1.0, 2.0, np.nan, 3.0])
        h = histogram(values, bins=3)
        assert h.n == 3

    def test_densities_sum_to_one(self):
        h = histogram(np.random.default_rng(0).normal(0, 1, 100), bins=10)
        assert h.densities().sum() == pytest.approx(1.0)

    def test_empty_histogram(self):
        h = histogram(np.array([np.nan]))
        assert h.n == 0
        assert np.all(h.densities() == 0)

    def test_bin_centers_inside_edges(self):
        h = histogram(np.arange(100.0), bins=5)
        centers = h.bin_centers()
        assert np.all(centers > h.edges[0])
        assert np.all(centers < h.edges[-1])

    def test_quantile_bins_quartiles(self):
        edges = quantile_bins(np.arange(1.0, 101.0), n_bins=4)
        assert len(edges) == 5
        assert edges[0] == 1.0
        assert edges[-1] == 100.0
        assert edges[2] == pytest.approx(50.5)

    def test_quantile_bins_validation(self):
        with pytest.raises(ValueError):
            quantile_bins(np.arange(10.0), n_bins=0)

    def test_quantile_bins_empty(self):
        assert len(quantile_bins(np.array([np.nan]))) == 0

    def test_grouped_histograms_share_range(self):
        t = Table(
            [
                Column.numeric("v", [1.0, 2.0, 3.0, 10.0, 11.0, 12.0]),
                Column.categorical("g", ["a", "a", "a", "b", "b", "b"]),
            ]
        )
        hists = grouped_histograms(t, "v", by="g", bins=4)
        assert set(hists) == {"a", "b"}
        assert np.array_equal(hists["a"].edges, hists["b"].edges)
        assert hists["a"].n == 3
