"""Tests for the performance layer: executor, stage cache, parallel cleaning."""

import numpy as np
import pytest

from repro import Indice, IndiceConfig
from repro.dataset import (
    NoiseConfig,
    SyntheticConfig,
    apply_noise,
    generate_epc_collection,
)
from repro.dataset.table import Column, ColumnKind, Table
from repro.perf import (
    ParallelMap,
    StageCache,
    fingerprint_config,
    fingerprint_table,
    fingerprint_value,
)
from repro.preprocessing.address_cleaner import AddressCleaner, CleaningConfig


def _square(x):
    return x * x


def _tag_worker(x):
    return ("tagged", x)


def _raise_on_three(x):
    if x == 3:
        raise ValueError(f"bad item {x}")
    return x


_OFFSET = 0


def _set_offset(value):
    global _OFFSET
    _OFFSET = value


def _add_offset(x):
    return x + _OFFSET


@pytest.fixture(scope="module")
def small_collection():
    collection = generate_epc_collection(
        SyntheticConfig(n_certificates=600, seed=11)
    )
    noisy = apply_noise(collection, NoiseConfig(seed=12))
    collection.table = noisy.table
    return collection


def _small_config(**overrides):
    base = dict(
        kmeans_n_init=2, k_range=(2, 4), run_multivariate_outliers=False
    )
    base.update(overrides)
    return IndiceConfig(**base)


class TestParallelMap:
    def test_serial_fallback_small_input(self):
        ex = ParallelMap(n_jobs=4, min_parallel_items=100)
        assert not ex.should_parallelize(10)
        assert ex.map(_square, range(10)) == [x * x for x in range(10)]

    def test_serial_when_one_job(self):
        ex = ParallelMap(n_jobs=1, min_parallel_items=0)
        assert not ex.should_parallelize(10_000)
        assert ex.map(_square, range(5)) == [0, 1, 4, 9, 16]

    def test_parallel_preserves_order(self):
        ex = ParallelMap(n_jobs=2, min_parallel_items=1)
        assert ex.should_parallelize(50)
        assert ex.map(_square, range(50)) == [x * x for x in range(50)]

    def test_zero_jobs_resolves_to_cores(self):
        assert ParallelMap(n_jobs=0).resolve_jobs() >= 1
        assert ParallelMap(n_jobs=-1).resolve_jobs() >= 1

    def test_shard_covers_all_items_in_order(self):
        ex = ParallelMap(n_jobs=3, chunk_size=4)
        chunks = ex.shard(list(range(10)))
        assert [len(c) for c in chunks] == [4, 4, 2]
        assert [x for c in chunks for x in c] == list(range(10))

    def test_empty_input(self):
        assert ParallelMap(n_jobs=2, min_parallel_items=0).map(_square, []) == []

    def test_parallel_map_with_function_results(self):
        ex = ParallelMap(n_jobs=2, min_parallel_items=1)
        out = ex.map(_tag_worker, ["a", "b", "c"])
        assert out == [("tagged", "a"), ("tagged", "b"), ("tagged", "c")]


class TestParallelMapFailureModes:
    """A crash of the *infrastructure* is recoverable (serial fallback);
    a bug in the *mapped function* is not — it propagates unchanged."""

    def test_mapped_function_exception_propagates_parallel(self):
        ex = ParallelMap(n_jobs=2, min_parallel_items=1)
        with pytest.raises(ValueError, match="bad item 3"):
            ex.map(_raise_on_three, range(10))
        assert ex.fallbacks == 0  # a bug must never be retried serially

    def test_mapped_function_exception_propagates_serial(self):
        ex = ParallelMap(n_jobs=1)
        with pytest.raises(ValueError, match="bad item 3"):
            ex.map(_raise_on_three, range(10))

    def test_n_jobs_one_equivalent_with_initializer(self):
        serial = ParallelMap(n_jobs=1)
        parallel = ParallelMap(n_jobs=2, min_parallel_items=1)
        args = (_set_offset, (7,))
        a = serial.map(_add_offset, range(30), *args)
        b = parallel.map(_add_offset, range(30), *args)
        assert a == b == [x + 7 for x in range(30)]

    def test_fallback_reruns_initializer(self):
        from repro.faults import FaultInjector

        ex = ParallelMap(
            n_jobs=2, min_parallel_items=1,
            injector=FaultInjector("parallel.worker:crash*1"),
        )
        out = ex.map(
            _add_offset, range(20), initializer=_set_offset, initargs=(5,)
        )
        assert out == [x + 5 for x in range(20)]
        assert ex.fallbacks == 1

    def test_empty_input_parallel_with_initializer(self):
        ex = ParallelMap(n_jobs=2, min_parallel_items=0)
        assert ex.map(_add_offset, [], initializer=_set_offset, initargs=(3,)) == []

    def test_empty_input_never_spawns_pool(self):
        # an empty map must not pay process start-up nor touch fault sites
        from repro.faults import FaultInjector

        injector = FaultInjector("parallel.worker:crash")
        ex = ParallelMap(n_jobs=4, min_parallel_items=0, injector=injector)
        assert ex.map(_square, []) == []
        assert injector.events == []


class TestFingerprints:
    def _table(self, v="x"):
        return Table(
            [
                Column.numeric("n", [1.0, 2.0, None]),
                Column.text("t", ["a", v, None]),
                Column.categorical("c", ["p", "q", "p"]),
            ]
        )

    def test_identical_tables_same_fingerprint(self):
        assert fingerprint_table(self._table()) == fingerprint_table(self._table())

    def test_cell_change_changes_fingerprint(self):
        assert fingerprint_table(self._table("x")) != fingerprint_table(
            self._table("y")
        )

    def test_missing_vs_empty_string_distinct(self):
        a = Table([Column.text("t", [None])])
        b = Table([Column.text("t", [""])])
        assert fingerprint_table(a) != fingerprint_table(b)

    def test_numeric_nan_stable(self):
        a = Table([Column.numeric("n", [None, 1.5])])
        b = Table([Column.numeric("n", [None, 1.5])])
        assert fingerprint_table(a) == fingerprint_table(b)

    def test_config_fingerprint_ignores_perf_fields(self):
        a = IndiceConfig(n_jobs=1, stage_cache=True)
        b = IndiceConfig(n_jobs=8, stage_cache=False, cache_dir="/tmp/x")
        assert fingerprint_config(a) == fingerprint_config(b)

    def test_config_fingerprint_sees_analytic_fields(self):
        assert fingerprint_config(IndiceConfig()) != fingerprint_config(
            IndiceConfig(k_range=(2, 5))
        )
        base = IndiceConfig()
        phi = IndiceConfig(cleaning=CleaningConfig(phi=0.9))
        assert fingerprint_config(base) != fingerprint_config(phi)

    def test_fingerprint_value_canonicalizes_dict_order(self):
        assert fingerprint_value({"a": 1, "b": 2}) == fingerprint_value(
            {"b": 2, "a": 1}
        )


class TestStageCache:
    def test_memory_roundtrip(self):
        cache = StageCache()
        key = StageCache.key("stage", "abc")
        assert cache.get(key) == (False, None)
        cache.put(key, {"v": 1})
        assert cache.get(key) == (True, {"v": 1})
        assert cache.hits == 1 and cache.misses == 1

    def test_distinct_fingerprints_distinct_keys(self):
        assert StageCache.key("s", "a", "b") != StageCache.key("s", "a", "c")
        assert StageCache.key("s1", "a") != StageCache.key("s2", "a")

    def test_disk_persistence_across_instances(self, tmp_path):
        key = StageCache.key("stage", "fp")
        first = StageCache(tmp_path)
        first.put(key, [1, 2, 3])
        second = StageCache(tmp_path)  # fresh memory, same directory
        assert second.get(key) == (True, [1, 2, 3])

    def test_clear_keeps_disk(self, tmp_path):
        cache = StageCache(tmp_path)
        key = StageCache.key("stage", "fp")
        cache.put(key, "value")
        cache.clear()
        assert cache.get(key) == (True, "value")  # reloaded from disk


class TestEngineStageCache:
    def test_preprocess_hit_on_identical_inputs(self, small_collection):
        engine = Indice(small_collection, _small_config())
        first = engine.preprocess()
        second = engine.preprocess()
        assert second is first  # the memoized outcome object itself
        assert engine.cache.hits == 1
        cached_steps = engine.log.for_stage("preprocessing")
        assert any(s.action == "stage_cache" for s in cached_steps)

    def test_shared_cache_across_engines(self, small_collection):
        cache = StageCache()
        a = Indice(small_collection, _small_config(), cache=cache)
        b = Indice(small_collection, _small_config(), cache=cache)
        outcome = a.preprocess()
        assert b.preprocess() is outcome

    def test_miss_after_config_field_change(self, small_collection):
        cache = StageCache()
        a = Indice(small_collection, _small_config(), cache=cache)
        a.preprocess()
        changed = _small_config(cleaning=CleaningConfig(phi=0.9))
        b = Indice(small_collection, changed, cache=cache)
        b.preprocess()
        assert cache.misses == 2  # second engine could not reuse the entry

    def test_miss_after_cell_change(self, small_collection):
        cache = StageCache()
        a = Indice(small_collection, _small_config(), cache=cache)
        a.preprocess()

        table = small_collection.table
        values = np.array(table["heated_surface"], dtype=np.float64)
        values[0] = (values[0] if not np.isnan(values[0]) else 0.0) + 1.0
        mutated = table.with_column(
            Column("heated_surface", ColumnKind.NUMERIC, values)
        ).select(table.column_names)
        b = Indice(small_collection, _small_config(), cache=cache)
        b.preprocess(mutated)
        assert cache.misses == 2

    def test_analyze_hit_and_equivalence(self, small_collection):
        engine = Indice(small_collection, _small_config())
        engine.preprocess()
        first = engine.analyze()
        second = engine.analyze()
        assert second is first
        assert any(
            s.action == "stage_cache" for s in engine.log.for_stage("analytics")
        )

    def test_cache_disabled_recomputes(self, small_collection):
        engine = Indice(small_collection, _small_config(stage_cache=False))
        assert engine.cache is None
        first = engine.preprocess()
        second = engine.preprocess()
        assert second is not first
        assert second.table.column_names == first.table.column_names

    def test_cached_outcome_identical_to_recomputed(self, small_collection):
        cached = Indice(small_collection, _small_config())
        uncached = Indice(small_collection, _small_config(stage_cache=False))
        a = cached.preprocess()
        a_again = cached.preprocess()  # hit
        b = uncached.preprocess()
        for name in ("address", "zip_code"):
            assert list(a_again.table[name]) == list(b.table[name])
        assert a_again.n_rows_out == b.n_rows_out
        assert a.table.column_names == b.table.column_names

    def test_timing_counters_recorded(self, small_collection):
        engine = Indice(small_collection, _small_config())
        engine.preprocess()
        engine.analyze()
        timed = [s for s in engine.log.steps if s.elapsed_s is not None]
        assert {"geospatial_cleaning", "stage_complete"} <= {
            s.action for s in timed
        }
        assert all(s.elapsed_s >= 0 for s in timed)
        assert any(s.rows_per_s and s.rows_per_s > 0 for s in timed)
        assert engine.log.total_elapsed("preprocessing") > 0


class TestParallelCleaning:
    def test_parallel_identical_to_serial(self, small_collection):
        mask = np.array([c == "Turin" for c in small_collection.table["city"]])
        turin = small_collection.table.where(mask)

        serial = AddressCleaner(
            small_collection.street_map, CleaningConfig(use_geocoder=False)
        )
        parallel = AddressCleaner(
            small_collection.street_map,
            CleaningConfig(use_geocoder=False),
            executor=ParallelMap(n_jobs=2, min_parallel_items=1),
        )
        a = serial.clean_table(turin)
        b = parallel.clean_table(turin)

        for name in ("address", "house_number", "zip_code"):
            assert list(a.table[name]) == list(b.table[name])
        for name in ("latitude", "longitude"):
            np.testing.assert_array_equal(a.table[name], b.table[name])
        assert len(a.audits) == len(b.audits)
        for left, right in zip(a.audits, b.audits):
            assert left.status is right.status
            assert left.similarity == right.similarity
            assert left.resolved_street == right.resolved_street
            assert left.repaired_fields == right.repaired_fields

    def test_engine_n_jobs_matches_serial(self, small_collection):
        serial = Indice(small_collection, _small_config(stage_cache=False))
        parallel_cfg = _small_config(stage_cache=False, n_jobs=2)
        parallel = Indice(small_collection, parallel_cfg)
        parallel.executor.min_parallel_items = 1
        a = serial.preprocess()
        b = parallel.preprocess()
        assert a.n_rows_out == b.n_rows_out
        for name in ("address", "zip_code", "latitude"):
            if a.table.kind(name) is ColumnKind.NUMERIC:
                np.testing.assert_array_equal(a.table[name], b.table[name])
            else:
                assert list(a.table[name]) == list(b.table[name])
