"""Tests for the dashboard HTTP server (routing is pure, no sockets)."""

import pytest

from repro import Indice, IndiceConfig, Stakeholder
from repro.dataset import SyntheticConfig, generate_epc_collection
from repro.serve import DashboardServer


@pytest.fixture(scope="module")
def server():
    collection = generate_epc_collection(SyntheticConfig(n_certificates=1000, seed=77))
    engine = Indice(
        collection,
        IndiceConfig(kmeans_n_init=2, k_range=(2, 5), run_multivariate_outliers=False),
    )
    engine.preprocess()
    engine.analyze()
    return DashboardServer(engine)


class TestRouting:
    def test_index_links_all_stakeholders(self, server):
        status, content_type, body = server.route("/")
        assert status == 200
        assert "text/html" in content_type
        for s in Stakeholder:
            assert f"/dashboard/{s.value}" in body

    def test_dashboard_route(self, server):
        status, __, body = server.route("/dashboard/citizen")
        assert status == 200
        assert body.startswith("<!DOCTYPE html>")
        assert "showTab" in body  # the navigable dashboard

    def test_trailing_slash_normalized(self, server):
        status, __, ___ = server.route("/dashboard/citizen/")
        assert status == 200

    def test_unknown_stakeholder_404(self, server):
        status, __, body = server.route("/dashboard/alien")
        assert status == 404
        assert "alien" in body

    def test_unknown_path_404(self, server):
        status, __, ___ = server.route("/nope")
        assert status == 404

    def test_report_route(self, server):
        status, __, body = server.route("/report")
        assert status == 200
        assert "INDICE analysis report" in body

    def test_dashboard_cached(self, server):
        first = server.route("/dashboard/energy_scientist")[2]
        second = server.route("/dashboard/energy_scientist")[2]
        assert first is second  # same cached object, not re-rendered

    def test_request_before_analysis_is_503_page(self):
        # a warming-up deployment answers "not ready", it does not crash
        collection = generate_epc_collection(SyntheticConfig(n_certificates=100, seed=1))
        server = DashboardServer(Indice(collection))
        for path in ("/", "/report", "/dashboard/citizen"):
            status, content_type, body = server.route(path)
            assert status == 503
            assert "text/html" in content_type
            assert body.startswith("<!DOCTYPE html>")
            assert "not ready" in body.lower()
            assert "Traceback" not in body


class TestErrorPages:
    """Every failure mode returns a well-formed page, never a traceback."""

    def test_unknown_stakeholder_is_html_error_page(self, server):
        status, content_type, body = server.route("/dashboard/alien")
        assert status == 404
        assert "text/html" in content_type
        assert body.startswith("<!DOCTYPE html>")
        assert "alien" in body

    @pytest.mark.parametrize(
        "path",
        [
            "/../etc/passwd",
            "/dashboard/../secret",
            "relative/path",
            "/dash\\board",
            "/dashboard/<script>",
            "/report\x00",
        ],
    )
    def test_malformed_path_is_400_page(self, server, path):
        status, content_type, body = server.route(path)
        assert status == 400
        assert "text/html" in content_type
        assert body.startswith("<!DOCTYPE html>")
        assert "Traceback" not in body

    def test_internal_error_is_500_page_without_traceback(self, server, monkeypatch):
        def boom(*args, **kwargs):
            raise RuntimeError("rendering exploded")

        monkeypatch.setattr(server._engine, "build_navigable_dashboard", boom)
        server._cache.pop("dash:citizen", None)
        status, content_type, body = server.route("/dashboard/citizen")
        assert status == 500
        assert "text/html" in content_type
        assert body.startswith("<!DOCTYPE html>")
        assert "Traceback" not in body and "rendering exploded" not in body
        assert "RuntimeError" in body  # the error *class* is surfaced

    def test_error_page_escapes_markup(self, server):
        # hostile names render inert: route rejects raw <>, and the
        # escaped-name page never reflects raw markup back
        status, __, body = server.route("/dashboard/%3Cimg%20src=x%3E")
        assert status == 404
        assert "<img" not in body


class TestEndToEndSocket:
    def test_real_http_roundtrip(self, server):
        """One real request through http.server to cover the socket layer."""
        import threading
        import urllib.request
        from http.server import BaseHTTPRequestHandler, HTTPServer

        class Handler(BaseHTTPRequestHandler):
            def do_GET(self):
                status, content_type, body = server.route(self.path)
                payload = body.encode("utf-8")
                self.send_response(status)
                self.send_header("Content-Type", content_type)
                self.send_header("Content-Length", str(len(payload)))
                self.end_headers()
                self.wfile.write(payload)

            def log_message(self, *args):
                pass

        httpd = HTTPServer(("127.0.0.1", 0), Handler)
        port = httpd.server_address[1]
        thread = threading.Thread(target=httpd.serve_forever, daemon=True)
        thread.start()
        try:
            with urllib.request.urlopen(f"http://127.0.0.1:{port}/") as response:
                assert response.status == 200
                assert b"INDICE" in response.read()
        finally:
            httpd.shutdown()
