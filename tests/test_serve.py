"""Tests for the dashboard HTTP server (routing is pure, no sockets)."""

import pytest

from repro import Indice, IndiceConfig, Stakeholder
from repro.dataset import SyntheticConfig, generate_epc_collection
from repro.serve import DashboardServer, write_payload


@pytest.fixture(scope="module")
def server():
    collection = generate_epc_collection(SyntheticConfig(n_certificates=1000, seed=77))
    engine = Indice(
        collection,
        IndiceConfig(kmeans_n_init=2, k_range=(2, 5), run_multivariate_outliers=False),
    )
    engine.preprocess()
    engine.analyze()
    return DashboardServer(engine)


class TestRouting:
    def test_index_links_all_stakeholders(self, server):
        status, content_type, body = server.route("/")
        assert status == 200
        assert "text/html" in content_type
        for s in Stakeholder:
            assert f"/dashboard/{s.value}" in body

    def test_dashboard_route(self, server):
        status, __, body = server.route("/dashboard/citizen")
        assert status == 200
        assert body.startswith("<!DOCTYPE html>")
        assert "showTab" in body  # the navigable dashboard

    def test_trailing_slash_normalized(self, server):
        status, __, ___ = server.route("/dashboard/citizen/")
        assert status == 200

    def test_unknown_stakeholder_404(self, server):
        status, __, body = server.route("/dashboard/alien")
        assert status == 404
        assert "alien" in body

    def test_unknown_path_404(self, server):
        status, __, ___ = server.route("/nope")
        assert status == 404

    def test_report_route(self, server):
        status, __, body = server.route("/report")
        assert status == 200
        assert "INDICE analysis report" in body

    def test_dashboard_cached(self, server):
        first = server.route("/dashboard/energy_scientist")[2]
        second = server.route("/dashboard/energy_scientist")[2]
        assert first is second  # same cached object, not re-rendered

    def test_request_before_analysis_is_503_page(self):
        # a warming-up deployment answers "not ready", it does not crash
        collection = generate_epc_collection(SyntheticConfig(n_certificates=100, seed=1))
        server = DashboardServer(Indice(collection))
        for path in ("/", "/report", "/dashboard/citizen"):
            status, content_type, body = server.route(path)
            assert status == 503
            assert "text/html" in content_type
            assert body.startswith("<!DOCTYPE html>")
            assert "not ready" in body.lower()
            assert "Traceback" not in body


class TestErrorPages:
    """Every failure mode returns a well-formed page, never a traceback."""

    def test_unknown_stakeholder_is_html_error_page(self, server):
        status, content_type, body = server.route("/dashboard/alien")
        assert status == 404
        assert "text/html" in content_type
        assert body.startswith("<!DOCTYPE html>")
        assert "alien" in body

    @pytest.mark.parametrize(
        "path",
        [
            "/../etc/passwd",
            "/dashboard/../secret",
            "relative/path",
            "/dash\\board",
            "/dashboard/<script>",
            "/report\x00",
        ],
    )
    def test_malformed_path_is_400_page(self, server, path):
        status, content_type, body = server.route(path)
        assert status == 400
        assert "text/html" in content_type
        assert body.startswith("<!DOCTYPE html>")
        assert "Traceback" not in body

    def test_internal_error_is_500_page_without_traceback(self, server, monkeypatch):
        def boom(*args, **kwargs):
            raise RuntimeError("rendering exploded")

        monkeypatch.setattr(server._engine, "build_navigable_dashboard", boom)
        server._cache.pop("dash:citizen", None)
        status, content_type, body = server.route("/dashboard/citizen")
        assert status == 500
        assert "text/html" in content_type
        assert body.startswith("<!DOCTYPE html>")
        assert "Traceback" not in body and "rendering exploded" not in body
        assert "RuntimeError" in body  # the error *class* is surfaced

    def test_error_page_escapes_markup(self, server):
        # hostile names render inert: route rejects raw <>, and the
        # escaped-name page never reflects raw markup back
        status, __, body = server.route("/dashboard/%3Cimg%20src=x%3E")
        assert status == 404
        assert "<img" not in body


class TestHostilePathMatrix:
    """The one path policy, pinned case by case.

    Queries and fragments never route; traversal and control characters
    are rejected raw *or* percent-encoded; everything else percent-encoded
    stays literal (there is no filesystem behind the routes).
    """

    MATRIX = [
        # query strings and fragments are stripped before routing
        ("/dashboard/citizen?x=1", 200),
        ("/report?format=html&verbose=1", 200),
        ("/?utm_source=newsletter", 200),
        ("/report#section-2", 200),
        # traversal: raw, percent-encoded, mixed case, mixed encoding
        ("/..", 400),
        ("/%2e%2e/", 400),
        ("/%2E%2E/secret", 400),
        ("/%2e%2e%2fsecret", 400),
        ("/dashboard/..%2fsecret", 400),
        ("/dashboard/%2e%2e", 400),
        # control characters, raw and encoded
        ("/dashboard/citizen%00", 400),
        ("/report%0d%0aSet-Cookie:x", 400),
        # slashes normalize but never collapse into other routes
        ("//", 200),
        ("/dashboard/citizen//", 200),
        ("/dashboard//citizen", 404),
        ("/dashboard/citizen/extra", 404),
        # benign escapes stay literal: no such stakeholder, plain 404
        ("/dashboard/citi%7Azen", 404),
    ]

    @pytest.mark.parametrize("path,expected", MATRIX, ids=[p for p, __ in MATRIX])
    def test_status(self, server, path, expected):
        status, content_type, body = server.route(path)
        assert status == expected
        assert "text/html" in content_type
        assert "Traceback" not in body


class TestEndToEndSocket:
    def test_real_http_roundtrip(self, server):
        """One real request through http.server to cover the socket layer."""
        import threading
        import urllib.request
        from http.server import BaseHTTPRequestHandler, HTTPServer

        class Handler(BaseHTTPRequestHandler):
            def do_GET(self):
                status, content_type, body = server.route(self.path)
                payload = body.encode("utf-8")
                self.send_response(status)
                self.send_header("Content-Type", content_type)
                self.send_header("Content-Length", str(len(payload)))
                self.end_headers()
                self.wfile.write(payload)

            def log_message(self, *args):
                pass

        httpd = HTTPServer(("127.0.0.1", 0), Handler)
        port = httpd.server_address[1]
        thread = threading.Thread(target=httpd.serve_forever, daemon=True)
        thread.start()
        try:
            with urllib.request.urlopen(f"http://127.0.0.1:{port}/") as response:
                assert response.status == 200
                assert b"INDICE" in response.read()
        finally:
            httpd.shutdown()


@pytest.fixture()
def live_server(server):
    """The real handler (``DashboardServer.handler_class``) on a socket."""
    import threading
    from http.server import HTTPServer

    handler = server.handler_class()
    handler.log_message = lambda *args, **kwargs: None
    httpd = HTTPServer(("127.0.0.1", 0), handler)
    thread = threading.Thread(target=httpd.serve_forever, daemon=True)
    thread.start()
    try:
        yield httpd.server_address[1]
    finally:
        httpd.shutdown()
        httpd.server_close()
        thread.join(timeout=5.0)


class TestSocketRegressions:
    """HEAD support and client-disconnect tolerance of the real handler."""

    @staticmethod
    def _request(port, method, path):
        import http.client

        conn = http.client.HTTPConnection("127.0.0.1", port, timeout=10)
        try:
            conn.request(method, path)
            response = conn.getresponse()
            return response.status, dict(response.getheaders()), response.read()
        finally:
            conn.close()

    def test_head_matches_get_without_body(self, live_server):
        get_status, get_headers, get_body = self._request(
            live_server, "GET", "/report"
        )
        head_status, head_headers, head_body = self._request(
            live_server, "HEAD", "/report"
        )
        assert get_status == head_status == 200
        assert head_body == b""  # HEAD carries headers only
        # ...but advertises the same length the GET actually delivered
        assert head_headers["Content-Length"] == str(len(get_body))
        assert head_headers["Content-Type"] == get_headers["Content-Type"]

    def test_head_error_page_has_no_body(self, live_server):
        status, headers, body = self._request(live_server, "HEAD", "/nope")
        assert status == 404
        assert body == b""
        assert int(headers["Content-Length"]) > 0

    def test_abrupt_disconnect_does_not_wedge_server(self, live_server):
        # a client that sends a request and slams the connection shut must
        # not take the handler down: the next request is served normally
        import socket

        for __ in range(3):
            client = socket.create_connection(("127.0.0.1", live_server), timeout=5)
            client.sendall(b"GET /dashboard/citizen HTTP/1.1\r\n"
                           b"Host: localhost\r\n\r\n")
            client.close()  # gone before the (large) body is written
        status, __, body = self._request(live_server, "GET", "/")
        assert status == 200
        assert b"INDICE" in body


class TestWritePayload:
    """The disconnect-absorbing socket write used by every handler."""

    def test_normal_write_succeeds(self):
        import io

        stream = io.BytesIO()
        assert write_payload(stream, b"payload") is True
        assert stream.getvalue() == b"payload"

    @pytest.mark.parametrize("exc", [BrokenPipeError, ConnectionResetError])
    def test_client_disconnect_absorbed(self, exc):
        class DeadSocket:
            def write(self, payload):
                raise exc("client went away")

        assert write_payload(DeadSocket(), b"payload") is False

    def test_other_errors_propagate(self):
        class BadStream:
            def write(self, payload):
                raise OSError("disk full")

        with pytest.raises(OSError):
            write_payload(BadStream(), b"payload")
