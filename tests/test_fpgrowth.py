"""Tests for FP-Growth, including exact equivalence with Apriori."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analytics.apriori import Item, ItemsetMiner, transactions_from_table
from repro.analytics.fpgrowth import FpGrowthMiner, FpTree
from repro.analytics.rules import RuleConstraints, generate_rules
from repro.dataset.table import Column, Table


def item(a, v):
    return Item(a, v)


def simple_transactions():
    """The classic textbook example with known frequent itemsets."""
    rows = [
        ["a", "b"],
        ["b", "c", "d"],
        ["a", "c", "d", "e"],
        ["a", "d", "e"],
        ["a", "b", "c"],
    ]
    return [[item("x" + v, v) for v in row] for row in rows]


class TestFpTree:
    def test_shared_prefixes_compress(self):
        order = {item("x", "a"): 0, item("x2", "b"): 1}
        tree = FpTree(order)
        tree.insert([item("x", "a"), item("x2", "b")])
        tree.insert([item("x", "a")])
        # 'a' node is shared: count 2, single child 'b' with count 1
        a_node = tree.root.children[item("x", "a")]
        assert a_node.count == 2
        assert a_node.children[item("x2", "b")].count == 1

    def test_header_chain_counts(self):
        order = {item("x", "a"): 0, item("y", "b"): 1}
        tree = FpTree(order)
        tree.insert([item("x", "a")])
        tree.insert([item("y", "b")])
        tree.insert([item("x", "a"), item("y", "b")])
        assert tree.item_count(item("x", "a")) == 2
        assert tree.item_count(item("y", "b")) == 2

    def test_prefix_paths(self):
        order = {item("x", "a"): 0, item("y", "b"): 1}
        tree = FpTree(order)
        tree.insert([item("x", "a"), item("y", "b")], count=3)
        paths = tree.prefix_paths(item("y", "b"))
        assert paths == [([item("x", "a")], 3)]

    def test_empty(self):
        assert FpTree({}).is_empty()


class TestFpGrowthMiner:
    def test_known_singletons(self):
        tx = simple_transactions()
        itemsets = FpGrowthMiner(min_support=0.4).mine(tx)
        assert itemsets.support((item("xa", "a"),)) == pytest.approx(0.8)
        assert itemsets.support((item("xd", "d"),)) == pytest.approx(0.6)

    def test_validation(self):
        with pytest.raises(ValueError):
            FpGrowthMiner(min_support=0.0)
        with pytest.raises(ValueError):
            FpGrowthMiner(max_length=0)

    def test_empty_transactions(self):
        assert len(FpGrowthMiner().mine([])) == 0

    def test_max_length_respected(self):
        tx = simple_transactions()
        itemsets = FpGrowthMiner(min_support=0.2, max_length=2).mine(tx)
        assert all(len(s) <= 2 for s in itemsets.supports)

    def test_matches_apriori_on_example(self):
        tx = simple_transactions()
        apriori = ItemsetMiner(min_support=0.3).mine(tx)
        fp = FpGrowthMiner(min_support=0.3).mine(tx)
        assert fp.supports == pytest.approx(apriori.supports)

    @given(st.integers(0, 10_000), st.sampled_from([0.05, 0.1, 0.2, 0.4]))
    @settings(max_examples=30, deadline=None)
    def test_equivalence_with_apriori(self, seed, min_support):
        """FP-Growth and Apriori must return EXACTLY the same itemsets
        with the same supports — they implement the same definition."""
        rng = np.random.default_rng(seed)
        n = int(rng.integers(20, 120))
        table = Table(
            [
                Column.categorical("a", rng.choice(["x", "y"], n)),
                Column.categorical("b", rng.choice(["p", "q", "r"], n)),
                Column.categorical("c", rng.choice(["0", "1"], n)),
                Column.categorical("d", rng.choice(["m", "n"], n)),
            ]
        )
        tx = transactions_from_table(table, ["a", "b", "c", "d"])
        apriori = ItemsetMiner(min_support=min_support, max_length=4).mine(tx)
        fp = FpGrowthMiner(min_support=min_support, max_length=4).mine(tx)
        assert set(fp.supports) == set(apriori.supports)
        for itemset, support in apriori.supports.items():
            assert fp.supports[itemset] == pytest.approx(support)

    def test_rules_work_on_fpgrowth_output(self):
        tx = simple_transactions()
        itemsets = FpGrowthMiner(min_support=0.3).mine(tx)
        rules = generate_rules(
            itemsets,
            RuleConstraints(min_support=0.3, min_confidence=0.0,
                            min_lift=0.0, min_conviction=0.0),
        )
        assert rules  # downstream rule generation is miner-agnostic
