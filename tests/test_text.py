"""Tests for the Levenshtein and address-normalization substrate."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.text.levenshtein import (
    GazetteerIndex,
    best_match,
    distance,
    distance_within,
    similarity,
    similarity_at_least,
)
from repro.text.normalize import (
    canonical_house_number,
    expand_abbreviations,
    normalize_address,
    split_house_number,
    strip_accents,
)


class TestDistance:
    @pytest.mark.parametrize(
        "a,b,expected",
        [
            ("", "", 0),
            ("a", "", 1),
            ("", "abc", 3),
            ("kitten", "sitting", 3),
            ("flaw", "lawn", 2),
            ("via roma", "via roma", 0),
            ("corso duca", "corso duce", 1),
        ],
    )
    def test_known_values(self, a, b, expected):
        assert distance(a, b) == expected

    def test_symmetry_examples(self):
        assert distance("abcde", "xq") == distance("xq", "abcde")

    @given(st.text(max_size=25), st.text(max_size=25))
    @settings(max_examples=150, deadline=None)
    def test_symmetry(self, a, b):
        assert distance(a, b) == distance(b, a)

    @given(st.text(max_size=20), st.text(max_size=20), st.text(max_size=20))
    @settings(max_examples=100, deadline=None)
    def test_triangle_inequality(self, a, b, c):
        assert distance(a, c) <= distance(a, b) + distance(b, c)

    @given(st.text(max_size=25))
    @settings(max_examples=60, deadline=None)
    def test_identity(self, a):
        assert distance(a, a) == 0

    @given(st.text(max_size=25), st.text(max_size=25))
    @settings(max_examples=100, deadline=None)
    def test_length_difference_lower_bound(self, a, b):
        assert distance(a, b) >= abs(len(a) - len(b))


class TestDistanceWithin:
    @given(st.text(max_size=20), st.text(max_size=20), st.integers(0, 25))
    @settings(max_examples=150, deadline=None)
    def test_agrees_with_full_distance(self, a, b, budget):
        d = distance(a, b)
        within = distance_within(a, b, budget)
        if d <= budget:
            assert within == d
        else:
            assert within is None

    def test_negative_budget(self):
        assert distance_within("a", "a", -1) is None

    def test_empty_strings(self):
        assert distance_within("", "abc", 3) == 3
        assert distance_within("", "abc", 2) is None

    @given(
        st.text(alphabet="ab", min_size=8, max_size=30),
        st.text(alphabet="ab", min_size=8, max_size=30),
        st.integers(0, 4),
    )
    @settings(max_examples=200, deadline=None)
    def test_banded_early_abort_path(self, a, b, budget):
        """Small alphabet + long strings + tiny budgets exercise the
        mid-DP abort (some row minimum exceeds the budget) heavily."""
        d = distance(a, b)
        within = distance_within(a, b, budget)
        if within is not None:
            assert within == d
            assert within <= budget
        else:
            assert d > budget

    @given(st.text(max_size=15), st.text(max_size=15))
    @settings(max_examples=100, deadline=None)
    def test_none_only_when_budget_exceeded(self, a, b):
        """For every budget, None appears iff the true distance exceeds it."""
        d = distance(a, b)
        for budget in (d - 1, d, d + 1):
            within = distance_within(a, b, budget)
            if budget < d:
                assert within is None
            else:
                assert within == d


class TestSimilarity:
    def test_equal_is_one(self):
        assert similarity("via po", "via po") == 1.0

    def test_disjoint_is_zero(self):
        assert similarity("abc", "xyz") == 0.0

    def test_empty_pair(self):
        assert similarity("", "") == 1.0

    @given(st.text(max_size=25), st.text(max_size=25))
    @settings(max_examples=150, deadline=None)
    def test_bounds(self, a, b):
        s = similarity(a, b)
        assert 0.0 <= s <= 1.0

    @given(st.text(min_size=1, max_size=25))
    @settings(max_examples=60, deadline=None)
    def test_one_edit_similarity(self, a):
        edited = a + "x"
        expected = 1.0 - 1.0 / len(edited)
        assert abs(similarity(a, edited) - expected) < 1e-12

    @given(st.text(max_size=20), st.text(max_size=20), st.floats(0.0, 1.0))
    @settings(max_examples=150, deadline=None)
    def test_similarity_at_least_consistent(self, a, b, phi):
        s = similarity(a, b)
        shortcut = similarity_at_least(a, b, phi)
        if s >= phi:
            assert shortcut == pytest.approx(s)
        else:
            assert shortcut is None


class TestBestMatch:
    def test_picks_closest(self):
        cands = ["corso francia", "via roma", "via rometta"]
        idx, sim = best_match("via roma", cands)
        assert idx == 1
        assert sim == 1.0

    def test_threshold_filters(self):
        assert best_match("zzz", ["via roma"], phi=0.8) is None

    def test_tie_keeps_first(self):
        idx, _ = best_match("ab", ["ax", "bx"], phi=0.0)
        assert idx == 0

    def test_empty_candidates(self):
        assert best_match("via roma", []) is None

    def test_typo_still_matches(self):
        cands = ["corso duca degli abruzzi", "via nizza"]
        idx, sim = best_match("corso duca degli abruzi", cands, phi=0.8)
        assert idx == 0
        assert sim > 0.9


_STREET_WORDS = st.sampled_from(
    ["via", "corso", "roma", "nizza", "francia", "duca", "po", "santa", "rita"]
)
_STREETS = st.lists(
    st.lists(_STREET_WORDS, min_size=1, max_size=3).map(" ".join),
    min_size=0,
    max_size=12,
)
_QUERIES = st.one_of(
    st.lists(_STREET_WORDS, min_size=1, max_size=3).map(" ".join),
    st.text(alphabet="abcorsvia ", max_size=20),
)


class TestGazetteerIndex:
    @given(_STREETS, _QUERIES, st.sampled_from([0.0, 0.5, 0.8, 0.9, 1.0]))
    @settings(max_examples=300, deadline=None)
    def test_equivalent_to_linear_scan(self, streets, query, phi):
        """The indexed lookup is observationally identical to best_match:
        same index, same similarity, same tie-breaks, same None."""
        index = GazetteerIndex(streets)
        assert index.best_match(query, phi) == best_match(query, streets, phi)

    @given(_STREETS, _QUERIES, st.sampled_from([0.0, 0.8]))
    @settings(max_examples=100, deadline=None)
    def test_memo_is_transparent(self, streets, query, phi):
        index = GazetteerIndex(streets)
        first = index.best_match(query, phi)
        assert index.best_match(query, phi) == first  # served from the memo

    def test_exact_match_lowest_index_wins(self):
        streets = ["via roma", "via po", "via roma"]
        assert GazetteerIndex(streets).best_match("via roma", 0.8) == (0, 1.0)

    def test_phi_one_rejects_near_misses(self):
        index = GazetteerIndex(["via roma"])
        assert index.best_match("via rome", 1.0) is None
        assert index.best_match("via roma", 1.0) == (0, 1.0)

    def test_empty_gazetteer(self):
        assert GazetteerIndex([]).best_match("via roma", 0.8) is None

    def test_out_of_alphabet_query_chars(self):
        # "z"/"9" never occur in the candidates: the unknown-char count
        # feeds the bag bound but must not break correctness
        streets = ["via roma", "corso francia"]
        index = GazetteerIndex(streets)
        for query in ("via zzz9", "via roma9"):
            assert index.best_match(query, 0.5) == best_match(query, streets, 0.5)

    def test_len(self):
        assert len(GazetteerIndex(["a", "b"])) == 2


class TestNormalize:
    def test_strip_accents(self):
        assert strip_accents("così è là") == "cosi e la"

    def test_expand_abbreviations(self):
        assert expand_abbreviations("c.so duca") == "corso duca"

    @pytest.mark.parametrize(
        "raw,expected",
        [
            ("C.SO Duca degli Abruzzi", "corso duca degli abruzzi"),
            ("  VIA   ROMA ", "via roma"),
            ("P.za Castello", "piazza castello"),
            ("Via S. Francesco d'Assisi", "via san francesco d assisi"),
            (None, ""),
            ("", ""),
        ],
    )
    def test_normalize_address(self, raw, expected):
        assert normalize_address(raw) == expected

    def test_normalization_idempotent(self):
        once = normalize_address("C.so Vittorio Emanuele II, 12")
        assert normalize_address(once) == once

    @pytest.mark.parametrize(
        "raw,street,number",
        [
            ("via roma 12", "via roma", "12"),
            ("via roma, 12 bis", "via roma", "12bis"),
            ("via roma n. 7", "via roma", "7"),
            ("via roma", "via roma", None),
            ("corso francia 140a", "corso francia", "140a"),
        ],
    )
    def test_split_house_number(self, raw, street, number):
        assert split_house_number(raw) == (street, number)

    @pytest.mark.parametrize(
        "raw,expected",
        [
            ("12", "12"),
            ("12 BIS", "12bis"),
            ("7b", "7b"),
            ("  9 ", "9"),
            ("", None),
            (None, None),
            ("12/A", "12"),
        ],
    )
    def test_canonical_house_number(self, raw, expected):
        assert canonical_house_number(raw) == expected
