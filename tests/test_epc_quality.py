"""Tests for the EpcRecord view, schema validation and quality profiling."""

import numpy as np
import pytest

from repro.dataset import (
    NoiseConfig,
    SyntheticConfig,
    apply_noise,
    epc_schema,
    generate_epc_collection,
    records,
    validate_table,
)
from repro.dataset.epc import EpcRecord
from repro.dataset.table import Column, Table
from repro.preprocessing.quality import assess_quality


@pytest.fixture(scope="module")
def collection():
    return generate_epc_collection(SyntheticConfig(n_certificates=800, seed=12))


@pytest.fixture(scope="module")
def noisy(collection):
    return apply_noise(collection, NoiseConfig(seed=3))


class TestEpcRecord:
    def test_named_accessors(self, collection):
        record = EpcRecord(collection.table, 0)
        assert record.certificate_id.startswith("EPC-")
        assert isinstance(record.eph, float)
        assert record.energy_class in epc_schema().spec("energy_class").categories
        assert record.coordinates is not None

    def test_full_address(self, collection):
        record = EpcRecord(collection.table, 0)
        assert record.address in record.full_address
        assert record.house_number in record.full_address

    def test_nan_becomes_none(self):
        table = Table(
            [
                Column.numeric("eph", [None]),
                Column.numeric("latitude", [None]),
                Column.numeric("longitude", [7.6]),
            ]
        )
        record = EpcRecord(table, 0)
        assert record.eph is None
        assert record.coordinates is None

    def test_records_iterator(self, collection):
        head = collection.table.head(5)
        items = list(records(head))
        assert len(items) == 5
        assert all(isinstance(r, EpcRecord) for r in items)

    def test_repr_is_informative(self, collection):
        text = repr(EpcRecord(collection.table, 0))
        assert "EPC-" in text


class TestValidation:
    def test_clean_collection_valid(self, collection):
        report = validate_table(collection.table)
        assert report.is_valid

    def test_noise_outliers_flagged(self, collection, noisy):
        report = validate_table(noisy.table)
        assert not report.is_valid
        flagged_attrs = set(report.by_attribute())
        planted_attrs = {
            ev.attribute for ev in noisy.events if ev.kind == "outlier"
        }
        assert flagged_attrs & planted_attrs

    def test_numeric_range_violation(self):
        table = Table([Column.numeric("eta_h", [0.8, 99.0])])
        report = validate_table(table)
        assert len(report.issues) == 1
        assert report.issues[0].row == 1
        assert "plausible range" in report.issues[0].reason

    def test_vocabulary_violation(self):
        table = Table([Column.categorical("energy_class", ["A4", "Z9"])])
        report = validate_table(table)
        assert len(report.issues) == 1
        assert report.issues[0].value == "Z9"

    def test_missing_always_acceptable(self):
        table = Table(
            [Column.numeric("eta_h", [None]), Column.categorical("energy_class", [None])]
        )
        assert validate_table(table).is_valid

    def test_max_issues_cap(self):
        table = Table([Column.numeric("eta_h", [99.0] * 100)])
        report = validate_table(table, max_issues=10)
        assert len(report.issues) == 10

    def test_rows_affected(self):
        table = Table([Column.numeric("eta_h", [99.0, 0.8, 99.0])])
        assert validate_table(table).rows_affected() == {0, 2}

    def test_unknown_columns_ignored(self):
        table = Table([Column.numeric("mystery", [1.0])])
        assert validate_table(table).is_valid


class TestQualityProfile:
    def test_clean_collection_profile(self, collection):
        profile = assess_quality(
            collection.table, hierarchy=collection.hierarchy
        )
        assert profile.n_rows == 800
        assert profile.overall_missing_rate() < 0.01
        assert profile.n_duplicate_certificates == 0
        assert profile.n_unlocated == 0

    def test_noisy_collection_profile(self, collection, noisy):
        profile = assess_quality(noisy.table, hierarchy=collection.hierarchy)
        assert profile.n_unlocated > 0          # coords_missing noise
        assert profile.n_outside_region > 0     # gross_error noise
        assert profile.overall_missing_rate() > 0.0
        eph_quality = profile.attributes["eph"]
        assert eph_quality.n_missing > 0
        assert eph_quality.usable_rate < 1.0

    def test_duplicates_detected(self, collection):
        table = collection.table.head(10)
        doubled = table.vstack(table)
        profile = assess_quality(doubled)
        assert profile.n_duplicate_certificates == 10
        assert profile.duplicate_groups[0][1] == 2

    def test_worst_attributes_ranked(self, collection, noisy):
        profile = assess_quality(noisy.table)
        worst = profile.worst_attributes(3)
        rates = [a.missing_rate for a in worst]
        assert rates == sorted(rates, reverse=True)

    def test_describe_mentions_key_facts(self, collection, noisy):
        profile = assess_quality(noisy.table, hierarchy=collection.hierarchy)
        text = profile.describe()
        assert "missing rate" in text
        assert "unlocated" in text

    def test_implausible_counted(self, collection, noisy):
        profile = assess_quality(noisy.table)
        total_implausible = sum(a.n_implausible for a in profile.attributes.values())
        assert total_implausible > 0

    def test_empty_table(self):
        profile = assess_quality(Table([Column.numeric("eph", [])]))
        assert profile.n_rows == 0
        assert profile.overall_missing_rate() == 0.0
