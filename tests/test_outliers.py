"""Tests for the univariate outlier battery (boxplot, gESD, MAD)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.preprocessing.outliers import (
    MAD_CUTOFF,
    OutlierMethod,
    boxplot_outliers,
    detect_outliers,
    gesd_outliers,
    mad_outliers,
)


@pytest.fixture
def planted():
    """Normal sample with three planted gross outliers."""
    rng = np.random.default_rng(42)
    values = rng.normal(10.0, 1.0, 500)
    values[10] = 50.0
    values[200] = -40.0
    values[333] = 80.0
    return values


ALL_METHODS = [boxplot_outliers, gesd_outliers, mad_outliers]


class TestAllMethods:
    @pytest.mark.parametrize("detector", ALL_METHODS)
    def test_planted_outliers_found(self, detector, planted):
        result = detector(planted)
        flagged = set(result.outlier_indices())
        assert {10, 200, 333} <= flagged

    @pytest.mark.parametrize("detector", ALL_METHODS)
    def test_clean_normal_sample_mostly_kept(self, detector):
        rng = np.random.default_rng(0)
        values = rng.normal(0, 1, 1000)
        result = detector(values)
        assert result.n_outliers < 0.03 * len(values)

    @pytest.mark.parametrize("detector", ALL_METHODS)
    def test_nan_never_flagged(self, detector, planted):
        values = planted.copy()
        values[5] = np.nan
        result = detector(values)
        assert not result.mask[5]

    @pytest.mark.parametrize("detector", ALL_METHODS)
    def test_all_nan_input(self, detector):
        result = detector(np.full(10, np.nan))
        assert result.n_outliers == 0

    @pytest.mark.parametrize("detector", ALL_METHODS)
    def test_mask_aligned(self, detector, planted):
        assert detector(planted).mask.shape == planted.shape

    @pytest.mark.parametrize("detector", ALL_METHODS)
    def test_rejects_2d(self, detector):
        with pytest.raises(ValueError):
            detector(np.zeros((3, 3)))

    @pytest.mark.parametrize("detector", ALL_METHODS)
    def test_inlier_values_excludes_flagged_and_missing(self, detector, planted):
        values = planted.copy()
        values[7] = np.nan
        result = detector(values)
        inliers = result.inlier_values(values)
        assert len(inliers) == len(values) - result.n_outliers - 1


class TestBoxplot:
    def test_fences_in_diagnostics(self, planted):
        d = boxplot_outliers(planted).diagnostics
        assert d["lower_fence"] < d["q1"] < d["median"] < d["q3"] < d["upper_fence"]

    def test_wider_whisker_flags_fewer(self, planted):
        narrow = boxplot_outliers(planted, whisker=1.0)
        wide = boxplot_outliers(planted, whisker=3.0)
        assert wide.n_outliers <= narrow.n_outliers

    def test_constant_sample_no_outliers(self):
        assert boxplot_outliers(np.full(50, 3.0)).n_outliers == 0


class TestGesd:
    def test_respects_max_outliers(self, planted):
        result = gesd_outliers(planted, max_outliers=2)
        assert result.n_outliers <= 2

    def test_declared_count_rule(self, planted):
        """n_declared is the LARGEST r with statistic > critical value."""
        result = gesd_outliers(planted, max_outliers=10)
        d = result.diagnostics
        exceed = [
            i + 1
            for i, (s, c) in enumerate(zip(d["statistics"], d["critical_values"]))
            if s > c
        ]
        assert d["n_declared"] == (max(exceed) if exceed else 0)
        assert result.n_outliers == d["n_declared"]

    def test_clean_sample_declares_zero_or_few(self):
        rng = np.random.default_rng(3)
        result = gesd_outliers(rng.normal(0, 1, 200), max_outliers=10, alpha=0.01)
        assert result.n_outliers <= 2

    def test_tiny_sample(self):
        result = gesd_outliers(np.array([1.0, 2.0, 3.0]), max_outliers=5)
        assert result.n_outliers == 0

    def test_invalid_max_outliers(self):
        with pytest.raises(ValueError):
            gesd_outliers(np.arange(10.0), max_outliers=0)

    def test_constant_sample(self):
        result = gesd_outliers(np.full(20, 1.0), max_outliers=3)
        assert result.n_outliers == 0


class TestMad:
    def test_cutoff_is_papers(self):
        assert MAD_CUTOFF == 3.5

    def test_stricter_cutoff_flags_more(self, planted):
        strict = mad_outliers(planted, cutoff=2.0)
        loose = mad_outliers(planted, cutoff=5.0)
        assert loose.n_outliers <= strict.n_outliers

    def test_zero_mad_falls_back_to_mean_ad(self):
        # >50% identical values: MAD is 0, fallback must still flag the spike
        values = np.array([5.0] * 30 + [5.1, 4.9, 100.0])
        result = mad_outliers(values)
        assert result.diagnostics["scale"] == "mean_ad"
        assert 32 in result.outlier_indices()

    def test_constant_sample(self):
        assert mad_outliers(np.full(10, 2.0)).n_outliers == 0

    def test_robust_to_contamination(self):
        """MAD keeps working with 20% contamination (its selling point)."""
        rng = np.random.default_rng(1)
        values = np.concatenate([rng.normal(0, 1, 400), np.full(100, 500.0)])
        result = mad_outliers(values)
        assert (result.outlier_indices() >= 400).all()
        assert result.n_outliers == 100


class TestDispatch:
    def test_detect_outliers_dispatch(self, planted):
        for method in OutlierMethod:
            result = detect_outliers(planted, method)
            assert result.method is method

    def test_kwargs_forwarded(self, planted):
        result = detect_outliers(planted, OutlierMethod.BOXPLOT, whisker=5.0)
        assert result.diagnostics["whisker"] == 5.0


class TestAgreementProperty:
    @given(st.integers(0, 2**31 - 1))
    @settings(max_examples=20, deadline=None)
    def test_methods_agree_on_gross_outliers(self, seed):
        """All three detectors must flag a 30-sigma point."""
        rng = np.random.default_rng(seed)
        values = rng.normal(0, 1, 300)
        values[0] = 30.0
        for detector in ALL_METHODS:
            assert detector(values).mask[0]
