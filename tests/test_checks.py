"""Tests for ``repro.checks`` — the AST-based invariant linter.

Covers: the fixture corpus (one positive and one negative example per
rule), the pragma parser, the baseline round-trip, text/JSON output, the
CLI entry points, and the tier-1 self-analysis gate — the full rule set
over ``src/repro`` must report **zero** findings, which is the
machine-checked form of the determinism / cache / fault contracts.
"""

import io
import json
import re
from pathlib import Path

import pytest

import repro
from repro.checks import (
    Baseline,
    Checker,
    Finding,
    all_rules,
    parse_pragmas,
    rule_codes,
)
from repro.checks.cli import main as checks_main
from repro.cli import main as repro_main

pytestmark = pytest.mark.checks

FIXTURES = Path(__file__).parent / "checks_fixtures"
SRC = Path(repro.__file__).parent

#: fixture stem -> (rule code, expected finding count in the _bad file)
EXPECTED = {
    "det001": ("DET001", 3),
    "det002": ("DET002", 4),
    "det003": ("DET003", 3),
    "cache001": ("CACHE001", 2),
    "fault001": ("FAULT001", 2),
    "exc001": ("EXC001", 2),
    "mut001": ("MUT001", 3),
    "float001": ("FLOAT001", 3),
    "col001": ("COL001", 2),
    "col002": ("COL002", 2),
    "col003": ("COL003", 2),
    "par001": ("PAR001", 3),
    "par002": ("PAR002", 2),
    "par003": ("PAR003", 2),
    "par004": ("PAR004", 2),
    "lock001": ("LOCK001", 2),
    "lock002": ("LOCK002", 2),
    "lock003": ("LOCK003", 2),
    "lock004": ("LOCK004", 3),
    "sem001": ("SEM001", 2),
    "cfg001": ("CFG001", 3),
    "imp001": ("IMP001", 1),
    "cache002": ("CACHE002", 2),
    "det004": ("DET004", 2),
    "fault002": ("FAULT002", 2),
    "pure001": ("PURE001", 2),
}


def fixture_path(stem: str, suffix: str) -> Path:
    """A fixture target: a single file, or a directory for multi-module
    fixtures (imp001's cycle needs two modules)."""
    single = FIXTURES / f"{stem}_{suffix}.py"
    return single if single.exists() else FIXTURES / f"{stem}_{suffix}"


def check_file(path: Path):
    """All findings of the full rule set over one fixture file."""
    return Checker().run([path])


class TestFixtureCorpus:
    def test_every_rule_has_fixtures(self):
        covered = {code for code, __ in EXPECTED.values()}
        assert covered == set(rule_codes())

    @pytest.mark.parametrize("stem", sorted(EXPECTED))
    def test_positive_fixture_flagged(self, stem):
        code, count = EXPECTED[stem]
        result = check_file(fixture_path(stem, "bad"))
        assert [f.rule for f in result.findings] == [code] * count
        assert not result.errors

    @pytest.mark.parametrize("stem", sorted(EXPECTED))
    def test_negative_fixture_clean(self, stem):
        result = check_file(fixture_path(stem, "good"))
        assert result.findings == []
        assert not result.errors

    def test_findings_are_clickable(self):
        result = check_file(FIXTURES / "mut001_bad.py")
        for finding in result.findings:
            assert re.match(r"^\S+\.py:\d+:\d+: MUT001 ", finding.render())


class TestSelfAnalysis:
    """The analyzer must prove the shipped pipeline clean — and itself."""

    def test_src_repro_is_clean(self):
        result = Checker().run([SRC])
        rendered = "\n".join(f.render() for f in result.findings)
        assert result.findings == [], f"contract violations:\n{rendered}"
        assert not result.errors
        # the scan really covered the project, analyzer included
        assert result.n_files > 60
        # the documented intentional sites (serve.py catch-all 500,
        # serving/server.py catch-all 500 + pooled-worker survival,
        # perf/cache.py corrupt-entry-as-miss, checks/cache.py corrupt
        # analysis cache, checks/cli.py crash-to-exit-2 boundary,
        # serving/store.py sanctioned coalescing render under the
        # single-flight lock, checks/lockdep.py forwarding-proxy
        # acquire + __enter__) are pragma'd, not invisible
        assert result.n_suppressed == 9

    def test_checker_analyzes_itself(self):
        result = Checker().run([SRC / "checks"])
        assert result.findings == []
        assert not result.errors
        assert result.n_files >= 10


class TestPragmas:
    def test_line_pragma_suppresses_only_its_line(self, tmp_path):
        path = tmp_path / "module.py"
        path.write_text(
            "def f(a=[]):  # repro: noqa[MUT001] — fixture justification\n"
            "    return a\n"
            "def g(b=[]):\n"
            "    return b\n"
        )
        result = Checker().run([path])
        assert len(result.findings) == 1
        assert result.findings[0].line == 3
        assert result.n_suppressed == 1

    def test_file_pragma_in_header_suppresses_whole_file(self, tmp_path):
        path = tmp_path / "module.py"
        path.write_text(
            "# repro: noqa[MUT001] — fixture-wide waiver\n"
            '"""Docstring."""\n'
            "def f(a=[]):\n"
            "    return a\n"
            "def g(b=[]):\n"
            "    return b\n"
        )
        result = Checker().run([path])
        assert result.findings == []
        assert result.n_suppressed == 2

    def test_pragma_after_first_statement_is_line_scoped(self, tmp_path):
        path = tmp_path / "module.py"
        path.write_text(
            '"""Docstring."""\n'
            "# repro: noqa[MUT001]\n"  # below the docstring: not file scope
            "def f(a=[]):\n"
            "    return a\n"
        )
        result = Checker().run([path])
        assert len(result.findings) == 1

    def test_multi_code_pragma(self):
        index = parse_pragmas("x = 1  # repro: noqa[EXC001, FLOAT001]\n")
        codes = index.line_codes[1]
        assert codes == frozenset({"EXC001", "FLOAT001"})

    def test_no_bare_noqa(self):
        index = parse_pragmas("x = 1  # repro: noqa\n")
        assert not index


class TestBaseline:
    def _finding(self, message="m"):
        return Finding("pkg/mod.py", 10, 4, "EXC001", message)

    def test_round_trip(self, tmp_path):
        findings = [self._finding(), self._finding(), self._finding("other")]
        path = tmp_path / "baseline.json"
        Baseline.from_findings(findings).save(path)
        loaded = Baseline.load(path)
        assert len(loaded) == 3
        fresh, baselined = loaded.apply(findings)
        assert fresh == [] and baselined == 3

    def test_line_drift_stays_baselined(self, tmp_path):
        path = tmp_path / "baseline.json"
        Baseline.from_findings([self._finding()]).save(path)
        moved = Finding("pkg/mod.py", 99, 0, "EXC001", "m")
        fresh, baselined = Baseline.load(path).apply([moved])
        assert fresh == [] and baselined == 1

    def test_new_occurrence_is_fresh(self, tmp_path):
        path = tmp_path / "baseline.json"
        Baseline.from_findings([self._finding()]).save(path)
        fresh, baselined = Baseline.load(path).apply(
            [self._finding(), self._finding()]
        )
        assert len(fresh) == 1 and baselined == 1

    def test_version_gate(self, tmp_path):
        path = tmp_path / "baseline.json"
        path.write_text('{"version": 99, "findings": []}')
        with pytest.raises(ValueError, match="version"):
            Baseline.load(path)

    def test_cli_write_then_check(self, tmp_path):
        baseline = tmp_path / "baseline.json"
        bad = str(FIXTURES / "mut001_bad.py")
        out = io.StringIO()
        assert checks_main(
            [bad, "--write-baseline", str(baseline)], out=out
        ) == 0
        assert checks_main([bad, "--baseline", str(baseline)], out=out) == 0
        assert checks_main([bad], out=out) == 1


class TestOutputFormats:
    def test_text_format(self):
        out = io.StringIO()
        code = checks_main([str(FIXTURES / "float001_bad.py")], out=out)
        assert code == 1
        lines = out.getvalue().splitlines()
        assert sum("FLOAT001" in line for line in lines) == 3
        assert lines[-1].endswith("0 baselined")

    def test_json_schema(self):
        out = io.StringIO()
        code = checks_main(
            [str(FIXTURES / "exc001_bad.py"), "--format", "json"], out=out
        )
        assert code == 1
        payload = json.loads(out.getvalue())
        assert set(payload) == {
            "version", "files", "cached", "suppressed", "baselined",
            "errors", "findings",
        }
        assert payload["version"] == 2
        assert payload["files"] == 1
        assert len(payload["findings"]) == 2
        for finding in payload["findings"]:
            assert set(finding) == {"path", "line", "col", "rule", "message"}
            assert finding["rule"] == "EXC001"

    def test_json_clean_run(self):
        out = io.StringIO()
        code = checks_main(
            [str(FIXTURES / "exc001_good.py"), "--format", "json"], out=out
        )
        assert code == 0
        assert json.loads(out.getvalue())["findings"] == []

    def test_parse_error_reported(self, tmp_path):
        path = tmp_path / "broken.py"
        path.write_text("def f(:\n")
        out = io.StringIO()
        assert checks_main([str(path)], out=out) == 1
        assert "PARSE" in out.getvalue()

    def test_list_rules(self):
        out = io.StringIO()
        assert checks_main(["--list-rules"], out=out) == 0
        text = out.getvalue()
        for code in rule_codes():
            assert code in text

    def test_select_unknown_rule_is_usage_error_listing_valid_ids(self):
        out = io.StringIO()
        code = checks_main([str(FIXTURES), "--select", "NOPE999"], out=out)
        assert code == 2
        text = out.getvalue()
        assert "NOPE999" in text
        for valid in rule_codes():
            assert valid in text


class TestReproCheckSubcommand:
    def test_clean_tree_exits_zero(self, capsys):
        assert repro_main(["check", str(SRC)]) == 0
        assert "0 finding(s)" in capsys.readouterr().out

    def test_findings_exit_one(self, capsys):
        bad = str(FIXTURES / "det001_bad.py")
        assert repro_main(["check", bad, "--select", "DET001"]) == 1
        assert "DET001" in capsys.readouterr().out


class TestRuleMetadata:
    def test_rules_have_rationales(self):
        for rule in all_rules():
            assert rule.code and rule.name and rule.rationale

    def test_at_least_fifteen_rules(self):
        assert len(all_rules()) >= 15


class TestExplain:
    @pytest.mark.parametrize("code", ["LOCK002", "SEM001", "MUT001"])
    def test_explain_prints_doc_rationale_and_fixture_pair(self, code):
        out = io.StringIO()
        assert checks_main(["--explain", code], out=out) == 0
        text = out.getvalue()
        rule = next(r for r in all_rules() if r.code == code)
        assert text.startswith(f"{code} — {rule.name}")
        assert "Rationale:" in text
        assert f"{code.lower()}_bad.py" in text
        assert f"{code.lower()}_good.py" in text

    def test_explain_directory_fixture(self):
        # imp001's corpus is a directory of modules, not a single file
        out = io.StringIO()
        assert checks_main(["--explain", "IMP001"], out=out) == 0
        assert "bad example" in out.getvalue()

    def test_explain_unknown_rule_is_usage_error(self):
        out = io.StringIO()
        assert checks_main(["--explain", "NOPE999"], out=out) == 2
        text = out.getvalue()
        assert "NOPE999" in text
        for valid in rule_codes():
            assert valid in text

    def test_repro_check_forwards_explain(self, capsys):
        assert repro_main(["check", "--explain", "LOCK004"]) == 0
        assert "LOCK004" in capsys.readouterr().out

    def test_explain_is_case_insensitive(self):
        out = io.StringIO()
        assert checks_main(["--explain", "lock004"], out=out) == 0
        assert out.getvalue().startswith("LOCK004")

    def test_explain_unique_prefix_matches(self):
        out = io.StringIO()
        assert checks_main(["--explain", "pure"], out=out) == 0
        assert out.getvalue().startswith("PURE001")

    def test_explain_ambiguous_prefix_lists_candidates(self):
        out = io.StringIO()
        assert checks_main(["--explain", "lock"], out=out) == 2
        text = out.getvalue()
        assert "ambiguous" in text
        for code in ("LOCK001", "LOCK002", "LOCK003", "LOCK004"):
            assert code in text

    def test_explain_typo_suggests_near_misses(self):
        out = io.StringIO()
        assert checks_main(["--explain", "LOKC001"], out=out) == 2
        text = out.getvalue()
        assert "did you mean" in text
        assert "LOCK001" in text


class TestSelectGlobs:
    def test_glob_selects_a_rule_family(self):
        out = io.StringIO()
        code = checks_main(
            [str(FIXTURES / "lock001_bad.py"), "--select", "LOCK*"], out=out
        )
        assert code == 1
        assert "LOCK001" in out.getvalue()

    def test_glob_is_case_insensitive(self):
        out = io.StringIO()
        code = checks_main(
            [str(FIXTURES / "det001_bad.py"), "--select", "det*"], out=out
        )
        assert code == 1
        assert "DET001" in out.getvalue()

    def test_literal_and_glob_entries_mix(self):
        out = io.StringIO()
        code = checks_main(
            [str(FIXTURES / "mut001_bad.py"), "--select", "MUT001,LOCK*"],
            out=out,
        )
        assert code == 1
        assert "MUT001" in out.getvalue()

    def test_pattern_matching_nothing_is_usage_error(self):
        out = io.StringIO()
        code = checks_main([str(FIXTURES), "--select", "NOPE*"], out=out)
        assert code == 2
        text = out.getvalue()
        assert "NOPE*" in text
        for valid in rule_codes():
            assert valid in text


class TestConcurrencyModel:
    """Unit coverage of the cross-module lock-order/guard analysis."""

    def test_cross_module_cycle_one_call_deep(self, tmp_path):
        result = Checker().run([self._two_module_cycle(tmp_path)])
        # the mutual import is itself (correctly) an IMP001; the point
        # here is the interprocedural lock cycle resolved across it
        assert sorted(f.rule for f in result.findings) == ["IMP001", "LOCK002"]
        message = next(
            f.message for f in result.findings if f.rule == "LOCK002"
        )
        assert "alpha" in message and "beta" in message

    @staticmethod
    def _two_module_cycle(tmp_path):
        # alpha holds A and calls beta.enter() which acquires B;
        # beta holds B and calls back into alpha's helper acquiring A.
        (tmp_path / "alpha.py").write_text(
            "import threading\n"
            "from beta import enter\n"
            "A = threading.Lock()\n"
            "def outer():\n"
            "    with A:\n"
            "        enter()\n"
            "def helper():\n"
            "    with A:\n"
            "        pass\n"
        )
        (tmp_path / "beta.py").write_text(
            "import threading\n"
            "from alpha import helper\n"
            "B = threading.Lock()\n"
            "def enter():\n"
            "    with B:\n"
            "        pass\n"
            "def reverse():\n"
            "    with B:\n"
            "        helper()\n"
        )
        return tmp_path

    def test_consistent_cross_module_order_is_silent(self, tmp_path):
        (tmp_path / "alpha.py").write_text(
            "import threading\n"
            "from beta import enter\n"
            "A = threading.Lock()\n"
            "def outer():\n"
            "    with A:\n"
            "        enter()\n"
        )
        (tmp_path / "beta.py").write_text(
            "import threading\n"
            "B = threading.Lock()\n"
            "def enter():\n"
            "    with B:\n"
            "        pass\n"
        )
        result = Checker().run([tmp_path])
        assert result.findings == []

    def test_guard_inference_skips_lockless_classes(self, tmp_path):
        # mixed write discipline, but no lock owned and no threads
        # spawned: not thread-reachable, so LOCK003 stays silent
        (tmp_path / "plain.py").write_text(
            "class Counter:\n"
            "    def __init__(self):\n"
            "        self.n = 0\n"
            "    def bump(self):\n"
            "        self.n += 1\n"
        )
        result = Checker().run([tmp_path])
        assert result.findings == []

    def test_dict_of_locks_identity(self, tmp_path):
        from repro.checks.concurrency import extract_concurrency
        import ast as _ast

        facts = extract_concurrency(_ast.parse(
            "import threading\n"
            "class Store:\n"
            "    def __init__(self):\n"
            "        self._locks: dict[str, threading.Lock] = {}\n"
            "    def lock_for(self, key):\n"
            "        lock = self._locks[key] = threading.Lock()\n"
            "        return lock\n"
        ))
        assert ["Store._locks[]", "lock"] in [
            ident[:2] for ident in facts["locks"]
        ]

    def test_semaphore_ownership_transfer_not_flagged(self, tmp_path):
        # every exit returns holding the slot (caller releases): a
        # protocol, not an imbalance — no balanced sibling exit, so
        # SEM001 stays silent (lifecycle policing is LOCK001's job,
        # which does fire here absent a justifying pragma)
        (tmp_path / "xfer.py").write_text(
            "import threading\n"
            "slots = threading.Semaphore(4)\n"
            "def admit_or_raise():\n"
            "    if not slots.acquire(timeout=0.01):\n"
            "        raise TimeoutError()\n"
            "    return object()\n"
        )
        result = Checker().run([tmp_path])
        assert [f.rule for f in result.findings if f.rule == "SEM001"] == []


class TestEffectModel:
    """Golden interprocedural effect summaries over the real modules."""

    @pytest.fixture(scope="class")
    def model(self):
        from repro.checks.checker import Checker as _Checker
        from repro.checks.effects import EffectModel
        from repro.checks.project import ProjectIndex

        files = [
            SRC / "perf" / "cache.py",
            SRC / "serving" / "store.py",
            SRC / "checks" / "lockdep.py",
            SRC / "checks" / "effectaudit.py",
            SRC / "checks" / "__init__.py",
            SRC / "serving" / "__init__.py",
            SRC / "perf" / "__init__.py",
            SRC / "__init__.py",
        ]
        checker = _Checker()
        summaries = [checker._summarize(path)[0] for path in files]
        return EffectModel.of(ProjectIndex(summaries))

    def test_stage_cache_put_is_a_pure_writer(self, model):
        assert sorted(model.effects("repro.perf.cache:StageCache.put")) == [
            "fs_write"
        ]

    def test_stage_cache_get_only_reads(self, model):
        assert sorted(model.effects("repro.perf.cache:StageCache.get")) == [
            "fs_read"
        ]

    def test_stage_cache_key_is_pure(self, model):
        assert not model.effects("repro.perf.cache:StageCache.key")

    def test_build_store_env_reads_are_all_instrumentation_flags(self, model):
        from repro.checks.effects import INSTRUMENTATION_ENV

        effects = model.effects("repro.serving.store:build_store")
        env_reads = {
            token.partition(":")[2]
            for token in effects
            if token.startswith("env_read:")
        }
        assert env_reads  # the lockdep/effectaudit resolve chain is seen
        assert env_reads <= INSTRUMENTATION_ENV

    def test_cached_roots_are_detected(self, model):
        kinds = {(gid, kind) for gid, kind, __, __ in model.roots()}
        assert ("repro.perf.cache:StageCache.shard_key", "stage") in kinds
        assert ("repro.serving.store:build_store", "store") in kinds


class TestExitCodes:
    """0 clean / 1 findings / 2 usage or internal analyzer error."""

    def test_clean_exits_zero(self):
        out = io.StringIO()
        assert checks_main([str(FIXTURES / "mut001_good.py")], out=out) == 0

    def test_findings_exit_one(self):
        out = io.StringIO()
        assert checks_main([str(FIXTURES / "mut001_bad.py")], out=out) == 1

    def test_parse_error_exits_one(self, tmp_path):
        path = tmp_path / "broken.py"
        path.write_text("def f(:\n")
        assert checks_main([str(path)], out=io.StringIO()) == 1

    def test_internal_analyzer_error_exits_two(self, monkeypatch):
        class BoomChecker:
            def __init__(self, *args, **kwargs):
                pass

            def run(self, paths, changed_only=None):
                raise RuntimeError("rule exploded mid-analysis")

        monkeypatch.setattr("repro.checks.cli.Checker", BoomChecker)
        out = io.StringIO()
        code = checks_main([str(FIXTURES / "mut001_good.py")], out=out)
        assert code == 2
        assert "internal analyzer error" in out.getvalue()


class TestSarifOutput:
    def _sarif(self, target) -> tuple[int, dict]:
        out = io.StringIO()
        code = checks_main([str(target), "--format", "sarif"], out=out)
        return code, json.loads(out.getvalue())

    def test_round_trip_shape(self):
        code, payload = self._sarif(FIXTURES / "mut001_bad.py")
        assert code == 1
        assert payload["version"] == "2.1.0"
        assert "$schema" in payload
        run = payload["runs"][0]
        rule_ids = {r["id"] for r in run["tool"]["driver"]["rules"]}
        assert set(rule_codes()) <= rule_ids
        assert "PARSE" in rule_ids
        assert len(run["results"]) == 3
        for entry in run["results"]:
            assert entry["ruleId"] == "MUT001"
            assert entry["message"]["text"]
            region = entry["locations"][0]["physicalLocation"]["region"]
            assert region["startLine"] >= 1
            assert region["startColumn"] >= 1

    def test_clean_run_has_empty_results(self):
        code, payload = self._sarif(FIXTURES / "mut001_good.py")
        assert code == 0
        assert payload["runs"][0]["results"] == []

    def test_parse_errors_surface_as_parse_results(self, tmp_path):
        path = tmp_path / "broken.py"
        path.write_text("def f(:\n")
        code, payload = self._sarif(path)
        assert code == 1
        results = payload["runs"][0]["results"]
        assert [r["ruleId"] for r in results] == ["PARSE"]

    def test_descriptors_carry_docs_severity_and_help_uri(self):
        __, payload = self._sarif(FIXTURES / "mut001_good.py")
        rules = {
            r["id"]: r for r in payload["runs"][0]["tool"]["driver"]["rules"]
        }
        for code in rule_codes():
            entry = rules[code]
            assert entry["fullDescription"]["text"]
            assert entry["helpUri"].endswith(code.lower())
            assert entry["defaultConfiguration"]["level"] in (
                "error", "warning", "note",
            )
        assert rules["COL002"]["defaultConfiguration"]["level"] == "warning"
        assert rules["CACHE002"]["defaultConfiguration"]["level"] == "error"

    def test_result_level_follows_rule_severity(self):
        code, payload = self._sarif(FIXTURES / "col002_bad.py")
        assert code == 1
        results = payload["runs"][0]["results"]
        assert results
        assert all(r["level"] == "warning" for r in results)


class TestIncrementalCache:
    def _tree(self, tmp_path: Path) -> Path:
        tree = tmp_path / "tree"
        tree.mkdir()
        (tree / "clean.py").write_text("def f(a=None):\n    return a\n")
        (tree / "dirty.py").write_text("def g(b=[]):\n    return b\n")
        return tree

    def _run(self, tree: Path, cache: Path):
        from repro.checks import AnalysisCache, analysis_fingerprint

        rules = all_rules()
        checker = Checker(
            rules=rules,
            cache=AnalysisCache(cache, analysis_fingerprint(rules)),
        )
        return checker.run([tree])

    def test_warm_run_reuses_every_summary(self, tmp_path):
        tree = self._tree(tmp_path)
        cache = tmp_path / "cache.json"
        cold = self._run(tree, cache)
        assert cold.n_from_cache == 0
        warm = self._run(tree, cache)
        assert warm.n_from_cache == warm.n_files == 2
        assert warm.findings == cold.findings
        assert warm.n_suppressed == cold.n_suppressed

    def test_editing_one_file_reanalyzes_only_it(self, tmp_path):
        tree = self._tree(tmp_path)
        cache = tmp_path / "cache.json"
        self._run(tree, cache)
        (tree / "dirty.py").write_text("def g(b=None):\n    return b\n")
        result = self._run(tree, cache)
        assert result.n_from_cache == 1
        assert result.findings == []

    def test_corrupt_cache_degrades_to_full_run(self, tmp_path):
        tree = self._tree(tmp_path)
        cache = tmp_path / "cache.json"
        cold = self._run(tree, cache)
        cache.write_text("{ not json !!")
        again = self._run(tree, cache)
        assert again.n_from_cache == 0
        assert again.findings == cold.findings

    def test_rule_selection_changes_invalidate_the_cache(self, tmp_path):
        from repro.checks import AnalysisCache, analysis_fingerprint

        tree = self._tree(tmp_path)
        cache = tmp_path / "cache.json"
        mut_only = [r for r in all_rules() if r.code == "MUT001"]
        Checker(
            rules=mut_only,
            cache=AnalysisCache(cache, analysis_fingerprint(mut_only)),
        ).run([tree])
        full = self._run(tree, cache)
        assert full.n_from_cache == 0  # different fingerprint, no reuse

    def test_cli_cache_flag(self, tmp_path):
        tree = self._tree(tmp_path)
        cache = tmp_path / "cache.json"
        argv = [str(tree), "--cache", str(cache), "--format", "json"]
        first = io.StringIO()
        assert checks_main(argv, out=first) == 1
        second = io.StringIO()
        assert checks_main(argv, out=second) == 1
        cold, warm = json.loads(first.getvalue()), json.loads(second.getvalue())
        assert cold["cached"] == 0
        assert warm["cached"] == warm["files"] == 2
        assert warm["findings"] == cold["findings"]


class TestChangedOnly:
    @pytest.fixture()
    def git_tree(self, tmp_path, monkeypatch):
        import shutil
        import subprocess

        if shutil.which("git") is None:
            pytest.skip("git is not installed in this environment")
        monkeypatch.chdir(tmp_path)

        def git(*argv):
            subprocess.run(
                ["git", *argv], cwd=tmp_path, check=True,
                capture_output=True, timeout=60,
            )

        git("init", "-q")
        git("config", "user.email", "checks@example.invalid")
        git("config", "user.name", "checks")
        (tmp_path / "stale.py").write_text("def f(a=[]):\n    return a\n")
        (tmp_path / "edited.py").write_text("def g(b=None):\n    return b\n")
        git("add", ".")
        git("commit", "-q", "-m", "seed")
        return tmp_path

    def test_only_changed_files_report_per_file_findings(self, git_tree):
        (git_tree / "edited.py").write_text("def g(b=[]):\n    return b\n")
        (git_tree / "fresh.py").write_text("def h(c={}):\n    return c\n")
        out = io.StringIO()
        code = checks_main([str(git_tree), "--changed-only"], out=out)
        assert code == 1
        text = out.getvalue()
        # stale.py's committed violation is filtered; the edit and the
        # untracked file are reported
        assert "stale.py" not in text
        assert "edited.py" in text
        assert "fresh.py" in text

    def test_changed_only_outside_git_is_usage_error(self, tmp_path, monkeypatch):
        import subprocess

        def boom(*args, **kwargs):
            raise subprocess.SubprocessError("not a git repository")

        monkeypatch.setattr("repro.checks.cli.subprocess.run", boom)
        out = io.StringIO()
        code = checks_main([str(tmp_path), "--changed-only"], out=out)
        assert code == 2
        assert "--changed-only" in out.getvalue()


class TestPragmaBaselineInteraction:
    def test_fixed_baselined_finding_does_not_cover_new_same_rule(self, tmp_path):
        path = tmp_path / "module.py"
        baseline = tmp_path / "baseline.json"
        path.write_text("def f(a=[]):\n    return a\n")
        out = io.StringIO()
        assert checks_main(
            [str(path), "--write-baseline", str(baseline)], out=out
        ) == 0
        # fix f, introduce the same rule in g: the old baseline entry
        # (keyed by message, which names the function) must not absorb it
        path.write_text("def f(a=None):\n    return a\ndef g(b=[]):\n    return b\n")
        result = Checker(baseline=Baseline.load(baseline)).run([path])
        assert [f.rule for f in result.findings] == ["MUT001"]
        assert "g()" in result.findings[0].message
        assert result.n_baselined == 0

    def test_pragma_applies_before_baseline_consumption(self, tmp_path):
        path = tmp_path / "module.py"
        baseline = tmp_path / "baseline.json"
        path.write_text("def f(a=[]):\n    return a\n")
        checks_main([str(path), "--write-baseline", str(baseline)], out=io.StringIO())
        path.write_text(
            "def f(a=[]):  # repro: noqa[MUT001] — fixture justification\n"
            "    return a\n"
        )
        result = Checker(baseline=Baseline.load(baseline)).run([path])
        assert result.findings == []
        assert result.n_suppressed == 1
        assert result.n_baselined == 0  # pragma'd finding never reaches it


class TestProjectIndex:
    def test_module_names_walk_packages(self, tmp_path):
        from repro.checks import module_name_for

        pkg = tmp_path / "pkg"
        sub = pkg / "sub"
        sub.mkdir(parents=True)
        (pkg / "__init__.py").write_text("")
        (sub / "__init__.py").write_text("")
        (sub / "mod.py").write_text("")
        assert module_name_for(sub / "mod.py") == "pkg.sub.mod"
        assert module_name_for(sub / "__init__.py") == "pkg.sub"
        assert module_name_for(tmp_path / "loose.py") == "loose"

    def test_lineage_flows_across_modules(self, tmp_path):
        schema = tmp_path / "schema.py"
        schema.write_text(
            "def build():\n"
            '    return [AttributeSpec("eph", "numeric")]\n'
        )
        stage = tmp_path / "stage.py"
        stage.write_text(
            "def read(table):\n"
            '    return table["eph"], table["epw"]\n'
        )
        result = Checker().run([tmp_path])
        assert [f.rule for f in result.findings] == ["COL001"]
        assert "epw" in result.findings[0].message
        assert result.findings[0].path.endswith("stage.py")

    def test_spec_ref_constant_resolves_across_modules(self, tmp_path):
        (tmp_path / "consts.py").write_text('RESPONSE = "eph"\n')
        (tmp_path / "schema.py").write_text(
            "def build():\n"
            '    return [AttributeSpec("eph", "numeric")]\n'
        )
        (tmp_path / "spec.py").write_text(
            "from consts import RESPONSE\n"
            'FILTERS = (Comparison(RESPONSE, ">", 0),)\n'
        )
        result = Checker().run([tmp_path])
        assert result.findings == []

    def test_import_graph_sees_relative_imports(self, tmp_path):
        pkg = tmp_path / "pkg"
        pkg.mkdir()
        (pkg / "__init__.py").write_text("")
        (pkg / "a.py").write_text("from . import b\n")
        (pkg / "b.py").write_text("from .a import thing\n")
        result = Checker().run([tmp_path])
        assert [f.rule for f in result.findings] == ["IMP001"]
        assert "pkg.a" in result.findings[0].message
        assert "pkg.b" in result.findings[0].message


class TestAllEntryPoint:
    def test_all_flag_runs_sweep_then_tools(self):
        out = io.StringIO()
        code = checks_main([str(SRC), "--all"], out=out)
        assert code == 0, out.getvalue()
        text = out.getvalue()
        assert "0 finding(s)" in text
        assert "ruff" in text
        assert "mypy" in text

    def test_ci_script_exists_and_is_wired(self):
        script = Path(repro.__file__).parents[2] / "scripts" / "ci_checks.sh"
        assert script.exists()
        text = script.read_text()
        assert "--all" in text
        assert "repro.checks" in text

    def test_ci_script_passes_on_the_repo(self):
        import os
        import subprocess

        script = Path(repro.__file__).parents[2] / "scripts" / "ci_checks.sh"
        env = dict(os.environ)
        proc = subprocess.run(
            ["bash", str(script)],
            cwd=script.parent.parent,
            env=env,
            capture_output=True,
            text=True,
            timeout=600,
        )
        assert proc.returncode == 0, proc.stdout + proc.stderr
