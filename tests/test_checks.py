"""Tests for ``repro.checks`` — the AST-based invariant linter.

Covers: the fixture corpus (one positive and one negative example per
rule), the pragma parser, the baseline round-trip, text/JSON output, the
CLI entry points, and the tier-1 self-analysis gate — the full rule set
over ``src/repro`` must report **zero** findings, which is the
machine-checked form of the determinism / cache / fault contracts.
"""

import io
import json
import re
from pathlib import Path

import pytest

import repro
from repro.checks import (
    Baseline,
    Checker,
    Finding,
    all_rules,
    parse_pragmas,
    rule_codes,
)
from repro.checks.cli import main as checks_main
from repro.cli import main as repro_main

pytestmark = pytest.mark.checks

FIXTURES = Path(__file__).parent / "checks_fixtures"
SRC = Path(repro.__file__).parent

#: fixture stem -> (rule code, expected finding count in the _bad file)
EXPECTED = {
    "det001": ("DET001", 3),
    "det002": ("DET002", 4),
    "det003": ("DET003", 3),
    "cache001": ("CACHE001", 2),
    "fault001": ("FAULT001", 2),
    "exc001": ("EXC001", 2),
    "mut001": ("MUT001", 3),
    "float001": ("FLOAT001", 3),
}


def check_file(path: Path):
    """All findings of the full rule set over one fixture file."""
    return Checker().run([path])


class TestFixtureCorpus:
    def test_every_rule_has_fixtures(self):
        covered = {code for code, __ in EXPECTED.values()}
        assert covered == set(rule_codes())

    @pytest.mark.parametrize("stem", sorted(EXPECTED))
    def test_positive_fixture_flagged(self, stem):
        code, count = EXPECTED[stem]
        result = check_file(FIXTURES / f"{stem}_bad.py")
        assert [f.rule for f in result.findings] == [code] * count
        assert not result.errors

    @pytest.mark.parametrize("stem", sorted(EXPECTED))
    def test_negative_fixture_clean(self, stem):
        result = check_file(FIXTURES / f"{stem}_good.py")
        assert result.findings == []
        assert not result.errors

    def test_findings_are_clickable(self):
        result = check_file(FIXTURES / "mut001_bad.py")
        for finding in result.findings:
            assert re.match(r"^\S+\.py:\d+:\d+: MUT001 ", finding.render())


class TestSelfAnalysis:
    """The analyzer must prove the shipped pipeline clean — and itself."""

    def test_src_repro_is_clean(self):
        result = Checker().run([SRC])
        rendered = "\n".join(f.render() for f in result.findings)
        assert result.findings == [], f"contract violations:\n{rendered}"
        assert not result.errors
        # the scan really covered the project, analyzer included
        assert result.n_files > 60
        # the two documented intentional sites (serve.py catch-all 500,
        # cache.py corrupt-entry-as-miss) are pragma'd, not invisible
        assert result.n_suppressed == 2

    def test_checker_analyzes_itself(self):
        result = Checker().run([SRC / "checks"])
        assert result.findings == []
        assert not result.errors
        assert result.n_files >= 10


class TestPragmas:
    def test_line_pragma_suppresses_only_its_line(self, tmp_path):
        path = tmp_path / "module.py"
        path.write_text(
            "def f(a=[]):  # repro: noqa[MUT001] — fixture justification\n"
            "    return a\n"
            "def g(b=[]):\n"
            "    return b\n"
        )
        result = Checker().run([path])
        assert len(result.findings) == 1
        assert result.findings[0].line == 3
        assert result.n_suppressed == 1

    def test_file_pragma_in_header_suppresses_whole_file(self, tmp_path):
        path = tmp_path / "module.py"
        path.write_text(
            "# repro: noqa[MUT001] — fixture-wide waiver\n"
            '"""Docstring."""\n'
            "def f(a=[]):\n"
            "    return a\n"
            "def g(b=[]):\n"
            "    return b\n"
        )
        result = Checker().run([path])
        assert result.findings == []
        assert result.n_suppressed == 2

    def test_pragma_after_first_statement_is_line_scoped(self, tmp_path):
        path = tmp_path / "module.py"
        path.write_text(
            '"""Docstring."""\n'
            "# repro: noqa[MUT001]\n"  # below the docstring: not file scope
            "def f(a=[]):\n"
            "    return a\n"
        )
        result = Checker().run([path])
        assert len(result.findings) == 1

    def test_multi_code_pragma(self):
        index = parse_pragmas("x = 1  # repro: noqa[EXC001, FLOAT001]\n")
        codes = index.line_codes[1]
        assert codes == frozenset({"EXC001", "FLOAT001"})

    def test_no_bare_noqa(self):
        index = parse_pragmas("x = 1  # repro: noqa\n")
        assert not index


class TestBaseline:
    def _finding(self, message="m"):
        return Finding("pkg/mod.py", 10, 4, "EXC001", message)

    def test_round_trip(self, tmp_path):
        findings = [self._finding(), self._finding(), self._finding("other")]
        path = tmp_path / "baseline.json"
        Baseline.from_findings(findings).save(path)
        loaded = Baseline.load(path)
        assert len(loaded) == 3
        fresh, baselined = loaded.apply(findings)
        assert fresh == [] and baselined == 3

    def test_line_drift_stays_baselined(self, tmp_path):
        path = tmp_path / "baseline.json"
        Baseline.from_findings([self._finding()]).save(path)
        moved = Finding("pkg/mod.py", 99, 0, "EXC001", "m")
        fresh, baselined = Baseline.load(path).apply([moved])
        assert fresh == [] and baselined == 1

    def test_new_occurrence_is_fresh(self, tmp_path):
        path = tmp_path / "baseline.json"
        Baseline.from_findings([self._finding()]).save(path)
        fresh, baselined = Baseline.load(path).apply(
            [self._finding(), self._finding()]
        )
        assert len(fresh) == 1 and baselined == 1

    def test_version_gate(self, tmp_path):
        path = tmp_path / "baseline.json"
        path.write_text('{"version": 99, "findings": []}')
        with pytest.raises(ValueError, match="version"):
            Baseline.load(path)

    def test_cli_write_then_check(self, tmp_path):
        baseline = tmp_path / "baseline.json"
        bad = str(FIXTURES / "mut001_bad.py")
        out = io.StringIO()
        assert checks_main(
            [bad, "--write-baseline", str(baseline)], out=out
        ) == 0
        assert checks_main([bad, "--baseline", str(baseline)], out=out) == 0
        assert checks_main([bad], out=out) == 1


class TestOutputFormats:
    def test_text_format(self):
        out = io.StringIO()
        code = checks_main([str(FIXTURES / "float001_bad.py")], out=out)
        assert code == 1
        lines = out.getvalue().splitlines()
        assert sum("FLOAT001" in line for line in lines) == 3
        assert lines[-1].endswith("0 baselined")

    def test_json_schema(self):
        out = io.StringIO()
        code = checks_main(
            [str(FIXTURES / "exc001_bad.py"), "--format", "json"], out=out
        )
        assert code == 1
        payload = json.loads(out.getvalue())
        assert set(payload) == {
            "version", "files", "suppressed", "baselined", "errors", "findings",
        }
        assert payload["version"] == 1
        assert payload["files"] == 1
        assert len(payload["findings"]) == 2
        for finding in payload["findings"]:
            assert set(finding) == {"path", "line", "col", "rule", "message"}
            assert finding["rule"] == "EXC001"

    def test_json_clean_run(self):
        out = io.StringIO()
        code = checks_main(
            [str(FIXTURES / "exc001_good.py"), "--format", "json"], out=out
        )
        assert code == 0
        assert json.loads(out.getvalue())["findings"] == []

    def test_parse_error_reported(self, tmp_path):
        path = tmp_path / "broken.py"
        path.write_text("def f(:\n")
        out = io.StringIO()
        assert checks_main([str(path)], out=out) == 1
        assert "PARSE" in out.getvalue()

    def test_list_rules(self):
        out = io.StringIO()
        assert checks_main(["--list-rules"], out=out) == 0
        text = out.getvalue()
        for code in rule_codes():
            assert code in text

    def test_select_unknown_rule_is_an_error(self):
        with pytest.raises(SystemExit):
            checks_main([str(FIXTURES), "--select", "NOPE999"], out=io.StringIO())


class TestReproCheckSubcommand:
    def test_clean_tree_exits_zero(self, capsys):
        assert repro_main(["check", str(SRC)]) == 0
        assert "0 finding(s)" in capsys.readouterr().out

    def test_findings_exit_one(self, capsys):
        bad = str(FIXTURES / "det001_bad.py")
        assert repro_main(["check", bad, "--select", "DET001"]) == 1
        assert "DET001" in capsys.readouterr().out


class TestRuleMetadata:
    def test_rules_have_rationales(self):
        for rule in all_rules():
            assert rule.code and rule.name and rule.rationale

    def test_at_least_eight_rules(self):
        assert len(all_rules()) >= 8
