"""Cross-module property-based tests on the system's core invariants.

These complement the per-module tests with randomized checks of the
relationships the paper's pipeline silently relies on:

* cleaning is idempotent — re-cleaning a cleaned table changes nothing;
* marker clustering conserves cardinality at every cell size and nests
  monotonically across zoom levels;
* rule quality indices satisfy their algebraic identities
  (support <= confidence, lift > 1 <=> conviction > 1, ...);
* discretization + labelling round-trips every in-range value into a bin
  whose interval actually contains it.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analytics.apriori import ItemsetMiner, transactions_from_table
from repro.analytics.discretize import quantile_discretization
from repro.analytics.rules import RuleConstraints, generate_rules
from repro.dashboard.markercluster import cluster_markers
from repro.dataset import SyntheticConfig, generate_epc_collection
from repro.dataset.noise import NoiseConfig, apply_noise
from repro.dataset.table import Column, Table
from repro.geo.regions import Granularity
from repro.preprocessing import AddressCleaner, CleaningConfig


@pytest.fixture(scope="module")
def cleaned_pair():
    collection = generate_epc_collection(SyntheticConfig(n_certificates=700, seed=42))
    noisy = apply_noise(collection, NoiseConfig(seed=8))
    turin = noisy.table.where(
        np.array([c == "Turin" for c in noisy.table["city"]])
    )
    cleaner = AddressCleaner(collection.street_map, CleaningConfig(use_geocoder=False))
    once = cleaner.clean_table(turin)
    twice = cleaner.clean_table(once.table)
    return once, twice


class TestCleaningIdempotence:
    def test_second_pass_repairs_nothing(self, cleaned_pair):
        __, twice = cleaned_pair
        repairs = [a for a in twice.audits if a.repaired_fields]
        assert not repairs

    def test_second_pass_all_exact_or_unresolved(self, cleaned_pair):
        once, twice = cleaned_pair
        from repro.preprocessing import MatchStatus

        for first, second in zip(once.audits, twice.audits):
            if first.status in (MatchStatus.EXACT, MatchStatus.MATCHED):
                assert second.status is MatchStatus.EXACT

    def test_tables_identical(self, cleaned_pair):
        once, twice = cleaned_pair
        for name in ("address", "house_number", "zip_code", "latitude", "longitude"):
            assert once.table.column(name) == twice.table.column(name)


coords_arrays = st.integers(1, 120).flatmap(
    lambda n: st.tuples(
        st.lists(st.floats(45.01, 45.12, allow_nan=False), min_size=n, max_size=n),
        st.lists(st.floats(7.60, 7.77, allow_nan=False), min_size=n, max_size=n),
        st.lists(st.floats(10, 300, allow_nan=False), min_size=n, max_size=n),
    )
)


class TestMarkerClusterProperties:
    @given(coords_arrays, st.sampled_from([0.3, 0.7, 1.5, 3.0]))
    @settings(max_examples=40, deadline=None)
    def test_cardinality_conserved(self, arrays, cell_km):
        lats, lons, values = (np.asarray(a) for a in arrays)
        markers = cluster_markers(lats, lons, values, cell_km=cell_km)
        assert sum(m.count for m in markers) == len(lats)

    @given(coords_arrays)
    @settings(max_examples=30, deadline=None)
    def test_zoom_monotonicity(self, arrays):
        lats, lons, values = (np.asarray(a) for a in arrays)
        counts = [
            len(cluster_markers(lats, lons, values, g))
            for g in (Granularity.CITY, Granularity.DISTRICT,
                      Granularity.NEIGHBOURHOOD, Granularity.UNIT)
        ]
        assert counts == sorted(counts)

    @given(coords_arrays)
    @settings(max_examples=30, deadline=None)
    def test_marker_means_bounded_by_member_values(self, arrays):
        lats, lons, values = (np.asarray(a) for a in arrays)
        for marker in cluster_markers(lats, lons, values, Granularity.CITY):
            members = values[marker.member_indices]
            assert members.min() - 1e-9 <= marker.mean_value <= members.max() + 1e-9


@st.composite
def categorical_tables(draw):
    n = draw(st.integers(20, 120))
    def col(name, options):
        return Column.categorical(
            name, [draw(st.sampled_from(options)) for __ in range(n)]
        )
    return Table([col("a", ("x", "y")), col("b", ("p", "q", "r")), col("c", ("0", "1"))])


class TestRuleIdentities:
    @given(categorical_tables())
    @settings(max_examples=25, deadline=None)
    def test_quality_index_identities(self, table):
        tx = transactions_from_table(table, ["a", "b", "c"])
        itemsets = ItemsetMiner(min_support=0.05).mine(tx)
        rules = generate_rules(
            itemsets,
            RuleConstraints(min_support=0.05, min_confidence=0.0,
                            min_lift=0.0, min_conviction=0.0),
        )
        for rule in rules:
            assert rule.support <= rule.confidence + 1e-12
            assert 0.0 <= rule.confidence <= 1.0 + 1e-12
            assert rule.lift >= 0.0
            # lift > 1 <=> conviction > 1 (both mean positive correlation)
            if np.isfinite(rule.conviction):
                assert (rule.lift > 1.0 + 1e-9) == (rule.conviction > 1.0 + 1e-9) or (
                    abs(rule.lift - 1.0) < 1e-9 or abs(rule.conviction - 1.0) < 1e-9
                )
            # support(rule) <= support(antecedent) and <= support(consequent)
            supp_a = itemsets.supports[tuple(sorted(rule.antecedent))]
            supp_b = itemsets.supports[tuple(sorted(rule.consequent))]
            assert rule.support <= supp_a + 1e-12
            assert rule.support <= supp_b + 1e-12

    @given(categorical_tables())
    @settings(max_examples=20, deadline=None)
    def test_rule_symmetry_of_lift(self, table):
        """lift(A -> B) == lift(B -> A) — lift is symmetric by definition."""
        tx = transactions_from_table(table, ["a", "b"])
        itemsets = ItemsetMiner(min_support=0.05).mine(tx)
        rules = generate_rules(
            itemsets,
            RuleConstraints(min_support=0.05, min_confidence=0.0,
                            min_lift=0.0, min_conviction=0.0),
        )
        by_pair = {}
        for rule in rules:
            key = tuple(sorted(rule.antecedent + rule.consequent))
            by_pair.setdefault(key, []).append(rule.lift)
        for lifts in by_pair.values():
            assert max(lifts) - min(lifts) < 1e-9


class TestDiscretizationRoundTrip:
    @given(
        st.lists(st.floats(0, 100, allow_nan=False), min_size=30, max_size=300),
        st.integers(2, 5),
    )
    @settings(max_examples=40, deadline=None)
    def test_label_interval_contains_value(self, values, n_classes):
        values = np.asarray(values)
        try:
            disc = quantile_discretization(values, n_classes)
        except ValueError:
            return  # all-identical input collapses entirely; rejected upstream
        for v in values:
            label = disc.label_of(float(v))
            i = disc.labels.index(label)
            lo, hi = disc.edges[i], disc.edges[i + 1]
            if i == 0:
                assert lo - 1e-9 <= v <= hi + 1e-9
            else:
                assert lo - 1e-9 < v <= hi + 1e-9

    @given(st.lists(st.floats(0, 100, allow_nan=False), min_size=30, max_size=300))
    @settings(max_examples=30, deadline=None)
    def test_quantile_classes_roughly_balanced(self, values):
        values = np.asarray(values)
        if len(np.unique(values)) < 10:
            return
        disc = quantile_discretization(values, 4)
        if disc.n_classes < 4:
            return  # ties collapsed classes; balance is not promised
        labels = disc.apply(values)
        counts = [labels.count(lab) for lab in disc.labels]
        assert min(counts) >= len(values) * 0.10  # no empty quantile class
