"""Integration tests for the Indice engine, config and provenance log."""

import numpy as np
import pytest

from repro import Granularity, Indice, IndiceConfig, Stakeholder
from repro.core.config import DEFAULT_DISCRETIZATION_PLAN
from repro.core.session import ProvenanceLog
from repro.dataset import (
    NoiseConfig,
    SyntheticConfig,
    apply_noise,
    generate_epc_collection,
)
from repro.preprocessing.outliers import OutlierMethod


@pytest.fixture(scope="module")
def collection():
    c = generate_epc_collection(SyntheticConfig(n_certificates=2500, seed=31))
    noisy = apply_noise(c, NoiseConfig(seed=13))
    c.table = noisy.table
    return c


@pytest.fixture(scope="module")
def engine(collection):
    eng = Indice(
        collection,
        IndiceConfig(kmeans_n_init=2, k_range=(2, 8), geocoder_quota=500),
    )
    eng.preprocess()
    eng.analyze()
    return eng


class TestConfig:
    def test_defaults_match_paper(self):
        cfg = IndiceConfig()
        assert cfg.city == "Turin"
        assert cfg.building_type == "E.1.1"
        assert cfg.response == "eph"
        assert cfg.outlier_method is OutlierMethod.MAD
        assert cfg.discretization_plan == DEFAULT_DISCRETIZATION_PLAN
        assert cfg.rule_template.consequent_attributes == ("eph",)

    def test_response_in_features_rejected(self):
        with pytest.raises(ValueError):
            IndiceConfig(features=("eph", "eta_h"))

    def test_footnote4_plan(self):
        assert DEFAULT_DISCRETIZATION_PLAN["u_value_windows"] == 4
        assert DEFAULT_DISCRETIZATION_PLAN["u_value_opaque"] == 3
        assert DEFAULT_DISCRETIZATION_PLAN["eta_h"] == 3


class TestProvenance:
    def test_log_records_and_describes(self):
        log = ProvenanceLog()
        log.record("preprocessing", "test", value=1)
        log.record("analytics", "other")
        assert len(log) == 2
        assert log.stages() == ["preprocessing", "analytics"]
        assert "preprocessing/test (value=1)" in log.describe()
        assert len(log.for_stage("analytics")) == 1


class TestPreprocess:
    def test_outcome_shape(self, engine):
        outcome = engine._preprocessed
        assert outcome.n_rows_in == 2500
        assert 0 < outcome.n_rows_out < outcome.n_rows_in
        assert outcome.n_outlier_rows > 0
        assert set(outcome.univariate_outliers) == set(
            engine.config.features + (engine.config.response,)
        )

    def test_cleaning_scoped_to_city(self, engine, collection):
        report = engine._preprocessed.cleaning_report
        n_city = sum(1 for c in collection.table["city"] if c == "Turin")
        assert len(report.audits) == n_city
        assert report.resolution_rate() > 0.95

    def test_out_of_city_rows_untouched(self, engine, collection):
        """Non-Turin geospatial fields must survive preprocessing unchanged."""
        outcome = engine.preprocess()  # fresh run for a clean comparison
        dirty = collection.table
        # find a non-Turin row in the OUTPUT and match it by certificate id
        out_ids = {cid: i for i, cid in enumerate(outcome.table["certificate_id"])}
        checked = 0
        for i in range(dirty.n_rows):
            if dirty["city"][i] == "Turin":
                continue
            j = out_ids.get(dirty["certificate_id"][i])
            if j is None:
                continue  # dropped as outlier
            assert outcome.table["address"][j] == dirty["address"][i]
            lat_in, lat_out = dirty["latitude"][i], outcome.table["latitude"][j]
            assert (np.isnan(lat_in) and np.isnan(lat_out)) or lat_in == lat_out
            checked += 1
            if checked >= 25:
                break
        assert checked > 0

    def test_flagged_rows_removed(self, engine):
        """No surviving row may be flagged by the configured detector."""
        from repro.preprocessing.outliers import detect_outliers

        outcome = engine._preprocessed
        for name in engine.config.features:
            result = detect_outliers(outcome.table[name], engine.config.outlier_method)
            # re-detection on the filtered data may flag new borderline points,
            # but the gross planted outliers (x10/x100) must be gone
            values = outcome.table.column(name).non_missing()
            spec = engine.collection.schema.spec(name)
            assert values.max() <= spec.hi * 1.5


class TestAnalyze:
    def test_outcome_components(self, engine):
        outcome = engine._analyzed
        assert outcome.correlation.is_eligible()
        assert 2 <= outcome.clustering.chosen_k <= 8
        assert outcome.rules
        assert set(outcome.discretizations) <= set(DEFAULT_DISCRETIZATION_PLAN)

    def test_cluster_column_attached(self, engine):
        table = engine._analyzed.table
        assert "cluster" in table
        labels = [v for v in table["cluster"] if v is not None]
        assert len(set(labels)) == engine._analyzed.clustering.chosen_k

    def test_selection_is_case_study(self, engine):
        table = engine._analyzed.table
        assert all(v == "Turin" for v in table["city"])
        assert all(v == "E.1.1" for v in table["building_type"])

    def test_rules_explain_response(self, engine):
        for rule in engine._analyzed.rules:
            assert all(i.attribute == "eph" for i in rule.consequent)

    def test_clusters_order_response(self, engine):
        """Per-cluster EP_H means must differ (clusters separate performance)."""
        table = engine._analyzed.table
        means = table.aggregate("cluster", "eph", np.mean)
        means.pop(None, None)
        values = sorted(means.values())
        assert values[-1] > values[0] * 1.3


class TestDashboards:
    @pytest.mark.parametrize("stakeholder", list(Stakeholder))
    def test_dashboard_per_stakeholder(self, engine, stakeholder):
        dash = engine.build_dashboard(stakeholder)
        assert len(dash.panels) >= 5
        kinds = {p.kind for p in dash.panels}
        assert "map" in kinds
        assert "correlation_matrix" in kinds
        assert "rules_table" in kinds

    def test_unit_granularity_has_scatter(self, engine):
        dash = engine.build_dashboard(Stakeholder.CITIZEN, Granularity.UNIT)
        titles = " ".join(dash.panel_titles())
        assert "per certificate" in titles

    def test_district_granularity_has_choropleth(self, engine):
        dash = engine.build_dashboard(
            Stakeholder.PUBLIC_ADMINISTRATION, Granularity.DISTRICT
        )
        assert any("Average eph by district" in t for t in dash.panel_titles())

    def test_html_roundtrip(self, engine, tmp_path):
        dash = engine.build_dashboard(Stakeholder.PUBLIC_ADMINISTRATION)
        path = dash.save(tmp_path / "d.html")
        text = path.read_text()
        assert text.startswith("<!DOCTYPE html>")
        assert "<svg" in text

    def test_requires_analysis_first(self, collection):
        fresh = Indice(collection)
        with pytest.raises(RuntimeError, match="analyze"):
            fresh.build_dashboard(Stakeholder.CITIZEN)
        with pytest.raises(RuntimeError, match="preprocess"):
            fresh.select_case_study()

    def test_provenance_covers_all_stages(self, engine):
        engine.build_dashboard(Stakeholder.CITIZEN)
        assert set(engine.log.stages()) >= {
            "preprocessing", "selection", "analytics", "visualization",
        }
