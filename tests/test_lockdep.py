"""Tests for ``repro.checks.lockdep`` — the runtime lock-order sanitizer.

The static rules prove ordering over the code; these tests prove the
dynamic half: a synthetic two-lock inversion is caught deterministically
(on the first inverted *attempt*, no unlucky interleaving needed), clean
runs stay silent, fork-while-held is recorded, and the wrapper is a
faithful stand-in for the primitive it instruments.
"""

import threading

import pytest

from repro.checks import lockdep
from repro.checks.lockdep import (
    ENV_FLAG,
    LockDep,
    LockOrderError,
    SanitizedLock,
    enabled,
    resolve,
    wrap,
)

pytestmark = pytest.mark.checks


def _pair(dep):
    a = SanitizedLock(threading.Lock(), "a", dep)
    b = SanitizedLock(threading.Lock(), "b", dep)
    return a, b


class TestInversionDetection:
    def test_two_lock_inversion_raises_deterministically(self):
        dep = LockDep("test")
        a, b = _pair(dep)
        with a:
            with b:  # establishes a -> b
                pass
        with b:
            with pytest.raises(LockOrderError, match="inversion"):
                with a:  # b -> a closes the cycle: caught on attempt one
                    pass

    def test_inversion_detected_across_threads(self):
        # thread 1 teaches the graph a -> b; the observing thread then
        # attempts b -> a and is caught even though IT never held a first
        dep = LockDep("test")
        a, b = _pair(dep)

        def teach():
            with a:
                with b:
                    pass

        teacher = threading.Thread(target=teach)
        teacher.start()
        teacher.join()
        with b:
            with pytest.raises(LockOrderError):
                a.acquire()

    def test_no_inversion_run_is_silent(self):
        dep = LockDep("test")
        a, b = _pair(dep)
        for __ in range(100):  # same order every time: never raises
            with a:
                with b:
                    pass
        assert dep.violations == []
        assert dep.n_acquires == 200
        assert ("a", "b") in dep.edges
        assert ("b", "a") not in dep.edges

    def test_three_lock_transitive_inversion(self):
        dep = LockDep("test")
        a = SanitizedLock(threading.Lock(), "a", dep)
        b = SanitizedLock(threading.Lock(), "b", dep)
        c = SanitizedLock(threading.Lock(), "c", dep)
        with a:
            with b:
                pass
        with b:
            with c:
                pass
        with c:  # c -> a inverts through the a->b->c chain
            with pytest.raises(LockOrderError):
                a.acquire()

    def test_failed_acquire_holds_nothing(self):
        dep = LockDep("test")
        inner = threading.Lock()
        lock = SanitizedLock(inner, "a", dep)
        inner.acquire()  # wedge the primitive
        assert lock.acquire(blocking=False) is False
        assert dep.held() == ()
        inner.release()

    def test_release_order_is_free(self):
        # holding a,b and releasing a first must not corrupt the stack
        dep = LockDep("test")
        a, b = _pair(dep)
        a.acquire()
        b.acquire()
        a.release()
        assert dep.held() == ("b",)
        b.release()
        assert dep.held() == ()


class TestForkCheck:
    def test_fork_while_held_records_and_raises(self):
        # os.register_at_fork swallows hook exceptions, so the hook is
        # exercised directly: it must BOTH record and raise
        dep = LockDep("test")
        a, __ = _pair(dep)
        a.acquire()
        try:
            with pytest.raises(LockOrderError, match="fork"):
                dep._before_fork()
            assert len(dep.violations) == 1
            assert "'a'" in dep.violations[0]
            with pytest.raises(LockOrderError):
                dep.assert_clean()
        finally:
            a.release()

    def test_fork_with_nothing_held_is_silent(self):
        dep = LockDep("test")
        dep._before_fork()
        assert dep.violations == []
        dep.assert_clean()

    def test_parallel_map_refuses_to_fork_under_lock(self, monkeypatch):
        from repro.perf.parallel import ParallelMap

        monkeypatch.setenv(ENV_FLAG, "1")
        dep = resolve(None)
        lock = wrap(threading.Lock(), "parent.lock", dep)
        pm = ParallelMap(n_jobs=2, min_parallel_items=1)
        before = len(dep.violations)
        with lock:
            with pytest.raises(LockOrderError, match="pool spawn"):
                pm.map(abs, list(range(64)))
        assert len(dep.violations) == before + 1

    def test_parallel_map_forks_fine_with_no_lock_held(self, monkeypatch):
        from repro.perf.parallel import ParallelMap

        monkeypatch.setenv(ENV_FLAG, "1")
        pm = ParallelMap(n_jobs=2, min_parallel_items=1)
        assert pm.map(abs, [-3, -2, -1]) == [3, 2, 1]


class TestWrapperFidelity:
    def test_wrap_without_dep_returns_the_primitive(self):
        primitive = threading.Lock()
        assert wrap(primitive, "x", None) is primitive

    def test_semaphore_timeout_signature_passes_through(self):
        dep = LockDep("test")
        sem = SanitizedLock(threading.BoundedSemaphore(1), "sem", dep)
        assert sem.acquire(timeout=0.01) is True
        assert sem.acquire(timeout=0.01) is False  # exhausted, not held
        assert dep.held() == ("sem",)
        sem.release()
        assert dep.held() == ()

    def test_locked_and_getattr_forward(self):
        dep = LockDep("test")
        lock = SanitizedLock(threading.Lock(), "x", dep)
        assert lock.locked() is False
        with lock:
            assert lock.locked() is True

    def test_reacquiring_same_wrapper_is_not_an_inversion(self):
        # an RLock re-entered through its own wrapper must not trip the
        # order check (self-edges are the static rule's concern)
        dep = LockDep("test")
        rlock = SanitizedLock(threading.RLock(), "r", dep)
        with rlock:
            with rlock:
                pass
        assert dep.violations == []


class TestResolution:
    def test_explicit_dep_wins(self, monkeypatch):
        monkeypatch.delenv(ENV_FLAG, raising=False)
        dep = LockDep("mine")
        assert resolve(dep) is dep
        assert resolve(None) is None
        assert not enabled()

    def test_env_flag_arms_the_default(self, monkeypatch):
        monkeypatch.setenv(ENV_FLAG, "1")
        assert enabled()
        assert resolve(None) is lockdep.DEFAULT
        monkeypatch.setenv(ENV_FLAG, "0")
        assert not enabled()
        assert resolve(None) is None

    def test_store_constructs_sanitized_locks_under_env(self, monkeypatch):
        from repro.serving.store import ArtifactStore

        monkeypatch.setenv(ENV_FLAG, "1")
        store = ArtifactStore("v1", {"/x": ("text/plain", lambda: "hi")})
        assert isinstance(store._meta, SanitizedLock)
        assert store.get("/x").body == b"hi"

    def test_store_locks_stay_raw_by_default(self, monkeypatch):
        from repro.serving.store import ArtifactStore

        monkeypatch.delenv(ENV_FLAG, raising=False)
        store = ArtifactStore("v1", {"/x": ("text/plain", lambda: "hi")})
        assert not isinstance(store._meta, SanitizedLock)
