"""Tests for predicates, the query engine and stakeholder profiles."""

import numpy as np
import pytest

from repro.dataset.table import Column, Table
from repro.geo.regions import Granularity, Region, RegionHierarchy
from repro.query import (
    Between,
    Comparison,
    IsMissing,
    OneOf,
    Query,
    QueryEngine,
    ReportKind,
    Stakeholder,
    WithinRegion,
    profile_for,
)


@pytest.fixture
def table():
    return Table(
        [
            Column.numeric("eph", [50.0, 150.0, None, 300.0]),
            Column.categorical("building_type", ["E.1.1", "E.1.1", "E.2", None]),
            Column.categorical("energy_class", ["B", "F", "C", "G"]),
            Column.numeric("latitude", [45.0, 45.0, 46.0, None]),
            Column.numeric("longitude", [7.0, 7.5, 7.0, 7.0]),
        ]
    )


class TestComparison:
    def test_numeric_ops(self, table):
        assert Comparison("eph", "<", 100).mask(table).tolist() == [True, False, False, False]
        assert Comparison("eph", ">=", 150).mask(table).tolist() == [False, True, False, True]

    def test_missing_never_matches(self, table):
        assert not Comparison("eph", "<", 1e9).mask(table)[2]
        assert not Comparison("eph", "!=", 0).mask(table)[2]

    def test_categorical_equality(self, table):
        assert Comparison("building_type", "==", "E.1.1").mask(table).tolist() == [
            True, True, False, False,
        ]

    def test_categorical_inequality_missing_false(self, table):
        assert Comparison("building_type", "!=", "E.2").mask(table).tolist() == [
            True, True, False, False,
        ]

    def test_order_on_categorical_rejected(self, table):
        with pytest.raises(ValueError, match="numeric"):
            Comparison("building_type", "<", "E.2").mask(table)

    def test_unknown_operator(self):
        with pytest.raises(ValueError):
            Comparison("eph", "~", 1)


class TestOtherPredicates:
    def test_between(self, table):
        assert Between("eph", 100, 200).mask(table).tolist() == [False, True, False, False]

    def test_one_of_categorical(self, table):
        mask = OneOf("energy_class", ("F", "G")).mask(table)
        assert mask.tolist() == [False, True, False, True]

    def test_one_of_numeric(self, table):
        mask = OneOf("eph", (50.0, 300.0)).mask(table)
        assert mask.tolist() == [True, False, False, True]

    def test_is_missing(self, table):
        assert IsMissing("eph").mask(table).tolist() == [False, False, True, False]

    def test_combinators(self, table):
        p = Comparison("building_type", "==", "E.1.1") & Comparison("eph", ">", 100)
        assert p.mask(table).tolist() == [False, True, False, False]
        q = Comparison("energy_class", "==", "B") | Comparison("energy_class", "==", "G")
        assert q.mask(table).tolist() == [True, False, False, True]
        assert (~IsMissing("eph")).mask(table).tolist() == [True, True, False, True]

    def test_within_region(self, table):
        city = Region("c", Granularity.CITY, [(44, 6), (44, 8), (46.5, 8), (46.5, 6)])
        west = Region("west", Granularity.DISTRICT, [(44, 6), (44, 7.2), (46.5, 7.2), (46.5, 6)])
        h = RegionHierarchy(city=city, districts=[west])
        mask = WithinRegion(h, Granularity.DISTRICT, "west").mask(table)
        # row 0 at lon 7.0 inside; row 1 at 7.5 outside; row 3 has NaN lat
        assert mask.tolist() == [True, False, True, False]

    def test_within_unknown_region(self, table):
        h = RegionHierarchy(city=Region("c", Granularity.CITY, [(0, 0), (0, 1), (1, 1)]))
        with pytest.raises(ValueError, match="unknown"):
            WithinRegion(h, Granularity.DISTRICT, "nope").mask(table)


class TestQueryEngine:
    def test_filter_sort_limit_project(self, table):
        q = (
            Query()
            .with_filter(Comparison("eph", ">", 0))
            .with_sort("eph", descending=True)
            .with_limit(2)
            .with_select("eph", "energy_class")
        )
        result = QueryEngine(table).execute(q)
        assert result.table.column_names == ["eph", "energy_class"]
        assert result.table["eph"].tolist() == [300.0, 150.0]
        assert result.n_input_rows == 4
        assert result.selectivity == pytest.approx(0.5)

    def test_empty_query_identity(self, table):
        result = QueryEngine(table).execute(Query())
        assert result.n_rows == 4

    def test_with_filter_composes_and(self, table):
        q = Query(where=Comparison("eph", ">", 0)).with_filter(
            Comparison("eph", "<", 200)
        )
        result = QueryEngine(table).execute(q)
        assert result.table["eph"].tolist() == [50.0, 150.0]

    def test_aggregate(self, table):
        q = Query(where=Comparison("eph", ">", 0))
        means = QueryEngine(table).aggregate(q, by="energy_class", attribute="eph")
        assert means["B"] == 50.0
        assert means["F"] == 150.0

    def test_selectivity_empty_table(self):
        empty = Table([Column.numeric("eph", [])])
        result = QueryEngine(empty).execute(Query())
        assert result.selectivity == 0.0


class TestStakeholders:
    @pytest.mark.parametrize("stakeholder", list(Stakeholder))
    def test_profiles_complete(self, stakeholder):
        profile = profile_for(stakeholder)
        assert profile.stakeholder is stakeholder
        assert profile.default_attributes
        assert profile.reports
        for report in profile.reports:
            assert isinstance(report.kind, ReportKind)
            assert isinstance(report.granularity, Granularity)

    def test_pa_targets_renovation(self):
        profile = profile_for(Stakeholder.PUBLIC_ADMINISTRATION)
        report = profile.report("renovation_targets")
        assert report.kind is ReportKind.CLUSTER_MARKER_MAP

    def test_scientist_gets_correlation_first(self):
        profile = profile_for(Stakeholder.ENERGY_SCIENTIST)
        assert profile.reports[0].kind is ReportKind.CORRELATION_MATRIX

    def test_unknown_report_name(self):
        with pytest.raises(KeyError):
            profile_for(Stakeholder.CITIZEN).report("nope")

    def test_case_study_filter_is_e11(self, table):
        """Every profile's default query restricts to E.1.1, as in Section 3."""
        for stakeholder in Stakeholder:
            report = profile_for(stakeholder).reports[0]
            mask = report.query.where.mask(table)
            assert mask.tolist()[:2] == [True, True]
            assert not mask[2]
