"""Tests for the runtime effect auditor — the dynamic half of CACHE002.

Three layers of coverage:

* unit: region attribution, the deterministic raise on the first
  un-fingerprinted ``os.environ`` read, the instrumentation allowlist,
  and patch install/uninstall hygiene;
* integration: a seeded un-fingerprinted read inside a real cached
  region (an :class:`ArtifactStore` render) is flagged at the read site;
* soundness: the real 8000-certificate pipeline runs audited end to
  end, and every effect category *observed* at runtime appears in the
  static :class:`~repro.checks.effects.EffectModel` summary of the
  matching root (observed ⊆ static) — the cross-check that keeps the
  static analyzer honest.
"""

import os
import time
from pathlib import Path

import pytest

import repro
from repro import Indice, IndiceConfig
from repro.checks import effectaudit
from repro.checks.checker import Checker, collect_python_files
from repro.checks.effectaudit import (
    EffectAudit,
    EffectAuditError,
    audited,
    region,
)
from repro.checks.effects import EffectModel
from repro.checks.project import ProjectIndex
from repro.dataset import (
    NoiseConfig,
    SyntheticConfig,
    apply_noise,
    generate_epc_collection,
)
from repro.serving.store import ArtifactStore

pytestmark = pytest.mark.checks

SRC = collect_python_files([Path(repro.__file__).parent])


@pytest.fixture(autouse=True)
def _pristine_audit(monkeypatch):
    """Each test starts un-armed, whatever the outer environment exports.

    CI runs this suite under ``REPRO_AUDIT_EFFECTS=1``; the tests that
    need the flag set it themselves, and the ones that prove the off
    path must really be off.
    """
    monkeypatch.delenv(effectaudit.ENV_FLAG, raising=False)
    effectaudit.DEFAULT.uninstall()
    yield
    effectaudit.DEFAULT.uninstall()


@pytest.fixture
def audit():
    instance = EffectAudit("test")
    yield instance
    instance.uninstall()


def _src_effect_model() -> EffectModel:
    checker = Checker()
    summaries = [checker._summarize(path)[0] for path in SRC]
    return EffectModel.of(ProjectIndex(summaries))


class TestRegions:
    def test_reads_attribute_to_innermost_region(self, audit):
        with region(audit, "outer"):
            with region(audit, "inner"):
                os.environ.get("REPRO_SANITIZE_LOCKS", "")
            time.time()
        assert audit.observed["inner"] == {"env_read:REPRO_SANITIZE_LOCKS"}
        assert audit.observed["outer"] == {"clock:time.time"}

    def test_reads_outside_any_region_are_free(self, audit):
        with region(audit, "warmup"):
            pass  # installs the proxies
        os.environ.get("HOME", "")
        time.time()
        assert audit.observed == {"warmup": set()}

    def test_audited_decorator_is_a_noop_when_disabled(self, audit):
        @audited("stage")
        def stage():
            return os.environ.get("ANYTHING", "unseen")

        # resolve(None) finds neither an explicit audit nor the env flag
        assert stage() == "unseen"

    def test_region_with_none_audit_is_free(self):
        with region(None, "never"):
            pass


class TestViolations:
    def test_unfingerprinted_env_read_raises_deterministically(self, audit):
        with pytest.raises(EffectAuditError, match="EPC_SECRET_MODE"):
            with region(audit, "cached"):
                os.environ.get("EPC_SECRET_MODE", "off")
        assert len(audit.violations) == 1
        assert "cached" in audit.violations[0]
        assert audit.observed["cached"] == {"env_read:EPC_SECRET_MODE"}

    def test_instrumentation_flags_are_allowlisted(self, audit):
        with region(audit, "cached"):
            os.environ.get("REPRO_SANITIZE_LOCKS", "")
            os.environ.get("REPRO_AUDIT_EFFECTS", "")
        assert audit.violations == []

    def test_os_getenv_is_routed_through_the_proxy(self, audit):
        with pytest.raises(EffectAuditError, match="EPC_HIDDEN"):
            with region(audit, "cached"):
                os.getenv("EPC_HIDDEN")

    def test_env_writes_record_but_never_raise(self, audit):
        with region(audit, "stage"):
            os.environ["EPC_AUDIT_TMP"] = "1"
            del os.environ["EPC_AUDIT_TMP"]
        assert audit.observed["stage"] == {"env_write:EPC_AUDIT_TMP"}
        assert audit.violations == []


class TestPatchHygiene:
    def test_uninstall_restores_the_original_ambient_inputs(self):
        original_environ = os.environ
        original_time = time.time
        audit = EffectAudit("t")
        audit.install()
        assert os.environ is not original_environ
        audit.uninstall()
        assert os.environ is original_environ
        assert time.time is original_time

    def test_second_audit_cannot_steal_the_patches(self):
        first, second = EffectAudit("first"), EffectAudit("second")
        first.install()
        try:
            with pytest.raises(EffectAuditError, match="already owns"):
                second.install()
        finally:
            first.uninstall()

    def test_resolve_prefers_explicit_then_env_flag(self, monkeypatch):
        explicit = EffectAudit("explicit")
        assert effectaudit.resolve(explicit) is explicit
        monkeypatch.delenv(effectaudit.ENV_FLAG, raising=False)
        assert effectaudit.resolve(None) is None
        monkeypatch.setenv(effectaudit.ENV_FLAG, "1")
        assert effectaudit.resolve(None) is effectaudit.DEFAULT


class TestCrossCheck:
    def test_observed_subset_passes(self, audit):
        with region(audit, "stage"):
            time.time()
        audit.assert_subset_of("stage", {"clock:time.time", "fs_write:open"})

    def test_observed_category_missing_from_static_raises(self, audit):
        with region(audit, "stage"):
            time.time()
        with pytest.raises(EffectAuditError, match="clock"):
            audit.assert_subset_of("stage", {"fs_write:open"})

    def test_describe_lists_regions_stably(self, audit):
        with region(audit, "b"):
            pass
        with region(audit, "a"):
            time.time()
        text = audit.describe()
        assert text.index("a:") < text.index("b:")
        assert "(pure)" in text


class TestSeededCachedRegion:
    """A render region with a hidden env read: the integration contract."""

    def test_store_render_with_hidden_env_read_is_flagged(self, audit):
        store = ArtifactStore(
            "v1",
            {"/report": ("text/plain", lambda: os.environ.get("EPC_MODE", ""))},
            effectaudit=audit,
        )
        with pytest.raises(EffectAuditError, match="EPC_MODE"):
            store.get("/report")
        # the failed render cached nothing: the region really aborted
        assert store.render_count("/report") == 0
        assert audit.observed["render:/report"] == {"env_read:EPC_MODE"}

    def test_clean_render_passes_audited(self, audit):
        store = ArtifactStore(
            "v1",
            {"/ok": ("text/plain", lambda: "payload")},
            effectaudit=audit,
        )
        assert store.get("/ok").body == b"payload"
        assert audit.observed["render:/ok"] == set()


class TestAuditedPipeline:
    """The real pipeline, audited, cross-checked against the static model."""

    def _run_audited(self, n=8000, seed=7):
        collection = generate_epc_collection(
            SyntheticConfig(n_certificates=n, seed=seed)
        )
        noisy = apply_noise(collection, NoiseConfig(seed=seed + 1))
        collection.table = noisy.table
        engine = Indice(
            collection,
            IndiceConfig(kmeans_n_init=2, k_range=(2, 4)),
        )
        engine.preprocess()
        engine.analyze()
        return engine

    def test_pipeline_is_audit_clean_and_observed_subset_of_static(
        self, monkeypatch
    ):
        monkeypatch.setenv(effectaudit.ENV_FLAG, "1")
        effectaudit.DEFAULT.reset()
        try:
            self._run_audited()
            observed = dict(effectaudit.DEFAULT.observed)
        finally:
            effectaudit.DEFAULT.uninstall()
        assert set(observed) == {"preprocess", "analyze"}

        model = _src_effect_model()
        for stage, gid in (
            ("preprocess", "repro.core.engine:Indice.preprocess"),
            ("analyze", "repro.core.engine:Indice.analyze"),
        ):
            static = model.effects(gid)
            extra = effectaudit.categories(observed[stage]) - (
                effectaudit.categories(static) | {"env_read"}
            )
            assert extra == set(), (
                f"{stage} observed categories {sorted(extra)} missing "
                "from its static summary"
            )
            # and nothing un-fingerprinted was read: only allowlisted
            # instrumentation flags may appear as env reads
            for token in observed[stage]:
                category, _, detail = token.partition(":")
                if category == "env_read":
                    assert detail in effectaudit.INSTRUMENTATION_ENV
