"""Tests for the temporal analytics module and its dashboard wiring."""

import numpy as np
import pytest

from repro import Indice, IndiceConfig, Stakeholder
from repro.analytics.temporal import temporal_summary
from repro.dataset import SyntheticConfig, generate_epc_collection
from repro.dataset.table import Column, Table


def year_table():
    return Table(
        [
            Column.numeric("certificate_year", [2016, 2016, 2017, 2018, 2018, None]),
            Column.numeric("eph", [100.0, 110.0, 90.0, 80.0, None, 50.0]),
            Column.categorical(
                "energy_class", ["F", "F", "D", "B", "C", "A4"]
            ),
        ]
    )


class TestTemporalSummary:
    def test_years_sorted_and_counts(self):
        summary = temporal_summary(year_table())
        assert summary.years() == [2016, 2017, 2018]
        assert summary.counts() == [2, 1, 2]

    def test_missing_year_skipped(self):
        summary = temporal_summary(year_table())
        assert sum(summary.counts()) == 5

    def test_mean_ignores_missing_response(self):
        summary = temporal_summary(year_table())
        by_year = {s.year: s for s in summary.slices}
        assert by_year[2016].mean_response == pytest.approx(105.0)
        assert by_year[2018].mean_response == pytest.approx(80.0)  # one NaN dropped

    def test_class_mix(self):
        summary = temporal_summary(year_table())
        first = summary.slices[0]
        assert dict(first.class_mix) == {"F": 2}
        assert first.class_share("F") == 1.0
        assert first.class_share("A4") == 0.0

    def test_trend_negative_for_improving_stock(self):
        summary = temporal_summary(year_table())
        assert summary.response_trend() < 0  # 105 -> 90 -> 80

    def test_trend_nan_single_year(self):
        table = Table(
            [
                Column.numeric("certificate_year", [2016, 2016]),
                Column.numeric("eph", [100.0, 120.0]),
                Column.categorical("energy_class", ["F", "F"]),
            ]
        )
        assert np.isnan(temporal_summary(table).response_trend())

    def test_synthetic_collection_covers_paper_years(self):
        collection = generate_epc_collection(SyntheticConfig(n_certificates=2000, seed=9))
        summary = temporal_summary(collection.table)
        assert summary.years() == [2016, 2017, 2018]
        assert all(n > 0 for n in summary.counts())


class TestDashboardWiring:
    @pytest.fixture(scope="class")
    def engine(self):
        collection = generate_epc_collection(SyntheticConfig(n_certificates=1200, seed=6))
        eng = Indice(
            collection,
            IndiceConfig(kmeans_n_init=2, k_range=(2, 5), run_multivariate_outliers=False),
        )
        eng.preprocess()
        eng.analyze()
        return eng

    def test_scientist_gets_boxplot(self, engine):
        dash = engine.build_dashboard(Stakeholder.ENERGY_SCIENTIST)
        assert any("Boxplot of eph" == p.title for p in dash.panels)

    def test_pa_gets_yearly_chart(self, engine):
        dash = engine.build_dashboard(Stakeholder.PUBLIC_ADMINISTRATION)
        assert any("certificate_year" in p.title for p in dash.panels)
        yearly = next(p for p in dash.panels if "certificate_year" in p.title)
        assert "trend" in yearly.caption

    def test_citizen_gets_neither(self, engine):
        dash = engine.build_dashboard(Stakeholder.CITIZEN)
        titles = " | ".join(p.title for p in dash.panels)
        assert "Boxplot" not in titles
        assert "certificate_year" not in titles
