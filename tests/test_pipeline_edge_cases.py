"""Failure-injection and edge-case tests across the pipeline.

The paper's system runs on open data submitted by thousands of
certifiers; the pipeline must survive pathological inputs rather than
assume the happy path.  These tests inject the failure modes a real
deployment sees: empty selections, fully-corrupted fields, exhausted
quotas, degenerate distributions and hostile strings.
"""

import numpy as np
import pytest

from repro import Indice, IndiceConfig, Stakeholder
from repro.analytics.discretize import discretize_attribute, quantile_discretization
from repro.analytics.kmeans import kmeans_auto, standardize
from repro.dataset import NoiseConfig, SyntheticConfig, apply_noise, generate_epc_collection
from repro.dataset.table import Column, ColumnKind, Table
from repro.preprocessing import (
    AddressCleaner,
    CleaningConfig,
    MatchStatus,
    SimulatedGeocoder,
)


@pytest.fixture(scope="module")
def tiny_collection():
    return generate_epc_collection(SyntheticConfig(n_certificates=600, seed=99))


class TestHostileAddresses:
    @pytest.mark.parametrize(
        "hostile",
        [
            "",                          # empty
            "    ",                      # whitespace only
            "12345",                     # digits only
            "!!!???",                    # punctuation only
            "a" * 500,                   # absurdly long
            "via " + "x" * 200,          # long tail
            "VIA ROMA; DROP TABLE EPC",  # injection-looking content
            "via rómà ünïcodé",          # accents beyond Italian
        ],
    )
    def test_cleaner_never_crashes(self, tiny_collection, hostile):
        cleaner = AddressCleaner(
            tiny_collection.street_map, CleaningConfig(use_geocoder=False)
        )
        street, status, sim = cleaner.resolve_street(hostile)
        assert status in set(MatchStatus)
        assert 0.0 <= sim <= 1.0

    def test_geocoder_never_crashes(self, tiny_collection):
        geocoder = SimulatedGeocoder(tiny_collection.street_map, quota=100)
        for hostile in ("", "   ", "123", "!!!", "a" * 300):
            response = geocoder.geocode(hostile)
            assert response.status in ("ok", "not_found")

    def test_clean_table_with_all_fields_missing(self, tiny_collection):
        table = Table(
            [
                Column.text("address", [None] * 5),
                Column.text("house_number", [None] * 5),
                Column.categorical("zip_code", [None] * 5),
                Column.numeric("latitude", [None] * 5),
                Column.numeric("longitude", [None] * 5),
            ]
        )
        cleaner = AddressCleaner(
            tiny_collection.street_map, CleaningConfig(use_geocoder=False)
        )
        report = cleaner.clean_table(table)
        assert all(a.status is MatchStatus.SKIPPED for a in report.audits)
        assert report.resolution_rate() == 0.0


class TestDegenerateDistributions:
    def test_quantile_discretization_with_ties_collapses(self):
        values = np.array([1.0] * 95 + [2.0] * 5)
        disc = quantile_discretization(values, 4)
        assert disc.n_classes < 4  # duplicate quantile edges collapsed
        assert disc.label_of(1.0) is not None

    def test_cart_discretization_tiny_sample(self):
        values = np.arange(10.0)
        response = values * 2
        disc = discretize_attribute(values, response, 3, min_samples_leaf=30)
        assert disc.n_classes == 1  # not enough rows for any split

    def test_kmeans_auto_on_single_blob(self):
        rng = np.random.default_rng(0)
        matrix = rng.normal(0, 1, (200, 3))
        auto = kmeans_auto(matrix, (2, 6), n_init=2)
        assert 2 <= auto.chosen_k <= 6  # no crash, a defensible K

    def test_standardize_single_row(self):
        z, __ = standardize(np.array([[3.0, 4.0]]))
        assert np.allclose(z, 0.0)


class TestPipelineResilience:
    def test_zero_quota_pipeline_still_completes(self, tiny_collection):
        noisy = apply_noise(tiny_collection, NoiseConfig(seed=1))
        collection = generate_epc_collection(SyntheticConfig(n_certificates=600, seed=99))
        collection.table = noisy.table
        engine = Indice(
            collection,
            IndiceConfig(geocoder_quota=0, kmeans_n_init=2, k_range=(2, 5),
                         run_multivariate_outliers=False),
        )
        dash = engine.run(Stakeholder.CITIZEN)
        assert dash.panels
        cleaning = engine._preprocessed.cleaning_report
        assert cleaning.geocoder_quota_exhausted or cleaning.geocoder_requests == 0

    def test_empty_selection_raises_cleanly(self, tiny_collection):
        engine = Indice(
            tiny_collection,
            IndiceConfig(city="Atlantis", kmeans_n_init=2, run_multivariate_outliers=False),
        )
        engine.preprocess()
        selected = engine.select_case_study()
        assert selected.n_rows == 0
        with pytest.raises(ValueError):
            engine.analyze(selected)

    def test_extreme_noise_pipeline_completes(self):
        collection = generate_epc_collection(SyntheticConfig(n_certificates=800, seed=5))
        brutal = NoiseConfig(
            seed=2,
            p_address_typo=0.6,
            p_zip_missing=0.3,
            p_coords_missing=0.3,
            p_numeric_outlier=0.05,
            p_numeric_missing=0.05,
        )
        noisy = apply_noise(collection, brutal)
        collection.table = noisy.table
        engine = Indice(
            collection, IndiceConfig(kmeans_n_init=2, k_range=(2, 5))
        )
        dash = engine.run(Stakeholder.PUBLIC_ADMINISTRATION)
        assert dash.panels
        # heavy corruption must cost resolution, not correctness
        assert engine._preprocessed.cleaning_report.resolution_rate() > 0.6

    def test_noise_free_input_is_mostly_untouched(self, tiny_collection):
        """Cleaning a clean collection must not rewrite resolved streets."""
        engine = Indice(
            tiny_collection,
            IndiceConfig(kmeans_n_init=2, run_multivariate_outliers=False),
        )
        outcome = engine.preprocess(tiny_collection.table)
        report = outcome.cleaning_report
        rewritten = [
            a for a in report.audits
            if a.status is MatchStatus.EXACT and "address" in a.repaired_fields
        ]
        assert not rewritten

    def test_rules_empty_when_thresholds_impossible(self, tiny_collection):
        from repro.analytics.rules import RuleConstraints

        engine = Indice(
            tiny_collection,
            IndiceConfig(
                kmeans_n_init=2,
                k_range=(2, 5),
                run_multivariate_outliers=False,
                rule_constraints=RuleConstraints(min_support=0.99, min_confidence=0.99),
            ),
        )
        engine.preprocess()
        outcome = engine.analyze()
        assert outcome.rules == []
        # dashboard must still render with an empty rules table
        dash = engine.build_dashboard(Stakeholder.ENERGY_SCIENTIST)
        assert any(p.kind == "rules_table" for p in dash.panels)
