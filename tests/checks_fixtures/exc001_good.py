"""EXC001 negative: narrow, re-raising, or degradation-recording handlers."""


def narrow(work):
    try:
        return work()
    except ValueError:
        return None


def reraise(work):
    try:
        return work()
    except Exception as exc:
        raise RuntimeError("wrapped") from exc


def recorded(work, log):
    try:
        return work()
    except Exception:
        log.record("stage", "degradation", kind="work_failed")
        return None
