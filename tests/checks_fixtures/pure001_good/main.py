"""PURE001 negative, call site: imported workers return values only."""

import functools

from helpers import normalize, scale


def run(executor, items, table):
    first = executor.map(normalize, items)
    second = executor.map_table(functools.partial(scale, 2.0), table)
    return first, second
