"""PURE001 negative, workers: pure functions over their arguments."""

_FACTORS = {"kwh": 1.0, "m2": 0.5}  # read-only: never mutated


def normalize(item):
    return item * _FACTORS["kwh"]


def scale(factor, row):
    return [value * factor for value in row]
