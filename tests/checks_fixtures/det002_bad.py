"""DET002 positive: wall-clock and entropy reads (4 findings)."""

import os
import time
from datetime import datetime
from uuid import uuid4


def stamp():
    started = time.time()
    today = datetime.now()
    run_id = uuid4()
    token = os.urandom(8)
    return started, today, run_id, token
