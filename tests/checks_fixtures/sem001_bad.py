"""SEM001 positive: a leaked slot and an over-release."""
import threading

slots = threading.Semaphore(8)


def admit(job):
    if not slots.acquire(timeout=0.05):
        return "shed"
    if job.cancelled:
        return "cancelled"  # leaked: the acquired slot is never released
    try:
        return job.run()
    finally:
        slots.release()


def drain(job):
    ok = slots.acquire(timeout=0.05)
    try:
        if not ok:
            return "shed"
        return job.run()
    finally:
        slots.release()  # over-release: runs even when acquire timed out
