"""PAR001 positive: unpicklable or stale-capture submissions (3 findings)."""

_CACHE = {}


def warm_cache(entries):
    _CACHE.update(entries)


def lookup(item):
    return _CACHE.get(item)


def run(executor, items):
    first = executor.map(lookup, items)
    second = executor.map(lambda item: item + 1, items)

    def helper(item):
        return item * 2

    third = executor.map(helper, items)
    return first, second, third
