"""LOCK003 positive: attributes mutated under their lock AND bare."""
import threading


class Tally:
    def __init__(self):
        self._lock = threading.Lock()
        self.pending = 0
        self.total = 0

    def start(self, worker):
        threading.Thread(target=self.add).start()

    def add(self):
        with self._lock:
            self.pending += 1
        self.total += 1  # bare: races with flush()'s locked write

    def flush(self):
        with self._lock:
            self.total += self.pending
            self.pending = 0

    def reset(self):
        self.pending = 0  # bare: races with add()/flush()
