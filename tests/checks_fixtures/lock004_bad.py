"""LOCK004 positive: sleeping, socket IO and rendering under a lock."""
import threading
import time

flight = threading.Lock()


def retry_render(renderer):
    with flight:
        time.sleep(0.1)  # every contender sleeps behind this
        return renderer.run()


def broadcast(sock, payload):
    with flight:
        sock.sendall(payload)  # socket IO under the lock


def coalesce(path, render_page):
    with flight:
        return render_page(path)  # rendering serialized on the lock
