"""PAR004 positive: spill maps without cleanup (2 findings)."""

from repro.perf.spill import SpillFile


def peek_rows(path):
    # opened and read, never closed: the map and fd leak with the caller
    spill = SpillFile.open(path)
    return spill.n_rows


def read_column(path, name):
    # an exception in column() skips the close below it
    spill = SpillFile.open(path)
    column = spill.column(name)
    spill.close()
    return column
