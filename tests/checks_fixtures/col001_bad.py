"""COL001 positive: table columns read with no producer (2 findings)."""


def build_schema():
    return [
        AttributeSpec("eph", "numeric"),
        AttributeSpec("heated_surface", "numeric"),
    ]


def read(table):
    good = table["eph"]
    ghost = table["epw"]
    other = table.column("heated_surfaces")
    return good, ghost, other
