"""DET003 positive: set order escaping into ordered data (3 findings)."""


def leak(items):
    unique = set(items)
    ordered = list(unique)
    for item in unique:
        ordered.append(item)
    return ",".join({str(i) for i in items}), ordered
