"""DET004 positive: taint reaches serialized sinks via the call graph (2 findings)."""

import json
import time


def stamp():
    return time.time()  # repro: noqa[DET002] — the taint source under test


def labels():
    return {"kwh", "m2", "floor"}


def write_report(fh):
    # the wall-clock value crosses a function boundary before being dumped
    json.dump({"generated": stamp()}, fh)


def dump_labels():
    # set iteration order crosses a function boundary before serializing
    return json.dumps(list(labels()))
