"""MUT001 negative: None defaults with inside-the-function construction."""


def accumulate(value, into=None):
    into = [] if into is None else into
    into.append(value)
    return into
