"""COL003 positive: specs referencing undeclared columns (2 findings)."""


def build_schema():
    return [
        AttributeSpec("eph", "numeric"),
        AttributeSpec("u_value_opaque", "numeric"),
    ]


RESPONSE = "eph"

FILTERS = (
    Comparison("energy_klass", "==", "A"),
    Comparison(RESPONSE, ">", 0),
    Comparison("u_value_opaque", ">", 0.8),
)

DEFAULT_DISCRETIZATION_PLAN = {
    "eph": 4,
    "wall_thickness": 3,
}
