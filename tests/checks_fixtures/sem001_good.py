"""SEM001 negative: every path releases exactly what it acquired."""
import threading

slots = threading.Semaphore(8)


def admit(job):
    if not slots.acquire(timeout=0.05):
        return "shed"
    try:
        if job.cancelled:
            return "cancelled"  # the finally still releases the slot
        return job.run()
    finally:
        slots.release()


def drain(job):
    ok = slots.acquire(timeout=0.05)
    try:
        if not ok:
            return "shed"
        return job.run()
    finally:
        if ok:  # release matches the acquire outcome
            slots.release()
