"""CFG001 positive: config/CLI drift (3 findings)."""

import argparse
from dataclasses import dataclass

PERF_ONLY_FIELDS = ("n_jobs", "stage_cache", "cache_dir")

_PREPROCESS_FIELDS = ("seed",)


@dataclass
class IndiceConfig:
    seed: int = 0
    n_jobs: int = 1
    stage_cache: bool = True
    cache_dir: str = ""


def build_parser():
    parser = argparse.ArgumentParser()
    parser.add_argument("--jobs", type=int, default=1)
    parser.add_argument("--no-cache", action="store_true")
    return parser


def apply_arguments(config: IndiceConfig, args):
    config.njobs = args.jobs
    config.stage_cache = not args.no_cache
    config.cache_dir = str(args.cachedir)
    return config
