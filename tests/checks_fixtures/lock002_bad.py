"""LOCK002 positive: conflicting acquisition orders + a self-deadlock."""
import threading

head = threading.Lock()
tail = threading.Lock()


def push_front(queue, item):
    with head:
        with tail:  # order: head -> tail
            queue.insert(0, item)


def push_back(queue, item):
    with tail:
        with head:  # order: tail -> head — closes the cycle
            queue.append(item)


class Box:
    def __init__(self):
        self._guard = threading.Lock()
        self.value = None

    def _store(self, value):
        with self._guard:  # re-acquired: _set already holds it
            self.value = value

    def _set(self, value):
        with self._guard:
            self._store(value)  # non-reentrant Lock self-deadlocks here
