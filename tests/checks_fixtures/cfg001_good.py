"""CFG001 negative: every field, flag and args read is in lockstep."""

import argparse
from dataclasses import dataclass, field

PERF_ONLY_FIELDS = ("n_jobs", "stage_cache", "cache_dir", "resilience")

_PREPROCESS_FIELDS = ("seed",)


@dataclass
class IndiceConfig:
    seed: int = 0
    n_jobs: int = 1
    stage_cache: bool = True
    cache_dir: str = ""
    resilience: dict = field(default_factory=dict)


def build_parser():
    parser = argparse.ArgumentParser()
    parser.add_argument("--jobs", type=int, default=1)
    parser.add_argument("--no-cache", action="store_true")
    parser.add_argument("--cache-dir", default="")
    return parser


def apply_arguments(config: IndiceConfig, args):
    config.n_jobs = args.jobs
    config.stage_cache = not args.no_cache
    config.cache_dir = str(args.cache_dir)
    return config
