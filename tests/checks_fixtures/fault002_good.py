"""FAULT002 negative: retried callables are replay-safe."""

import os
import tempfile


def retry_with_backoff(func, policy=None, retry_on=()):
    return func()


def publish(payload, path):
    # atomic publication: a retried attempt rewrites the same bytes and
    # os.replace makes the final name appear exactly once
    fd, tmp_name = tempfile.mkstemp(dir=".")
    with os.fdopen(fd, "wb") as fh:
        fh.write(payload)
    os.replace(tmp_name, path)


def safe(payload, path):
    retry_with_backoff(lambda: publish(payload, path))
    retry_with_backoff(lambda: len(payload))
