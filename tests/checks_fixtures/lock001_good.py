"""LOCK001 negative: every acquire has a provable release path."""

import threading

_lock = threading.Lock()


class Gate:
    def __init__(self):
        self._slots = threading.BoundedSemaphore(4)

    def admit(self, work):
        # conditional acquire, then try/finally owns the release
        if not self._slots.acquire(timeout=0.1):
            return None
        try:
            return work()
        finally:
            self._slots.release()

    def admit_or_raise(self, work):
        # factory pattern: release on failure, ownership kept on success
        self._slots.acquire()
        try:
            return work()
        except BaseException:
            self._slots.release()
            raise


def update(state, key, value):
    # the with-statement's __exit__ owns the release
    with _lock:
        state[key] = value
