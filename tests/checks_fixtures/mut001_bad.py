"""MUT001 positive: mutable default arguments (3 findings)."""


def accumulate(value, into=[]):
    into.append(value)
    return into


def index(key, table={}, *, seen=set()):
    seen.add(key)
    return table.setdefault(key, len(seen))
