"""CACHE002 negative: cached callables are pure functions of their keys."""

_LAYOUT = {"columns": 12}  # never mutated: reading it is constant folding


def visible_mode(mode):
    return mode or "fast"


class StageCache:
    @staticmethod
    def key(stage, *fingerprints):
        return "-".join([stage, *fingerprints])


class ArtifactStore:
    def __init__(self, renderers):
        self.renderers = renderers
        self.columns = _LAYOUT["columns"]


def cached_stage(table, config_fp, mode):
    # the mode is an argument, so the caller fingerprints it into config_fp
    cache_key = StageCache.key("preprocess", config_fp, visible_mode(mode))
    return cache_key, table


def build_store(renderers):
    return ArtifactStore(renderers)
