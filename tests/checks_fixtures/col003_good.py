"""COL003 negative: every spec names a declared column."""


def build_schema():
    return [
        AttributeSpec("eph", "numeric"),
        AttributeSpec("u_value_opaque", "numeric"),
    ]


RESPONSE = "eph"

FILTERS = (
    Comparison(RESPONSE, ">", 0),
    Comparison("u_value_opaque", ">", 0.8),
)

DEFAULT_DISCRETIZATION_PLAN = {
    "eph": 4,
    "u_value_opaque": 3,
}
