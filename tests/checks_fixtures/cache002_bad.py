"""CACHE002 positive: cached callables read un-fingerprinted state (2 findings)."""

import os

_MODE = {"fast": True}


def tune(flag):
    _MODE["fast"] = flag


def hidden_mode():
    return os.environ.get("EPC_FAST_PATH", "")


class StageCache:
    @staticmethod
    def key(stage, *fingerprints):
        return "-".join([stage, *fingerprints])


class ArtifactStore:
    def __init__(self, renderers):
        self.renderers = renderers
        # hidden read: a later cache hit replays whatever _MODE held here
        self.fast = _MODE["fast"]


def cached_stage(table, config_fp):
    cache_key = StageCache.key("preprocess", config_fp)
    # hidden read: the env var is not part of the cache key
    return cache_key, hidden_mode(), table


def build_store(renderers):
    return ArtifactStore(renderers)
