"""PAR003 negative: every segment provably closed (and unlinked)."""

from multiprocessing import shared_memory


def publish_and_release(payload):
    # creator: close + unlink in a finally
    segment = shared_memory.SharedMemory(create=True, size=len(payload))
    try:
        segment.buf[: len(payload)] = payload
        return bytes(segment.buf[: len(payload)])
    finally:
        segment.close()
        segment.unlink()


def build(payload):
    # factory pattern: cleanup on failure, ownership transferred on success
    segment = shared_memory.SharedMemory(create=True, size=len(payload))
    try:
        segment.buf[: len(payload)] = payload
        return segment
    except BaseException:
        segment.close()
        segment.unlink()
        raise


def read_back(name, size):
    # attacher: only close is required (the creator owns the unlink)
    segment = shared_memory.SharedMemory(name=name)
    try:
        return bytes(segment.buf[:size])
    finally:
        segment.close()
