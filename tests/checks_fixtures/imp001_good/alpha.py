"""IMP001 negative, first half: alpha imports beta, one direction only."""

import beta


def alpha_value():
    return beta.beta_value() + 1
