"""IMP001 negative, second half: beta breaks the cycle with a lazy import.

The function-scope import is the sanctioned cycle breaker — it runs at
call time, not at module-exec time, so IMP001 must not count it.
"""


def beta_value():
    return 1


def roundtrip():
    import alpha

    return alpha.alpha_value()
