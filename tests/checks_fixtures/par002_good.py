"""PAR002 negative: workers return values, the parent aggregates."""


def double(item):
    return item * 2


def run(executor, items):
    doubled = executor.map(double, items)
    return list(doubled)
