"""EXC001 positive: silent broad handlers (2 findings)."""


def swallow(work):
    try:
        return work()
    except Exception:
        return None


def swallow_bare(work):
    try:
        return work()
    except:  # noqa: E722 (deliberately bare for the fixture)
        return None
