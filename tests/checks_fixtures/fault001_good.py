"""FAULT001 negative: registry and hooks in perfect parity."""

ALPHA = "alpha.site"
BETA = "beta.site"

KNOWN_SITES = (ALPHA, BETA)


def hooked(injector):
    injector.arrive(ALPHA)
    injector.fire("beta.site")
