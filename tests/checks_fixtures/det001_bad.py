"""DET001 positive: module-level / unseeded RNG (3 findings)."""

import random

import numpy as np


def draw():
    a = random.random()
    b = np.random.rand(3)
    rng = np.random.default_rng()
    return a, b, rng
