"""PURE001 positive, workers: cross-module shared-state writes."""

import os

_COUNTS = {}


def bump_counter(item):
    # the write lands in the forked worker's copy; the parent never sees it
    _COUNTS[item] = _COUNTS.get(item, 0) + 1
    return item


def tag_environment(mode, row):
    os.environ["EPC_WORKER_MODE"] = mode
    return row
