"""PURE001 positive, call site: imported workers mutate shared state (2 findings)."""

import functools

from helpers import bump_counter, tag_environment


def run(executor, items, table):
    first = executor.map(bump_counter, items)
    second = executor.map_table(
        functools.partial(tag_environment, "fast"), table
    )
    return first, second
