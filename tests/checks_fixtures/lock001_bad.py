"""LOCK001 positive: acquires an exception can leave held (2 findings)."""

import threading

_lock = threading.Lock()


class Gate:
    def __init__(self):
        self._slots = threading.BoundedSemaphore(4)

    def admit(self, work):
        # conditional acquire, release on the happy path only: a raising
        # work() leaves the slot consumed forever
        if not self._slots.acquire(timeout=0.1):
            return None
        result = work()
        self._slots.release()
        return result


def update(state, key, value):
    # release is plain code after the write — an exception skips it
    _lock.acquire()
    state[key] = value
    _lock.release()
