"""LOCK002 negative: one global order, and an RLock where re-entry is real."""
import threading

head = threading.Lock()
tail = threading.Lock()


def push_front(queue, item):
    with head:
        with tail:  # order: head -> tail
            queue.insert(0, item)


def push_back(queue, item):
    with head:  # same order on every path: acyclic
        with tail:
            queue.append(item)


class Box:
    def __init__(self):
        self._guard = threading.RLock()  # reentrant: self-edges are legal
        self.value = None

    def _store(self, value):
        with self._guard:
            self.value = value

    def _set(self, value):
        with self._guard:
            self._store(value)
