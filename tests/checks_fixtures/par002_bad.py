"""PAR002 positive: worker-side writes to module globals (2 findings)."""

_RESULTS = []
_SEEN = {}


def record(item):
    _RESULTS.append(item)
    _SEEN[item] = True
    return item


def run(executor, items):
    return executor.map(record, items)
