"""COL001 negative: every read column is declared or produced."""


def build_schema():
    return [
        AttributeSpec("eph", "numeric"),
        AttributeSpec("heated_surface", "numeric"),
    ]


def read(table):
    score_table = table.with_column(Column("score", "numeric", [1]))
    return table["eph"], table.column("heated_surface"), score_table["score"]
