"""COL002 positive: produced columns nothing consumes (2 findings)."""


def build_schema():
    return [AttributeSpec("eph", "numeric")]


def attach(table, kind, values):
    out = table.with_column(Column("score", kind, values))
    out = out.with_column(Column("debug_tmp", kind, values))
    out = out.with_column(Column.numeric("scratch_col", values))
    return out, table["score"]
