"""DET004 negative: sinks receive replayable values only."""

import json


def stamp(logical_clock):
    return logical_clock  # injected, replayable


def labels():
    return {"kwh", "m2", "floor"}


def write_report(fh, logical_clock):
    json.dump({"generated": stamp(logical_clock)}, fh)


def dump_labels():
    # sorted(...) pins the order: the set-order taint does not survive
    return json.dumps(sorted(labels()))
