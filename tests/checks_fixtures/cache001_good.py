"""CACHE001 negative: every field fingerprinted or declared perf-only."""

from dataclasses import dataclass

PERF_ONLY_FIELDS = ("n_jobs",)

_PREPROCESS_FIELDS = ("city", "geocoder_quota")

_ANALYZE_FIELDS = ("city", "seed", "k_range")


@dataclass
class IndiceConfig:
    city: str = "Turin"
    geocoder_quota: int = 2500
    seed: int = 0
    k_range: tuple = (2, 10)
    n_jobs: int = 1
