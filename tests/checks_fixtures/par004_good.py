"""PAR004 negative: every spill map provably closed."""

from repro.perf.spill import SpillFile


def read_column(path, name):
    # reader: close in a finally
    spill = SpillFile.open(path)
    try:
        return spill.column(name)
    finally:
        spill.close()


def open_validated(path):
    # factory pattern: cleanup on failure, ownership transferred on success
    spill = SpillFile.open(path)
    try:
        spill.verify()
        return spill
    except BaseException:
        spill.close()
        raise


def materialize(path):
    # context manager: __exit__ owns the cleanup
    with SpillFile.open(path) as spill:
        return spill.to_table()
