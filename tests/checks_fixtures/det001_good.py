"""DET001 negative: explicitly seeded generators are fine."""

import random

import numpy as np


def draw(seed):
    rng = np.random.default_rng(seed)
    legacy = random.Random(seed)
    return rng.random(), legacy.random()
