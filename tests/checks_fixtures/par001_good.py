"""PAR001 negative: initializer-fed worker state and immutable reads."""

_WORKER_STATE = None
_SCALE = 10


def init_worker(streets):
    global _WORKER_STATE
    _WORKER_STATE = tuple(streets)


def resolve(item):
    if _WORKER_STATE is None:
        return item
    return _WORKER_STATE[0]


def scale(item):
    return item * _SCALE


def run(executor, items, streets):
    resolved = executor.map(
        resolve, items, initializer=init_worker, initargs=(streets,)
    )
    scaled = executor.map(scale, items)
    return resolved, scaled
