"""FLOAT001 negative: tolerances, ordered comparisons, integer equality."""

import math


def compare(x, y, count):
    a = math.isclose(x, 0.5)
    b = x >= 0.5
    c = count == 3
    return a, b, c
