"""IMP001 positive, first half: alpha imports beta at module scope."""

import beta


def alpha_value():
    return beta.beta_value() + 1
