"""IMP001 positive, second half: beta imports alpha back — a cycle."""

import alpha


def beta_value():
    return 1


def roundtrip():
    return alpha.alpha_value()
