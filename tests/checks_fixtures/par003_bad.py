"""PAR003 positive: shared-memory segments without cleanup (2 findings)."""

from multiprocessing import shared_memory


def publish(payload):
    # created, written, returned — nobody ever closes or unlinks it
    segment = shared_memory.SharedMemory(create=True, size=len(payload))
    segment.buf[: len(payload)] = payload
    return segment.name


def read_back(name, size):
    # attached but never closed: the mapping leaks with the caller
    segment = shared_memory.SharedMemory(name=name)
    data = bytes(segment.buf[:size])
    return data
