"""DET002 negative: monotonic timing counters are allowed."""

import time


def timed(work):
    start = time.perf_counter()
    result = work()
    return result, time.perf_counter() - start
