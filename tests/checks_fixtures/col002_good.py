"""COL002 negative: every produced column has a downstream reader."""


def build_schema():
    return [AttributeSpec("eph", "numeric")]


def attach(table, kind, values):
    out = table.with_column(Column("score", kind, values))
    out = out.with_column(Column("band", kind, values))
    return out.group_by("band"), table["score"]
