"""LOCK003 negative: every post-init mutation holds the majority lock."""
import threading


class Tally:
    def __init__(self):
        self._lock = threading.Lock()
        self.pending = 0
        self.total = 0
        self.label = "tally"  # never written under a lock: no majority guard

    def start(self, worker):
        threading.Thread(target=self.add).start()

    def add(self):
        with self._lock:
            self.pending += 1
            self.total += 1

    def flush(self):
        with self._lock:
            self.total += self.pending
            self.pending = 0

    def rename(self, label):
        self.label = label  # consistently unguarded attribute: silent
