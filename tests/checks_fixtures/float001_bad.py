"""FLOAT001 positive: exact equality between float expressions (3 findings)."""


def compare(x, y, total, n):
    a = x == 0.5
    b = total / n != y
    c = float(x) == y
    return a, b, c
