"""LOCK004 negative: blocking work hoisted out; Condition.wait exempt."""
import threading
import time

flight = threading.Lock()


def retry_render(renderer):
    time.sleep(0.1)  # blocks only the caller, not the lock queue
    payload = renderer.run()
    with flight:
        return payload


def broadcast(sock, payload):
    with flight:
        queued = bytes(payload)
    sock.sendall(queued)  # IO after the region is released


class Mailbox:
    def __init__(self):
        self._ready = threading.Condition()
        self.items = []

    def take(self):
        with self._ready:
            while not self.items:
                self._ready.wait()  # waiting on the held primitive: protocol
            return self.items.pop(0)
