"""FAULT002 positive: retried callables with non-idempotent writes (2 findings)."""

_ATTEMPTS = {"n": 0}


def retry_with_backoff(func, policy=None, retry_on=()):
    return func()


def append_audit(line):
    # append-mode IO: each retry attempt appends the line again
    with open("audit.log", "a") as fh:
        fh.write(line)


def count_attempt():
    # module-global mutation: each retry attempt double-counts
    _ATTEMPTS["n"] = _ATTEMPTS["n"] + 1


def unsafe(line):
    retry_with_backoff(lambda: append_audit(line))
    retry_with_backoff(count_attempt)
