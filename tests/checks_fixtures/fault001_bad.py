"""FAULT001 positive: unhooked registered site + unregistered hook (2 findings)."""

ALPHA = "alpha.site"
BETA = "beta.site"

KNOWN_SITES = (ALPHA, BETA)


def hooked(injector):
    injector.arrive(ALPHA)
    injector.fire("gamma.site")
