"""DET003 negative: sorted() materialization and membership are fine."""


def no_leak(items, needle):
    unique = set(items)
    ordered = sorted(unique)
    hit = needle in unique
    return ordered, hit, len(unique)
