"""CACHE001 positive: an uncovered field and a stale tuple entry (2 findings)."""

from dataclasses import dataclass

PERF_ONLY_FIELDS = ("n_jobs",)

_PREPROCESS_FIELDS = ("city", "geocoder_quota")

_ANALYZE_FIELDS = ("city", "seed", "k_rage")  # note the typo: stale entry


@dataclass
class IndiceConfig:
    city: str = "Turin"
    geocoder_quota: int = 2500
    seed: int = 0
    k_range: tuple = (2, 10)  # uncovered: fingerprint drift
    n_jobs: int = 1
