"""Tests for the columnar shared-memory codec and ``map_table``.

Three concerns, mirroring the codec's contract:

* **round trip** — ``attach_slice(create(t).descriptor())`` must be
  ``Column.__eq__``-identical for every column kind, including NaN,
  ``None`` in categorical/text, the empty table, the empty string (which
  must stay distinct from ``None``) and non-ASCII street names; a seeded
  randomized sweep covers the combinatorial cases;
* **lifecycle** — no shared-memory segment may survive a ``map_table``
  call: not after success, not after a genuine worker crash (broken
  pool), not under injected ``parallel.worker`` faults;
* **semantics** — ``map_table`` returns the serial result in row order,
  falls back serially on pool failure (counted in ``fallbacks``), and
  ships descriptors that are orders of magnitude smaller than the
  pickled rows they replace.
"""

import os
import pickle

import numpy as np
import pytest

from repro.dataset.table import Column, Table
from repro.faults import FaultInjector, FaultPlan
from repro.perf import ParallelMap, SharedTable, TableSlice, attach_slice

_SHM_DIR = "/dev/shm"

_PARENT_PID = os.getpid()


def _segments() -> set[str]:
    """The shared-memory segments currently visible to this process."""
    if not os.path.isdir(_SHM_DIR):  # non-Linux: skip leak accounting
        pytest.skip("no /dev/shm to observe segment lifecycle")
    return {name for name in os.listdir(_SHM_DIR) if name.startswith("psm_")}


def _double_x(chunk: Table) -> list:
    return [v * 2.0 for v in chunk["x"]]


def _upper_s(chunk: Table) -> list:
    return [None if v is None else v.upper() for v in chunk["s"]]


def _die_in_worker(chunk: Table) -> list:
    """Hard-crash the worker process (never the parent's serial path)."""
    if os.getpid() != _PARENT_PID:
        os._exit(1)
    return [v * 2.0 for v in chunk["x"]]


def _mixed_table() -> Table:
    return Table(
        [
            Column.numeric("x", [1.5, float("nan"), -0.0, None, 1e300]),
            Column.categorical("c", ["A", None, "B", "A", "B"]),
            Column.text(
                "s", ["via Pietro Giuria", "", None, "caffè", "niño 日本"]
            ),
        ]
    )


class TestRoundTrip:
    def test_mixed_table_identical(self):
        table = _mixed_table()
        with SharedTable.create(table) as shared:
            back = attach_slice(shared.descriptor())
        assert back == table

    def test_numeric_nan_preserved(self):
        table = Table([Column.numeric("x", [float("nan")] * 3 + [2.0])])
        with SharedTable.create(table) as shared:
            back = attach_slice(shared.descriptor())
        assert np.isnan(back["x"][:3]).all()
        assert back["x"][3] == 2.0

    def test_text_none_distinct_from_empty_string(self):
        table = Table([Column.text("s", ["", None, "", None])])
        with SharedTable.create(table) as shared:
            back = attach_slice(shared.descriptor())
        assert list(back["s"]) == ["", None, "", None]

    def test_categorical_none_and_vocab_order(self):
        table = Table([Column.categorical("c", [None, "B", "A", "B", None])])
        with SharedTable.create(table) as shared:
            back = attach_slice(shared.descriptor())
        assert list(back["c"]) == [None, "B", "A", "B", None]

    def test_empty_table(self):
        table = Table(
            [
                Column.numeric("x", []),
                Column.categorical("c", []),
                Column.text("s", []),
            ]
        )
        with SharedTable.create(table) as shared:
            back = attach_slice(shared.descriptor())
        assert back == table
        assert back.n_rows == 0
        assert back.column_names == ["x", "c", "s"]

    def test_row_range_slices(self):
        table = _mixed_table()
        with SharedTable.create(table) as shared:
            lo_hi = attach_slice(shared.descriptor((1, 4)))
        assert lo_hi.n_rows == 3
        assert np.isnan(lo_hi["x"][0])
        assert list(lo_hi["c"]) == [None, "B", "A"]
        assert list(lo_hi["s"]) == ["", None, "caffè"]

    def test_descriptor_rejects_bad_range(self):
        with SharedTable.create(_mixed_table()) as shared:
            with pytest.raises(ValueError):
                shared.descriptor((2, 99))
            with pytest.raises(ValueError):
                shared.descriptor((-1, 2))

    @pytest.mark.parametrize("seed", range(5))
    def test_randomized_tables_round_trip(self, seed):
        # seeded property sweep: random sizes, missingness and alphabets
        rng = np.random.default_rng(seed)
        n = int(rng.integers(0, 200))
        numeric = rng.normal(size=n)
        numeric[rng.random(n) < 0.2] = np.nan
        alphabet = ["corso Dante", "via Pò", "strada häuser", "", "B&B"]
        cat = [
            None if rng.random() < 0.25 else alphabet[rng.integers(0, 3)]
            for _ in range(n)
        ]
        text = [
            None if rng.random() < 0.25 else alphabet[rng.integers(0, 5)]
            for _ in range(n)
        ]
        table = Table(
            [
                Column.numeric("x", numeric),
                Column.categorical("c", cat),
                Column.text("s", text),
            ]
        )
        with SharedTable.create(table) as shared:
            back = attach_slice(shared.descriptor())
            # and an arbitrary interior slice
            lo = int(rng.integers(0, n + 1))
            hi = int(rng.integers(lo, n + 1))
            part = attach_slice(shared.descriptor((lo, hi)))
        assert back == table
        assert list(part["s"]) == list(text[lo:hi])


class TestLifecycle:
    def test_context_manager_unlinks(self):
        before = _segments()
        with SharedTable.create(_mixed_table()) as shared:
            assert shared.name.lstrip("/") in _segments()
        assert _segments() == before

    def test_map_table_success_leaves_no_segment(self):
        before = _segments()
        executor = ParallelMap(n_jobs=2, min_parallel_items=4)
        table = Table([Column.numeric("x", np.arange(64.0))])
        out = executor.map_table(_double_x, table)
        assert out == list(np.arange(64.0) * 2.0)
        assert _segments() == before

    def test_map_table_worker_crash_leaves_no_segment(self):
        before = _segments()
        executor = ParallelMap(n_jobs=2, min_parallel_items=4)
        table = Table([Column.numeric("x", np.arange(64.0))])
        out = executor.map_table(_die_in_worker, table)
        # broken pool -> serial fallback, still the right answer
        assert out == list(np.arange(64.0) * 2.0)
        assert executor.fallbacks == 1
        assert "BrokenProcessPool" in executor.last_fallback_reason
        assert _segments() == before

    def test_map_table_injected_faults_leave_no_segment(self):
        before = _segments()
        injector = FaultInjector(FaultPlan.parse("parallel.worker:crash"))
        executor = ParallelMap(
            n_jobs=2, min_parallel_items=4, injector=injector
        )
        table = Table([Column.numeric("x", np.arange(64.0))])
        out = executor.map_table(_double_x, table)
        assert out == list(np.arange(64.0) * 2.0)
        assert executor.fallbacks == 1
        assert injector.injections("parallel.worker") >= 1
        assert _segments() == before

    def test_create_failure_cleans_up(self, monkeypatch):
        # force the buffer copy to explode after the segment exists: the
        # factory must close+unlink before re-raising
        before = _segments()
        import repro.perf.shm as shm_mod

        real_cls = shm_mod.shared_memory.SharedMemory
        proxies = []

        class ExplodingSegment:
            def __init__(self, create=False, size=0):
                self._real = real_cls(create=create, size=size)
                self.closed = False
                self.unlinked = False
                proxies.append(self)

            @property
            def buf(self):
                raise ValueError("injected write failure")

            @property
            def name(self):
                return self._real.name

            def close(self):
                self.closed = True
                self._real.close()

            def unlink(self):
                self.unlinked = True
                self._real.unlink()

        monkeypatch.setattr(
            shm_mod.shared_memory, "SharedMemory", ExplodingSegment
        )
        with pytest.raises(ValueError, match="injected write failure"):
            SharedTable.create(_mixed_table())
        assert len(proxies) == 1
        assert proxies[0].closed and proxies[0].unlinked
        assert _segments() == before


class TestMapTable:
    def test_matches_serial_in_order(self):
        values = [f"via {i}" if i % 3 else None for i in range(100)]
        table = Table([Column.text("s", values)])
        serial = list(_upper_s(table))
        executor = ParallelMap(n_jobs=2, min_parallel_items=8)
        assert executor.map_table(_upper_s, table) == serial

    def test_small_input_stays_serial(self):
        executor = ParallelMap(n_jobs=4, min_parallel_items=512)
        table = Table([Column.numeric("x", np.arange(10.0))])
        out = executor.map_table(_double_x, table)
        assert out == list(np.arange(10.0) * 2.0)
        assert executor.shm_bytes == 0  # never touched shared memory

    def test_empty_table_returns_empty(self):
        executor = ParallelMap(n_jobs=2, min_parallel_items=0)
        table = Table([Column.numeric("x", [])])
        assert executor.map_table(_double_x, table) == []

    def test_initializer_runs_on_fallback(self):
        injector = FaultInjector(FaultPlan.parse("parallel.worker:crash"))
        executor = ParallelMap(
            n_jobs=2, min_parallel_items=4, injector=injector
        )
        table = Table([Column.numeric("x", np.arange(32.0))])
        ran = []
        out = executor.map_table(
            _double_x, table, initializer=ran.append, initargs=("init",)
        )
        assert out == list(np.arange(32.0) * 2.0)
        assert ran == ["init"]  # fallback initialized inline exactly once

    def test_shard_ranges_mirror_shard(self):
        executor = ParallelMap(n_jobs=3, min_parallel_items=1)
        for n in (1, 5, 97, 512, 1000):
            items = list(range(n))
            chunks = executor.shard(items)
            ranges = executor.shard_ranges(n)
            assert len(chunks) == len(ranges)
            assert [len(c) for c in chunks] == [hi - lo for lo, hi in ranges]
            assert ranges[0][0] == 0 and ranges[-1][1] == n

    def test_descriptor_payload_is_tiny(self):
        values = [f"via Pietro Giuria {i}" for i in range(4096)]
        table = Table([Column.text("s", values)])
        with SharedTable.create(table) as shared:
            descriptor_bytes = len(pickle.dumps(shared.descriptor()))
        pickled_rows = len(pickle.dumps(values))
        # the descriptor replaces the pickled rows as the IPC payload
        assert descriptor_bytes < pickled_rows / 100
        assert descriptor_bytes < 2000

    def test_counters_track_shm_traffic(self):
        executor = ParallelMap(n_jobs=2, min_parallel_items=4)
        table = Table([Column.numeric("x", np.arange(256.0))])
        executor.map_table(_double_x, table)
        assert executor.shm_bytes == 256 * 8
        assert executor.descriptor_bytes > 0
        assert executor.encode_seconds >= 0.0

    def test_slice_descriptor_is_plain_data(self):
        with SharedTable.create(_mixed_table()) as shared:
            descriptor = shared.descriptor((1, 3))
            clone = pickle.loads(pickle.dumps(descriptor))
            assert isinstance(clone, TableSlice)
            assert clone == descriptor
            back = attach_slice(clone)
        assert back.n_rows == 2
