"""Tests for the fault-injection tier: plans, injector, policies, hooks.

The chaos-level end-to-end invariant lives in ``test_chaos_pipeline.py``;
this module pins down each piece in isolation — deterministic plans,
retry/backoff/deadline/breaker policies, and the per-site injection hooks
in the stage cache, geocoder, parallel executor and dataset I/O.
"""

import pickle

import numpy as np
import pytest

from repro.dataset import SyntheticConfig, generate_epc_collection
from repro.dataset.io import read_csv, write_csv
from repro.dataset.table import Column, Table
from repro.faults import (
    CACHE_READ,
    CACHE_WRITE,
    DATASET_READ,
    GEOCODER_REQUEST,
    KNOWN_SITES,
    PARALLEL_WORKER,
    CircuitBreaker,
    Deadline,
    DeadlineExceeded,
    FaultInjector,
    FaultKind,
    FaultPlan,
    FaultSpec,
    InjectedIOError,
    RetryPolicy,
    TransientServiceError,
    retry_with_backoff,
)
from repro.perf import ParallelMap, StageCache
from repro.preprocessing.address_cleaner import (
    AddressCleaner,
    CleaningConfig,
    MatchStatus,
)
from repro.preprocessing.geocoder import QuotaExceededError, SimulatedGeocoder


@pytest.fixture(scope="module")
def collection():
    return generate_epc_collection(SyntheticConfig(n_certificates=400, seed=9))


class _FakeClock:
    """A settable monotonic clock for virtual-time tests."""

    def __init__(self):
        self.now = 0.0

    def __call__(self):
        return self.now

    def advance(self, seconds):
        self.now += seconds


# ---------------------------------------------------------------------------
# FaultPlan / FaultInjector
# ---------------------------------------------------------------------------


class TestFaultPlan:
    def test_spec_string_roundtrip(self):
        plan = FaultPlan.parse(
            "geocoder.request:transient@0.3*5;cache.read:corrupt;"
            "parallel.worker:crash*1+2;seed=42"
        )
        assert plan.seed == 42
        assert len(plan.faults) == 3
        assert plan.faults[0] == FaultSpec(
            GEOCODER_REQUEST, FaultKind.TRANSIENT, rate=0.3, times=5
        )
        assert plan.faults[2].after == 2
        assert FaultPlan.parse(plan.render()) == plan

    def test_json_roundtrip(self):
        plan = FaultPlan.parse("cache.write:io_error@0.5;seed=7")
        assert FaultPlan.from_json(plan.to_json()) == plan

    def test_load_from_file(self, tmp_path):
        plan = FaultPlan.parse("dataset.read:io_error*1")
        path = tmp_path / "plan.json"
        path.write_text(plan.to_json(), encoding="utf-8")
        assert FaultPlan.load(f"@{path}") == plan
        assert FaultPlan.load("dataset.read:io_error*1") == plan

    def test_bad_specs_rejected(self):
        with pytest.raises(ValueError):
            FaultPlan.parse("geocoder.request")  # no kind
        with pytest.raises(ValueError):
            FaultPlan.parse("geocoder.request:frobnicate")  # unknown kind
        with pytest.raises(ValueError):
            FaultSpec(GEOCODER_REQUEST, FaultKind.TRANSIENT, rate=1.5)

    def test_unknown_site_rejected_with_valid_site_list(self):
        # a typo'd site would otherwise parse fine and silently never fire
        with pytest.raises(ValueError) as excinfo:
            FaultPlan.parse("geocoder.requst:transient*2")
        message = str(excinfo.value)
        assert "geocoder.requst" in message
        for site in KNOWN_SITES:
            assert site in message
        with pytest.raises(ValueError, match="unknown fault site"):
            FaultSpec("cache.reed", FaultKind.CORRUPT)

    def test_empty_plan_is_falsy(self):
        assert not FaultPlan()
        assert FaultPlan.parse("cache.read:corrupt")


class TestFaultInjector:
    def test_deterministic_across_instances(self):
        plan = FaultPlan.parse("geocoder.request:transient@0.4;seed=3")
        first = FaultInjector(plan)
        second = FaultInjector(plan)
        seq_a = [first.arrive(GEOCODER_REQUEST) for __ in range(50)]
        seq_b = [second.arrive(GEOCODER_REQUEST) for __ in range(50)]
        assert seq_a == seq_b
        assert any(k is FaultKind.TRANSIENT for k in seq_a)
        assert any(k is None for k in seq_a)

    def test_sites_independent(self):
        # interleaving arrivals at another site never shifts a site's seq
        plan = FaultPlan.parse(
            "geocoder.request:transient@0.4;cache.read:corrupt@0.4;seed=1"
        )
        plain = FaultInjector(plan)
        expected = [plain.arrive(GEOCODER_REQUEST) for __ in range(30)]
        interleaved = FaultInjector(plan)
        got = []
        for __ in range(30):
            interleaved.arrive(CACHE_READ)
            got.append(interleaved.arrive(GEOCODER_REQUEST))
        assert got == expected

    def test_times_and_after(self):
        inj = FaultInjector(FaultPlan.parse("cache.read:corrupt*2+3"))
        kinds = [inj.arrive(CACHE_READ) for __ in range(10)]
        assert kinds[:3] == [None, None, None]  # spared by +3
        assert kinds[3:5] == [FaultKind.CORRUPT, FaultKind.CORRUPT]
        assert kinds[5:] == [None] * 5  # budget of *2 spent
        assert inj.injections(CACHE_READ) == 2

    def test_unwatched_site_is_free(self):
        inj = FaultInjector(FaultPlan.parse("cache.read:corrupt"))
        assert not inj.watches(GEOCODER_REQUEST)
        assert inj.arrive(GEOCODER_REQUEST) is None
        assert inj.events == []

    def test_fire_raises_mapped_exceptions(self):
        inj = FaultInjector(FaultPlan.parse("dataset.read:io_error"))
        with pytest.raises(InjectedIOError):
            inj.fire(DATASET_READ)
        with pytest.raises(OSError):  # injected IO errors *are* OSErrors
            FaultInjector(FaultPlan.parse("dataset.read:io_error")).fire(
                DATASET_READ
            )

    def test_mangle(self):
        data = pickle.dumps({"x": 1})
        assert len(FaultInjector.mangle(data, FaultKind.TRUNCATE)) < len(data)
        with pytest.raises(Exception):
            pickle.loads(FaultInjector.mangle(data, FaultKind.CORRUPT))


# ---------------------------------------------------------------------------
# Policies: retry, deadline, breaker
# ---------------------------------------------------------------------------


class TestRetryWithBackoff:
    def test_succeeds_after_transient_failures(self):
        calls = {"n": 0}

        def flaky():
            calls["n"] += 1
            if calls["n"] < 3:
                raise TransientServiceError("boom")
            return "ok"

        slept = []
        out = retry_with_backoff(
            flaky,
            RetryPolicy(retries=3, seed=5),
            retry_on=(TransientServiceError,),
            sleep=slept.append,
        )
        assert out == "ok"
        assert calls["n"] == 3
        assert len(slept) == 2

    def test_raises_after_budget_spent(self):
        def always():
            raise TransientServiceError("down")

        with pytest.raises(TransientServiceError):
            retry_with_backoff(
                always, RetryPolicy(retries=2),
                retry_on=(TransientServiceError,), sleep=lambda s: None,
            )

    def test_non_retryable_error_propagates_immediately(self):
        calls = {"n": 0}

        def bug():
            calls["n"] += 1
            raise ValueError("not transient")

        with pytest.raises(ValueError):
            retry_with_backoff(
                bug, RetryPolicy(retries=5),
                retry_on=(TransientServiceError,), sleep=lambda s: None,
            )
        assert calls["n"] == 1

    def test_decorrelated_jitter_schedule(self):
        policy = RetryPolicy(retries=8, base_delay_s=0.01, max_delay_s=0.2, seed=4)
        delays = policy.delays()
        assert len(delays) == 8
        assert all(policy.base_delay_s <= d <= policy.max_delay_s for d in delays)
        assert delays == policy.delays()  # seeded: reproducible
        assert policy.delays() != RetryPolicy(
            retries=8, base_delay_s=0.01, max_delay_s=0.2, seed=5
        ).delays()

    def test_deadline_stops_retrying(self):
        clock = _FakeClock()
        deadline = Deadline(1.0, clock=clock)

        def always():
            clock.advance(2.0)
            raise TransientServiceError("slow and down")

        calls = []
        with pytest.raises(TransientServiceError):
            retry_with_backoff(
                lambda: (calls.append(1), always()),
                RetryPolicy(retries=10),
                retry_on=(TransientServiceError,),
                sleep=lambda s: None,
                deadline=deadline,
            )
        assert len(calls) == 1  # no retry once the budget is spent


class TestDeadline:
    def test_unbounded_never_expires(self):
        deadline = Deadline(None)
        assert deadline.remaining() == float("inf")
        assert not deadline.expired()
        deadline.check()  # no raise

    def test_expiry_in_virtual_time(self):
        clock = _FakeClock()
        deadline = Deadline(5.0, clock=clock)
        assert deadline.remaining() == 5.0
        clock.advance(4.0)
        assert not deadline.expired()
        clock.advance(2.0)
        assert deadline.expired()
        assert deadline.remaining() == 0.0
        with pytest.raises(DeadlineExceeded):
            deadline.check("preprocessing")


class TestCircuitBreaker:
    def test_opens_after_threshold(self):
        clock = _FakeClock()
        breaker = CircuitBreaker(failure_threshold=3, recovery_s=10, clock=clock)
        assert breaker.state == CircuitBreaker.CLOSED
        for __ in range(3):
            assert breaker.allow()
            breaker.record_failure()
        assert breaker.state == CircuitBreaker.OPEN
        assert not breaker.allow()
        assert breaker.times_opened == 1

    def test_success_resets_failure_streak(self):
        breaker = CircuitBreaker(failure_threshold=2)
        breaker.record_failure()
        breaker.record_success()
        breaker.record_failure()
        assert breaker.state == CircuitBreaker.CLOSED

    def test_half_open_probe_closes_on_success(self):
        clock = _FakeClock()
        breaker = CircuitBreaker(failure_threshold=1, recovery_s=10, clock=clock)
        breaker.record_failure()
        assert not breaker.allow()
        clock.advance(11)
        assert breaker.state == CircuitBreaker.HALF_OPEN
        assert breaker.allow()       # the single probe
        assert not breaker.allow()   # second caller still refused
        breaker.record_success()
        assert breaker.state == CircuitBreaker.CLOSED
        assert breaker.allow()

    def test_half_open_probe_reopens_on_failure(self):
        clock = _FakeClock()
        breaker = CircuitBreaker(failure_threshold=1, recovery_s=10, clock=clock)
        breaker.record_failure()
        clock.advance(11)
        assert breaker.allow()
        breaker.record_failure()
        assert breaker.state == CircuitBreaker.OPEN
        assert not breaker.allow()
        assert breaker.times_opened == 2


# ---------------------------------------------------------------------------
# StageCache under faults (satellite: atomic writes, corruption = miss)
# ---------------------------------------------------------------------------


class TestStageCacheResilience:
    def test_manually_corrupted_entry_is_a_miss(self, tmp_path):
        key = StageCache.key("stage", "fp")
        StageCache(tmp_path).put(key, {"v": 1})
        (tmp_path / f"{key}.pkl").write_bytes(b"this is not a pickle")
        fresh = StageCache(tmp_path)
        assert fresh.get(key) == (False, None)
        assert fresh.read_errors == 1

    def test_truncated_entry_is_a_miss(self, tmp_path):
        key = StageCache.key("stage", "fp")
        StageCache(tmp_path).put(key, list(range(1000)))
        path = tmp_path / f"{key}.pkl"
        path.write_bytes(path.read_bytes()[: path.stat().st_size // 2])
        fresh = StageCache(tmp_path)
        assert fresh.get(key) == (False, None)
        assert fresh.read_errors == 1

    def test_miss_then_recompute_then_hit(self, tmp_path):
        # the degradation ladder: corrupt entry -> miss -> re-put -> hit
        key = StageCache.key("stage", "fp")
        cache = StageCache(tmp_path)
        cache.put(key, "value")
        (tmp_path / f"{key}.pkl").write_bytes(b"garbage")
        fresh = StageCache(tmp_path)
        assert fresh.get(key) == (False, None)
        fresh.put(key, "value")
        again = StageCache(tmp_path)
        assert again.get(key) == (True, "value")

    def test_atomic_write_leaves_no_temp_files(self, tmp_path):
        cache = StageCache(tmp_path)
        for i in range(5):
            cache.put(StageCache.key("s", str(i)), list(range(100)))
        assert not list(tmp_path.glob("*.tmp"))
        assert len(list(tmp_path.glob("*.pkl"))) == 5

    def test_injected_read_corruption_is_counted_miss(self, tmp_path):
        key = StageCache.key("stage", "fp")
        StageCache(tmp_path).put(key, [1, 2, 3])
        inj = FaultInjector(FaultPlan.parse("cache.read:corrupt*1"))
        cache = StageCache(tmp_path, injector=inj)
        assert cache.get(key) == (False, None)
        assert cache.read_errors == 1
        assert cache.get(key) == (True, [1, 2, 3])  # fault budget spent

    def test_injected_write_io_error_keeps_memory_copy(self, tmp_path):
        inj = FaultInjector(FaultPlan.parse("cache.write:io_error*1"))
        cache = StageCache(tmp_path, injector=inj)
        key = StageCache.key("stage", "fp")
        cache.put(key, "value")
        assert cache.write_errors == 1
        assert cache.get(key) == (True, "value")  # memory still serves it
        assert StageCache(tmp_path).get(key) == (False, None)  # disk lost it

    def test_injected_truncated_write_detected_on_read(self, tmp_path):
        inj = FaultInjector(FaultPlan.parse("cache.write:truncate*1"))
        cache = StageCache(tmp_path, injector=inj)
        key = StageCache.key("stage", "fp")
        cache.put(key, list(range(1000)))
        fresh = StageCache(tmp_path)  # no injector: reads what's on disk
        assert fresh.get(key) == (False, None)
        assert fresh.read_errors == 1


# ---------------------------------------------------------------------------
# Geocoder faults and cleaner resilience
# ---------------------------------------------------------------------------


class TestGeocoderFaults:
    def test_transient_fault_consumes_no_quota_or_rng(self, collection):
        inj = FaultInjector(FaultPlan.parse("geocoder.request:transient*1"))
        faulty = SimulatedGeocoder(collection.street_map, injector=inj)
        plain = SimulatedGeocoder(collection.street_map)
        with pytest.raises(TransientServiceError):
            faulty.geocode("via roma 10")
        assert faulty.requests_made == 0  # the timed-out call cost nothing
        a = faulty.geocode("via roma 10")  # retry
        b = plain.geocode("via roma 10")
        assert (a.status, a.record, a.confidence) == (b.status, b.record, b.confidence)

    def test_quota_fault_trips_quota_immediately(self, collection):
        inj = FaultInjector(FaultPlan.parse("geocoder.request:quota+1"))
        geocoder = SimulatedGeocoder(collection.street_map, quota=100, injector=inj)
        geocoder.geocode("via roma 10")  # first request spared (+1)
        with pytest.raises(QuotaExceededError):
            geocoder.geocode("corso francia 2")
        assert geocoder.remaining_quota == 0


def _clean_with(collection, table, **cleaner_kwargs):
    cleaner = AddressCleaner(
        collection.street_map,
        CleaningConfig(),
        SimulatedGeocoder(
            collection.street_map,
            injector=cleaner_kwargs.pop("injector", None),
        ),
        sleep=lambda s: None,
        **cleaner_kwargs,
    )
    return cleaner.clean_table(table)


class TestCleanerResilience:
    @pytest.fixture(scope="class")
    def turin(self, collection):
        from repro.dataset import NoiseConfig, apply_noise

        noisy = apply_noise(collection, NoiseConfig(seed=21))
        mask = np.array([c == "Turin" for c in noisy.table["city"]])
        return noisy.table.where(mask)

    def test_recoverable_transients_are_bit_identical(self, collection, turin):
        # every 3rd-ish request fails once; retries absorb all of it
        inj = FaultInjector(
            FaultPlan.parse("geocoder.request:transient@0.3;seed=8")
        )
        fault_free = _clean_with(collection, turin)
        recovered = _clean_with(collection, turin, injector=inj)
        assert recovered.degradations == []
        assert recovered.geocoder_transient_failures == 0
        for name in ("address", "house_number", "zip_code"):
            assert list(recovered.table[name]) == list(fault_free.table[name])
        for left, right in zip(fault_free.audits, recovered.audits):
            assert left.status is right.status
            assert left.resolved_street == right.resolved_street

    def test_persistent_failure_degrades_and_is_reported(self, collection, turin):
        inj = FaultInjector(FaultPlan.parse("geocoder.request:transient"))
        breaker = CircuitBreaker(failure_threshold=2, recovery_s=3600)
        report = _clean_with(
            collection, turin, injector=inj,
            retry=RetryPolicy(retries=1), breaker=breaker,
        )
        kinds = {d["kind"] for d in report.degradations}
        assert "geocoder_transient_failures" in kinds
        assert "geocoder_circuit_open" in kinds
        assert report.geocoder_transient_failures == 2  # then the circuit opened
        assert report.rows_skipped_by_open_circuit > 0
        assert breaker.state == CircuitBreaker.OPEN
        # degraded rows are unresolved, not dropped: row count unchanged
        assert report.table.n_rows == turin.n_rows

    def test_quota_mid_batch_keeps_resolved_rows(self, collection, turin):
        # satellite: quota exhaustion mid-batch must keep the rows already
        # geocoded and leave the remainder unresolved — never discard work
        unlimited = _clean_with(collection, turin)
        geocoded_rows = [
            a.row for a in unlimited.audits if a.status is MatchStatus.GEOCODED
        ]
        assert len(geocoded_rows) > 2, "fixture must exercise the geocoder"

        quota = len(geocoded_rows) // 2
        cleaner = AddressCleaner(
            collection.street_map,
            CleaningConfig(),
            SimulatedGeocoder(collection.street_map, quota=quota),
            sleep=lambda s: None,
        )
        limited = cleaner.clean_table(turin)

        assert limited.geocoder_quota_exhausted
        assert any(
            d["kind"] == "geocoder_quota_exhausted" for d in limited.degradations
        )
        kept = [
            a.row for a in limited.audits if a.status is MatchStatus.GEOCODED
        ]
        # the first `quota` successful geocodes survive identically ...
        assert kept == geocoded_rows[: len(kept)]
        assert len(kept) > 0
        for row in kept:
            assert limited.audits[row].resolved_street == (
                unlimited.audits[row].resolved_street
            )
        # ... and the remainder is unresolved, not missing
        remainder = set(geocoded_rows) - set(kept)
        for row in remainder:
            assert limited.audits[row].status is MatchStatus.UNRESOLVED
        assert limited.table.n_rows == turin.n_rows
        assert len(limited.audits) == len(unlimited.audits)


# ---------------------------------------------------------------------------
# Parallel tier faults
# ---------------------------------------------------------------------------


def _double(x):
    return 2 * x


class TestParallelFaults:
    def test_injected_crash_falls_back_to_serial(self):
        inj = FaultInjector(FaultPlan.parse("parallel.worker:crash*1"))
        ex = ParallelMap(n_jobs=2, min_parallel_items=1, injector=inj)
        out = ex.map(_double, range(40))
        assert out == [2 * x for x in range(40)]
        assert ex.fallbacks == 1
        assert "WorkerCrashError" in ex.last_fallback_reason

    def test_injected_straggler_still_correct(self):
        inj = FaultInjector(FaultPlan.parse("parallel.worker:delay*1"))
        ex = ParallelMap(n_jobs=2, min_parallel_items=1, injector=inj)
        assert ex.map(_double, range(40)) == [2 * x for x in range(40)]
        assert ex.fallbacks == 0

    def test_serial_path_ignores_worker_faults(self):
        inj = FaultInjector(FaultPlan.parse("parallel.worker:crash"))
        ex = ParallelMap(n_jobs=1, injector=inj)
        assert ex.map(_double, range(10)) == [2 * x for x in range(10)]
        assert inj.events == []  # site never reached on the serial path


# ---------------------------------------------------------------------------
# Dataset I/O faults
# ---------------------------------------------------------------------------


class TestDatasetIOFaults:
    def _table(self):
        return Table(
            [Column.numeric("n", [1.0, 2.0]), Column.text("t", ["a", "b"])]
        )

    def test_injected_read_failure_is_oserror(self, tmp_path):
        path = tmp_path / "t.csv"
        write_csv(self._table(), path)
        inj = FaultInjector(FaultPlan.parse("dataset.read:io_error*1"))
        with pytest.raises(OSError):
            read_csv(path, injector=inj)

    def test_injected_write_failure_is_oserror(self, tmp_path):
        inj = FaultInjector(FaultPlan.parse("dataset.write:io_error*1"))
        with pytest.raises(OSError):
            write_csv(self._table(), tmp_path / "t.csv", injector=inj)

    def test_retry_recovers_transient_io(self, tmp_path):
        path = tmp_path / "t.csv"
        write_csv(self._table(), path)
        inj = FaultInjector(FaultPlan.parse("dataset.read:io_error*2"))
        table = retry_with_backoff(
            lambda: read_csv(path, injector=inj),
            RetryPolicy(retries=3),
            retry_on=(OSError,),
            sleep=lambda s: None,
        )
        assert table.n_rows == 2
        assert list(table["t"]) == ["a", "b"]
