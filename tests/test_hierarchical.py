"""Tests for agglomerative hierarchical clustering."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analytics.hierarchical import agglomerative
from repro.analytics.kmeans import kmeans


def three_blobs(seed=0, n=60, spread=0.25):
    rng = np.random.default_rng(seed)
    return np.vstack(
        [
            rng.normal((0, 0), spread, (n, 2)),
            rng.normal((6, 0), spread, (n, 2)),
            rng.normal((0, 6), spread, (n, 2)),
        ]
    )


LINKAGES = ("ward", "average", "single", "complete")


class TestAgglomerative:
    @pytest.mark.parametrize("linkage", LINKAGES)
    def test_recovers_blobs(self, linkage):
        points = three_blobs()
        result = agglomerative(points, linkage=linkage)
        labels = result.cut(3)
        for start in (0, 60, 120):
            block = labels[start : start + 60]
            assert len(set(block.tolist())) == 1
        assert len(set(labels.tolist())) == 3

    @pytest.mark.parametrize("linkage", LINKAGES)
    def test_suggest_k_finds_three(self, linkage):
        result = agglomerative(three_blobs(), linkage=linkage)
        assert result.suggest_k() == 3

    def test_merge_count(self):
        points = three_blobs(n=10)
        result = agglomerative(points)
        assert len(result.merges) == len(points) - 1
        assert result.merges[-1].size == len(points)

    def test_cut_extremes(self):
        points = three_blobs(n=10)
        result = agglomerative(points)
        assert len(set(result.cut(1).tolist())) == 1
        assert len(set(result.cut(len(points)).tolist())) == len(points)

    def test_cut_k_validation(self):
        result = agglomerative(three_blobs(n=5))
        with pytest.raises(ValueError):
            result.cut(0)
        with pytest.raises(ValueError):
            result.cut(100)

    def test_monotone_heights_ward(self):
        """Ward is reducible: sorted merge heights = dendrogram heights,
        and any cluster's parent merge is at least as high as its own."""
        result = agglomerative(three_blobs(n=25), linkage="ward")
        height_of = {}
        n = result.n_points
        for i, merge in enumerate(result.merges):
            for child in (merge.a, merge.b):
                if child >= n:
                    assert merge.height >= height_of[child] - 1e-9
            height_of[n + i] = merge.height

    def test_nan_rows_labelled_minus_one(self):
        points = three_blobs(n=10)
        points[0, 0] = np.nan
        result = agglomerative(points)
        labels = result.cut(3)
        assert labels[0] == -1
        assert len(labels) == len(points)
        assert (labels[1:] >= 0).all()

    def test_all_nan_rejected(self):
        with pytest.raises(ValueError, match="no complete rows"):
            agglomerative(np.full((4, 2), np.nan))

    def test_max_points_guard(self):
        with pytest.raises(ValueError, match="max_points"):
            agglomerative(np.zeros((20, 2)), max_points=10)

    def test_unknown_linkage(self):
        with pytest.raises(ValueError, match="linkage"):
            agglomerative(np.zeros((4, 2)), linkage="centroid")

    def test_not_matrix(self):
        with pytest.raises(ValueError):
            agglomerative(np.zeros(5))

    def test_single_point(self):
        result = agglomerative(np.zeros((1, 2)))
        assert result.merges == []
        assert result.cut(1).tolist() == [0]
        assert result.suggest_k() == 1

    def test_agreement_with_kmeans_on_separated_data(self):
        """On well-separated blobs, ward cuts and K-means agree (up to
        label permutation)."""
        points = three_blobs(seed=5)
        ward = agglomerative(points, linkage="ward").cut(3)
        km = kmeans(points, k=3, seed=0).labels
        # same partition: every ward cluster maps to exactly one kmeans one
        mapping = {}
        for w, m in zip(ward, km):
            mapping.setdefault(w, set()).add(m)
        assert all(len(v) == 1 for v in mapping.values())

    @given(st.integers(0, 10_000), st.integers(2, 6))
    @settings(max_examples=15, deadline=None)
    def test_cut_is_partition(self, seed, k):
        rng = np.random.default_rng(seed)
        points = rng.uniform(0, 10, (40, 2))
        result = agglomerative(points)
        labels = result.cut(k)
        assert len(set(labels.tolist())) == k
        assert labels.min() == 0
        assert labels.max() == k - 1

    @given(st.integers(0, 10_000))
    @settings(max_examples=10, deadline=None)
    def test_cuts_nest(self, seed):
        """A (k)-cut must refine into the (k+1)-cut: coarser clusters are
        unions of finer ones."""
        rng = np.random.default_rng(seed)
        points = rng.normal(0, 1, (35, 2))
        result = agglomerative(points)
        coarse = result.cut(3)
        fine = result.cut(5)
        parent_of = {}
        for c, f in zip(coarse, fine):
            if f in parent_of:
                assert parent_of[f] == c
            else:
                parent_of[f] = c
