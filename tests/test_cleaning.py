"""Tests for the geocoder simulation, the address cleaner and the expert store."""

import numpy as np
import pytest

from repro.dataset import (
    NoiseConfig,
    SyntheticConfig,
    apply_noise,
    generate_epc_collection,
    generate_street_map,
)
from repro.dataset.table import Column, ColumnKind, Table
from repro.geo.distance import equirectangular_km
from repro.preprocessing.address_cleaner import (
    AddressCleaner,
    CleaningConfig,
    MatchStatus,
)
from repro.preprocessing.expert_store import (
    BUILTIN_DEFAULT,
    ExpertConfigStore,
    ExpertConfiguration,
)
from repro.preprocessing.geocoder import (
    GeocodeStatus,
    QuotaExceededError,
    SimulatedGeocoder,
)
from repro.preprocessing.outliers import OutlierMethod


@pytest.fixture(scope="module")
def gazetteer():
    street_map, hierarchy = generate_street_map(seed=7, streets_per_neighbourhood=6)
    return street_map, hierarchy


def geo_table(rows):
    """Build a minimal table with the five geospatial attributes."""
    return Table(
        [
            Column.text("address", [r.get("address") for r in rows]),
            Column.text("house_number", [r.get("house_number") for r in rows]),
            Column.categorical("zip_code", [r.get("zip_code") for r in rows]),
            Column.numeric("latitude", [r.get("latitude") for r in rows]),
            Column.numeric("longitude", [r.get("longitude") for r in rows]),
        ]
    )


class TestSimulatedGeocoder:
    def test_exact_address_resolves(self, gazetteer):
        street_map, _ = gazetteer
        rec = street_map.records[0]
        geocoder = SimulatedGeocoder(street_map, error_rate=0.0)
        response = geocoder.geocode(rec.street, rec.house_number)
        assert response.status == GeocodeStatus.OK
        assert response.record.street == rec.street
        assert response.record.house_number == rec.house_number

    def test_corrupted_address_recovered(self, gazetteer):
        street_map, _ = gazetteer
        rec = street_map.records[0]
        corrupted = rec.street.replace("a", "e", 1) + " xq"
        geocoder = SimulatedGeocoder(street_map, error_rate=0.0)
        response = geocoder.geocode(corrupted)
        assert response.status == GeocodeStatus.OK
        assert response.record.street == rec.street

    def test_garbage_not_found(self, gazetteer):
        street_map, _ = gazetteer
        geocoder = SimulatedGeocoder(street_map, error_rate=0.0)
        assert geocoder.geocode("qqq zzz xxx").status == GeocodeStatus.NOT_FOUND

    def test_empty_address_not_found_and_counted(self, gazetteer):
        street_map, _ = gazetteer
        geocoder = SimulatedGeocoder(street_map)
        assert geocoder.geocode("").status == GeocodeStatus.NOT_FOUND
        assert geocoder.requests_made == 1

    def test_quota_enforced(self, gazetteer):
        street_map, _ = gazetteer
        geocoder = SimulatedGeocoder(street_map, quota=2)
        geocoder.geocode("via x")
        geocoder.geocode("via y")
        with pytest.raises(QuotaExceededError):
            geocoder.geocode("via z")
        assert geocoder.remaining_quota == 0

    def test_error_rate_returns_wrong_street_sometimes(self, gazetteer):
        street_map, _ = gazetteer
        rec = street_map.records[0]
        geocoder = SimulatedGeocoder(street_map, quota=10_000, error_rate=1.0, seed=3)
        response = geocoder.geocode(rec.street)
        assert response.status == GeocodeStatus.OK
        # with error_rate=1 every response is drawn at random: over a few
        # requests at least one must differ from the truth
        streets = {geocoder.geocode(rec.street).record.street for __ in range(10)}
        assert any(s != rec.street for s in streets)

    def test_house_number_from_field_overrides_embedded(self, gazetteer):
        street_map, _ = gazetteer
        recs = street_map.records_by_street()
        street, civics = next(
            (s, r) for s, r in recs.items() if len(r) >= 3
        )
        geocoder = SimulatedGeocoder(street_map, error_rate=0.0)
        response = geocoder.geocode(street, house_number=civics[2].house_number)
        assert response.record.house_number == civics[2].house_number


class TestAddressCleaner:
    def test_exact_match(self, gazetteer):
        street_map, _ = gazetteer
        rec = street_map.records[0]
        cleaner = AddressCleaner(street_map, CleaningConfig(use_geocoder=False))
        street, status, sim = cleaner.resolve_street(rec.street)
        assert status is MatchStatus.EXACT
        assert street == rec.street
        assert sim == 1.0

    def test_normalization_handles_abbreviation(self, gazetteer):
        street_map, _ = gazetteer
        rec = next(r for r in street_map.records if r.street.startswith("corso "))
        abbreviated = rec.street.replace("corso ", "C.so ").upper()
        cleaner = AddressCleaner(street_map, CleaningConfig(use_geocoder=False))
        street, status, __ = cleaner.resolve_street(abbreviated)
        assert status is MatchStatus.EXACT
        assert street == rec.street

    def test_typo_within_phi_matched(self, gazetteer):
        street_map, _ = gazetteer
        rec = street_map.records[0]
        typo = rec.street[:-1] + ("x" if rec.street[-1] != "x" else "y")
        cleaner = AddressCleaner(street_map, CleaningConfig(phi=0.8, use_geocoder=False))
        street, status, sim = cleaner.resolve_street(typo)
        assert status is MatchStatus.MATCHED
        assert street == rec.street
        assert sim >= 0.8

    def test_below_phi_unresolved_without_geocoder(self, gazetteer):
        street_map, _ = gazetteer
        cleaner = AddressCleaner(street_map, CleaningConfig(use_geocoder=False))
        street, status, __ = cleaner.resolve_street("zzzz qqqq jjjj")
        assert street is None
        assert status is MatchStatus.UNRESOLVED

    def test_missing_address_skipped(self, gazetteer):
        street_map, _ = gazetteer
        cleaner = AddressCleaner(street_map, CleaningConfig(use_geocoder=False))
        __, status, ___ = cleaner.resolve_street(None)
        assert status is MatchStatus.SKIPPED

    def test_phi_validation(self, gazetteer):
        street_map, _ = gazetteer
        with pytest.raises(ValueError):
            AddressCleaner(street_map, CleaningConfig(phi=1.5))

    def test_clean_table_repairs_zip_and_coords(self, gazetteer):
        street_map, _ = gazetteer
        rec = street_map.records[0]
        table = geo_table(
            [
                {
                    "address": rec.street,
                    "house_number": rec.house_number,
                    "zip_code": "99999",           # wrong
                    "latitude": rec.latitude + 1.0,  # ~110 km off
                    "longitude": rec.longitude,
                }
            ]
        )
        cleaner = AddressCleaner(street_map, CleaningConfig(use_geocoder=False))
        report = cleaner.clean_table(table)
        out = report.table
        assert out["zip_code"][0] == rec.zip_code
        assert out["latitude"][0] == pytest.approx(rec.latitude)
        audit = report.audits[0]
        assert "zip_code" in audit.repaired_fields
        assert "coordinates" in audit.repaired_fields

    def test_clean_table_reconstructs_missing_fields(self, gazetteer):
        street_map, _ = gazetteer
        rec = street_map.records[0]
        table = geo_table(
            [{"address": rec.street, "house_number": None, "zip_code": None,
              "latitude": None, "longitude": None}]
        )
        cleaner = AddressCleaner(street_map, CleaningConfig(use_geocoder=False))
        out = cleaner.clean_table(table).table
        assert out["house_number"][0] is not None
        assert out["zip_code"][0] == rec.zip_code
        assert not np.isnan(out["latitude"][0])

    def test_close_coordinates_kept(self, gazetteer):
        """Coordinates within tolerance must NOT be overwritten."""
        street_map, _ = gazetteer
        rec = street_map.records[0]
        near_lat = rec.latitude + 0.0005  # ~55 m
        table = geo_table(
            [{"address": rec.street, "house_number": rec.house_number,
              "zip_code": rec.zip_code, "latitude": near_lat,
              "longitude": rec.longitude}]
        )
        cleaner = AddressCleaner(street_map, CleaningConfig(use_geocoder=False))
        report = cleaner.clean_table(table)
        assert report.table["latitude"][0] == pytest.approx(near_lat)
        assert "coordinates" not in report.audits[0].repaired_fields

    def test_unresolved_row_left_untouched(self, gazetteer):
        street_map, _ = gazetteer
        table = geo_table(
            [{"address": "qqq www zzz", "house_number": "3", "zip_code": "00000",
              "latitude": 45.0, "longitude": 7.6}]
        )
        cleaner = AddressCleaner(street_map, CleaningConfig(use_geocoder=False))
        report = cleaner.clean_table(table)
        assert report.audits[0].status is MatchStatus.UNRESOLVED
        assert report.table["zip_code"][0] == "00000"

    def test_geocoder_fallback_used_only_for_unresolved(self, gazetteer):
        street_map, _ = gazetteer
        rec = street_map.records[0]
        geocoder = SimulatedGeocoder(street_map, quota=10, error_rate=0.0)
        rows = [
            {"address": rec.street, "house_number": rec.house_number,
             "zip_code": rec.zip_code, "latitude": rec.latitude,
             "longitude": rec.longitude},
            # scrambled beyond phi but token-recoverable: reversed word order
            {"address": " ".join(reversed(rec.street.split())) + " qx",
             "house_number": rec.house_number, "zip_code": None,
             "latitude": None, "longitude": None},
        ]
        cleaner = AddressCleaner(street_map, CleaningConfig(phi=0.9), geocoder)
        report = cleaner.clean_table(geo_table(rows))
        statuses = [a.status for a in report.audits]
        assert statuses[0] is MatchStatus.EXACT
        assert statuses[1] is MatchStatus.GEOCODED
        assert report.geocoder_requests == 1

    def test_quota_exhaustion_reported(self, gazetteer):
        street_map, _ = gazetteer
        geocoder = SimulatedGeocoder(street_map, quota=0)
        rows = [{"address": "zzz qqq", "house_number": None, "zip_code": None,
                 "latitude": None, "longitude": None}]
        cleaner = AddressCleaner(street_map, CleaningConfig(), geocoder)
        report = cleaner.clean_table(geo_table(rows))
        assert report.geocoder_quota_exhausted
        assert report.audits[0].status is MatchStatus.UNRESOLVED

    def test_end_to_end_recovery_rate(self):
        """The cleaner must repair most injected corruption (E2's core claim)."""
        collection = generate_epc_collection(SyntheticConfig(n_certificates=1500, seed=4))
        noisy = apply_noise(collection, NoiseConfig(seed=9))
        turin_mask = np.array([c == "Turin" for c in noisy.table["city"]])
        turin = noisy.table.where(turin_mask)
        turin_rows = np.flatnonzero(turin_mask)

        cleaner = AddressCleaner(
            collection.street_map,
            CleaningConfig(),
            SimulatedGeocoder(collection.street_map, quota=2500, error_rate=0.0),
        )
        report = cleaner.clean_table(turin)
        assert report.resolution_rate() > 0.95

        # resolved rows should carry the true gazetteer street back
        correct = 0
        resolved = 0
        for audit in report.audits:
            if audit.status in (MatchStatus.EXACT, MatchStatus.MATCHED, MatchStatus.GEOCODED):
                resolved += 1
                truth = collection.street_map.records[
                    collection.gazetteer_index[turin_rows[audit.row]]
                ]
                if report.table["address"][audit.row] == truth.street:
                    correct += 1
        assert correct / resolved > 0.97

    def test_coordinate_repair_fixes_gross_errors(self):
        collection = generate_epc_collection(SyntheticConfig(n_certificates=1000, seed=4))
        noisy = apply_noise(collection, NoiseConfig(seed=9))
        gross_rows = {
            ev.row for ev in noisy.events
            if ev.kind == "gross_error" and ev.attribute == "latitude"
        }
        turin_mask = np.array([c == "Turin" for c in noisy.table["city"]])
        turin_rows = np.flatnonzero(turin_mask)
        cleaner = AddressCleaner(collection.street_map, CleaningConfig(use_geocoder=False))
        report = cleaner.clean_table(noisy.table.where(turin_mask))
        fixed = 0
        total = 0
        for local_i, global_i in enumerate(turin_rows):
            if global_i in gross_rows:
                audit = report.audits[local_i]
                if audit.status is MatchStatus.UNRESOLVED:
                    continue
                total += 1
                truth = collection.street_map.records[collection.gazetteer_index[global_i]]
                d = equirectangular_km(
                    float(report.table["latitude"][local_i]),
                    float(report.table["longitude"][local_i]),
                    truth.latitude, truth.longitude,
                )
                if d < 1.0:
                    fixed += 1
        assert total > 0
        assert fixed == total


class TestExpertStore:
    def test_builtin_default_when_empty(self, tmp_path):
        store = ExpertConfigStore(tmp_path / "store.json")
        suggestion = store.suggest("u_value_opaque")
        assert suggestion.method is BUILTIN_DEFAULT.method
        assert suggestion.expert == "builtin"

    def test_most_frequent_wins(self):
        store = ExpertConfigStore()
        store.record_choice("eta_h", OutlierMethod.MAD, {"cutoff": 3.5}, "alice")
        store.record_choice("eta_h", OutlierMethod.MAD, {"cutoff": 3.5}, "bob")
        store.record_choice("eta_h", OutlierMethod.GESD, {"alpha": 0.05}, "carol")
        suggestion = store.suggest("eta_h")
        assert suggestion.method is OutlierMethod.MAD
        assert suggestion.params_dict() == {"cutoff": 3.5}

    def test_fallback_to_global_history(self):
        store = ExpertConfigStore()
        store.record_choice("eta_h", OutlierMethod.GESD, {"alpha": 0.05})
        suggestion = store.suggest("u_value_windows")
        assert suggestion.method is OutlierMethod.GESD
        assert suggestion.attribute == "u_value_windows"

    def test_tie_breaks_toward_recency(self):
        store = ExpertConfigStore()
        store.record_choice("eta_h", OutlierMethod.MAD)
        store.record_choice("eta_h", OutlierMethod.GESD)
        assert store.suggest("eta_h").method is OutlierMethod.GESD

    def test_persistence_roundtrip(self, tmp_path):
        path = tmp_path / "store.json"
        store = ExpertConfigStore(path)
        store.record_choice("eta_h", OutlierMethod.BOXPLOT, {"whisker": 1.5}, "alice")
        reloaded = ExpertConfigStore(path)
        assert len(reloaded) == 1
        suggestion = reloaded.suggest("eta_h")
        assert suggestion.method is OutlierMethod.BOXPLOT
        assert suggestion.params_dict() == {"whisker": 1.5}

    def test_suggest_all_covers_tracked(self):
        store = ExpertConfigStore()
        suggestions = store.suggest_all()
        assert "u_value_opaque" in suggestions
        assert all(s.method for s in suggestions.values())

    def test_history_filter(self):
        store = ExpertConfigStore()
        store.record_choice("a", OutlierMethod.MAD)
        store.record_choice("b", OutlierMethod.MAD)
        assert len(store.history("a")) == 1
        assert len(store.history()) == 2
