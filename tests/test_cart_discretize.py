"""Tests for the CART regression tree and the discretizer."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analytics.cart import RegressionTree
from repro.analytics.discretize import (
    Discretization,
    discretize_attribute,
    discretize_table,
)
from repro.dataset.table import Column, ColumnKind, Table


def step_data(n=600, seed=0):
    """x uniform on [0, 3); y is a 3-level staircase + small noise."""
    rng = np.random.default_rng(seed)
    x = rng.uniform(0, 3, n)
    y = np.select([x < 1, x < 2], [0.0, 10.0], 20.0) + rng.normal(0, 0.5, n)
    return x, y


class TestRegressionTree:
    def test_recovers_staircase_splits(self):
        x, y = step_data()
        tree = RegressionTree(min_samples_leaf=20, max_leaves=3).fit(x, y)
        thresholds = tree.thresholds(0)
        assert len(thresholds) == 2
        assert abs(thresholds[0] - 1.0) < 0.15
        assert abs(thresholds[1] - 2.0) < 0.15

    def test_predictions_near_level_means(self):
        x, y = step_data()
        tree = RegressionTree(min_samples_leaf=20, max_leaves=3).fit(x, y)
        pred = tree.predict(np.array([0.5, 1.5, 2.5]))
        assert pred[0] == pytest.approx(0.0, abs=0.5)
        assert pred[1] == pytest.approx(10.0, abs=0.5)
        assert pred[2] == pytest.approx(20.0, abs=0.5)

    def test_depth_first_respects_max_depth(self):
        x, y = step_data()
        tree = RegressionTree(max_depth=1, min_samples_leaf=5).fit(x, y)
        assert tree.depth() <= 1
        assert tree.n_leaves() <= 2

    def test_best_first_respects_max_leaves(self):
        x, y = step_data()
        tree = RegressionTree(max_leaves=4, min_samples_leaf=5).fit(x, y)
        assert tree.n_leaves() <= 4

    def test_min_samples_leaf_respected(self):
        x, y = step_data(100)
        tree = RegressionTree(min_samples_leaf=40, max_leaves=10).fit(x, y)
        # walk leaves: every leaf must hold >= 40 samples
        for node in tree._walk():
            if node.is_leaf:
                assert node.n_samples >= 40

    def test_constant_response_single_leaf(self):
        x = np.arange(100.0)
        y = np.full(100, 5.0)
        tree = RegressionTree(max_leaves=4).fit(x, y)
        assert tree.n_leaves() == 1
        assert tree.predict(np.array([50.0]))[0] == 5.0

    def test_nan_rows_dropped_in_fit(self):
        x, y = step_data()
        x[0] = np.nan
        y[1] = np.nan
        tree = RegressionTree(max_leaves=3).fit(x, y)
        assert tree.root.n_samples == len(x) - 2

    def test_nan_prediction(self):
        x, y = step_data()
        tree = RegressionTree(max_leaves=3).fit(x, y)
        assert np.isnan(tree.predict(np.array([np.nan]))[0])

    def test_all_nan_fit_rejected(self):
        with pytest.raises(ValueError):
            RegressionTree().fit(np.full(10, np.nan), np.arange(10.0))

    def test_misaligned_rejected(self):
        with pytest.raises(ValueError):
            RegressionTree().fit(np.arange(5.0), np.arange(6.0))

    def test_2d_features(self):
        rng = np.random.default_rng(0)
        x = rng.uniform(0, 1, (400, 2))
        y = np.where(x[:, 1] > 0.5, 10.0, 0.0)  # only feature 1 matters
        tree = RegressionTree(max_leaves=2, min_samples_leaf=20).fit(x, y)
        assert tree.root.feature == 1
        assert abs(tree.root.threshold - 0.5) < 0.1

    def test_min_impurity_decrease_blocks_noise_splits(self):
        rng = np.random.default_rng(0)
        x = rng.uniform(0, 1, 300)
        y = rng.normal(0, 1, 300)  # pure noise
        strict = RegressionTree(max_leaves=8, min_impurity_decrease=50.0).fit(x, y)
        assert strict.n_leaves() < 8

    def test_predict_before_fit(self):
        with pytest.raises(RuntimeError):
            RegressionTree().predict(np.array([1.0]))

    @given(st.integers(0, 10_000))
    @settings(max_examples=20, deadline=None)
    def test_deeper_tree_never_fits_worse(self, seed):
        rng = np.random.default_rng(seed)
        x = rng.uniform(0, 1, 200)
        y = np.sin(x * 6) + rng.normal(0, 0.1, 200)
        sse = []
        for leaves in (2, 4, 8):
            tree = RegressionTree(max_leaves=leaves, min_samples_leaf=5, max_depth=10).fit(x, y)
            residual = y - tree.predict(x)
            sse.append(float(np.sum(residual**2)))
        assert sse[0] >= sse[1] >= sse[2]


class TestDiscretization:
    def test_labels_default_3(self):
        d = Discretization("a", (0.0, 1.0, 2.0, 3.0))
        assert d.labels == ("Low", "medium", "High")

    def test_labels_default_4(self):
        d = Discretization("a", (0.0, 1.0, 2.0, 3.0, 4.0))
        assert d.labels == ("Low", "medium", "High", "Very high")

    def test_labels_fallback(self):
        d = Discretization("a", tuple(float(i) for i in range(7)))
        assert d.labels == ("C1", "C2", "C3", "C4", "C5", "C6")

    def test_unsorted_edges_rejected(self):
        with pytest.raises(ValueError):
            Discretization("a", (1.0, 0.0))

    def test_label_of_boundaries(self):
        d = Discretization("a", (0.0, 1.0, 2.0, 3.0))
        assert d.label_of(0.0) == "Low"
        assert d.label_of(1.0) == "Low"     # first interval is closed
        assert d.label_of(1.0001) == "medium"
        assert d.label_of(2.0) == "medium"
        assert d.label_of(3.0) == "High"

    def test_label_of_clamps_outside(self):
        d = Discretization("a", (0.0, 1.0, 2.0))
        assert d.label_of(-5.0) == "Low"
        assert d.label_of(99.0) == "High"

    def test_label_of_nan(self):
        d = Discretization("a", (0.0, 1.0, 2.0))
        assert d.label_of(float("nan")) is None

    def test_describe_format(self):
        d = Discretization("u_w", (1.1, 2.05, 2.45, 3.35, 5.5))
        text = d.describe()
        assert text.startswith("Low = [1.1, 2.05]")
        assert "Very high = (3.35, 5.5]" in text

    def test_discretize_attribute_staircase(self):
        x, y = step_data()
        d = discretize_attribute(x, y, n_classes=3, attribute="x")
        assert d.n_classes == 3
        assert abs(d.thresholds[0] - 1.0) < 0.15
        assert abs(d.thresholds[1] - 2.0) < 0.15

    def test_fewer_classes_when_unsupported(self):
        # constant attribute: no split possible
        x = np.full(200, 1.0)
        y = np.arange(200.0)
        d = discretize_attribute(x, y, n_classes=3)
        assert d.n_classes == 1

    def test_invalid_n_classes(self):
        with pytest.raises(ValueError):
            discretize_attribute(np.arange(10.0), np.arange(10.0), n_classes=1)

    def test_discretize_table_replaces_columns(self):
        x, y = step_data()
        table = Table(
            [Column.numeric("x", x), Column.numeric("resp", y)]
        )
        out, discs = discretize_table(table, {"x": 3}, response="resp")
        assert out.kind("x") is ColumnKind.CATEGORICAL
        assert out.kind("resp") is ColumnKind.NUMERIC
        assert set(out.column("x").unique()) <= {"Low", "medium", "High"}
        assert "x" in discs

    def test_apply_matches_label_of(self):
        x, y = step_data()
        d = discretize_attribute(x, y, n_classes=3)
        labels = d.apply(x[:20])
        assert labels == [d.label_of(v) for v in x[:20]]
