"""Optional lint-tool gates: ruff and mypy, configured in pyproject.toml.

These tools are not vendored and the CI image may be offline, so each
test shells out only when the tool is importable/on PATH and skips
cleanly otherwise. The authoritative, always-on gate is the in-tree
``repro.checks`` analyzer (see test_checks.py); these tests simply keep
the pyproject configuration honest whenever the external tools do exist.
"""

import shutil
import subprocess
import sys
from pathlib import Path

import pytest

REPO = Path(__file__).parent.parent


def _run(argv):
    return subprocess.run(
        argv,
        cwd=REPO,
        capture_output=True,
        text=True,
        timeout=300,
    )


def test_ruff_clean_when_available():
    if shutil.which("ruff") is None:
        pytest.skip("ruff is not installed in this environment")
    proc = _run(["ruff", "check", "src", "tests"])
    assert proc.returncode == 0, proc.stdout + proc.stderr


def test_mypy_clean_when_available():
    try:
        import mypy  # noqa: F401
    except ImportError:
        pytest.skip("mypy is not installed in this environment")
    proc = _run([sys.executable, "-m", "mypy"])
    assert proc.returncode == 0, proc.stdout + proc.stderr


def test_pyproject_declares_both_tools():
    # the config blocks must exist even when the tools are absent, so a
    # developer machine with ruff/mypy picks them up with zero setup
    text = (REPO / "pyproject.toml").read_text()
    assert "[tool.ruff]" in text
    assert "[tool.mypy]" in text
    assert "tests/checks_fixtures" in text  # deliberate-violation corpus excluded
