"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main
from repro.dataset.io import read_csv


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_generate_defaults(self):
        args = build_parser().parse_args(["generate", "out.csv"])
        assert args.certificates == 25000
        assert not args.clean

    def test_run_choices_validated(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "d.html", "--stakeholder", "alien"])


class TestCommands:
    def test_generate_writes_csv(self, tmp_path, capsys):
        out = tmp_path / "epc.csv"
        code = main(["generate", str(out), "--certificates", "300", "--seed", "1"])
        assert code == 0
        table = read_csv(out)
        assert table.n_rows == 300
        assert table.n_columns == 132
        assert "300 dirty certificates" in capsys.readouterr().out

    def test_generate_clean_flag(self, tmp_path, capsys):
        out = tmp_path / "epc.csv"
        main(["generate", str(out), "--certificates", "100", "--clean"])
        assert "clean certificates" in capsys.readouterr().out

    def test_suggest_prints_advice(self, capsys):
        code = main(["suggest", "--certificates", "400", "--seed", "2"])
        assert code == 0
        out = capsys.readouterr().out
        assert "suggested:" in out
        assert "k_range" in out

    def test_run_writes_dashboard(self, tmp_path, capsys):
        out = tmp_path / "dash.html"
        code = main(
            [
                "run", str(out),
                "--certificates", "800", "--seed", "3",
                "--stakeholder", "citizen", "--granularity", "district",
            ]
        )
        assert code == 0
        text = out.read_text()
        assert text.startswith("<!DOCTYPE html>")
        assert "dashboard written to" in capsys.readouterr().out

    def test_run_with_auto_config(self, tmp_path):
        out = tmp_path / "dash.html"
        code = main(
            ["run", str(out), "--certificates", "800", "--seed", "3", "--auto-config"]
        )
        assert code == 0
        assert out.exists()
