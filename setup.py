"""Setup shim: enables legacy editable installs where the `wheel` package
(needed for PEP 660 builds) is unavailable, e.g. fully offline environments."""

from setuptools import setup

setup()
