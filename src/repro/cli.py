"""Command-line interface: ``python -m repro <command>``.

Three commands cover the zero-to-dashboard path:

* ``generate`` — write the synthetic Piedmont collection (clean and/or
  dirty) to CSV, for inspection or for feeding external tools;
* ``suggest`` — print the automatic configuration advice for a collection
  (the paper's future-work advisor);
* ``run`` — execute the full pipeline and write the stakeholder dashboard
  plus the provenance log.

Every command is seeded and offline; see ``python -m repro --help``.
"""

from __future__ import annotations

import argparse
import os
import sys
from pathlib import Path

from . import Granularity, Indice, IndiceConfig, Stakeholder
from .core.autoconfig import suggest_config
from .dataset import (
    NoiseConfig,
    SyntheticConfig,
    apply_noise,
    generate_epc_collection,
    write_csv,
)
from .faults import FaultInjector, FaultPlan

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    """The argparse parser for the ``repro`` command line."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="INDICE — EPC exploration through visualization (EDBT/BigVis 2019 reproduction)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    gen = sub.add_parser("generate", help="write the synthetic EPC collection to CSV")
    gen.add_argument("output", type=Path, help="output CSV path")
    gen.add_argument("--certificates", type=int, default=25000)
    gen.add_argument("--seed", type=int, default=2322)
    gen.add_argument("--clean", action="store_true",
                     help="skip noise injection (default: dirty, like real data)")

    sug = sub.add_parser("suggest", help="print automatic configuration advice")
    sug.add_argument("--certificates", type=int, default=5000)
    sug.add_argument("--seed", type=int, default=2322)

    run = sub.add_parser("run", help="run the full pipeline and write a dashboard")
    run.add_argument("output", type=Path, help="output dashboard HTML path")
    run.add_argument("--certificates", type=int, default=5000)
    run.add_argument("--seed", type=int, default=2322)
    run.add_argument(
        "--stakeholder",
        choices=[s.value for s in Stakeholder],
        default=Stakeholder.PUBLIC_ADMINISTRATION.value,
    )
    run.add_argument(
        "--granularity",
        choices=[g.name.lower() for g in Granularity],
        default=None,
        help="map zoom level (default: the stakeholder profile's)",
    )
    run.add_argument("--auto-config", action="store_true",
                     help="let the advisor pick the analysis configuration")
    run.add_argument(
        "--audit-effects", action="store_true",
        help="instrument env/clock/RNG access during the cached stages "
             "(raises on an un-fingerprinted read; also honored via the "
             "REPRO_AUDIT_EFFECTS environment variable)",
    )
    _add_perf_arguments(run)

    serve = sub.add_parser("serve", help="analyze once, then serve the dashboards over HTTP")
    serve.add_argument("--certificates", type=int, default=5000)
    serve.add_argument("--seed", type=int, default=2322)
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument("--port", type=int, default=8350)
    serve.add_argument(
        "--workers", type=int, default=8, metavar="N",
        help="handler threads in the serving pool (default: 8)",
    )
    serve.add_argument(
        "--max-inflight", type=int, default=64, metavar="N",
        help="concurrent requests admitted before load shedding kicks in "
             "(excess arrivals get 503 + Retry-After; default: 64)",
    )
    serve.add_argument(
        "--no-prerender", action="store_true",
        help="render artifacts lazily on first hit (coalesced) instead of "
             "all at startup",
    )
    serve.add_argument(
        "--sanitize-locks", action="store_true",
        help="instrument the serving locks with the lockdep sanitizer "
             "(raises on lock-order inversion; also honored via the "
             "REPRO_SANITIZE_LOCKS environment variable)",
    )
    serve.add_argument(
        "--audit-effects", action="store_true",
        help="instrument env/clock/RNG access during stage and render "
             "execution (raises on an un-fingerprinted read; also honored "
             "via the REPRO_AUDIT_EFFECTS environment variable)",
    )
    _add_perf_arguments(serve)

    check = sub.add_parser(
        "check",
        help="run the repro.checks project analyzer (determinism/cache/fault/lineage contracts)",
    )
    check.add_argument(
        "paths", nargs="*", default=["src/repro"],
        help="files or directories to analyze (default: src/repro)",
    )
    check.add_argument("--format", choices=("text", "json", "sarif"), default="text")
    check.add_argument("--select", metavar="RULES", default=None)
    check.add_argument("--cache", metavar="PATH", default=None)
    check.add_argument("--changed-only", action="store_true")
    check.add_argument("--baseline", metavar="PATH", default=None)
    check.add_argument("--write-baseline", metavar="PATH", default=None)
    check.add_argument("--all", action="store_true",
                       help="AST sweep plus ruff/mypy (skipped when missing)")
    check.add_argument("--list-rules", action="store_true")
    check.add_argument(
        "--explain", metavar="RULE", default=None,
        help="print a rule's doc, rationale and its fixture good/bad pair",
    )
    return parser


def _add_perf_arguments(parser: argparse.ArgumentParser) -> None:
    """The shared performance knobs of the pipeline-running commands."""
    parser.add_argument(
        "--jobs", type=int, default=1, metavar="N",
        help="worker processes for the parallel stages "
             "(1 = serial, 0 = all cores; default: 1)",
    )
    parser.add_argument(
        "--no-cache", action="store_true",
        help="disable the content-hash stage cache (always recompute)",
    )
    parser.add_argument(
        "--cache-dir", type=Path, default=None, metavar="DIR",
        help="persist stage-cache entries under DIR (reused across runs)",
    )
    parser.add_argument(
        "--fault-plan", default=None, metavar="SPEC",
        help="inject deterministic faults for resilience testing: a spec "
             "string like 'geocoder.request:transient@0.3;seed=7' "
             "(site:kind[@rate][*times][+after], ';'-separated) or "
             "'@plan.json' to load a saved plan; reproduces a chaos run "
             "exactly",
    )
    parser.add_argument(
        "--shards", default=None, metavar="SCHEME",
        help="run the pipeline sharded with out-of-core merge: "
             "'by-district', 'by-zip' or a shard count; results are "
             "bit-identical to the monolithic path, peak memory is "
             "bounded by the largest shard (default: monolithic)",
    )
    parser.add_argument(
        "--spill-dir", type=Path, default=None, metavar="DIR",
        help="keep the per-shard columnar spill files under DIR (with "
             "--cache-dir this makes warm runs skip unchanged shards; "
             "default: a temporary directory per run)",
    )
    parser.add_argument(
        "--max-resident-shards", type=int, default=4, metavar="N",
        help="spill maps kept open at once during the sharded merge "
             "(default: 4)",
    )


def _make_injector(args: argparse.Namespace) -> FaultInjector | None:
    """The fault injector requested by ``--fault-plan``, if any."""
    if not getattr(args, "fault_plan", None):
        return None
    return FaultInjector(FaultPlan.load(args.fault_plan))


def _apply_perf_arguments(config: IndiceConfig, args: argparse.Namespace) -> IndiceConfig:
    """Plumb the CLI performance knobs into an :class:`IndiceConfig`."""
    config.n_jobs = args.jobs
    config.stage_cache = not args.no_cache
    config.cache_dir = str(args.cache_dir) if args.cache_dir else None
    config.shards = args.shards
    config.spill_dir = str(args.spill_dir) if args.spill_dir else None
    config.max_resident_shards = args.max_resident_shards
    return config


def _make_collection(n: int, seed: int, dirty: bool):
    collection = generate_epc_collection(
        SyntheticConfig(n_certificates=n, seed=seed)
    )
    if dirty:
        noisy = apply_noise(collection, NoiseConfig(seed=seed + 1))
        collection.table = noisy.table
    return collection


def _cmd_generate(args: argparse.Namespace) -> int:
    collection = _make_collection(args.certificates, args.seed, dirty=not args.clean)
    args.output.parent.mkdir(parents=True, exist_ok=True)
    write_csv(collection.table, args.output)
    state = "clean" if args.clean else "dirty"
    print(f"wrote {collection.n_certificates} {state} certificates "
          f"({collection.table.n_columns} attributes) to {args.output}")
    return 0


def _cmd_suggest(args: argparse.Namespace) -> int:
    collection = _make_collection(args.certificates, args.seed, dirty=True)
    advice = suggest_config(collection.table)
    print(advice.describe())
    cfg = advice.config
    print(f"\nsuggested: outlier={cfg.outlier_method.value}, "
          f"k_range={cfg.k_range}, "
          f"min_support={cfg.rule_constraints.min_support:.3f}")
    return 0


def _cmd_run(args: argparse.Namespace) -> int:
    granularity = (
        Granularity[args.granularity.upper()] if args.granularity else None
    )
    if args.audit_effects:
        # the env flag (not a parameter chain) arms the auditor so every
        # audited region — engine stages, store renders — sees it
        os.environ["REPRO_AUDIT_EFFECTS"] = "1"
    if args.shards:
        # sharded tier: shards are generated/cleaned one at a time, so
        # the full collection is never resident (no _make_collection)
        from .perf.shards import ShardPlan

        if args.auto_config:
            print("--auto-config needs the materialized table and cannot "
                  "be combined with --shards")
            return 2
        plan = ShardPlan.from_generator(
            SyntheticConfig(n_certificates=args.certificates, seed=args.seed),
            args.shards,
            noise=NoiseConfig(seed=args.seed + 1),
        )
        engine = Indice(
            plan.collection, _apply_perf_arguments(IndiceConfig(), args),
            injector=_make_injector(args),
        )
        engine.run_sharded(plan)
        dashboard = engine.build_dashboard(
            Stakeholder(args.stakeholder), granularity
        )
        path = dashboard.save(args.output)
        print(engine.log.describe())
        print(f"\ndashboard written to {path}")
        return 0
    collection = _make_collection(args.certificates, args.seed, dirty=True)
    if args.auto_config:
        config = suggest_config(collection.table).config
    else:
        config = IndiceConfig()
    engine = Indice(
        collection, _apply_perf_arguments(config, args),
        injector=_make_injector(args),
    )
    dashboard = engine.run(Stakeholder(args.stakeholder), granularity)
    path = dashboard.save(args.output)
    print(engine.log.describe())
    degradations = engine.log.degradations()
    if degradations:
        print(f"\n{len(degradations)} degradation(s) under fault injection "
              "— see the provenance steps above")
    if args.audit_effects:
        from .checks import effectaudit as _effectaudit

        print("\neffect audit (observed ambient reads per stage):")
        print(_effectaudit.DEFAULT.describe())
    print(f"\ndashboard written to {path}")
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    from .serving import ArtifactServer, build_store

    if args.sanitize_locks:
        # the env flag (not a parameter chain) arms the sanitizer so every
        # lock construction site — store, server, stage cache — sees it
        os.environ["REPRO_SANITIZE_LOCKS"] = "1"
    if args.audit_effects:
        os.environ["REPRO_AUDIT_EFFECTS"] = "1"
    collection = _make_collection(args.certificates, args.seed, dirty=True)
    engine = Indice(
        collection, _apply_perf_arguments(IndiceConfig(), args),
        injector=_make_injector(args),
    )
    engine.preprocess()
    engine.analyze()
    store = build_store(engine)
    if not args.no_prerender:
        n_artifacts = store.prerender()
        print(f"pre-rendered {n_artifacts} artifacts "
              f"(analysis version {store.version})")
    server = ArtifactServer(store, max_inflight=args.max_inflight)
    server.serve(args.host, args.port, workers=args.workers)
    return 0


def _cmd_check(args: argparse.Namespace) -> int:
    from .checks.cli import main as checks_main

    argv = [str(p) for p in args.paths]
    argv += ["--format", args.format]
    if args.select:
        argv += ["--select", args.select]
    if args.cache:
        argv += ["--cache", str(args.cache)]
    if args.changed_only:
        argv += ["--changed-only"]
    if args.baseline:
        argv += ["--baseline", str(args.baseline)]
    if args.write_baseline:
        argv += ["--write-baseline", str(args.write_baseline)]
    if args.all:
        argv += ["--all"]
    if args.list_rules:
        argv += ["--list-rules"]
    if args.explain:
        argv += ["--explain", args.explain]
    return checks_main(argv)


_COMMANDS = {
    "generate": _cmd_generate,
    "suggest": _cmd_suggest,
    "run": _cmd_run,
    "serve": _cmd_serve,
    "check": _cmd_check,
}


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    args = build_parser().parse_args(argv)
    return _COMMANDS[args.command](args)


if __name__ == "__main__":
    sys.exit(main())
