"""INDICE pre-processing tier: geospatial cleaning and outlier detection."""

from .address_cleaner import (
    AddressCleaner,
    CleaningConfig,
    CleaningReport,
    MatchStatus,
    RowAudit,
)
from .geocoder import (
    GeocodeResponse,
    GeocodeStatus,
    QuotaExceededError,
    SimulatedGeocoder,
)
from .outliers import (
    MAD_CUTOFF,
    OutlierMethod,
    OutlierResult,
    boxplot_outliers,
    detect_outliers,
    gesd_outliers,
    mad_outliers,
)
from .dbscan import NOISE, DbscanResult, dbscan
from .kdistance import (
    KDistanceEstimate,
    elbow_point,
    estimate_dbscan_params,
    k_distance_curve,
)
from .expert_store import (
    BUILTIN_DEFAULT,
    ExpertConfigStore,
    ExpertConfiguration,
    TRACKED_ATTRIBUTES,
)
from .quality import AttributeQuality, QualityProfile, assess_quality

__all__ = [
    "AddressCleaner",
    "CleaningConfig",
    "CleaningReport",
    "MatchStatus",
    "RowAudit",
    "GeocodeResponse",
    "GeocodeStatus",
    "QuotaExceededError",
    "SimulatedGeocoder",
    "MAD_CUTOFF",
    "OutlierMethod",
    "OutlierResult",
    "boxplot_outliers",
    "detect_outliers",
    "gesd_outliers",
    "mad_outliers",
    "NOISE",
    "DbscanResult",
    "dbscan",
    "KDistanceEstimate",
    "elbow_point",
    "estimate_dbscan_params",
    "k_distance_curve",
    "BUILTIN_DEFAULT",
    "ExpertConfigStore",
    "ExpertConfiguration",
    "TRACKED_ATTRIBUTES",
    "AttributeQuality",
    "QualityProfile",
    "assess_quality",
]
