"""Collection-level data-quality assessment.

Before any analysis, an analyst wants to know *how dirty* a collection
is: how much is missing, what violates physical plausibility, whether
certificates are duplicated (registries re-issue certificates for the
same unit), and whether the geolocation is trustworthy.  The INDICE paper
folds this into "smoothing the effect of possibly unreliable data"
(Section 2.1); this module makes the assessment explicit and reportable.

The profile is diagnostic only — it never mutates data.  Cleaning and
outlier removal act on its findings.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field

import numpy as np

from ..dataset.epc import validate_table
from ..dataset.schema import EpcSchema, epc_schema
from ..dataset.table import Table
from ..geo.regions import RegionHierarchy

__all__ = ["AttributeQuality", "QualityProfile", "assess_quality"]


@dataclass(frozen=True)
class AttributeQuality:
    """Quality facts about one attribute."""

    attribute: str
    kind: str
    n_missing: int
    missing_rate: float
    n_implausible: int

    @property
    def usable_rate(self) -> float:
        """Fraction of non-missing values."""
        return 1.0 - self.missing_rate


@dataclass
class QualityProfile:
    """The collection-level quality assessment."""

    n_rows: int
    attributes: dict[str, AttributeQuality] = field(default_factory=dict)
    n_duplicate_certificates: int = 0
    duplicate_groups: list[tuple[str, int]] = field(default_factory=list)
    n_unlocated: int = 0
    n_outside_region: int = 0

    def worst_attributes(self, k: int = 5) -> list[AttributeQuality]:
        """The *k* attributes with the highest missing rate."""
        ranked = sorted(self.attributes.values(), key=lambda a: -a.missing_rate)
        return ranked[:k]

    def overall_missing_rate(self) -> float:
        """Missing cells over all profiled cells."""
        total = self.n_rows * len(self.attributes)
        if total == 0:
            return 0.0
        return sum(a.n_missing for a in self.attributes.values()) / total

    def describe(self) -> str:
        """Human-readable multi-line description."""
        lines = [
            f"collection: {self.n_rows} certificates, "
            f"{len(self.attributes)} attributes profiled",
            f"overall missing rate: {self.overall_missing_rate():.2%}",
            f"unlocated certificates: {self.n_unlocated}",
            f"located outside the reference region: {self.n_outside_region}",
            f"duplicate certificate ids: {self.n_duplicate_certificates}",
        ]
        worst = [a for a in self.worst_attributes(3) if a.n_missing > 0]
        if worst:
            lines.append("most incomplete attributes:")
            lines.extend(
                f"  {a.attribute}: {a.missing_rate:.1%} missing"
                + (f", {a.n_implausible} implausible" if a.n_implausible else "")
                for a in worst
            )
        return "\n".join(lines)


def assess_quality(
    table: Table,
    schema: EpcSchema | None = None,
    hierarchy: RegionHierarchy | None = None,
    attributes: list[str] | None = None,
) -> QualityProfile:
    """Profile the quality of an EPC collection.

    * per-attribute missing rates and schema-plausibility violations;
    * duplicate ``certificate_id`` values (with the duplicated ids);
    * geolocation health: rows without coordinates, and — when a
      *hierarchy* is given — rows located outside the city polygon.

    ``attributes`` restricts profiling (default: every table column the
    schema knows about).
    """
    schema = schema or epc_schema()
    names = attributes if attributes is not None else [
        n for n in table.column_names if n in schema
    ]
    validation = validate_table(table, schema, attributes=names)
    implausible = validation.by_attribute()

    profile = QualityProfile(n_rows=table.n_rows)
    for name in names:
        column = table.column(name)
        n_missing = int(column.is_missing().sum())
        profile.attributes[name] = AttributeQuality(
            attribute=name,
            kind=column.kind.value,
            n_missing=n_missing,
            missing_rate=n_missing / table.n_rows if table.n_rows else 0.0,
            n_implausible=implausible.get(name, 0),
        )

    if "certificate_id" in table:
        counts = Counter(
            v for v in table["certificate_id"] if v is not None
        )
        duplicated = [(cid, n) for cid, n in counts.items() if n > 1]
        profile.duplicate_groups = sorted(duplicated, key=lambda kv: -kv[1])[:50]
        profile.n_duplicate_certificates = sum(n - 1 for __, n in duplicated)

    if "latitude" in table and "longitude" in table:
        lat = table["latitude"]
        lon = table["longitude"]
        unlocated = np.isnan(lat) | np.isnan(lon)
        profile.n_unlocated = int(unlocated.sum())
        if hierarchy is not None:
            region = hierarchy.city
            lo_lat, lo_lon, hi_lat, hi_lon = region.bounding_box()
            outside = 0
            for i in np.flatnonzero(~unlocated):
                la, lo = float(lat[i]), float(lon[i])
                if not (lo_lat <= la <= hi_lat and lo_lon <= lo <= hi_lon):
                    outside += 1
                elif not region.contains(la, lo):
                    outside += 1
            profile.n_outside_region = outside
    return profile
