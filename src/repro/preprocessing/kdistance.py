"""Automatic DBSCAN parameter estimation via k-distance curves.

The paper: "To properly specify these input parameters INDICE plots the
k-distance graph and automatically estimates a good value for each
parameter.  As proposed in [10], INDICE runs several times the k-distance
plot for different values of minPoints, and selects minPoints when the
curve stabilises, and Epsilon as the elbow point of the stable curve."
(Section 2.1.2.)

Concretely:

* :func:`k_distance_curve` — sorted distances to each point's k-th nearest
  neighbour (the curve the dashboard plots);
* :func:`elbow_point` — the point of a monotone curve farthest from the
  chord joining its endpoints (the standard geometric elbow rule);
* :func:`estimate_dbscan_params` — sweeps minPoints, declares the curve
  *stable* at the first k whose curve is within a relative tolerance of
  the previous one, and returns that minPoints with the elbow Epsilon.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np
from scipy.spatial import cKDTree

__all__ = ["KDistanceEstimate", "k_distance_curve", "elbow_point", "estimate_dbscan_params"]


def k_distance_curve(points: np.ndarray, k: int) -> np.ndarray:
    """Ascending distances from each point to its k-th nearest neighbour.

    Rows with NaN coordinates are skipped.  ``k`` counts neighbours other
    than the point itself.
    """
    points = np.asarray(points, dtype=np.float64)
    if points.ndim != 2:
        raise ValueError(f"expected an (n, d) matrix, got shape {points.shape}")
    if k < 1:
        raise ValueError("k must be >= 1")
    coords = points[~np.isnan(points).any(axis=1)]
    if len(coords) <= k:
        return np.empty(0, dtype=np.float64)
    tree = cKDTree(coords)
    # query k+1 because the nearest neighbour of each point is itself
    distances, _ = tree.query(coords, k=k + 1)
    return np.sort(distances[:, k])


def elbow_point(curve: np.ndarray) -> tuple[int, float]:
    """Index and value of the elbow of an ascending curve.

    Uses the maximum-distance-to-chord rule: normalize both axes to [0, 1],
    draw the chord from the first to the last point, and pick the curve
    point with the largest perpendicular distance to it.
    """
    curve = np.asarray(curve, dtype=np.float64)
    if len(curve) < 3:
        index = max(len(curve) - 1, 0)
        return index, float(curve[index]) if len(curve) else 0.0
    x = np.linspace(0.0, 1.0, len(curve))
    span = curve[-1] - curve[0]
    if span == 0:
        return len(curve) - 1, float(curve[-1])
    y = (curve - curve[0]) / span
    # distance from (x, y) to the chord y = x is |y - x| / sqrt(2)
    index = int(np.argmax(np.abs(y - x)))
    return index, float(curve[index])


@dataclass
class KDistanceEstimate:
    """Outcome of the automatic (minPoints, Epsilon) estimation."""

    min_points: int
    eps: float
    curves: dict[int, np.ndarray] = field(default_factory=dict)
    stabilized_at: int | None = None

    def curve_for(self, k: int) -> np.ndarray:
        """The k-distance curve computed for *k*."""
        return self.curves[k]


def _curve_gap(a: np.ndarray, b: np.ndarray) -> float:
    """Relative L1 gap between two curves resampled to a common length."""
    m = min(len(a), len(b))
    if m == 0:
        return np.inf
    grid = np.linspace(0, 1, m)
    ra = np.interp(grid, np.linspace(0, 1, len(a)), a)
    rb = np.interp(grid, np.linspace(0, 1, len(b)), b)
    scale = max(np.abs(ra).mean(), 1e-12)
    return float(np.abs(ra - rb).mean() / scale)


def estimate_dbscan_params(
    points: np.ndarray,
    min_points_range: tuple[int, int] = (3, 12),
    stability_tolerance: float = 0.10,
) -> KDistanceEstimate:
    """Estimate (minPoints, Epsilon) by k-distance curve stabilization.

    Sweeps ``k`` over *min_points_range* (inclusive); the curve is declared
    stable at the first ``k`` whose curve differs from the previous one by
    less than *stability_tolerance* (relative mean gap).  Epsilon is the
    elbow of the stable curve.  Falls back to the last swept ``k`` when no
    curve stabilizes.

    DBSCAN's minPoints counts the point itself, so the returned
    ``min_points`` is the stable ``k`` **plus one**.
    """
    lo, hi = min_points_range
    if lo < 1 or hi < lo:
        raise ValueError(f"invalid min_points_range {min_points_range}")
    curves: dict[int, np.ndarray] = {}
    stable_k: int | None = None
    previous: np.ndarray | None = None
    for k in range(lo, hi + 1):
        curve = k_distance_curve(points, k)
        curves[k] = curve
        if previous is not None and stable_k is None:
            if _curve_gap(previous, curve) < stability_tolerance:
                stable_k = k
        previous = curve
    chosen_k = stable_k if stable_k is not None else hi
    _, eps = elbow_point(curves[chosen_k])
    if eps <= 0:
        positive = curves[chosen_k][curves[chosen_k] > 0]
        eps = float(positive[0]) if len(positive) else 1e-6
    return KDistanceEstimate(
        min_points=chosen_k + 1,
        eps=eps,
        curves=curves,
        stabilized_at=stable_k,
    )
