"""Univariate outlier detection: boxplot, generalized ESD and MAD.

INDICE "integrates three methodologies to automatically detect outliers and
remove them for the subsequent analytics steps: (i) the graphic boxplot
method, (ii) the parametric generalized Extreme Studentized Deviate (gESD)
method and (iii) the non-parametric Median Absolute Deviation (MAD)"
(paper, Section 2.1.2).  All three share one interface: they take a numeric
array (NaN = missing, never flagged) and return an :class:`OutlierResult`
whose mask marks the values to exclude from later analytics.

* **Boxplot** (Tukey): values outside ``[Q1 - k*IQR, Q3 + k*IQR]``, k = 1.5.
  The result also carries the whisker fences so a dashboard can draw the
  plot and let the analyst filter manually, as the paper describes.
* **gESD** (Rosner 1983): up to ``max_outliers`` candidates are tested; the
  number of outliers is "the largest r such that the corresponding test
  statistic exceeds the critical value" — exactly the rule quoted in the
  paper.  Critical values use the Student-t quantiles from scipy.
* **MAD** (Hampel; Iglewicz & Hoaglin 1993): the modified z-score
  ``0.6745 * |x - median| / MAD`` with the paper's cut-off of **3.5**.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

import numpy as np
from scipy import stats

__all__ = [
    "OutlierMethod",
    "OutlierResult",
    "boxplot_outliers",
    "gesd_outliers",
    "mad_outliers",
    "detect_outliers",
    "MAD_CUTOFF",
    "MAD_CONSISTENCY",
]

#: The paper's modified-z-score cut-off (Iglewicz & Hoaglin, quoted in §2.1.2).
MAD_CUTOFF = 3.5
#: Consistency constant making MAD comparable to a standard deviation.
MAD_CONSISTENCY = 0.6745


class OutlierMethod(enum.Enum):
    """The univariate detectors INDICE integrates."""

    BOXPLOT = "boxplot"
    GESD = "gesd"
    MAD = "mad"


@dataclass
class OutlierResult:
    """Outcome of a univariate detection run.

    ``mask`` is aligned with the input: True marks an outlier.  Missing
    input values are never outliers.  ``diagnostics`` carries the
    method-specific numbers a dashboard shows (fences, test statistics...).
    """

    method: OutlierMethod
    mask: np.ndarray
    diagnostics: dict = field(default_factory=dict)

    @property
    def n_outliers(self) -> int:
        """Number of values flagged as outliers."""
        return int(self.mask.sum())

    def outlier_indices(self) -> np.ndarray:
        """Indices of the flagged values."""
        return np.flatnonzero(self.mask)

    def inlier_values(self, values: np.ndarray) -> np.ndarray:
        """The non-missing values that survived detection."""
        values = np.asarray(values, dtype=np.float64)
        keep = ~self.mask & ~np.isnan(values)
        return values[keep]


def _as_float_array(values) -> np.ndarray:
    arr = np.asarray(values, dtype=np.float64)
    if arr.ndim != 1:
        raise ValueError(f"expected a 1-D array, got shape {arr.shape}")
    return arr


def boxplot_outliers(values, whisker: float = 1.5) -> OutlierResult:
    """Tukey boxplot detection: flag values beyond ``whisker`` IQRs.

    Diagnostics: ``q1``, ``median``, ``q3``, ``iqr``, ``lower_fence``,
    ``upper_fence`` — everything needed to draw the whiskers plot the paper
    exposes to the analyst.
    """
    arr = _as_float_array(values)
    present = ~np.isnan(arr)
    mask = np.zeros(arr.shape, dtype=bool)
    if present.sum() == 0:
        return OutlierResult(OutlierMethod.BOXPLOT, mask, {"n_tested": 0})
    q1, median, q3 = np.percentile(arr[present], [25, 50, 75])
    iqr = q3 - q1
    lower = q1 - whisker * iqr
    upper = q3 + whisker * iqr
    # full-array comparison (no fancy-indexed temporaries): NaN compares
    # False on both sides, so missing rows are never flagged
    with np.errstate(invalid="ignore"):
        mask = (arr < lower) | (arr > upper)
    return OutlierResult(
        OutlierMethod.BOXPLOT,
        mask,
        {
            "q1": float(q1),
            "median": float(median),
            "q3": float(q3),
            "iqr": float(iqr),
            "lower_fence": float(lower),
            "upper_fence": float(upper),
            "whisker": whisker,
            "n_tested": int(present.sum()),
        },
    )


def _gesd_critical_value(n: int, i: int, alpha: float) -> float:
    """Rosner's lambda_i critical value for the i-th gESD test (1-based)."""
    p = 1.0 - alpha / (2.0 * (n - i + 1))
    df = n - i - 1
    t = stats.t.ppf(p, df)
    return (n - i) * t / np.sqrt((df + t**2) * (n - i + 1))


def gesd_outliers(values, max_outliers: int = 10, alpha: float = 0.05) -> OutlierResult:
    """Generalized ESD test (Rosner 1983) for up to *max_outliers* outliers.

    Performs ``max_outliers`` sequential tests, each removing the value
    farthest from the current mean; the declared outlier count is the
    largest ``r`` whose statistic ``R_r`` exceeds the critical value
    ``lambda_r``.  Requires at least 3 non-missing observations per test.

    Diagnostics: per-iteration ``statistics`` and ``critical_values``, and
    the chosen ``n_declared``.
    """
    if max_outliers < 1:
        raise ValueError("max_outliers must be >= 1")
    arr = _as_float_array(values)
    present_idx = np.flatnonzero(~np.isnan(arr))
    mask = np.zeros(arr.shape, dtype=bool)
    n = len(present_idx)
    max_outliers = min(max_outliers, max(n - 3, 0))
    if max_outliers == 0:
        return OutlierResult(
            OutlierMethod.GESD, mask,
            {"statistics": [], "critical_values": [], "n_declared": 0, "alpha": alpha},
        )

    working = arr[present_idx].astype(np.float64)
    candidate_order: list[int] = []  # positions into present_idx
    statistics: list[float] = []
    criticals: list[float] = []
    active = np.ones(n, dtype=bool)
    for i in range(1, max_outliers + 1):
        current = working[active]
        mean = current.mean()
        std = current.std(ddof=1)
        if std == 0:
            break
        deviations = np.abs(working - mean)
        deviations[~active] = -np.inf
        worst = int(np.argmax(deviations))
        statistic = float(deviations[worst] / std)
        statistics.append(statistic)
        criticals.append(float(_gesd_critical_value(n, i, alpha)))
        candidate_order.append(worst)
        active[worst] = False

    n_declared = 0
    for i, (stat, crit) in enumerate(zip(statistics, criticals), start=1):
        if stat > crit:
            n_declared = i
    for pos in candidate_order[:n_declared]:
        mask[present_idx[pos]] = True
    return OutlierResult(
        OutlierMethod.GESD,
        mask,
        {
            "statistics": statistics,
            "critical_values": criticals,
            "n_declared": n_declared,
            "alpha": alpha,
            "max_outliers": max_outliers,
        },
    )


def mad_outliers(values, cutoff: float = MAD_CUTOFF) -> OutlierResult:
    """MAD-based detection with the modified z-score.

    A point is an outlier when ``0.6745 * |x - median| / MAD > cutoff``
    (default 3.5, the value the paper adopts from Iglewicz & Hoaglin).
    Falls back to the mean absolute deviation about the median when the MAD
    is zero (more than half the sample identical), matching Iglewicz &
    Hoaglin's recommendation.
    """
    arr = _as_float_array(values)
    present = ~np.isnan(arr)
    mask = np.zeros(arr.shape, dtype=bool)
    if present.sum() == 0:
        return OutlierResult(OutlierMethod.MAD, mask, {"n_tested": 0})
    sample = arr[present]
    median = np.median(sample)
    abs_dev = np.abs(sample - median)
    mad = np.median(abs_dev)
    # score the full array (NaN rows score NaN, which compares False) so
    # the mask needs no boolean scatter through `present`
    with np.errstate(invalid="ignore"):
        if mad > 0:
            scores = MAD_CONSISTENCY * np.abs(arr - median) / mad
            scale_used = "mad"
        else:
            mean_ad = abs_dev.mean()
            if mean_ad == 0:
                return OutlierResult(
                    OutlierMethod.MAD, mask,
                    {"median": float(median), "mad": 0.0, "n_tested": int(present.sum())},
                )
            scores = np.abs(arr - median) / (1.253314 * mean_ad)
            scale_used = "mean_ad"
        mask = scores > cutoff
    return OutlierResult(
        OutlierMethod.MAD,
        mask,
        {
            "median": float(median),
            "mad": float(mad),
            "cutoff": cutoff,
            "scale": scale_used,
            "n_tested": int(present.sum()),
        },
    )


def detect_outliers(values, method: OutlierMethod, **kwargs) -> OutlierResult:
    """Dispatch to the chosen univariate detector.

    Keyword arguments are forwarded: ``whisker`` (boxplot),
    ``max_outliers``/``alpha`` (gESD), ``cutoff`` (MAD).
    """
    if method is OutlierMethod.BOXPLOT:
        return boxplot_outliers(values, **kwargs)
    if method is OutlierMethod.GESD:
        return gesd_outliers(values, **kwargs)
    if method is OutlierMethod.MAD:
        return mad_outliers(values, **kwargs)
    raise ValueError(f"unknown outlier method {method!r}")
