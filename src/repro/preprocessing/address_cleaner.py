"""Geospatial attribute cleaning against a referenced street map.

This is the paper's multi-step algorithm (Section 2.1.1) in full:

1. normalize the EPC address (and every gazetteer street) so harmless
   representational noise never counts as edit distance;
2. try an **exact** lookup of the normalized street;
3. otherwise compute Levenshtein similarity against the gazetteer streets:
   "the referenced address (the most similar to the address under analysis)
   replaces the original one if Levenshtein similarity between the two
   addresses is greater than or equal to phi";
4. "when the association to a referenced address is not possible, i.e.,
   Levenshtein similarities are below phi, a geocoding request is sent"
   — to the metered :class:`~repro.preprocessing.geocoder.SimulatedGeocoder`;
5. once a street is resolved, the civic-level gazetteer record
   "reconstruct[s] missing or incorrect information in the attributes
   ZIP Code, house address, latitude and longitude".

Every row receives an audit entry so experiments can score the cleaner
against the noise log.
"""

from __future__ import annotations

import enum
import time
from dataclasses import dataclass, field

import numpy as np

from ..dataset.streetmap import AddressRecord, StreetMap
from ..dataset.table import Column, ColumnKind, Table
from ..faults.plan import TransientServiceError
from ..faults.policy import CircuitBreaker, RetryPolicy, retry_with_backoff
from ..geo.distance import equirectangular_km
from ..perf.parallel import ParallelMap
from ..text.levenshtein import GazetteerIndex
from ..text.normalize import canonical_house_number, normalize_address
from .geocoder import GeocodeStatus, QuotaExceededError, SimulatedGeocoder

__all__ = ["CleaningConfig", "MatchStatus", "RowAudit", "CleaningReport", "AddressCleaner"]

#: Default acceptance threshold for Levenshtein similarity.
DEFAULT_PHI = 0.80


class MatchStatus(enum.Enum):
    """How a row's address was resolved."""

    EXACT = "exact"              # normalized street found verbatim in the gazetteer
    MATCHED = "matched"          # accepted by Levenshtein similarity >= phi
    GEOCODED = "geocoded"        # resolved by the fallback geocoding service
    UNRESOLVED = "unresolved"    # no association possible
    SKIPPED = "skipped"          # no address value to work with


@dataclass
class CleaningConfig:
    """Tuning knobs of the cleaning algorithm.

    ``phi`` is the user-defined similarity threshold from the paper.
    ``coordinate_tolerance_km`` bounds how far the stored coordinates may
    sit from the gazetteer location before being overwritten.
    """

    phi: float = DEFAULT_PHI
    use_geocoder: bool = True
    coordinate_tolerance_km: float = 0.5
    repair_zip: bool = True
    repair_coordinates: bool = True
    repair_house_number: bool = True


@dataclass
class RowAudit:
    """Per-row record of what the cleaner decided and changed."""

    row: int
    status: MatchStatus
    similarity: float = 0.0
    original_address: str | None = None
    resolved_street: str | None = None
    repaired_fields: tuple[str, ...] = ()


@dataclass
class CleaningReport:
    """The cleaned table plus the full audit trail.

    ``degradations`` lists every way the pass fell short of full service
    (geocoder quota exhausted mid-batch, circuit opened, retries
    exhausted, parallel tier fell back to serial), each as a dict with at
    least a ``kind`` key — the engine copies them into the provenance log
    so no degradation is ever silent.
    """

    table: Table
    audits: list[RowAudit] = field(default_factory=list)
    geocoder_requests: int = 0
    geocoder_quota_exhausted: bool = False
    degradations: list[dict] = field(default_factory=list)
    #: Rows whose geocoder fallback failed transiently even after retries.
    geocoder_transient_failures: int = 0
    #: Rows that skipped the geocoder because the circuit was open.
    rows_skipped_by_open_circuit: int = 0

    def counts_by_status(self) -> dict[MatchStatus, int]:
        """Number of audited rows per match status."""
        out: dict[MatchStatus, int] = {}
        for audit in self.audits:
            out[audit.status] = out.get(audit.status, 0) + 1
        return out

    def resolution_rate(self) -> float:
        """Share of address-bearing rows resolved to a gazetteer street."""
        attempted = [
            a for a in self.audits if a.status is not MatchStatus.SKIPPED
        ]
        if not attempted:
            return 0.0
        resolved = [
            a
            for a in attempted
            if a.status in (MatchStatus.EXACT, MatchStatus.MATCHED, MatchStatus.GEOCODED)
        ]
        return len(resolved) / len(attempted)


class AddressCleaner:
    """The INDICE geospatial cleaning engine.

    Build it once per referenced street map; :meth:`clean_table` can then
    process any table carrying the five geospatial attributes (``address``,
    ``house_number``, ``zip_code``, ``latitude``, ``longitude``).
    """

    def __init__(
        self,
        street_map: StreetMap,
        config: CleaningConfig | None = None,
        geocoder: SimulatedGeocoder | None = None,
        executor: ParallelMap | None = None,
        retry: RetryPolicy | None = None,
        breaker: CircuitBreaker | None = None,
        sleep=time.sleep,
    ):
        self.config = config or CleaningConfig()
        if not 0.0 <= self.config.phi <= 1.0:
            raise ValueError(f"phi must be in [0, 1], got {self.config.phi}")
        self._by_street = street_map.records_by_street()
        self._streets = sorted(self._by_street)
        self._street_set = set(self._streets)
        # sorted(records_by_street) == street_names(), so the shared index
        # cached on the street map matches self._streets position by position
        self._index = street_map.match_index()
        self._geocoder = geocoder
        self.executor = executor or ParallelMap(n_jobs=1)
        self.retry = retry or RetryPolicy()
        self.breaker = breaker or CircuitBreaker()
        self._sleep = sleep
        if self.config.use_geocoder and geocoder is None:
            self._geocoder = SimulatedGeocoder(street_map)

    # -- street resolution --------------------------------------------------

    def resolve_street(self, raw_address: str | None) -> tuple[str | None, MatchStatus, float]:
        """Resolve one raw address to a gazetteer street name.

        Returns ``(street or None, status, similarity)``; does not consult
        the geocoder (that decision is made per-row in :meth:`clean_table`
        so quota accounting stays centralized).
        """
        normalized = normalize_address(raw_address)
        if not normalized:
            return None, MatchStatus.SKIPPED, 0.0
        if normalized in self._street_set:
            return normalized, MatchStatus.EXACT, 1.0
        hit = self._index.best_match(normalized, phi=self.config.phi)
        if hit is None:
            return None, MatchStatus.UNRESOLVED, 0.0
        index, sim = hit
        return self._streets[index], MatchStatus.MATCHED, sim

    def _record_for(
        self, street: str, house_number: str | None, lat: float, lon: float
    ) -> AddressRecord:
        """Pick the civic record: by number when possible, else nearest to
        the stored coordinates, else the street's first civic."""
        candidates = self._by_street[street]
        number = canonical_house_number(house_number)
        if number is not None:
            for rec in candidates:
                if canonical_house_number(rec.house_number) == number:
                    return rec
        if not (np.isnan(lat) or np.isnan(lon)):
            return min(
                candidates,
                key=lambda r: equirectangular_km(lat, lon, r.latitude, r.longitude),
            )
        return candidates[0]

    # -- table-level cleaning --------------------------------------------------

    def _resolve_distinct(self, address: np.ndarray) -> dict[str, tuple[str | None, MatchStatus, float]]:
        """Street resolution for every distinct raw address in *address*.

        This is the Levenshtein-heavy part of :meth:`clean_table`, and it
        is embarrassingly parallel: resolution touches only the immutable
        gazetteer index, never the geocoder or its quota.  Distinct values
        are sharded across the executor; each worker process builds the
        gazetteer index once (in its initializer) and reuses it for every
        address it receives.  The serial path resolves inline against the
        shared index, so both paths return identical mappings.
        """
        distinct = list(dict.fromkeys(a for a in address if a is not None))
        if self.executor.should_parallelize(len(distinct)):
            # ship the distinct addresses as one shared-memory text column;
            # workers receive slice descriptors, not pickled string lists
            resolutions = self.executor.map_table(
                _resolve_chunk_worker,
                Table([Column.text("address", distinct)]),
                initializer=_init_resolver_worker,
                initargs=(self._streets, self.config.phi),
            )
        else:
            resolutions = [self.resolve_street(raw) for raw in distinct]
        return dict(zip(distinct, resolutions))

    def clean_table(self, table: Table) -> CleaningReport:
        """Clean the geospatial attributes of every row of *table*.

        Returns a new table (the input is untouched) in which resolved rows
        carry the gazetteer's street name and, depending on the config,
        repaired ZIP, house number and coordinates.  Unresolved rows are
        kept as-is — downstream queries can exclude them via the audit.

        The pass runs in three phases so the parallel output is
        row-for-row identical to serial:

        1. **batch pre-pass** — every distinct raw address is resolved
           up-front (sharded through shared memory when the executor
           allows it) and the per-row street/status/similarity arrays are
           filled from that cache;
        2. **sequential geocoder fallback** — still-unresolved rows visit
           the metered geocoder in ascending row order, because quota and
           circuit-breaker accounting must see the same arrival sequence
           regardless of how phase 1 was scheduled;
        3. **grouped repair** — rows are repaired against per-street
           gazetteer caches (candidate records, canonical house numbers)
           so the civic lookup costs one normalization per distinct value
           instead of one per row-candidate pair.
        """
        cfg = self.config
        n = table.n_rows
        address = np.array(table["address"], dtype=object)
        house_number = np.array(table["house_number"], dtype=object)
        zip_code = np.array(table["zip_code"], dtype=object)
        lat = table["latitude"].copy()
        lon = table["longitude"].copy()

        audits: list[RowAudit] = []
        geocoder_requests = 0
        quota_exhausted = False
        transient_failures = 0
        circuit_skipped = 0
        rows_after_quota = 0
        # identical raw strings resolve identically; resolved per distinct
        # value up-front (sharded across workers when the input is large)
        fallbacks_before = self.executor.fallbacks
        resolve_cache = self._resolve_distinct(address)
        parallel_fell_back = self.executor.fallbacks > fallbacks_before

        # -- phase 1: apply the cached resolutions to every row ------------
        streets: list[str | None] = [None] * n
        statuses: list[MatchStatus] = [MatchStatus.SKIPPED] * n
        sims: list[float] = [0.0] * n
        for i in range(n):
            raw = address[i]
            if raw is not None:
                streets[i], statuses[i], sims[i] = resolve_cache[raw]

        # -- phase 2: sequential geocoder fallback -------------------------
        if cfg.use_geocoder and self._geocoder:
            for i in range(n):
                if statuses[i] is not MatchStatus.UNRESOLVED:
                    continue
                # Resilient fallback: the metered service is retried with
                # backoff on transient failures; repeated failures open the
                # circuit and later rows degrade to Levenshtein-only (the
                # row simply stays UNRESOLVED).  Quota exhaustion mid-batch
                # never discards work: rows already geocoded keep their
                # resolution, the remainder stays unresolved and counted.
                if quota_exhausted:
                    rows_after_quota += 1
                elif not self.breaker.allow():
                    circuit_skipped += 1
                else:
                    try:
                        response = retry_with_backoff(
                            lambda raw=address[i], num=house_number[i]: (
                                self._geocoder.geocode(raw, num)
                            ),
                            policy=self.retry,
                            retry_on=(TransientServiceError,),
                            sleep=self._sleep,
                        )
                        geocoder_requests += 1
                        self.breaker.record_success()
                        if response.status == GeocodeStatus.OK and response.record:
                            streets[i] = response.record.street
                            statuses[i] = MatchStatus.GEOCODED
                            sims[i] = response.confidence
                    except TransientServiceError:
                        transient_failures += 1
                        self.breaker.record_failure()
                    except QuotaExceededError:
                        quota_exhausted = True
                        rows_after_quota += 1

        # -- phase 3: grouped repair against per-street caches -------------
        # one canonicalization per distinct raw house number (the per-row
        # loop previously re-normalized every candidate of every row) and
        # one candidate-index build per distinct resolved street
        canonical_memo: dict = {}

        def canon(value: str | None) -> str | None:
            if value not in canonical_memo:
                canonical_memo[value] = canonical_house_number(value)
            return canonical_memo[value]

        street_cache: dict[
            str, tuple[list[AddressRecord], dict[str, AddressRecord]]
        ] = {}

        def street_info(
            street: str,
        ) -> tuple[list[AddressRecord], dict[str, AddressRecord]]:
            info = street_cache.get(street)
            if info is None:
                candidates = self._by_street[street]
                num_to_first: dict[str, AddressRecord] = {}
                for rec in candidates:
                    num = canon(rec.house_number)
                    if num is not None and num not in num_to_first:
                        num_to_first[num] = rec
                info = (candidates, num_to_first)
                street_cache[street] = info
            return info

        for i in range(n):
            raw = address[i]
            street, status, sim = streets[i], statuses[i], sims[i]
            if street is None:
                audits.append(RowAudit(i, status, sim, raw))
                continue

            # civic record: by canonical number when possible, else nearest
            # to the stored coordinates, else the street's first civic
            # (same choice order as :meth:`_record_for`)
            candidates, num_to_first = street_info(street)
            number = canon(house_number[i])
            record = num_to_first.get(number) if number is not None else None
            if record is None:
                if not (np.isnan(lat[i]) or np.isnan(lon[i])):
                    row_lat, row_lon = float(lat[i]), float(lon[i])
                    record = min(
                        candidates,
                        key=lambda r: equirectangular_km(
                            row_lat, row_lon, r.latitude, r.longitude
                        ),
                    )
                else:
                    record = candidates[0]
            repaired: list[str] = []

            if address[i] != record.street:
                address[i] = record.street
                repaired.append("address")
            if cfg.repair_house_number:
                if number is None:
                    house_number[i] = record.house_number
                    repaired.append("house_number")
                elif number != house_number[i]:
                    house_number[i] = number
                    repaired.append("house_number")
            if cfg.repair_zip and zip_code[i] != record.zip_code:
                zip_code[i] = record.zip_code
                repaired.append("zip_code")
            if cfg.repair_coordinates:
                missing = np.isnan(lat[i]) or np.isnan(lon[i])
                if missing or (
                    equirectangular_km(float(lat[i]), float(lon[i]), record.latitude, record.longitude)
                    > cfg.coordinate_tolerance_km
                ):
                    lat[i] = record.latitude
                    lon[i] = record.longitude
                    repaired.append("coordinates")

            audits.append(
                RowAudit(i, status, sim, raw, record.street, tuple(repaired))
            )

        cleaned = (
            table.with_column(Column("address", ColumnKind.TEXT, address))
            .with_column(Column("house_number", ColumnKind.TEXT, house_number))
            .with_column(Column("zip_code", ColumnKind.CATEGORICAL, zip_code))
            .with_column(Column("latitude", ColumnKind.NUMERIC, lat))
            .with_column(Column("longitude", ColumnKind.NUMERIC, lon))
            .select(table.column_names)
        )
        degradations: list[dict] = []
        if parallel_fell_back:
            degradations.append(
                {
                    "kind": "parallel_fallback",
                    "detail": "worker pool failed; address resolution "
                    "recomputed serially (results unchanged)",
                    "reason": self.executor.last_fallback_reason,
                }
            )
        if quota_exhausted:
            degradations.append(
                {
                    "kind": "geocoder_quota_exhausted",
                    "detail": "geocoding quota spent mid-batch; "
                    "already-resolved rows kept, remainder left unresolved",
                    "rows_not_attempted": rows_after_quota,
                }
            )
        if transient_failures:
            degradations.append(
                {
                    "kind": "geocoder_transient_failures",
                    "detail": "geocoder requests still failing after "
                    f"{self.retry.retries} retries; rows left unresolved",
                    "rows": transient_failures,
                }
            )
        if circuit_skipped:
            degradations.append(
                {
                    "kind": "geocoder_circuit_open",
                    "detail": "geocoder circuit breaker open; rows degraded "
                    "to Levenshtein-only resolution",
                    "rows": circuit_skipped,
                }
            )
        return CleaningReport(
            table=cleaned,
            audits=audits,
            geocoder_requests=geocoder_requests,
            geocoder_quota_exhausted=quota_exhausted,
            degradations=degradations,
            geocoder_transient_failures=transient_failures,
            rows_skipped_by_open_circuit=circuit_skipped,
        )


# -- worker-process resolution ------------------------------------------------
#
# Per-worker state for the parallel resolution path: each process builds the
# gazetteer index once (initializer) and reuses it for every sharded address.

_WORKER_STATE: tuple[list[str], set[str], GazetteerIndex, float] | None = None


def _init_resolver_worker(streets: list[str], phi: float) -> None:
    """Build the per-process gazetteer index (ProcessPool initializer)."""
    global _WORKER_STATE
    _WORKER_STATE = (streets, set(streets), GazetteerIndex(streets), phi)


def _resolve_one_worker(raw: str) -> tuple[str | None, MatchStatus, float]:
    """Resolve one raw address against the worker's gazetteer index.

    Mirrors :meth:`AddressCleaner.resolve_street` exactly (same
    normalization, same exact-hit short-circuit, same indexed match), so
    sharded resolution is bit-identical to the serial path.
    """
    assert _WORKER_STATE is not None, "worker initializer did not run"
    streets, street_set, index, phi = _WORKER_STATE
    normalized = normalize_address(raw)
    if not normalized:
        return None, MatchStatus.SKIPPED, 0.0
    if normalized in street_set:
        return normalized, MatchStatus.EXACT, 1.0
    hit = index.best_match(normalized, phi=phi)
    if hit is None:
        return None, MatchStatus.UNRESOLVED, 0.0
    matched, sim = hit
    return streets[matched], MatchStatus.MATCHED, sim


def _resolve_chunk_worker(
    chunk: Table,
) -> list[tuple[str | None, MatchStatus, float]]:
    """Resolve one shared-memory slice of distinct addresses.

    ``chunk`` is the decoded text column a worker received as a
    :class:`~repro.perf.shm.TableSlice` descriptor; each address goes
    through :func:`_resolve_one_worker`, so results are bit-identical to
    the serial path.
    """
    return [_resolve_one_worker(raw) for raw in chunk["address"]]
