"""Expert-driven configuration suggestions for non-expert users.

"By collecting and storing expert user (e.g., energy scientists) INDICE
configurations, the non-expert users can receive interesting and effective
suggestions to properly deal with noisy data ... their choices are
automatically stored as default configurations for non-expert users"
(paper, Section 2.1.2).

The store records every configuration an expert applies (which outlier
method, with which parameters, on which attribute) and suggests, per
attribute, the configuration experts used most often — falling back to the
globally most frequent configuration, and finally to a conservative
built-in default.  It persists as JSON so suggestions survive sessions.
"""

from __future__ import annotations

import json
from collections import Counter
from dataclasses import asdict, dataclass
from pathlib import Path

from .outliers import OutlierMethod

__all__ = ["ExpertConfiguration", "ExpertConfigStore", "BUILTIN_DEFAULT"]


@dataclass(frozen=True)
class ExpertConfiguration:
    """One stored expert choice for one attribute."""

    attribute: str
    method: OutlierMethod
    params: tuple[tuple[str, float], ...] = ()
    expert: str = "anonymous"

    def params_dict(self) -> dict[str, float]:
        """The stored parameters as a plain dict."""
        return dict(self.params)

    @staticmethod
    def make(attribute: str, method: OutlierMethod, params: dict[str, float] | None = None,
             expert: str = "anonymous") -> "ExpertConfiguration":
        """Build a configuration from a plain params dict (order-stable)."""
        items = tuple(sorted((params or {}).items()))
        return ExpertConfiguration(attribute, method, items, expert)


#: Conservative fallback when the store has no history at all.
BUILTIN_DEFAULT = ExpertConfiguration.make(
    "*", OutlierMethod.MAD, {"cutoff": 3.5}
)

#: The attributes the current INDICE version tracks expert choices for
#: (paper: thermo-physical characteristics and heating-subsystem efficiencies).
TRACKED_ATTRIBUTES = (
    "aspect_ratio",
    "u_value_opaque",
    "u_value_windows",
    "eta_distribution",
    "eta_generation",
    "eta_h",
)


class ExpertConfigStore:
    """Persistent frequency store of expert configurations."""

    def __init__(self, path: str | Path | None = None):
        self._path = Path(path) if path is not None else None
        self._records: list[ExpertConfiguration] = []
        if self._path is not None and self._path.exists():
            self._load()

    def __len__(self) -> int:
        return len(self._records)

    # -- recording --------------------------------------------------------

    def record(self, config: ExpertConfiguration) -> None:
        """Store one expert choice and persist if a path is configured."""
        self._records.append(config)
        if self._path is not None:
            self._save()

    def record_choice(
        self,
        attribute: str,
        method: OutlierMethod,
        params: dict[str, float] | None = None,
        expert: str = "anonymous",
    ) -> None:
        """Convenience wrapper around :meth:`record`."""
        self.record(ExpertConfiguration.make(attribute, method, params, expert))

    # -- suggesting --------------------------------------------------------

    def suggest(self, attribute: str) -> ExpertConfiguration:
        """The configuration to offer a non-expert user for *attribute*.

        Most frequent expert choice for that attribute; ties break toward
        the most recent record.  Falls back to the globally most frequent
        choice, then to :data:`BUILTIN_DEFAULT`.
        """
        for pool in (
            [r for r in self._records if r.attribute == attribute],
            self._records,
        ):
            if pool:
                keyed = Counter((r.method, r.params) for r in pool)
                top_count = max(keyed.values())
                winners = {k for k, c in keyed.items() if c == top_count}
                for record in reversed(pool):
                    if (record.method, record.params) in winners:
                        return ExpertConfiguration(
                            attribute, record.method, record.params, record.expert
                        )
        return ExpertConfiguration(
            attribute, BUILTIN_DEFAULT.method, BUILTIN_DEFAULT.params, "builtin"
        )

    def suggest_all(self, attributes: tuple[str, ...] = TRACKED_ATTRIBUTES) -> dict[str, ExpertConfiguration]:
        """Suggestions for every tracked attribute."""
        return {a: self.suggest(a) for a in attributes}

    def history(self, attribute: str | None = None) -> list[ExpertConfiguration]:
        """The stored records, optionally filtered by attribute."""
        if attribute is None:
            return list(self._records)
        return [r for r in self._records if r.attribute == attribute]

    # -- persistence --------------------------------------------------------

    def _save(self) -> None:
        payload = [
            {**asdict(r), "method": r.method.value, "params": list(r.params)}
            for r in self._records
        ]
        self._path.parent.mkdir(parents=True, exist_ok=True)
        with self._path.open("w", encoding="utf-8") as handle:
            json.dump(payload, handle, indent=2)

    def _load(self) -> None:
        with self._path.open("r", encoding="utf-8") as handle:
            payload = json.load(handle)
        self._records = [
            ExpertConfiguration(
                attribute=item["attribute"],
                method=OutlierMethod(item["method"]),
                params=tuple((k, v) for k, v in item["params"]),
                expert=item.get("expert", "anonymous"),
            )
            for item in payload
        ]
