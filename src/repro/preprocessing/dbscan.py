"""DBSCAN for multivariate outlier detection.

"For the multivariate outlier detection, INDICE integrates the DBSCAN
algorithm ... clusters with higher-density regions are separated by
lower-density regions" (paper, Section 2.1.2).  Points that end up in no
cluster — DBSCAN noise — are the multivariate outliers INDICE removes.

This is a from-scratch implementation (scikit-learn is a substituted
dependency, see DESIGN.md): classic label propagation over eps-neighbour
graphs, with region queries served either by a KD-tree (scipy) in feature
space or brute force for small inputs.  Features should be standardized by
the caller; :func:`repro.analytics.kmeans.standardize` is the usual choice.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from itertools import chain

import numpy as np
from scipy.spatial import cKDTree

__all__ = ["DbscanResult", "dbscan", "NOISE"]

#: Cluster label assigned to noise points.
NOISE = -1

#: Rows per batched region query when building the neighbour graph.
_GRAPH_CHUNK = 8192


class _NeighborGraph:
    """Chunked compact CSR of every point's eps-neighbourhood.

    ``cKDTree.query_ball_point`` over the whole matrix returns one Python
    list of Python ints per point — tens of bytes per neighbour pair,
    which at million-row scale (where the pair count grows with density x
    rows) dwarfs the dataset itself and is what used to dominate the
    sharded pipeline's peak RSS.  Building the same neighbourhoods chunk
    by chunk into flat ``int32`` arrays keeps the per-pair cost at four
    bytes and the Python-list transient bounded by one chunk, while
    preserving the exact per-point neighbour order the batched query
    produces — so cluster expansion visits identical sequences and labels
    are bit-identical to the list-of-lists formulation.
    """

    def __init__(self, tree: cKDTree, coords: np.ndarray, eps: float):
        m = len(coords)
        self.counts = np.zeros(m, dtype=np.intp)
        self._flat: list[np.ndarray] = []
        self._offsets: list[np.ndarray] = []
        for start in range(0, m, _GRAPH_CHUNK):
            lists = tree.query_ball_point(
                coords[start:start + _GRAPH_CHUNK], r=eps
            )
            lens = np.fromiter(
                (len(lst) for lst in lists), np.intp, count=len(lists)
            )
            offsets = np.zeros(len(lists) + 1, dtype=np.intp)
            np.cumsum(lens, out=offsets[1:])
            self._flat.append(
                np.fromiter(
                    chain.from_iterable(lists), np.int32,
                    count=int(offsets[-1]),
                )
            )
            self._offsets.append(offsets)
            self.counts[start:start + len(lists)] = lens

    def neighbors(self, point: int) -> np.ndarray:
        """The eps-neighbour indices of *point* (query order preserved)."""
        block, row = divmod(point, _GRAPH_CHUNK)
        offsets = self._offsets[block]
        return self._flat[block][offsets[row]:offsets[row + 1]]


@dataclass
class DbscanResult:
    """Labels and bookkeeping of a DBSCAN run.

    ``labels[i]`` is the cluster id of row i (0-based) or :data:`NOISE`.
    Rows with any NaN coordinate are labelled noise and recorded in
    ``n_missing`` (they cannot participate in density estimates).
    """

    labels: np.ndarray
    eps: float
    min_points: int
    n_missing: int = 0
    core_mask: np.ndarray = field(default_factory=lambda: np.empty(0, dtype=bool))

    @property
    def n_clusters(self) -> int:
        """Number of clusters found (noise excluded)."""
        valid = self.labels[self.labels != NOISE]
        return len(np.unique(valid)) if len(valid) else 0

    @property
    def noise_mask(self) -> np.ndarray:
        """Boolean mask of noise rows (the multivariate outliers)."""
        return self.labels == NOISE

    @property
    def n_noise(self) -> int:
        """Number of noise points (the multivariate outliers)."""
        return int(self.noise_mask.sum())

    def cluster_sizes(self) -> dict[int, int]:
        """``{cluster_id: size}`` excluding noise."""
        ids, counts = np.unique(self.labels[self.labels != NOISE], return_counts=True)
        return {int(i): int(c) for i, c in zip(ids, counts)}


def dbscan(points: np.ndarray, eps: float, min_points: int) -> DbscanResult:
    """Run DBSCAN on an ``(n, d)`` matrix.

    ``min_points`` counts the point itself, as in the original paper [12].
    A point is *core* when its eps-ball holds at least ``min_points``
    points; clusters grow from cores through density reachability; border
    points join the first cluster that reaches them; the rest is noise.
    """
    points = np.asarray(points, dtype=np.float64)
    if points.ndim != 2:
        raise ValueError(f"expected an (n, d) matrix, got shape {points.shape}")
    if eps <= 0:
        raise ValueError("eps must be positive")
    if min_points < 1:
        raise ValueError("min_points must be >= 1")

    n = len(points)
    labels = np.full(n, NOISE, dtype=np.intp)
    complete = ~np.isnan(points).any(axis=1)
    valid_idx = np.flatnonzero(complete)
    n_missing = n - len(valid_idx)
    if len(valid_idx) == 0:
        return DbscanResult(labels, eps, min_points, n_missing, np.zeros(n, dtype=bool))

    coords = points[valid_idx]
    tree = cKDTree(coords)
    graph = _NeighborGraph(tree, coords, eps)
    core_local = graph.counts >= min_points

    core_mask = np.zeros(n, dtype=bool)
    core_mask[valid_idx[core_local]] = True

    local_labels = np.full(len(valid_idx), NOISE, dtype=np.intp)
    cluster = 0
    for seed in np.flatnonzero(core_local):
        if local_labels[seed] != NOISE:
            continue
        # breadth-first expansion from this core point
        local_labels[seed] = cluster
        frontier = [seed]
        while frontier:
            point = frontier.pop()
            if not core_local[point]:
                continue
            for nb in graph.neighbors(point):
                if local_labels[nb] == NOISE:
                    local_labels[nb] = cluster
                    if core_local[nb]:
                        frontier.append(nb)
        cluster += 1

    labels[valid_idx] = local_labels
    return DbscanResult(labels, eps, min_points, n_missing, core_mask)
