"""Simulated geocoding service (the Google Geocoding API substitute).

When Levenshtein matching against the referenced street map fails, INDICE
sends "a geocoding request ... via the Google Geocoding APIs", a reliable
service it uses sparingly "due to a limit on the number of free requests"
(paper, Section 2.1.1).  Offline we substitute
:class:`SimulatedGeocoder`: a stronger, token-based resolver over the same
gazetteer, with exactly the operational properties the paper's control
flow depends on — higher recall than the plain Levenshtein matcher, a hard
request quota, and a small error rate.

Why this preserves behaviour: the pipeline only cares that the fallback
(a) resolves some addresses the primary matcher cannot, and (b) is a
metered resource that can run out.  Both are modelled here.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass

import numpy as np

from ..dataset.streetmap import AddressRecord, StreetMap
from ..faults.plan import GEOCODER_REQUEST, FaultInjector, FaultKind, TransientServiceError
from ..text.levenshtein import similarity
from ..text.normalize import canonical_house_number, normalize_address, split_house_number

__all__ = ["GeocodeStatus", "GeocodeResponse", "QuotaExceededError", "SimulatedGeocoder"]


class QuotaExceededError(RuntimeError):
    """Raised when a request is attempted after the free quota is spent."""


@dataclass(frozen=True)
class GeocodeResponse:
    """Outcome of one geocoding request."""

    status: str  # "ok" | "not_found"
    record: AddressRecord | None = None
    confidence: float = 0.0


class GeocodeStatus:
    """Response status constants of the geocoding service."""
    OK = "ok"
    NOT_FOUND = "not_found"


def _trigrams(text: str) -> set[str]:
    """Character trigrams of a padded string (standard fuzzy-search index)."""
    padded = f"  {text} "
    return {padded[i : i + 3] for i in range(len(padded) - 2)}


def _soft_token_score(query_tokens: list[str], candidate_tokens: list[str]) -> float:
    """Order-free token similarity: each query token matches its most
    similar candidate token; scores are averaged weighted by token length.

    Robust to token reordering ("roma via" vs "via roma") and to per-token
    typos, which is how production geocoders behave.
    """
    if not query_tokens or not candidate_tokens:
        return 0.0
    total_weight = 0.0
    total = 0.0
    for token in query_tokens:
        best = max(similarity(token, cand) for cand in candidate_tokens)
        weight = len(token)
        total += best * weight
        total_weight += weight
    return total / total_weight


class SimulatedGeocoder:
    """Offline stand-in for the Google Geocoding API.

    Resolution is two-stage: character-trigram shortlisting over the
    gazetteer streets (an inverted index, so it stays fast), then a blended
    re-ranking of the shortlist combining whole-string Levenshtein
    similarity with an order-free soft token score.  This recovers
    heavily-corrupted addresses the plain matcher rejects (token
    reordering, multiple typos), mimicking the robustness of a production
    geocoder.

    Parameters
    ----------
    street_map:
        The gazetteer to resolve against.
    quota:
        Maximum number of requests before :class:`QuotaExceededError`.
        The real free tier was ~2500/day when the paper was written.
    error_rate:
        Probability that a resolvable request returns a *wrong* street
        (production geocoders confidently mis-resolve some queries).  The
        error process is *content-addressed* — a pure function of
        ``(seed, normalized query)`` — so a given query always resolves
        the same way regardless of request order.  That is how production
        geocoders actually misbehave (the same query reproduces the same
        wrong answer), and it makes resolution independent of batching:
        retried, parallel and sharded runs all reproduce the identical
        result.
    seed:
        Seed for the error process, making runs reproducible.
    injector:
        Optional fault injector watching the ``geocoder.request`` site:
        a ``transient`` fault makes the request fail retryably (without
        consuming quota, like a timed-out call), a ``quota`` fault
        exhausts the remaining quota on the spot.
    """

    def __init__(
        self,
        street_map: StreetMap,
        quota: int = 2500,
        error_rate: float = 0.02,
        seed: int = 0,
        injector: FaultInjector | None = None,
    ):
        if quota < 0:
            raise ValueError("quota must be non-negative")
        self._by_street = street_map.records_by_street()
        self._streets = sorted(self._by_street)
        self._tokens = [s.split() for s in self._streets]
        self._trigram_sizes = np.array(
            [len(_trigrams(s)) for s in self._streets], dtype=np.float64
        )
        self._trigram_index: dict[str, list[int]] = {}
        for i, street in enumerate(self._streets):
            for gram in _trigrams(street):
                self._trigram_index.setdefault(gram, []).append(i)
        self.quota = quota
        self.requests_made = 0
        self.error_rate = error_rate
        self._seed = seed
        self._injector = injector

    @property
    def remaining_quota(self) -> int:
        """Requests still available before the quota trips."""
        return max(self.quota - self.requests_made, 0)

    def geocode(self, raw_address: str, house_number: str | None = None) -> GeocodeResponse:
        """Resolve *raw_address* to a gazetteer record.

        Counts against the quota whether or not resolution succeeds, like
        the real API.  Raises :class:`QuotaExceededError` once spent.

        Injected faults fire *before* any quota state is touched, and the
        error process is a pure function of the query — a transiently-
        failed request consumes no state at all, so a successful retry
        returns exactly what the fault-free call would have (the
        bit-identical-recovery invariant).
        """
        if self._injector is not None:
            kind = self._injector.arrive(GEOCODER_REQUEST)
            if kind is FaultKind.TRANSIENT:
                raise TransientServiceError(
                    "injected transient geocoding failure"
                )
            if kind is FaultKind.QUOTA:
                self.requests_made = self.quota
        if self.requests_made >= self.quota:
            raise QuotaExceededError(
                f"geocoding quota of {self.quota} requests exhausted"
            )
        self.requests_made += 1

        text = normalize_address(raw_address)
        street_part, embedded_number = split_house_number(text)
        number = canonical_house_number(house_number) or embedded_number
        query_tokens = street_part.split()
        if not query_tokens:
            return GeocodeResponse(GeocodeStatus.NOT_FOUND)

        # stage 1: trigram shortlist via the inverted index
        query_grams = _trigrams(street_part)
        overlap = np.zeros(len(self._streets), dtype=np.float64)
        for gram in query_grams:
            for i in self._trigram_index.get(gram, ()):
                overlap[i] += 1.0
        jaccard = overlap / (len(query_grams) + self._trigram_sizes - overlap)
        shortlist = np.argsort(jaccard)[::-1][:25]
        shortlist = [int(i) for i in shortlist if jaccard[i] > 0.05]
        if not shortlist:
            return GeocodeResponse(GeocodeStatus.NOT_FOUND)

        # stage 2: blended re-rank (whole-string + order-free token score)
        best_i, best_sim = -1, -1.0
        for i in shortlist:
            char_sim = similarity(street_part, self._streets[i])
            token_sim = _soft_token_score(query_tokens, self._tokens[i])
            blended = 0.4 * char_sim + 0.6 * token_sim
            if blended > best_sim:
                best_i, best_sim = i, blended
        if best_sim < 0.5:
            return GeocodeResponse(GeocodeStatus.NOT_FOUND)

        street = self._streets[best_i]
        if self.error_rate > 0:
            # content-addressed error draw: uniform variate and wrong-street
            # pick both derived from a hash of (seed, query), never from
            # request order — see the class docstring
            digest = hashlib.sha256(
                f"{self._seed}:{street_part}".encode("utf-8")
            ).digest()
            draw = int.from_bytes(digest[:8], "little") / 2.0**64
            if draw < self.error_rate:
                wrong = int.from_bytes(digest[8:16], "little") % len(self._streets)
                street = self._streets[wrong]

        record = self._pick_record(street, number)
        return GeocodeResponse(GeocodeStatus.OK, record, confidence=float(best_sim))

    def _pick_record(self, street: str, number: str | None) -> AddressRecord:
        """The record for (street, civic), or the street's first civic."""
        candidates = self._by_street[street]
        if number is not None:
            for rec in candidates:
                if canonical_house_number(rec.house_number) == number:
                    return rec
        return candidates[0]
