"""Internal cluster-validation indices.

INDICE selects K from the SSE elbow (paper, Section 2.2.2); the
future-work extensions add alternative clusterers, which need
algorithm-agnostic quality measures to compare cuts.  Two classic
internal indices are provided:

* :func:`silhouette_score` — mean silhouette over points (in [-1, 1],
  higher is better); exact O(n²), with deterministic subsampling for
  large inputs;
* :func:`davies_bouldin` — average worst-case cluster similarity (lower
  is better), O(n·k).

Both ignore unassigned rows (label < 0) and rows with NaN features.
"""

from __future__ import annotations

import numpy as np

__all__ = ["silhouette_score", "davies_bouldin"]


def _validated(points: np.ndarray, labels: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    points = np.asarray(points, dtype=np.float64)
    labels = np.asarray(labels)
    if points.ndim != 2:
        raise ValueError(f"expected an (n, d) matrix, got shape {points.shape}")
    if len(points) != len(labels):
        raise ValueError("points and labels must be aligned")
    keep = (labels >= 0) & ~np.isnan(points).any(axis=1)
    return points[keep], labels[keep]


def silhouette_score(
    points: np.ndarray,
    labels: np.ndarray,
    max_points: int = 2000,
    seed: int = 0,
) -> float:
    """Mean silhouette coefficient of a labelling.

    For each point, ``a`` is its mean distance to its own cluster and
    ``b`` the smallest mean distance to any other cluster; the silhouette
    is ``(b - a) / max(a, b)``.  Inputs larger than *max_points* are
    subsampled deterministically (stratification is unnecessary at these
    sizes; the estimate is unbiased).

    Returns NaN when fewer than 2 clusters survive validation.
    """
    coords, labs = _validated(points, labels)
    unique = np.unique(labs)
    if len(unique) < 2 or len(coords) < 3:
        return float("nan")
    if len(coords) > max_points:
        rng = np.random.default_rng(seed)
        pick = rng.choice(len(coords), size=max_points, replace=False)
        coords, labs = coords[pick], labs[pick]
        unique = np.unique(labs)
        if len(unique) < 2:
            return float("nan")

    sq = np.sum(coords**2, axis=1)
    dist = np.sqrt(np.maximum(sq[:, None] - 2 * coords @ coords.T + sq[None, :], 0.0))

    members = {c: np.flatnonzero(labs == c) for c in unique}
    scores = np.empty(len(coords), dtype=np.float64)
    for i in range(len(coords)):
        own = members[labs[i]]
        if len(own) == 1:
            scores[i] = 0.0  # convention for singleton clusters
            continue
        a = dist[i, own].sum() / (len(own) - 1)
        b = min(
            dist[i, members[c]].mean() for c in unique if c != labs[i]
        )
        denom = max(a, b)
        scores[i] = 0.0 if denom == 0 else (b - a) / denom
    return float(scores.mean())


def davies_bouldin(points: np.ndarray, labels: np.ndarray) -> float:
    """Davies–Bouldin index (lower is better; 0 for perfectly separated).

    ``DB = mean_i max_{j != i} (s_i + s_j) / d(c_i, c_j)`` where ``s_i``
    is cluster i's mean centroid distance and ``c_i`` its centroid.
    Returns NaN when fewer than 2 clusters survive validation.
    """
    coords, labs = _validated(points, labels)
    unique = np.unique(labs)
    if len(unique) < 2:
        return float("nan")
    centroids = np.vstack([coords[labs == c].mean(axis=0) for c in unique])
    scatters = np.array(
        [
            np.linalg.norm(coords[labs == c] - centroids[i], axis=1).mean()
            for i, c in enumerate(unique)
        ]
    )
    k = len(unique)
    worst = np.zeros(k)
    for i in range(k):
        for j in range(k):
            if i == j:
                continue
            gap = np.linalg.norm(centroids[i] - centroids[j])
            if gap == 0:
                return float("inf")
            worst[i] = max(worst[i], (scatters[i] + scatters[j]) / gap)
    return float(worst.mean())
