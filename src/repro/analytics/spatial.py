"""Spatial autocorrelation of energy indicators.

The whole premise of the paper's energy maps — "energy maps useful for
the characterization of the energy performance of buildings located in
different areas" — is that energy performance is *spatially structured*:
neighbouring areas resemble each other (era-homogeneous districts), so a
choropleth carries real information.  This module quantifies that premise
with the classic measure:

* :func:`morans_i` — global Moran's I under row-standardized weights,
  with a seeded permutation test;
* :func:`region_adjacency` — queen-style adjacency between the synthetic
  city's administrative regions (shared borders);
* :func:`morans_i_for_regions` — the end-to-end check the benchmark runs:
  aggregate an attribute per region, then test its spatial clustering.

I ≈ 0 means spatial randomness; I > 0 means neighbouring areas share
levels (maps are informative); I < 0 means checkerboard alternation.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..dataset.table import Table
from ..geo.regions import Granularity, Region, RegionHierarchy

__all__ = ["MoranResult", "morans_i", "region_adjacency", "morans_i_for_regions"]


@dataclass(frozen=True)
class MoranResult:
    """Moran's I with its permutation-test context."""

    statistic: float
    expected: float  # E[I] under spatial randomness = -1/(n-1)
    p_value: float
    n_regions: int
    n_permutations: int

    @property
    def is_clustered(self) -> bool:
        """Significantly positive autocorrelation at the 5% level."""
        return self.statistic > self.expected and self.p_value < 0.05


def morans_i(
    values: np.ndarray,
    weights: np.ndarray,
    n_permutations: int = 999,
    seed: int = 0,
) -> MoranResult:
    """Global Moran's I of *values* under the spatial *weights* matrix.

    ``weights`` is an (n, n) non-negative matrix with a zero diagonal; it
    is row-standardized internally.  Entries whose value is NaN are
    dropped together with their rows/columns.  The p-value is the one-ated
    (upper) permutation probability of observing an I at least as large.
    """
    values = np.asarray(values, dtype=np.float64)
    weights = np.asarray(weights, dtype=np.float64)
    if weights.shape != (len(values), len(values)):
        raise ValueError("weights must be (n, n) aligned with values")
    if np.any(np.diag(weights) != 0):
        raise ValueError("weights diagonal must be zero")

    keep = ~np.isnan(values)
    values = values[keep]
    weights = weights[np.ix_(keep, keep)]
    n = len(values)
    if n < 3:
        raise ValueError("Moran's I needs at least 3 observations")

    row_sums = weights.sum(axis=1, keepdims=True)
    # islands (no neighbours) contribute nothing; keep their rows zero
    with np.errstate(invalid="ignore", divide="ignore"):
        w = np.where(row_sums > 0, weights / row_sums, 0.0)
    s0 = w.sum()
    if s0 == 0:
        raise ValueError("weights matrix has no non-zero entries")

    def statistic(x: np.ndarray) -> float:
        z = x - x.mean()
        denom = float(z @ z)
        if denom == 0:
            return 0.0
        return float(len(x) / s0 * (z @ w @ z) / denom)

    observed = statistic(values)
    rng = np.random.default_rng(seed)
    at_least = 1  # the observed arrangement counts (standard +1 correction)
    for __ in range(n_permutations):
        if statistic(rng.permutation(values)) >= observed:
            at_least += 1
    return MoranResult(
        statistic=observed,
        expected=-1.0 / (n - 1),
        p_value=at_least / (n_permutations + 1),
        n_regions=n,
        n_permutations=n_permutations,
    )


def _boxes_touch(a: Region, b: Region, tolerance: float = 1e-9) -> bool:
    a_lo_lat, a_lo_lon, a_hi_lat, a_hi_lon = a.bounding_box()
    b_lo_lat, b_lo_lon, b_hi_lat, b_hi_lon = b.bounding_box()
    lat_overlap = a_lo_lat <= b_hi_lat + tolerance and b_lo_lat <= a_hi_lat + tolerance
    lon_overlap = a_lo_lon <= b_hi_lon + tolerance and b_lo_lon <= a_hi_lon + tolerance
    return lat_overlap and lon_overlap


def region_adjacency(
    hierarchy: RegionHierarchy, level: Granularity
) -> tuple[list[str], np.ndarray]:
    """Queen-style adjacency of the regions at *level*.

    Two regions are neighbours when their bounding boxes touch (exact for
    the synthetic city's rectangular tiling).  Returns the region names
    and the symmetric binary weight matrix.
    """
    regions = hierarchy.regions_at(level)
    if not regions:
        raise ValueError(f"no polygonal regions at level {level.name}")
    n = len(regions)
    weights = np.zeros((n, n), dtype=np.float64)
    for i in range(n):
        for j in range(i + 1, n):
            if _boxes_touch(regions[i], regions[j]):
                weights[i, j] = weights[j, i] = 1.0
    return [r.name for r in regions], weights


def morans_i_for_regions(
    table: Table,
    hierarchy: RegionHierarchy,
    level: Granularity,
    attribute: str,
    region_column: str | None = None,
    n_permutations: int = 999,
    seed: int = 0,
) -> MoranResult:
    """Moran's I of the per-region mean of *attribute*.

    ``region_column`` names the table column holding region membership
    (defaults to ``"district"`` / ``"neighbourhood"`` by level).
    """
    if region_column is None:
        region_column = (
            "district" if level is Granularity.DISTRICT else "neighbourhood"
        )
    means = table.aggregate(region_column, attribute, np.mean)
    names, weights = region_adjacency(hierarchy, level)
    values = np.array([means.get(name, np.nan) for name in names])
    return morans_i(values, weights, n_permutations=n_permutations, seed=seed)
