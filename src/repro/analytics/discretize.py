"""CART-based discretization of continuous EPC attributes.

Reproduces the paper's discretization (Section 2.2.2 and footnote 4): each
continuous variable gets its own depth-limited CART whose response is the
normalized primary heating energy demand (EP_H); the tree's split points
become the bin edges.  Class names follow the paper's dashboard labels:

* 3 classes: ``Low``, ``medium``, ``High``
* 4 classes: ``Low``, ``medium``, ``High``, ``Very high``
* other class counts fall back to ``C1..Cn`` (ordered low to high).

Footnote 4 reference bins (the target shapes for experiment E5):

* U-value of windows, 4 classes: [1.1, 2.05], (2.05, 2.45], (2.45, 3.35], (3.35, 5.5]
* U-value of opaque envelope, 3 classes: [0.15, 0.45], (0.45, 0.65], (0.65, 1.1]
* Global heating efficiency, 3 classes: [0.20, 0.60], (0.60, 0.80], (0.80, 1.1]
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..dataset.table import Column, ColumnKind, Table
from .cart import RegressionTree

__all__ = [
    "Discretization",
    "discretize_attribute",
    "quantile_discretization",
    "discretize_table",
    "PAPER_BINS",
]

#: The published footnote-4 bins, for comparison in tests and benchmarks.
PAPER_BINS = {
    "u_value_windows": (1.1, 2.05, 2.45, 3.35, 5.5),
    "u_value_opaque": (0.15, 0.45, 0.65, 1.1),
    "eta_h": (0.20, 0.60, 0.80, 1.1),
}

_CLASS_NAMES = {
    2: ("Low", "High"),
    3: ("Low", "medium", "High"),
    4: ("Low", "medium", "High", "Very high"),
}


@dataclass
class Discretization:
    """Bin edges and labels for one attribute.

    ``edges`` has ``n_classes + 1`` entries: the observed minimum, the CART
    split points ascending, and the observed maximum.  Intervals follow the
    paper's convention: the first is closed, the rest are left-open:
    ``[e0, e1], (e1, e2], ..., (e_{n-1}, e_n]``.
    """

    attribute: str
    edges: tuple[float, ...]
    labels: tuple[str, ...] = field(default=())

    def __post_init__(self):
        if len(self.edges) < 2:
            raise ValueError("a discretization needs at least 2 edges")
        if list(self.edges) != sorted(self.edges):
            raise ValueError(f"edges must be ascending, got {self.edges}")
        if not self.labels:
            n = len(self.edges) - 1
            self.labels = _CLASS_NAMES.get(n, tuple(f"C{i + 1}" for i in range(n)))
        if len(self.labels) != len(self.edges) - 1:
            raise ValueError("labels must match the number of intervals")

    @property
    def n_classes(self) -> int:
        """Number of discretization classes."""
        return len(self.labels)

    @property
    def thresholds(self) -> tuple[float, ...]:
        """The interior edges (the CART split points)."""
        return self.edges[1:-1]

    def label_of(self, value: float) -> str | None:
        """The class label of *value* (``None`` for NaN).

        Values outside the observed range clamp to the extreme classes, so
        the discretization generalizes to unseen data.
        """
        if value is None or np.isnan(value):
            return None
        for i, upper in enumerate(self.edges[1:-1]):
            if value <= upper:
                return self.labels[i]
        return self.labels[-1]

    def apply(self, values: np.ndarray) -> list[str | None]:
        """Class labels for an array of values.

        Vectorized equivalent of ``[self.label_of(float(v)) for v in
        values]``: a left-sided ``searchsorted`` against the interior
        edges finds the first interval whose upper bound is ``>= value``
        (matching :meth:`label_of`'s ``value <= upper`` scan), values
        beyond the last interior edge — including NaN, which sorts past
        everything — clamp to the final class, and NaN rows are then
        overwritten with ``None``.
        """
        arr = np.asarray(values, dtype=np.float64)
        interior = np.asarray(self.edges[1:-1], dtype=np.float64)
        idx = np.minimum(
            np.searchsorted(interior, arr, side="left"), len(self.labels) - 1
        )
        labels = np.array(self.labels, dtype=object)[idx]
        return list(np.where(np.isnan(arr), None, labels))

    def describe(self) -> str:
        """Human-readable intervals in the paper's footnote style."""
        parts = [f"{self.labels[0]} = [{self.edges[0]:g}, {self.edges[1]:g}]"]
        parts.extend(
            f"{label} = ({lo:g}, {hi:g}]"
            for label, lo, hi in zip(self.labels[1:], self.edges[1:-1], self.edges[2:])
        )
        return "; ".join(parts)


def discretize_attribute(
    values: np.ndarray,
    response: np.ndarray,
    n_classes: int,
    attribute: str = "",
    min_samples_leaf: int = 30,
) -> Discretization:
    """Discretize one attribute by a CART on the response variable.

    Grows a best-first CART with ``max_leaves = n_classes``; its split
    points become the interior bin edges.  If the data supports fewer
    splits than requested (e.g. a near-constant attribute), the result has
    correspondingly fewer classes.
    """
    if n_classes < 2:
        raise ValueError("n_classes must be >= 2")
    values = np.asarray(values, dtype=np.float64)
    response = np.asarray(response, dtype=np.float64)
    tree = RegressionTree(
        max_depth=n_classes,  # enough depth for n_classes leaves on a line
        min_samples_leaf=min_samples_leaf,
        max_leaves=n_classes,
    ).fit(values, response)
    splits = tree.thresholds(feature=0)
    present = values[~np.isnan(values)]
    if len(present) == 0:
        raise ValueError("cannot discretize an all-missing attribute")
    edges = (float(present.min()), *splits, float(present.max()))
    return Discretization(attribute=attribute, edges=edges)


def quantile_discretization(
    values: np.ndarray, n_classes: int, attribute: str = ""
) -> Discretization:
    """Equal-frequency discretization (used for the response variable).

    CART bins are driven *by* the response, so the response itself is
    binned by quantiles — terciles for 3 classes — which keeps every class
    populated even for skewed demand distributions.  Duplicate quantile
    edges (heavily tied data) collapse, yielding fewer classes.
    """
    if n_classes < 2:
        raise ValueError("n_classes must be >= 2")
    values = np.asarray(values, dtype=np.float64)
    present = values[~np.isnan(values)]
    if len(present) == 0:
        raise ValueError("cannot discretize an all-missing attribute")
    qs = np.linspace(0, 100, n_classes + 1)
    edges = np.percentile(present, qs)
    unique_edges = [float(edges[0])]
    for e in edges[1:]:
        if e > unique_edges[-1]:
            unique_edges.append(float(e))
    return Discretization(attribute=attribute, edges=tuple(unique_edges))


def discretize_table(
    table: Table,
    plan: dict[str, int],
    response: str,
    min_samples_leaf: int = 30,
) -> tuple[Table, dict[str, Discretization]]:
    """Discretize several numeric attributes of *table* at once.

    ``plan`` maps attribute name -> desired number of classes.  Returns a
    new table in which each planned attribute is REPLACED by its
    categorical classes, plus the fitted discretizations.  Feature
    attributes use CART bins on the response; if the *response* itself is
    in the plan it is binned by quantiles (see
    :func:`quantile_discretization`).
    """
    response_values = table[response]
    discretizations: dict[str, Discretization] = {}
    out = table
    for name, n_classes in plan.items():
        if name == response:
            disc = quantile_discretization(table[name], n_classes, attribute=name)
        else:
            disc = discretize_attribute(
                table[name], response_values, n_classes,
                attribute=name, min_samples_leaf=min_samples_leaf,
            )
        discretizations[name] = disc
        out = out.with_column(
            Column(name, ColumnKind.CATEGORICAL, np.array(disc.apply(table[name]), dtype=object))
        )
    return out.select(table.column_names), discretizations
