"""Supervised techniques for benchmarking analysis.

The paper's energy scientists "explore and characterize through supervised
and unsupervised techniques groups of buildings with similar properties"
(Section 2.2.1), and the future-work section plans more supervised
analytics.  This module adds the supervised half:

* :class:`KnnClassifier` — k-nearest-neighbour classification (e.g.
  predicting a unit's energy class from its thermo-physical features:
  the certificate-free screening task EPC literature calls *label
  inference*);
* regression evaluation helpers (:func:`mean_absolute_error`,
  :func:`r2_score`) for using :class:`~repro.analytics.cart.RegressionTree`
  as an EP_H predictor;
* :func:`train_test_split` and :func:`confusion_matrix` so the examples
  and benchmarks can report honest held-out numbers.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass

import numpy as np

__all__ = [
    "train_test_split",
    "KnnClassifier",
    "confusion_matrix",
    "accuracy",
    "mean_absolute_error",
    "r2_score",
]


def train_test_split(
    n_rows: int, test_fraction: float = 0.25, seed: int = 0
) -> tuple[np.ndarray, np.ndarray]:
    """Deterministic shuffled (train_indices, test_indices) split."""
    if not 0.0 < test_fraction < 1.0:
        raise ValueError("test_fraction must be in (0, 1)")
    rng = np.random.default_rng(seed)
    order = rng.permutation(n_rows)
    n_test = max(1, int(round(n_rows * test_fraction)))
    return order[n_test:], order[:n_test]


@dataclass
class KnnClassifier:
    """k-nearest-neighbour classifier over standardized features.

    Stores the training matrix; prediction is a majority vote among the k
    nearest training rows (Euclidean).  Ties break toward the closest
    neighbour's class.  Rows with NaN features predict ``None``.
    """

    k: int = 15

    def __post_init__(self):
        if self.k < 1:
            raise ValueError("k must be >= 1")
        self._train_x: np.ndarray | None = None
        self._train_y: list = []

    def fit(self, x: np.ndarray, y) -> "KnnClassifier":
        """Fit on feature matrix *x* and labels *y* (None labels dropped)."""
        x = np.asarray(x, dtype=np.float64)
        y = list(y)
        if len(x) != len(y):
            raise ValueError("x and y must be aligned")
        keep = ~np.isnan(x).any(axis=1) & np.array([v is not None for v in y])
        if not keep.any():
            raise ValueError("no complete training samples")
        self._train_x = x[keep]
        self._train_y = [y[i] for i in np.flatnonzero(keep)]
        return self

    def predict(self, x: np.ndarray) -> list:
        """Predicted class per row (``None`` for NaN rows)."""
        if self._train_x is None:
            raise RuntimeError("classifier is not fitted")
        x = np.asarray(x, dtype=np.float64)
        if x.ndim == 1:
            x = x[None, :]
        k = min(self.k, len(self._train_x))
        sq_train = np.sum(self._train_x**2, axis=1)
        out: list = []
        for row in x:
            if np.isnan(row).any():
                out.append(None)
                continue
            dist_sq = sq_train - 2 * self._train_x @ row + row @ row
            nearest = np.argpartition(dist_sq, k - 1)[:k]
            nearest = nearest[np.argsort(dist_sq[nearest], kind="stable")]
            votes = Counter(self._train_y[i] for i in nearest)
            top = max(votes.values())
            # tie-break toward the closest neighbour's class
            winner = next(
                self._train_y[i] for i in nearest if votes[self._train_y[i]] == top
            )
            out.append(winner)
        return out


def confusion_matrix(truth, predicted) -> dict[tuple, int]:
    """``{(true_class, predicted_class): count}`` over comparable pairs."""
    out: dict[tuple, int] = {}
    for t, p in zip(truth, predicted):
        if t is None or p is None:
            continue
        out[(t, p)] = out.get((t, p), 0) + 1
    return out


def accuracy(truth, predicted) -> float:
    """Share of comparable pairs predicted exactly; NaN if none."""
    total = correct = 0
    for t, p in zip(truth, predicted):
        if t is None or p is None:
            continue
        total += 1
        correct += t == p
    return correct / total if total else float("nan")


def mean_absolute_error(truth: np.ndarray, predicted: np.ndarray) -> float:
    """MAE over pairwise-complete entries."""
    truth = np.asarray(truth, dtype=np.float64)
    predicted = np.asarray(predicted, dtype=np.float64)
    keep = ~(np.isnan(truth) | np.isnan(predicted))
    if not keep.any():
        return float("nan")
    return float(np.abs(truth[keep] - predicted[keep]).mean())


def r2_score(truth: np.ndarray, predicted: np.ndarray) -> float:
    """Coefficient of determination over pairwise-complete entries."""
    truth = np.asarray(truth, dtype=np.float64)
    predicted = np.asarray(predicted, dtype=np.float64)
    keep = ~(np.isnan(truth) | np.isnan(predicted))
    if keep.sum() < 2:
        return float("nan")
    t, p = truth[keep], predicted[keep]
    ss_res = float(np.sum((t - p) ** 2))
    ss_tot = float(np.sum((t - t.mean()) ** 2))
    if ss_tot == 0:
        return float("nan")
    return 1.0 - ss_res / ss_tot
