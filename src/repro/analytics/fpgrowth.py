"""FP-Growth frequent-itemset mining.

Apriori (the algorithm of the paper's reference [1]) generates candidate
itemsets level by level; FP-Growth (Han, Pei & Yin 2000) avoids candidate
generation entirely by compressing the transactions into a prefix tree
(the *FP-tree*) and mining it recursively through conditional pattern
bases.  On dense EPC data — few attributes, few values, long shared
prefixes — the tree is tiny and mining is much faster at low support
thresholds.

The miner is a drop-in alternative to
:class:`~repro.analytics.apriori.ItemsetMiner`: same transaction input,
same :class:`~repro.analytics.apriori.FrequentItemsets` output, same
supports (the equivalence is property-tested), so
:func:`~repro.analytics.rules.generate_rules` works unchanged on top.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field

from .apriori import FrequentItemsets, Item

__all__ = ["FpTree", "FpGrowthMiner"]


@dataclass
class _FpNode:
    """One FP-tree node: an item, its count, and the tree links."""

    item: Item | None
    count: int = 0
    parent: "_FpNode | None" = None
    children: dict[Item, "_FpNode"] = field(default_factory=dict)
    next_same_item: "_FpNode | None" = None  # header-table chain


class FpTree:
    """A compressed prefix tree over item-sorted transactions.

    Items inside each transaction are ordered by descending global
    frequency (ties broken by the item itself for determinism), so
    frequent items share prefixes and the tree stays small.
    """

    def __init__(self, item_order: dict[Item, int]):
        self.root = _FpNode(item=None)
        self.header: dict[Item, _FpNode] = {}
        self._order = item_order

    def insert(self, items: list[Item], count: int = 1) -> None:
        """Insert one (already filtered) transaction with multiplicity."""
        ordered = sorted(items, key=lambda i: (self._order[i], i))
        node = self.root
        for item in ordered:
            child = node.children.get(item)
            if child is None:
                child = _FpNode(item=item, parent=node)
                node.children[item] = child
                # push on the header chain
                child.next_same_item = self.header.get(item)
                self.header[item] = child
            child.count += count
            node = child

    def prefix_paths(self, item: Item) -> list[tuple[list[Item], int]]:
        """The conditional pattern base of *item*: (path, count) pairs."""
        paths: list[tuple[list[Item], int]] = []
        node = self.header.get(item)
        while node is not None:
            path: list[Item] = []
            ancestor = node.parent
            while ancestor is not None and ancestor.item is not None:
                path.append(ancestor.item)
                ancestor = ancestor.parent
            if path:
                paths.append((path, node.count))
            node = node.next_same_item
        return paths

    def item_count(self, item: Item) -> int:
        """Total occurrences of *item* in the tree."""
        total = 0
        node = self.header.get(item)
        while node is not None:
            total += node.count
            node = node.next_same_item
        return total

    def is_empty(self) -> bool:
        """True when the tree holds no transactions."""
        return not self.root.children


class FpGrowthMiner:
    """FP-Growth miner with the same interface as ``ItemsetMiner``."""

    def __init__(self, min_support: float = 0.05, max_length: int = 4):
        if not 0.0 < min_support <= 1.0:
            raise ValueError(f"min_support must be in (0, 1], got {min_support}")
        if max_length < 1:
            raise ValueError("max_length must be >= 1")
        self.min_support = min_support
        self.max_length = max_length

    def mine(self, transactions: list[list[Item]]) -> FrequentItemsets:
        """Mine all frequent itemsets from *transactions*."""
        n = len(transactions)
        result = FrequentItemsets(n_transactions=n)
        if n == 0:
            return result
        min_count = self.min_support * n

        counts = Counter(item for tx in transactions for item in tx)
        frequent_items = {i for i, c in counts.items() if c >= min_count}
        if not frequent_items:
            return result
        # global order: most frequent first
        order = {
            item: rank
            for rank, item in enumerate(
                sorted(frequent_items, key=lambda i: (-counts[i], i))
            )
        }

        tree = FpTree(order)
        for tx in transactions:
            kept = [i for i in tx if i in frequent_items]
            if kept:
                tree.insert(kept)

        supports: dict[tuple[Item, ...], int] = {}
        self._mine_tree(tree, suffix=(), min_count=min_count, out=supports)
        result.supports = {
            itemset: count / n for itemset, count in supports.items()
        }
        return result

    def _mine_tree(
        self,
        tree: FpTree,
        suffix: tuple[Item, ...],
        min_count: float,
        out: dict[tuple[Item, ...], int],
    ) -> None:
        """Recursive FP-Growth over *tree*'s conditional bases."""
        if len(suffix) >= self.max_length:
            return
        # visit items least-frequent-first (bottom of the tree)
        items = sorted(tree.header, key=lambda i: (-tree._order[i], i))
        for item in items:
            count = tree.item_count(item)
            if count < min_count:
                continue
            itemset = tuple(sorted(suffix + (item,)))
            out[itemset] = count
            if len(itemset) >= self.max_length:
                continue
            # build the conditional tree for this item
            paths = tree.prefix_paths(item)
            if not paths:
                continue
            conditional_counts: Counter = Counter()
            for path, path_count in paths:
                for path_item in path:
                    conditional_counts[path_item] += path_count
            keep = {i for i, c in conditional_counts.items() if c >= min_count}
            if not keep:
                continue
            conditional = FpTree(tree._order)
            for path, path_count in paths:
                kept = [i for i in path if i in keep]
                if kept:
                    conditional.insert(kept, path_count)
            if not conditional.is_empty():
                self._mine_tree(conditional, suffix + (item,), min_count, out)
