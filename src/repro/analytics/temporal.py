"""Temporal views of an EPC collection.

The paper's collection spans certificates "issued in the years between
2016 and 2018"; registries accumulate, and stakeholders read them over
time: how issuance volume evolves, whether the certified stock is getting
better (new constructions and renovations push the mean demand down), and
how the energy-class mix shifts.  This module computes those series so
the dashboard can plot them with the existing chart primitives.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field

import numpy as np

from ..dataset.table import ColumnKind, Table

__all__ = ["YearlySlice", "TemporalSummary", "temporal_summary"]


@dataclass(frozen=True)
class YearlySlice:
    """Aggregates of the certificates issued in one year."""

    year: int
    n_certificates: int
    mean_response: float
    median_response: float
    class_mix: tuple[tuple[str, int], ...] = ()

    def class_share(self, label: str) -> float:
        """Fraction of this year's certificates in class *label*."""
        total = sum(c for __, c in self.class_mix)
        if total == 0:
            return 0.0
        return dict(self.class_mix).get(label, 0) / total


@dataclass
class TemporalSummary:
    """Ordered yearly slices plus trend helpers."""

    response: str
    slices: list[YearlySlice] = field(default_factory=list)

    def years(self) -> list[int]:
        """The issue years present, ascending."""
        return [s.year for s in self.slices]

    def counts(self) -> list[int]:
        """Certificates issued per year, aligned with :meth:`years`."""
        return [s.n_certificates for s in self.slices]

    def mean_series(self) -> list[float]:
        """Mean response per year, aligned with :meth:`years`."""
        return [s.mean_response for s in self.slices]

    def response_trend(self) -> float:
        """Least-squares slope of the yearly mean response (units/year).

        Negative = the certified stock improves over time.  NaN when
        fewer than two years carry data.
        """
        years = np.array([s.year for s in self.slices], dtype=np.float64)
        means = np.array([s.mean_response for s in self.slices], dtype=np.float64)
        keep = ~np.isnan(means)
        if keep.sum() < 2:
            return float("nan")
        slope, __ = np.polyfit(years[keep], means[keep], 1)
        return float(slope)


def temporal_summary(
    table: Table,
    response: str = "eph",
    year_column: str = "certificate_year",
    class_column: str = "energy_class",
) -> TemporalSummary:
    """Per-issue-year aggregation of *table*.

    Rows with a missing year are skipped.  The class mix is included when
    *class_column* exists and is categorical.
    """
    years = table[year_column]
    response_values = table[response]
    has_classes = class_column in table and table.kind(class_column) is not ColumnKind.NUMERIC

    by_year: dict[int, list[int]] = {}
    for i, y in enumerate(years):
        if np.isnan(y):
            continue
        by_year.setdefault(int(y), []).append(i)

    summary = TemporalSummary(response=response)
    for year in sorted(by_year):
        idx = np.asarray(by_year[year], dtype=np.intp)
        values = response_values[idx]
        present = values[~np.isnan(values)]
        mix: tuple[tuple[str, int], ...] = ()
        if has_classes:
            counts = Counter(
                v for v in table[class_column][idx] if v is not None
            )
            mix = tuple(sorted(counts.items()))
        summary.slices.append(
            YearlySlice(
                year=year,
                n_certificates=len(idx),
                mean_response=float(present.mean()) if len(present) else float("nan"),
                median_response=float(np.median(present)) if len(present) else float("nan"),
                class_mix=mix,
            )
        )
    return summary
