"""Pearson correlation matrices and the clustering-eligibility test.

"For each pair of numerical attributes X and Y, the framework computes the
Pearson correlation coefficient ... Each coefficient value is translated
into a gray level in the black-and-white scale ... When the selected set of
attributes has no evident linear correlation, it is eligible for the
analytic task." (paper, Section 2.3, Figure 3.)
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..dataset.table import Table

__all__ = ["CorrelationMatrix", "pearson", "correlation_matrix"]

#: |rho| below this is "no evident linear correlation" (Figure 3's reading).
DEFAULT_ELIGIBILITY_THRESHOLD = 0.5


def pearson(x: np.ndarray, y: np.ndarray) -> float:
    """Pearson's rho over pairwise-complete observations.

    Returns NaN when fewer than 2 complete pairs exist or either variable
    is constant.
    """
    x = np.asarray(x, dtype=np.float64)
    y = np.asarray(y, dtype=np.float64)
    keep = ~(np.isnan(x) | np.isnan(y))
    x, y = x[keep], y[keep]
    if len(x) < 2:
        return float("nan")
    sx, sy = x.std(), y.std()
    if sx == 0 or sy == 0:
        return float("nan")
    return float(((x - x.mean()) * (y - y.mean())).mean() / (sx * sy))


@dataclass
class CorrelationMatrix:
    """A symmetric Pearson matrix over named attributes."""

    attributes: list[str]
    matrix: np.ndarray

    def value(self, a: str, b: str) -> float:
        """The coefficient between attributes *a* and *b*."""
        i, j = self.attributes.index(a), self.attributes.index(b)
        return float(self.matrix[i, j])

    def off_diagonal(self) -> np.ndarray:
        """The strictly-upper-triangle coefficients (each pair once)."""
        n = len(self.attributes)
        iu = np.triu_indices(n, k=1)
        return self.matrix[iu]

    def max_abs_off_diagonal(self) -> float:
        """Largest |rho| over distinct attribute pairs."""
        off = self.off_diagonal()
        finite = off[~np.isnan(off)]
        return float(np.abs(finite).max()) if len(finite) else 0.0

    def is_eligible(self, threshold: float = DEFAULT_ELIGIBILITY_THRESHOLD) -> bool:
        """True when no pair shows evident linear correlation — the paper's
        precondition for using the attribute set in the analytic task."""
        return self.max_abs_off_diagonal() < threshold

    def gray_levels(self) -> np.ndarray:
        """|rho| mapped to gray levels in [0, 1]; 1 = black = |rho| = 1.

        This is the encoding of the paper's Figure 3: "dark squares
        represent high linear correlation".  NaN maps to 0 (blank).
        """
        levels = np.abs(self.matrix)
        return np.where(np.isnan(levels), 0.0, levels)

    def pairs_above(self, threshold: float) -> list[tuple[str, str, float]]:
        """Attribute pairs whose |rho| meets *threshold*, strongest first."""
        out = []
        n = len(self.attributes)
        for i in range(n):
            for j in range(i + 1, n):
                rho = self.matrix[i, j]
                if not np.isnan(rho) and abs(rho) >= threshold:
                    out.append((self.attributes[i], self.attributes[j], float(rho)))
        return sorted(out, key=lambda t: abs(t[2]), reverse=True)


def correlation_matrix(table: Table, attributes: list[str]) -> CorrelationMatrix:
    """Pairwise Pearson matrix over the numeric *attributes* of *table*."""
    arrays = [table[name] for name in attributes]
    n = len(attributes)
    matrix = np.eye(n, dtype=np.float64)
    for i in range(n):
        for j in range(i + 1, n):
            rho = pearson(arrays[i], arrays[j])
            matrix[i, j] = matrix[j, i] = rho
    return CorrelationMatrix(attributes=list(attributes), matrix=matrix)
