"""CART regression trees (Breiman et al.), used by INDICE for discretization.

"Since association rules extraction operates on a transactional dataset of
categorical attributes, a discretization step is needed ... The used
technique involves creating a decision CART for each variable, using as
response variable the annual primary energy demand normalized on the floor
area.  The tree splits are used as bins in the discretization process."
(paper, Section 2.2.2, following [11].)

This is a from-scratch regression tree:

* squared-error (variance-reduction) split criterion, exact search over
  sorted candidate thresholds via cumulative sums;
* **best-first growth** with a ``max_leaves`` budget — the mode the
  discretizer needs, because *n* classes require exactly *n - 1* splits
  chosen greedily by impurity decrease;
* the usual depth / minimum-leaf-size / minimum-decrease controls.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field

import numpy as np

__all__ = ["CartNode", "RegressionTree"]


@dataclass
class CartNode:
    """A tree node; leaves carry a prediction, internal nodes a split."""

    prediction: float
    n_samples: int
    impurity: float  # SSE of the node's samples around their mean
    feature: int | None = None
    threshold: float | None = None
    left: "CartNode | None" = None
    right: "CartNode | None" = None

    @property
    def is_leaf(self) -> bool:
        """True when this node has no children."""
        return self.left is None


@dataclass
class _Split:
    feature: int
    threshold: float
    decrease: float
    left_rows: np.ndarray
    right_rows: np.ndarray


def _node_sse(y: np.ndarray) -> float:
    if len(y) == 0:
        return 0.0
    return float(np.sum((y - y.mean()) ** 2))


def _best_split(
    x: np.ndarray, y: np.ndarray, rows: np.ndarray, min_samples_leaf: int
) -> _Split | None:
    """The impurity-maximally-decreasing split of *rows*, or None."""
    best: _Split | None = None
    parent_sse = _node_sse(y[rows])
    n = len(rows)
    for feature in range(x.shape[1]):
        values = x[rows, feature]
        order = np.argsort(values, kind="stable")
        sorted_values = values[order]
        sorted_y = y[rows][order]
        # cumulative sums let us evaluate every threshold in O(n)
        csum = np.cumsum(sorted_y)
        csum_sq = np.cumsum(sorted_y**2)
        total = csum[-1]
        total_sq = csum_sq[-1]
        for i in range(min_samples_leaf - 1, n - min_samples_leaf):
            if sorted_values[i] == sorted_values[i + 1]:
                continue  # cannot split between equal values
            n_left = i + 1
            n_right = n - n_left
            left_sse = float(csum_sq[i] - csum[i] ** 2 / n_left)
            right_sum = total - csum[i]
            right_sse = float((total_sq - csum_sq[i]) - right_sum**2 / n_right)
            decrease = parent_sse - left_sse - right_sse
            if best is None or decrease > best.decrease:
                threshold = float((sorted_values[i] + sorted_values[i + 1]) / 2)
                best = _Split(
                    feature=feature,
                    threshold=threshold,
                    decrease=decrease,
                    left_rows=rows[order[: i + 1]],
                    right_rows=rows[order[i + 1 :]],
                )
    return best


@dataclass
class RegressionTree:
    """A CART regression tree.

    Parameters mirror the classic controls.  ``max_leaves`` switches growth
    to best-first (greedy by impurity decrease), which is what the
    discretizer uses; without it growth is depth-first to ``max_depth``.
    """

    max_depth: int = 6
    min_samples_leaf: int = 20
    max_leaves: int | None = None
    min_impurity_decrease: float = 0.0
    root: CartNode | None = field(default=None, repr=False)

    def fit(self, x: np.ndarray, y: np.ndarray) -> "RegressionTree":
        """Fit on an ``(n, d)`` feature matrix and response *y*.

        Rows with NaN in the features or the response are dropped.
        """
        x = np.asarray(x, dtype=np.float64)
        if x.ndim == 1:
            x = x[:, None]
        y = np.asarray(y, dtype=np.float64)
        if len(x) != len(y):
            raise ValueError("x and y must be aligned")
        keep = ~np.isnan(x).any(axis=1) & ~np.isnan(y)
        x, y = x[keep], y[keep]
        if len(y) == 0:
            raise ValueError("no complete samples to fit on")

        rows = np.arange(len(y))
        self.root = CartNode(
            prediction=float(y.mean()), n_samples=len(y), impurity=_node_sse(y)
        )
        if self.max_leaves is not None:
            self._grow_best_first(x, y, rows)
        else:
            self._grow_depth_first(self.root, x, y, rows, depth=0)
        return self

    # -- growth strategies --------------------------------------------------

    def _try_split(self, x, y, rows) -> _Split | None:
        if len(rows) < 2 * self.min_samples_leaf:
            return None
        split = _best_split(x, y, rows, self.min_samples_leaf)
        if split is None or split.decrease <= self.min_impurity_decrease:
            return None
        return split

    def _apply_split(self, node: CartNode, split: _Split, y: np.ndarray) -> tuple[CartNode, CartNode]:
        node.feature = split.feature
        node.threshold = split.threshold
        left_y, right_y = y[split.left_rows], y[split.right_rows]
        node.left = CartNode(float(left_y.mean()), len(left_y), _node_sse(left_y))
        node.right = CartNode(float(right_y.mean()), len(right_y), _node_sse(right_y))
        return node.left, node.right

    def _grow_depth_first(self, node, x, y, rows, depth) -> None:
        if depth >= self.max_depth:
            return
        split = self._try_split(x, y, rows)
        if split is None:
            return
        left, right = self._apply_split(node, split, y)
        self._grow_depth_first(left, x, y, split.left_rows, depth + 1)
        self._grow_depth_first(right, x, y, split.right_rows, depth + 1)

    def _grow_best_first(self, x, y, rows) -> None:
        counter = itertools.count()  # tie-breaker: FIFO among equal decreases
        heap: list[tuple[float, int, CartNode, _Split, int]] = []

        def push(node: CartNode, node_rows: np.ndarray, depth: int) -> None:
            if depth >= self.max_depth:
                return
            split = self._try_split(x, y, node_rows)
            if split is not None:
                heapq.heappush(heap, (-split.decrease, next(counter), node, split, depth))

        push(self.root, rows, 0)
        n_leaves = 1
        while heap and n_leaves < self.max_leaves:
            __, ___, node, split, depth = heapq.heappop(heap)
            left, right = self._apply_split(node, split, y)
            n_leaves += 1
            push(left, split.left_rows, depth + 1)
            push(right, split.right_rows, depth + 1)

    # -- inference ----------------------------------------------------------

    def predict(self, x: np.ndarray) -> np.ndarray:
        """Predicted response per row (NaN features predict NaN)."""
        if self.root is None:
            raise RuntimeError("tree is not fitted")
        x = np.asarray(x, dtype=np.float64)
        if x.ndim == 1:
            x = x[:, None]
        out = np.empty(len(x), dtype=np.float64)
        for i, row in enumerate(x):
            if np.isnan(row).any():
                out[i] = np.nan
                continue
            node = self.root
            while not node.is_leaf:
                node = node.left if row[node.feature] <= node.threshold else node.right
            out[i] = node.prediction
        return out

    # -- introspection --------------------------------------------------------

    def n_leaves(self) -> int:
        """Number of leaves in the fitted tree."""
        return sum(1 for node in self._walk() if node.is_leaf)

    def depth(self) -> int:
        """Depth of the fitted tree (0 for a single leaf)."""
        def node_depth(node: CartNode) -> int:
            if node.is_leaf:
                return 0
            return 1 + max(node_depth(node.left), node_depth(node.right))

        if self.root is None:
            return 0
        return node_depth(self.root)

    def thresholds(self, feature: int = 0) -> list[float]:
        """Sorted split thresholds on *feature* — the discretization edges."""
        return sorted(
            node.threshold
            for node in self._walk()
            if not node.is_leaf and node.feature == feature
        )

    def _walk(self):
        stack = [self.root] if self.root else []
        while stack:
            node = stack.pop()
            yield node
            if not node.is_leaf:
                stack.extend((node.left, node.right))
