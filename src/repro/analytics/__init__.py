"""INDICE analytics tier: clustering, discretization, rules, correlation, stats."""

from .kmeans import (
    UNASSIGNED,
    AutoKMeansResult,
    KMeansResult,
    Standardization,
    choose_k_elbow,
    kmeans,
    kmeans_auto,
    sse_curve,
    standardize,
)
from .cart import CartNode, RegressionTree
from .discretize import (
    PAPER_BINS,
    Discretization,
    discretize_attribute,
    discretize_table,
    quantile_discretization,
)
from .apriori import FrequentItemsets, Item, ItemsetMiner, transactions_from_table
from .fpgrowth import FpGrowthMiner, FpTree
from .rules import (
    AssociationRule,
    RuleConstraints,
    RuleMiner,
    RuleTemplate,
    generate_rules,
)
from .correlation import CorrelationMatrix, correlation_matrix, pearson
from .hierarchical import HierarchicalResult, Merge, agglomerative
from .profiles import ClusterProfile, profile_clusters
from .spatial import MoranResult, morans_i, morans_i_for_regions, region_adjacency
from .temporal import TemporalSummary, YearlySlice, temporal_summary
from .validation import davies_bouldin, silhouette_score
from .supervised import (
    KnnClassifier,
    accuracy,
    confusion_matrix,
    mean_absolute_error,
    r2_score,
    train_test_split,
)
from .stats import (
    CategoricalSummary,
    Histogram,
    NumericSummary,
    grouped_histograms,
    histogram,
    quantile_bins,
    summarize_categorical,
    summarize_numeric,
    summarize_table,
)

__all__ = [
    "UNASSIGNED",
    "AutoKMeansResult",
    "KMeansResult",
    "Standardization",
    "choose_k_elbow",
    "kmeans",
    "kmeans_auto",
    "sse_curve",
    "standardize",
    "CartNode",
    "RegressionTree",
    "PAPER_BINS",
    "Discretization",
    "discretize_attribute",
    "discretize_table",
    "quantile_discretization",
    "FrequentItemsets",
    "Item",
    "ItemsetMiner",
    "transactions_from_table",
    "FpGrowthMiner",
    "FpTree",
    "AssociationRule",
    "RuleConstraints",
    "RuleMiner",
    "RuleTemplate",
    "generate_rules",
    "CorrelationMatrix",
    "correlation_matrix",
    "pearson",
    "HierarchicalResult",
    "Merge",
    "agglomerative",
    "ClusterProfile",
    "profile_clusters",
    "MoranResult",
    "morans_i",
    "morans_i_for_regions",
    "region_adjacency",
    "TemporalSummary",
    "YearlySlice",
    "temporal_summary",
    "davies_bouldin",
    "silhouette_score",
    "KnnClassifier",
    "accuracy",
    "confusion_matrix",
    "mean_absolute_error",
    "r2_score",
    "train_test_split",
    "CategoricalSummary",
    "Histogram",
    "NumericSummary",
    "grouped_histograms",
    "histogram",
    "quantile_bins",
    "summarize_categorical",
    "summarize_numeric",
    "summarize_table",
]
