"""Agglomerative hierarchical clustering (paper's future-work extension).

The paper closes with: "As future work we plan to integrate in INDICE
other analytics techniques (both supervised and unsupervised) to provide a
more flexible and enhanced analysis."  Hierarchical clustering is the
natural unsupervised companion to K-means for building-stock analysis: it
needs no a-priori K, exposes the merge structure (useful to *choose* K),
and handles non-spherical groups.

Implementation: the **nearest-neighbour chain** algorithm with the
Lance–Williams distance update — exact for the reducible linkages
supported here, O(n²) time and O(n²) distance storage:

* ``ward`` — minimum within-cluster variance increase (default; the
  energy-stock regimes are compact);
* ``average`` — UPGMA;
* ``single`` / ``complete`` — nearest / farthest neighbour.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

__all__ = ["Merge", "HierarchicalResult", "agglomerative"]

_LINKAGES = ("ward", "average", "single", "complete")


@dataclass(frozen=True)
class Merge:
    """One agglomeration step: clusters *a* and *b* merged at *height*.

    Cluster ids follow the scipy convention: leaves are ``0..n-1``; the
    cluster created by merge *i* gets id ``n + i``.
    """

    a: int
    b: int
    height: float
    size: int


@dataclass
class HierarchicalResult:
    """A full dendrogram plus helpers to cut it."""

    n_points: int
    n_original: int
    merges: list[Merge]
    linkage: str
    fit_indices: np.ndarray = field(repr=False, default_factory=lambda: np.empty(0, dtype=np.intp))

    def cut(self, k: int) -> np.ndarray:
        """Labels aligned with the ORIGINAL rows for a k-cluster cut.

        Rows that were not fitted (missing features) get label ``-1``.
        Cluster ids are ``0..k-1``, relabelled by first row occurrence.
        The dendrogram is cut by replaying merges cheapest-first until
        only *k* clusters remain.
        """
        if not 1 <= k <= self.n_points:
            raise ValueError(f"k must be in [1, {self.n_points}]")
        parent = list(range(self.n_points + len(self.merges)))

        def find(x: int) -> int:
            while parent[x] != x:
                parent[x] = parent[parent[x]]
                x = parent[x]
            return x

        clusters = self.n_points
        for i, merge in enumerate(sorted(range(len(self.merges)),
                                         key=lambda j: self.merges[j].height)):
            if clusters <= k:
                break
            step = self.merges[merge]
            new_id = self.n_points + merge
            parent[find(step.a)] = new_id
            parent[find(step.b)] = new_id
            clusters -= 1

        roots: dict[int, int] = {}
        fitted = np.empty(self.n_points, dtype=np.intp)
        for i in range(self.n_points):
            root = find(i)
            if root not in roots:
                roots[root] = len(roots)
            fitted[i] = roots[root]

        full = np.full(self.n_original, -1, dtype=np.intp)
        full[self.fit_indices] = fitted
        return full

    def heights(self) -> list[float]:
        """Merge heights sorted ascending — jumps in this curve suggest K."""
        return sorted(m.height for m in self.merges)

    def suggest_k(self, max_k: int = 10) -> int:
        """K at the largest relative jump among the final *max_k* merges.

        A large jump between successive merge heights means two genuinely
        separate groups were forced together; cutting just before the jump
        yields the natural cluster count.
        """
        heights = self.heights()
        if len(heights) < 2:
            return 1
        tail = heights[-max_k:]
        jumps = np.diff(tail)
        if len(jumps) == 0 or np.all(jumps <= 0):
            return 2
        j = int(np.argmax(jumps))
        return len(tail) - j


def _lance_williams(
    linkage: str,
    d_ai: np.ndarray, d_bi: np.ndarray, d_ab: float,
    n_a: int, n_b: int, n_i: np.ndarray,
) -> np.ndarray:
    """Vectorized distance from the merged cluster (a+b) to clusters i."""
    if linkage == "single":
        return np.minimum(d_ai, d_bi)
    if linkage == "complete":
        return np.maximum(d_ai, d_bi)
    if linkage == "average":
        return (n_a * d_ai + n_b * d_bi) / (n_a + n_b)
    total = n_a + n_b + n_i
    return ((n_a + n_i) * d_ai + (n_b + n_i) * d_bi - n_i * d_ab) / total


def agglomerative(
    points: np.ndarray, linkage: str = "ward", max_points: int = 5000
) -> HierarchicalResult:
    """Build the full dendrogram of *points*.

    Rows with NaN features are excluded (they get label ``-1`` at cut
    time).  For ``ward`` the inter-cluster distance is the Ward merge cost
    (within-variance increase); for the other linkages it is Euclidean.
    ``max_points`` guards against accidentally quadratic blow-ups — raise
    it deliberately for bigger runs.
    """
    if linkage not in _LINKAGES:
        raise ValueError(f"unknown linkage {linkage!r}; pick one of {_LINKAGES}")
    points = np.asarray(points, dtype=np.float64)
    if points.ndim != 2:
        raise ValueError(f"expected an (n, d) matrix, got shape {points.shape}")
    complete_rows = ~np.isnan(points).any(axis=1)
    fit_indices = np.flatnonzero(complete_rows)
    coords = points[fit_indices]
    n = len(coords)
    if n == 0:
        raise ValueError("no complete rows to cluster")
    if n > max_points:
        raise ValueError(
            f"{n} points exceed max_points={max_points}; subsample or raise the cap"
        )

    sq = np.sum(coords**2, axis=1)
    dist_sq = np.maximum(sq[:, None] - 2 * coords @ coords.T + sq[None, :], 0.0)
    dist = dist_sq / 2.0 if linkage == "ward" else np.sqrt(dist_sq)
    np.fill_diagonal(dist, np.inf)

    # slot i of the distance matrix hosts cluster cluster_id[i]
    cluster_id = np.arange(n, dtype=np.intp)
    sizes = np.ones(n, dtype=np.intp)
    active = np.ones(n, dtype=bool)

    merges: list[Merge] = []
    next_id = n
    chain: list[int] = []  # slots, not cluster ids
    remaining = n
    while remaining > 1:
        if not chain:
            chain.append(int(np.flatnonzero(active)[0]))
        while True:
            tip = chain[-1]
            row = dist[tip].copy()
            row[~active] = np.inf
            nearest = int(np.argmin(row))
            if len(chain) >= 2 and nearest == chain[-2]:
                break  # reciprocal nearest neighbours: merge
            chain.append(nearest)
        b = chain.pop()
        a = chain.pop()
        height = float(dist[a, b])
        merges.append(Merge(int(cluster_id[a]), int(cluster_id[b]), height,
                            int(sizes[a] + sizes[b])))

        others = active.copy()
        others[a] = others[b] = False
        idx = np.flatnonzero(others)
        if len(idx):
            updated = _lance_williams(
                linkage, dist[a, idx], dist[b, idx], height,
                int(sizes[a]), int(sizes[b]), sizes[idx],
            )
            dist[a, idx] = updated
            dist[idx, a] = updated
        active[b] = False
        dist[b, :] = np.inf
        dist[:, b] = np.inf
        sizes[a] += sizes[b]
        cluster_id[a] = next_id
        next_id += 1
        remaining -= 1
        # the chain may contain b or entries whose nearest changed; reset
        # conservatively to the merged slot's neighbourhood
        chain = [slot for slot in chain if active[slot]]

    return HierarchicalResult(
        n_points=n,
        n_original=len(points),
        merges=merges,
        linkage=linkage,
        fit_indices=fit_indices,
    )
