"""Descriptive statistics and frequency distributions for dashboards.

"For numeric data, INDICE includes count, mean, standard deviation and the
three quartiles (i.e., median, first and third quartiles), while for
categorical attributes, the count, the most common value's frequency (i.e.,
mode) and the top-k frequent values are reported. ... For a given area, the
frequency distributions (e.g., quartiles or deciles) of the features
selected for the visualization task are reported." (paper, Section 2.3.)
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass

import numpy as np

from ..dataset.table import ColumnKind, Table

__all__ = [
    "NumericSummary",
    "CategoricalSummary",
    "Histogram",
    "summarize_numeric",
    "summarize_categorical",
    "summarize_table",
    "histogram",
    "quantile_bins",
    "grouped_histograms",
]


@dataclass(frozen=True)
class NumericSummary:
    """The paper's numeric panel: count, mean, std and the three quartiles."""

    attribute: str
    count: int
    mean: float
    std: float
    q1: float
    median: float
    q3: float
    minimum: float
    maximum: float

    def as_dict(self) -> dict[str, float]:
        """The summary as a plain dict (stable key names)."""
        return {
            "count": self.count,
            "mean": self.mean,
            "std": self.std,
            "q1": self.q1,
            "median": self.median,
            "q3": self.q3,
            "min": self.minimum,
            "max": self.maximum,
        }


@dataclass(frozen=True)
class CategoricalSummary:
    """The paper's categorical panel: count, mode frequency, top-k values."""

    attribute: str
    count: int
    n_distinct: int
    mode: str | None
    mode_frequency: int
    top_values: tuple[tuple[str, int], ...]


def summarize_numeric(values: np.ndarray, attribute: str = "") -> NumericSummary:
    """Summary of a numeric array (NaN-aware)."""
    values = np.asarray(values, dtype=np.float64)
    present = values[~np.isnan(values)]
    if len(present) == 0:
        nan = float("nan")
        return NumericSummary(attribute, 0, nan, nan, nan, nan, nan, nan, nan)
    q1, median, q3 = np.percentile(present, [25, 50, 75])
    return NumericSummary(
        attribute=attribute,
        count=int(len(present)),
        mean=float(present.mean()),
        std=float(present.std(ddof=1)) if len(present) > 1 else 0.0,
        q1=float(q1),
        median=float(median),
        q3=float(q3),
        minimum=float(present.min()),
        maximum=float(present.max()),
    )


def summarize_categorical(
    values, attribute: str = "", top_k: int = 5
) -> CategoricalSummary:
    """Summary of a categorical array (None-aware)."""
    present = [v for v in values if v is not None]
    counts = Counter(present)
    top = counts.most_common(top_k)
    mode, mode_freq = (top[0] if top else (None, 0))
    return CategoricalSummary(
        attribute=attribute,
        count=len(present),
        n_distinct=len(counts),
        mode=mode,
        mode_frequency=mode_freq,
        top_values=tuple(top),
    )


def summarize_table(
    table: Table, attributes: list[str] | None = None, top_k: int = 5
) -> dict[str, NumericSummary | CategoricalSummary]:
    """Per-attribute summaries, dispatched by column kind."""
    names = attributes if attributes is not None else table.column_names
    out: dict[str, NumericSummary | CategoricalSummary] = {}
    for name in names:
        if table.kind(name) is ColumnKind.NUMERIC:
            out[name] = summarize_numeric(table[name], name)
        else:
            out[name] = summarize_categorical(table[name], name, top_k)
    return out


@dataclass
class Histogram:
    """A binned frequency distribution ready for a bar chart."""

    attribute: str
    edges: np.ndarray
    counts: np.ndarray
    label: str = ""

    @property
    def n(self) -> int:
        """Total count over all bins."""
        return int(self.counts.sum())

    def densities(self) -> np.ndarray:
        """Counts normalized to fractions (zeros for an empty histogram)."""
        total = self.counts.sum()
        if total == 0:
            return np.zeros_like(self.counts, dtype=np.float64)
        return self.counts / total

    def bin_centers(self) -> np.ndarray:
        """Midpoint of each bin, aligned with ``counts``."""
        return (self.edges[:-1] + self.edges[1:]) / 2


def histogram(
    values: np.ndarray,
    bins: int = 20,
    attribute: str = "",
    value_range: tuple[float, float] | None = None,
    label: str = "",
) -> Histogram:
    """NaN-aware histogram with equal-width bins."""
    values = np.asarray(values, dtype=np.float64)
    present = values[~np.isnan(values)]
    if len(present) == 0:
        edges = np.linspace(0.0, 1.0, bins + 1)
        return Histogram(attribute, edges, np.zeros(bins, dtype=np.intp), label)
    counts, edges = np.histogram(present, bins=bins, range=value_range)
    return Histogram(attribute, edges, counts, label)


def quantile_bins(values: np.ndarray, n_bins: int = 4) -> np.ndarray:
    """Quantile bin edges (quartiles for 4, deciles for 10) over non-NaN data."""
    if n_bins < 1:
        raise ValueError("n_bins must be >= 1")
    values = np.asarray(values, dtype=np.float64)
    present = values[~np.isnan(values)]
    if len(present) == 0:
        return np.array([])
    qs = np.linspace(0, 100, n_bins + 1)
    return np.percentile(present, qs)


def grouped_histograms(
    table: Table,
    attribute: str,
    by: str,
    bins: int = 20,
) -> dict[object, Histogram]:
    """Per-group histograms of *attribute*, grouped by column *by*.

    All histograms share one global bin range so they are visually
    comparable — this is what the Figure 4 dashboard shows (EP_H
    distribution per cluster).
    """
    values = table[attribute]
    present = values[~np.isnan(values)]
    if len(present) == 0:
        value_range = (0.0, 1.0)
    else:
        value_range = (float(present.min()), float(present.max()))
    out: dict[object, Histogram] = {}
    for key, idx in table.group_indices(by).items():
        out[key] = histogram(
            values[idx], bins=bins, attribute=attribute,
            value_range=value_range, label=str(key),
        )
    return out
