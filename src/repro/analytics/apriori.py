"""Apriori frequent-itemset mining over categorical EPC attributes.

Association-rule discovery (paper, Section 2.2.2, after Agrawal et al. [1])
"operates on a transactional dataset of categorical attributes": after
discretization, every certificate becomes a transaction of
``attribute=value`` items.  This module mines the frequent itemsets with
the classic Apriori level-wise algorithm:

* candidates of size k+1 are joined from frequent k-itemsets sharing a
  (k-1)-prefix, then pruned by the downward-closure property;
* support counting uses per-item row bitsets (NumPy boolean vectors), so a
  candidate's support is one vectorized AND away;
* items are attribute-qualified, and itemsets never contain two items of
  the same attribute (impossible in single-valued EPC data, so such
  candidates are pruned eagerly).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..dataset.table import ColumnKind, Table

__all__ = ["Item", "ItemsetMiner", "FrequentItemsets", "transactions_from_table"]


@dataclass(frozen=True, order=True)
class Item:
    """One ``attribute=value`` item."""

    attribute: str
    value: str

    def __str__(self) -> str:
        return f"{self.attribute}={self.value}"


def transactions_from_table(table: Table, attributes: list[str]) -> list[list[Item]]:
    """The transaction view of *table* restricted to *attributes*.

    Each row becomes the list of its non-missing ``attribute=value`` items.
    All attributes must be categorical (discretize numerics first).
    """
    for name in attributes:
        if table.kind(name) is ColumnKind.NUMERIC:
            raise ValueError(
                f"attribute {name!r} is numeric; discretize it before mining"
            )
    columns = {name: table[name] for name in attributes}
    transactions: list[list[Item]] = []
    for i in range(table.n_rows):
        row_items = [
            Item(name, str(col[i])) for name, col in columns.items() if col[i] is not None
        ]
        transactions.append(row_items)
    return transactions


@dataclass
class FrequentItemsets:
    """Mining output: itemsets (as sorted tuples of items) with supports."""

    n_transactions: int
    supports: dict[tuple[Item, ...], float] = field(default_factory=dict)

    def support(self, itemset: tuple[Item, ...]) -> float:
        """Support of *itemset* (raises KeyError if it was not frequent)."""
        return self.supports[tuple(sorted(itemset))]

    def of_size(self, k: int) -> list[tuple[Item, ...]]:
        """All frequent itemsets with exactly *k* items."""
        return [s for s in self.supports if len(s) == k]

    def __len__(self) -> int:
        return len(self.supports)


class ItemsetMiner:
    """Level-wise Apriori miner.

    Parameters
    ----------
    min_support:
        Minimum fraction of transactions an itemset must appear in.
    max_length:
        Longest itemset mined (rules of length L need itemsets of size L).
    """

    def __init__(self, min_support: float = 0.05, max_length: int = 4):
        if not 0.0 < min_support <= 1.0:
            raise ValueError(f"min_support must be in (0, 1], got {min_support}")
        if max_length < 1:
            raise ValueError("max_length must be >= 1")
        self.min_support = min_support
        self.max_length = max_length

    def mine(self, transactions: list[list[Item]]) -> FrequentItemsets:
        """Mine all frequent itemsets from *transactions*."""
        n = len(transactions)
        result = FrequentItemsets(n_transactions=n)
        if n == 0:
            return result
        min_count = self.min_support * n

        # per-item presence bitsets
        bitsets: dict[Item, np.ndarray] = {}
        for row, items in enumerate(transactions):
            for item in items:
                if item not in bitsets:
                    bitsets[item] = np.zeros(n, dtype=bool)
                bitsets[item][row] = True

        # L1
        frequent: list[tuple[tuple[Item, ...], np.ndarray]] = []
        for item, bits in sorted(bitsets.items()):
            count = int(bits.sum())
            if count >= min_count:
                itemset = (item,)
                result.supports[itemset] = count / n
                frequent.append((itemset, bits))

        # Lk
        length = 1
        while frequent and length < self.max_length:
            frequent_keys = {itemset for itemset, __ in frequent}
            next_level: list[tuple[tuple[Item, ...], np.ndarray]] = []
            for i in range(len(frequent)):
                set_a, bits_a = frequent[i]
                for j in range(i + 1, len(frequent)):
                    set_b, bits_b = frequent[j]
                    if set_a[:-1] != set_b[:-1]:
                        break  # sorted level: no more shared prefixes
                    last_a, last_b = set_a[-1], set_b[-1]
                    if last_a.attribute == last_b.attribute:
                        continue  # one value per attribute per row
                    candidate = set_a + (last_b,)
                    if not self._all_subsets_frequent(candidate, frequent_keys):
                        continue
                    bits = bits_a & bits_b
                    count = int(bits.sum())
                    if count >= min_count:
                        result.supports[candidate] = count / n
                        next_level.append((candidate, bits))
            next_level.sort(key=lambda pair: pair[0])
            frequent = next_level
            length += 1
        return result

    @staticmethod
    def _all_subsets_frequent(
        candidate: tuple[Item, ...], frequent_keys: set[tuple[Item, ...]]
    ) -> bool:
        """Downward closure: every (k-1)-subset must be frequent.

        Dropping the last element reproduces the left join parent, which is
        frequent by construction; every other drop must be checked.
        """
        for drop in range(len(candidate) - 1):
            subset = candidate[:drop] + candidate[drop + 1 :]
            if subset not in frequent_keys:
                return False
        return True
