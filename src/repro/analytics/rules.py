"""Association rules with the paper's four quality indices.

"An association rule is expressed in the form A -> B, where A and B are
disjoint and non-empty itemsets ... INDICE includes four well-known quality
indices: i) support, ii) confidence, iii) lift, and iv) conviction.
Default thresholds are set by INDICE however the end-user could change the
default values" (paper, Section 2.2.2).

Definitions used (standard, matching the paper's citations):

* ``support(A -> B) = P(A ∪ B)``
* ``confidence(A -> B) = P(A ∪ B) / P(A)``
* ``lift(A -> B) = confidence / P(B)``  (>1 means positive correlation)
* ``conviction(A -> B) = (1 - P(B)) / (1 - confidence)``
  (``inf`` for exact rules, 1 for independent ones)

Template filtering reproduces the paper's "templates to characterize the
attributes": a rule qualifies when its consequent attributes are within the
allowed set (typically the response variable) and its antecedent avoids
excluded attributes.
"""

from __future__ import annotations

import itertools
import math
from dataclasses import dataclass, field

from ..dataset.table import Table
from .apriori import FrequentItemsets, Item, ItemsetMiner, transactions_from_table

__all__ = ["AssociationRule", "RuleConstraints", "RuleTemplate", "RuleMiner", "generate_rules"]


@dataclass(frozen=True)
class AssociationRule:
    """One A -> B rule with its quality indices."""

    antecedent: tuple[Item, ...]
    consequent: tuple[Item, ...]
    support: float
    confidence: float
    lift: float
    conviction: float

    def __str__(self) -> str:
        lhs = ", ".join(str(i) for i in self.antecedent)
        rhs = ", ".join(str(i) for i in self.consequent)
        return f"{{{lhs}}} -> {{{rhs}}}"

    @property
    def length(self) -> int:
        """Total number of items in the rule."""
        return len(self.antecedent) + len(self.consequent)

    def attributes(self) -> set[str]:
        """The attributes referenced anywhere in the rule."""
        return {i.attribute for i in self.antecedent + self.consequent}


@dataclass
class RuleConstraints:
    """Quality-index thresholds (INDICE defaults; all user-tunable)."""

    min_support: float = 0.05
    min_confidence: float = 0.60
    min_lift: float = 1.0
    min_conviction: float = 1.0

    def admits(self, rule: AssociationRule) -> bool:
        """True when the rule satisfies these constraints."""
        return (
            rule.support >= self.min_support
            and rule.confidence >= self.min_confidence
            and rule.lift >= self.min_lift
            and rule.conviction >= self.min_conviction
        )


@dataclass
class RuleTemplate:
    """Structural constraints on which attributes may appear where.

    ``consequent_attributes``: when non-empty, every consequent item must
    belong to one of these attributes (e.g. only the response variable).
    ``antecedent_excludes``: attributes that may never appear on the left.
    ``max_antecedent``: maximum antecedent length.
    """

    consequent_attributes: tuple[str, ...] = ()
    antecedent_excludes: tuple[str, ...] = ()
    max_antecedent: int | None = None

    def admits(self, rule: AssociationRule) -> bool:
        """True when the rule satisfies these constraints."""
        if self.consequent_attributes:
            allowed = set(self.consequent_attributes)
            if not all(i.attribute in allowed for i in rule.consequent):
                return False
        if self.antecedent_excludes:
            banned = set(self.antecedent_excludes)
            if any(i.attribute in banned for i in rule.antecedent):
                return False
        if self.max_antecedent is not None and len(rule.antecedent) > self.max_antecedent:
            return False
        return True


def generate_rules(
    itemsets: FrequentItemsets,
    constraints: RuleConstraints | None = None,
    template: RuleTemplate | None = None,
) -> list[AssociationRule]:
    """All rules derivable from *itemsets* that pass constraints + template.

    Every frequent itemset of size >= 2 is split into all non-empty
    antecedent/consequent partitions.  Confidence needs the antecedent's
    support and lift/conviction the consequent's; both are frequent subsets
    of a frequent itemset, so they are always available.
    """
    constraints = constraints or RuleConstraints()
    rules: list[AssociationRule] = []
    for itemset, support in itemsets.supports.items():
        if len(itemset) < 2:
            continue
        for r in range(1, len(itemset)):
            for antecedent in itertools.combinations(itemset, r):
                consequent = tuple(i for i in itemset if i not in antecedent)
                supp_a = itemsets.supports[tuple(sorted(antecedent))]
                supp_b = itemsets.supports[tuple(sorted(consequent))]
                confidence = support / supp_a
                lift = confidence / supp_b
                conviction = (
                    math.inf if confidence >= 1.0 else (1.0 - supp_b) / (1.0 - confidence)
                )
                rule = AssociationRule(
                    antecedent=antecedent,
                    consequent=consequent,
                    support=support,
                    confidence=confidence,
                    lift=lift,
                    conviction=conviction,
                )
                if constraints.admits(rule) and (template is None or template.admits(rule)):
                    rules.append(rule)
    return rules


@dataclass
class RuleMiner:
    """End-to-end rule mining over a (discretized) table.

    Combines :class:`~repro.analytics.apriori.ItemsetMiner` with rule
    generation, constraint filtering and top-k ranking — the full
    Section 2.2.2 path.
    """

    constraints: RuleConstraints = field(default_factory=RuleConstraints)
    template: RuleTemplate | None = None
    max_length: int = 4

    def mine(self, table: Table, attributes: list[str]) -> list[AssociationRule]:
        """Mine rules from the categorical *attributes* of *table*."""
        transactions = transactions_from_table(table, attributes)
        miner = ItemsetMiner(
            min_support=self.constraints.min_support, max_length=self.max_length
        )
        itemsets = miner.mine(transactions)
        return generate_rules(itemsets, self.constraints, self.template)

    @staticmethod
    def top_k(
        rules: list[AssociationRule], k: int, by: str = "lift"
    ) -> list[AssociationRule]:
        """The *k* best rules by a quality index (``support``, ``confidence``,
        ``lift`` or ``conviction``); ties break toward higher support."""
        if by not in ("support", "confidence", "lift", "conviction"):
            raise ValueError(f"unknown quality index {by!r}")
        return sorted(
            rules, key=lambda r: (getattr(r, by), r.support), reverse=True
        )[:k]
