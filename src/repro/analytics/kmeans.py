"""K-means clustering with SSE-based automatic K selection.

"The partitional K-means cluster algorithm is exploited by INDICE to
identify groups of EPCs characterized by similar properties.  To measure
the similarity between EPCs, the Euclidean distance is computed. ...
INDICE analyses the trend of the SSE (sum of squared error) quality index
to evaluate the cluster cohesion and automatically identify possible good
K values. ... the K value is chosen as the point where the marginal
decrease in the SSE curve is maximized (aka elbow approach)."
(paper, Section 2.2.2.)

This module provides:

* :func:`standardize` — z-score feature scaling (EPC attributes live on
  wildly different scales: m², W/m²K, dimensionless ratios);
* :func:`kmeans` — Lloyd's algorithm with k-means++ seeding and restarts;
* :func:`sse_curve` / :func:`choose_k_elbow` — the SSE trend over a K range
  and the paper's elbow rule;
* :func:`kmeans_auto` — the INDICE entry point: sweep K, pick the elbow,
  return that clustering.

Rows containing NaN in any feature are excluded from fitting and receive
label ``-1``; the caller decides how to treat them (INDICE drops them
during preprocessing anyway).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

__all__ = [
    "KMeansResult",
    "standardize",
    "kmeans",
    "sse_curve",
    "choose_k_elbow",
    "kmeans_auto",
    "UNASSIGNED",
]

#: Label given to rows that could not be clustered (missing features).
UNASSIGNED = -1


@dataclass
class KMeansResult:
    """A fitted K-means clustering.

    ``labels`` is aligned with the input rows (``UNASSIGNED`` for rows with
    missing features); ``centroids`` is ``(k, d)`` in the *fitting* space
    (standardized if the caller standardized); ``sse`` is the sum of squared
    distances of fitted rows to their centroid.
    """

    k: int
    labels: np.ndarray
    centroids: np.ndarray
    sse: float
    n_iterations: int
    converged: bool

    def cluster_sizes(self) -> dict[int, int]:
        """``{cluster_id: n_rows}`` over assigned rows."""
        ids, counts = np.unique(self.labels[self.labels != UNASSIGNED], return_counts=True)
        return {int(i): int(c) for i, c in zip(ids, counts)}

    def cluster_indices(self, cluster_id: int) -> np.ndarray:
        """Row indices belonging to *cluster_id*."""
        return np.flatnonzero(self.labels == cluster_id)


@dataclass
class Standardization:
    """Fitted z-score parameters (kept so new points can be projected)."""

    mean: np.ndarray
    std: np.ndarray

    def transform(self, matrix: np.ndarray) -> np.ndarray:
        """Project *matrix* into the standardized space."""
        return (matrix - self.mean) / self.std

    def inverse(self, matrix: np.ndarray) -> np.ndarray:
        """Map a standardized *matrix* back to the original units."""
        return matrix * self.std + self.mean


def standardize(matrix: np.ndarray) -> tuple[np.ndarray, Standardization]:
    """Z-score each column of an ``(n, d)`` matrix, ignoring NaN.

    Constant columns get std 1 so they standardize to zero rather than NaN.
    Returns the standardized matrix (NaN cells stay NaN) and the fitted
    parameters.
    """
    matrix = np.asarray(matrix, dtype=np.float64)
    mean = np.nanmean(matrix, axis=0)
    std = np.nanstd(matrix, axis=0)
    std = np.where(std == 0, 1.0, std)
    params = Standardization(mean=mean, std=std)
    return params.transform(matrix), params


def _kmeans_plus_plus(points: np.ndarray, k: int, rng: np.random.Generator) -> np.ndarray:
    """k-means++ initial centroids (Arthur & Vassilvitskii 2007)."""
    n = len(points)
    centroids = np.empty((k, points.shape[1]), dtype=np.float64)
    first = int(rng.integers(0, n))
    centroids[0] = points[first]
    closest_sq = np.sum((points - centroids[0]) ** 2, axis=1)
    for i in range(1, k):
        total = closest_sq.sum()
        if total == 0:  # all points identical to chosen centroids
            centroids[i:] = points[int(rng.integers(0, n))]
            break
        probs = closest_sq / total
        chosen = int(rng.choice(n, p=probs))
        centroids[i] = points[chosen]
        dist_sq = np.sum((points - centroids[i]) ** 2, axis=1)
        np.minimum(closest_sq, dist_sq, out=closest_sq)
    return centroids


def _assign(points: np.ndarray, centroids: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Nearest-centroid assignment; returns (labels, squared distances)."""
    # (n, k) squared Euclidean distances without forming (n, k, d)
    sq_norms = np.sum(centroids**2, axis=1)
    cross = points @ centroids.T
    dist_sq = np.maximum(np.sum(points**2, axis=1)[:, None] - 2 * cross + sq_norms, 0.0)
    labels = np.argmin(dist_sq, axis=1)
    return labels, dist_sq[np.arange(len(points)), labels]


def kmeans(
    matrix: np.ndarray,
    k: int,
    max_iterations: int = 300,
    n_init: int = 5,
    seed: int = 0,
) -> KMeansResult:
    """Lloyd's K-means with k-means++ seeding and ``n_init`` restarts.

    The best restart by SSE wins.  Iteration stops when assignments no
    longer change ("the centroids no longer change" in the paper's terms)
    or after *max_iterations*.
    """
    matrix = np.asarray(matrix, dtype=np.float64)
    if matrix.ndim != 2:
        raise ValueError(f"expected an (n, d) matrix, got shape {matrix.shape}")
    if k < 1:
        raise ValueError("k must be >= 1")
    complete = ~np.isnan(matrix).any(axis=1)
    fit_idx = np.flatnonzero(complete)
    if len(fit_idx) < k:
        raise ValueError(f"only {len(fit_idx)} complete rows for k={k}")
    points = matrix[fit_idx]
    rng = np.random.default_rng(seed)

    best: tuple[float, np.ndarray, np.ndarray, int, bool] | None = None
    for __ in range(n_init):
        centroids = _kmeans_plus_plus(points, k, rng)
        labels = np.full(len(points), -1, dtype=np.intp)
        converged = False
        iteration = 0
        for iteration in range(1, max_iterations + 1):
            new_labels, dist_sq = _assign(points, centroids)
            if np.array_equal(new_labels, labels):
                converged = True
                break
            labels = new_labels
            for c in range(k):
                members = points[labels == c]
                if len(members):
                    centroids[c] = members.mean(axis=0)
                else:
                    # re-seed an empty cluster at the worst-fitted point
                    centroids[c] = points[int(np.argmax(dist_sq))]
        __, dist_sq = _assign(points, centroids)
        sse = float(dist_sq.sum())
        if best is None or sse < best[0]:
            best = (sse, labels.copy(), centroids.copy(), iteration, converged)

    sse, labels, centroids, iterations, converged = best
    full_labels = np.full(len(matrix), UNASSIGNED, dtype=np.intp)
    full_labels[fit_idx] = labels
    return KMeansResult(
        k=k,
        labels=full_labels,
        centroids=centroids,
        sse=sse,
        n_iterations=iterations,
        converged=converged,
    )


def sse_curve(
    matrix: np.ndarray,
    k_range: tuple[int, int] = (2, 10),
    seed: int = 0,
    n_init: int = 5,
) -> dict[int, float]:
    """SSE for each K in the inclusive *k_range* (the elbow plot data)."""
    lo, hi = k_range
    if lo < 1 or hi < lo:
        raise ValueError(f"invalid k_range {k_range}")
    return {
        k: kmeans(matrix, k, n_init=n_init, seed=seed).sse for k in range(lo, hi + 1)
    }


def choose_k_elbow(curve: dict[int, float]) -> int:
    """The paper's rule: K where the marginal decrease in SSE is maximized.

    With SSE(k) decreasing, the marginal decrease at k is
    ``SSE(k-1) - SSE(k)``; the chosen K is where the *drop in marginal
    decrease* is largest — i.e. the K after which adding clusters stops
    paying.  Formally we maximize the second difference
    ``(SSE(k-1) - SSE(k)) - (SSE(k) - SSE(k+1))`` over interior K.
    """
    if not curve:
        raise ValueError("empty SSE curve")
    ks = sorted(curve)
    if len(ks) < 3:
        return ks[0]
    second_diff = {
        k: (curve[ks[i - 1]] - curve[k]) - (curve[k] - curve[ks[i + 1]])
        for i, k in enumerate(ks)
        if 0 < i < len(ks) - 1
    }
    return max(second_diff, key=second_diff.get)


@dataclass
class AutoKMeansResult:
    """Result of the automatic-K pipeline: the chosen clustering + the curve."""

    result: KMeansResult
    curve: dict[int, float] = field(default_factory=dict)
    chosen_k: int = 0


def kmeans_auto(
    matrix: np.ndarray,
    k_range: tuple[int, int] = (2, 10),
    seed: int = 0,
    n_init: int = 5,
) -> AutoKMeansResult:
    """Sweep K over *k_range*, choose the elbow, return that clustering."""
    curve = sse_curve(matrix, k_range, seed=seed, n_init=n_init)
    k = choose_k_elbow(curve)
    result = kmeans(matrix, k, n_init=n_init, seed=seed)
    return AutoKMeansResult(result=result, curve=curve, chosen_k=k)
