"""Cluster characterization: turning K-means groups into knowledge.

The paper's goal is "the characterization of the energy performance of
buildings located in different areas" and dashboards that are readable by
non-experts.  A bag of cluster labels is not knowledge; this module turns
a clustering into the human-readable profile the Figure 4 dashboard
narrates:

* per-cluster feature statistics and their **z-deviation** from the
  global mean (which features make this cluster special);
* a categorical composition panel (e.g. dominant construction period);
* an automatic natural-language tag per cluster, built from its most
  deviant features and its response level ("high demand — dispersive
  envelope, inefficient plant").
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field

import numpy as np

from ..dataset.table import ColumnKind, Table

__all__ = ["ClusterProfile", "profile_clusters"]

#: Attribute -> (low-side phrase, high-side phrase) for the tag builder.
_PHRASES = {
    "u_value_opaque": ("well-insulated walls", "dispersive walls"),
    "u_value_windows": ("efficient windows", "dispersive windows"),
    "eta_h": ("inefficient heating plant", "efficient heating plant"),
    "aspect_ratio": ("compact shape", "exposed shape"),
    "heated_surface": ("small units", "large units"),
}


@dataclass
class ClusterProfile:
    """Everything a dashboard says about one cluster."""

    cluster: str
    size: int
    share: float
    feature_means: dict[str, float] = field(default_factory=dict)
    feature_z: dict[str, float] = field(default_factory=dict)
    response_mean: float = float("nan")
    response_level: str = "typical"
    dominant_categories: dict[str, tuple[str, float]] = field(default_factory=dict)
    tag: str = ""

    def distinctive_features(self, threshold: float = 0.5) -> list[tuple[str, float]]:
        """Features whose |z| exceeds *threshold*, most deviant first."""
        out = [(k, z) for k, z in self.feature_z.items() if abs(z) >= threshold]
        return sorted(out, key=lambda kv: -abs(kv[1]))


def _response_level(mean: float, global_mean: float, global_std: float) -> str:
    if np.isnan(mean) or global_std == 0:
        return "typical"
    z = (mean - global_mean) / global_std
    if z <= -0.5:
        return "low demand"
    if z >= 0.5:
        return "high demand"
    return "typical demand"


def _tag(profile: ClusterProfile) -> str:
    reasons = []
    for name, z in profile.distinctive_features(threshold=0.5)[:2]:
        phrases = _PHRASES.get(name)
        if phrases is None:
            continue
        low, high = phrases
        # for eta_h a HIGH value is good, phrase order already encodes it
        reasons.append(high if z > 0 else low)
    if reasons:
        return f"{profile.response_level} — {', '.join(reasons)}"
    return profile.response_level


def profile_clusters(
    table: Table,
    cluster_column: str,
    features: list[str],
    response: str,
    categorical_attributes: list[str] = (),
) -> list[ClusterProfile]:
    """Characterize every cluster of *table*.

    ``table`` must carry the cluster labels as a categorical column (rows
    with a missing label are skipped).  Returns profiles sorted by
    response mean ascending — the order the dashboard lists groups in,
    best-performing first.
    """
    feature_arrays = {name: table[name] for name in features}
    response_values = table[response]
    global_means = {
        name: float(np.nanmean(vals)) for name, vals in feature_arrays.items()
    }
    global_stds = {
        name: float(np.nanstd(vals)) or 1.0 for name, vals in feature_arrays.items()
    }
    response_mean = float(np.nanmean(response_values))
    response_std = float(np.nanstd(response_values)) or 1.0

    groups = table.group_indices(cluster_column)
    groups.pop(None, None)
    n_assigned = sum(len(idx) for idx in groups.values())

    profiles: list[ClusterProfile] = []
    for cluster, idx in groups.items():
        means = {
            name: float(np.nanmean(vals[idx])) for name, vals in feature_arrays.items()
        }
        zs = {
            name: (means[name] - global_means[name]) / global_stds[name]
            for name in features
        }
        cluster_response = float(np.nanmean(response_values[idx]))
        dominant: dict[str, tuple[str, float]] = {}
        for attr in categorical_attributes:
            if attr not in table or table.kind(attr) is ColumnKind.NUMERIC:
                continue
            values = [v for v in table[attr][idx] if v is not None]
            if not values:
                continue
            top, count = Counter(values).most_common(1)[0]
            dominant[attr] = (top, count / len(values))
        profile = ClusterProfile(
            cluster=str(cluster),
            size=len(idx),
            share=len(idx) / n_assigned if n_assigned else 0.0,
            feature_means=means,
            feature_z=zs,
            response_mean=cluster_response,
            response_level=_response_level(cluster_response, response_mean, response_std),
            dominant_categories=dominant,
        )
        profile.tag = _tag(profile)
        profiles.append(profile)
    profiles.sort(key=lambda p: (np.isnan(p.response_mean), p.response_mean))
    return profiles
