"""A minimal dashboard server.

The paper plans "to release our framework INDICE in order to have real
feed-backs from end-users (e.g., citizens, energy experts, public
administration)".  This module is that release surface, kept deliberately
small: a standard-library HTTP server exposing the analyzed collection as

* ``/`` — an index linking every stakeholder's dashboard;
* ``/dashboard/<stakeholder>`` — the navigable multi-zoom dashboard;
* ``/report`` — the plain-language analysis report.

Routing is a pure function (:meth:`DashboardServer.route`), so the whole
surface is unit-testable without sockets; the socket layer is a thin
``http.server`` wrapper.  Dashboards are rendered lazily and cached —
the analysis itself is not re-run per request.

The route function never lets an exception escape: every failure mode —
unknown stakeholder, malformed path, a request arriving before the
analysis has run, an internal rendering error — maps to a well-formed
HTML error page with the right status code.  A public endpoint must not
serve tracebacks.

The production serving tier (:mod:`repro.serving`) builds on the pieces
exported here: :func:`normalize_path` is the one hostile-path policy both
servers share, the ``render_*`` functions are the artifact renderers the
store pre-computes, and :func:`write_payload` is the disconnect-safe
socket write used by every handler.
"""

from __future__ import annotations

from http.server import BaseHTTPRequestHandler, HTTPServer
from urllib.parse import unquote
from xml.sax.saxutils import escape

from .core.engine import Indice
from .core.report import generate_report
from .query.stakeholders import Stakeholder

__all__ = [
    "DashboardServer",
    "normalize_path",
    "render_dashboard",
    "render_index",
    "render_report",
    "write_payload",
]

_HTML = "text/html; charset=utf-8"

_INDEX_TEMPLATE = """<!DOCTYPE html><html><head><meta charset='utf-8'>
<title>INDICE</title><style>
body {{ font-family: sans-serif; margin: 40px; color: #1c2733; }}
a {{ color: #225588; }} li {{ margin: 6px 0; }}
</style></head><body>
<h1>INDICE — {city}</h1>
<p>{n_rows} certificates analyzed. Pick a view:</p>
<ul>{links}</ul>
<p><a href="/report">Plain-language analysis report</a></p>
</body></html>"""

_ERROR_TEMPLATE = """<!DOCTYPE html><html><head><meta charset='utf-8'>
<title>INDICE — {status}</title><style>
body {{ font-family: sans-serif; margin: 40px; color: #1c2733; }}
h1 {{ color: #883333; }} a {{ color: #225588; }}
</style></head><body>
<h1>{status} — {title}</h1>
<p>{message}</p>
<p><a href="/">Back to the index</a></p>
</body></html>"""


def _error_page(status: int, title: str, message: str) -> tuple[int, str, str]:
    """A well-formed error response (status, content type, HTML body)."""
    return status, _HTML, _ERROR_TEMPLATE.format(
        status=status, title=escape(title), message=escape(message)
    )


def normalize_path(raw_path: str) -> str | None:
    """The request path with query/fragment stripped, or None if hostile.

    The one path policy shared by every INDICE server:

    * the query string and fragment never participate in routing;
    * the path must be absolute and free of backslashes, raw control
      characters and raw angle brackets;
    * traversal sequences (``..``) and control characters are rejected
      whether they arrive raw or percent-encoded (``%2e%2e``, ``%00``);
      other escapes are kept literal — there is no filesystem behind the
      routes, and reflected text is always HTML-escaped;
    * trailing slashes are normalized away (``/report/`` == ``/report``).
    """
    path = raw_path.split("?", 1)[0].split("#", 1)[0]
    if not path.startswith("/") or "\\" in path:
        return None
    if any(ord(c) < 0x20 or c in "<>" for c in path):
        return None
    decoded = unquote(path)
    if ".." in decoded or any(ord(c) < 0x20 for c in decoded):
        return None
    return path.rstrip("/") or "/"


def write_payload(stream, payload: bytes) -> bool:
    """Write *payload* to a socket stream, absorbing client disconnects.

    A browser closing the tab mid-response surfaces as
    ``BrokenPipeError`` / ``ConnectionResetError`` on the write; that is
    the client's prerogative, not a server failure, so it must never
    escape into ``http.server``'s handler loop.  Returns whether the
    payload was fully written.
    """
    try:
        stream.write(payload)
        return True
    except (BrokenPipeError, ConnectionResetError):
        return False


# -- artifact renderers -------------------------------------------------------
#
# Pure functions of an analyzed engine; both the lazy per-process server
# below and the pre-rendering artifact store (repro.serving) call these.


def render_index(engine: Indice) -> str:
    """The index page linking every stakeholder dashboard."""
    links = "".join(
        f'<li><a href="/dashboard/{s.value}">'
        f"{escape(s.value.replace('_', ' ').title())} dashboard</a></li>"
        for s in Stakeholder
    )
    return _INDEX_TEMPLATE.format(
        city=escape(engine.config.city),
        n_rows=engine._require_analyzed().table.n_rows,
        links=links,
    )


def render_dashboard(engine: Indice, stakeholder: Stakeholder) -> str:
    """The navigable multi-zoom dashboard of one stakeholder."""
    return engine.build_navigable_dashboard(stakeholder).to_html()


def render_report(engine: Indice) -> str:
    """The plain-language analysis report as a standalone page."""
    markdown = generate_report(engine)
    return (
        "<!DOCTYPE html><html><head><meta charset='utf-8'>"
        "<title>INDICE report</title></head><body>"
        f"<pre style='font-family: sans-serif; white-space: pre-wrap; "
        f"max-width: 80ch; margin: 40px auto;'>{escape(markdown)}</pre>"
        "</body></html>"
    )


class DashboardServer:
    """Serves one :class:`~repro.core.engine.Indice` session.

    The engine does not have to be analyzed yet: requests arriving before
    ``analyze()`` has completed get a 503 page (with ``Retry-After``
    semantics in spirit), so a warming-up deployment degrades to "not
    ready" instead of crashing at construction time.

    This is the single-process development server; production traffic
    goes through :class:`repro.serving.ArtifactServer`, which serves
    pre-rendered immutable bytes from a content-addressed store.
    """

    def __init__(self, engine: Indice):
        self._engine = engine
        self._cache: dict[str, str] = {}

    # -- pure routing -------------------------------------------------------

    def route(self, path: str) -> tuple[int, str, str]:
        """Resolve *path* to ``(status, content_type, body)``.

        Total: every input — including hostile or malformed paths and an
        engine mid-analysis — produces a well-formed page, never an
        uncaught exception.
        """
        try:
            return self._route(path)
        # The catch-all 500 handler is this module's whole contract: a public
        # endpoint maps every failure to a well-formed error page and never
        # leaks a traceback.
        except Exception as exc:  # repro: noqa[EXC001] — catch-all 500, no tracebacks out
            return _error_page(
                500, "internal error",
                f"the server failed to render this page ({type(exc).__name__}); "
                "the analysis session itself is unaffected",
            )

    def _route(self, raw_path: str) -> tuple[int, str, str]:
        path = normalize_path(raw_path)
        if path is None:
            return _error_page(
                400, "malformed path",
                "the request path could not be understood",
            )
        if self._engine._analyzed is None:
            return _error_page(
                503, "analysis not ready",
                "the analysis session has not finished yet; "
                "try again in a moment",
            )
        if path == "/":
            return 200, _HTML, self._index()
        if path == "/report":
            return 200, _HTML, self._report()
        if path.startswith("/dashboard/"):
            name = path.removeprefix("/dashboard/")
            try:
                stakeholder = Stakeholder(name)
            except ValueError:
                return _error_page(
                    404, "unknown stakeholder",
                    f"no dashboard for {name!r}; pick one from the index",
                )
            return 200, _HTML, self._dashboard(stakeholder)
        return _error_page(404, "not found", f"no route for {path!r}")

    # -- content (cached) -----------------------------------------------------

    def _index(self) -> str:
        return render_index(self._engine)

    def _dashboard(self, stakeholder: Stakeholder) -> str:
        key = f"dash:{stakeholder.value}"
        if key not in self._cache:
            self._cache[key] = render_dashboard(self._engine, stakeholder)
        return self._cache[key]

    def _report(self) -> str:
        if "report" not in self._cache:
            self._cache["report"] = render_report(self._engine)
        return self._cache["report"]

    # -- socket layer -----------------------------------------------------------

    def handler_class(self) -> type[BaseHTTPRequestHandler]:
        """The request-handler class bound to this server.

        Exposed separately from :meth:`serve` so tests (and embedders)
        can mount the handler on their own ``HTTPServer`` — an ephemeral
        port, a shared socket — without reimplementing the GET/HEAD
        plumbing.
        """
        server = self

        class Handler(BaseHTTPRequestHandler):
            def do_GET(self):  # noqa: N802 (http.server API)
                self._respond(include_body=True)

            def do_HEAD(self):  # noqa: N802 (http.server API)
                # same status line and headers as the GET, body withheld
                self._respond(include_body=False)

            def _respond(self, include_body: bool) -> None:
                status, content_type, body = server.route(self.path)
                payload = body.encode("utf-8")
                try:
                    self.send_response(status)
                    self.send_header("Content-Type", content_type)
                    self.send_header("Content-Length", str(len(payload)))
                    self.end_headers()
                except (BrokenPipeError, ConnectionResetError):
                    # client went away while we wrote the head
                    self.close_connection = True
                    return
                if include_body and not write_payload(self.wfile, payload):
                    self.close_connection = True

            def log_message(self, fmt, *args):
                print(f"[indice] {self.address_string()} {fmt % args}")

        return Handler

    def serve(self, host: str = "127.0.0.1", port: int = 8350) -> None:
        """Serve forever (Ctrl-C to stop)."""
        with HTTPServer((host, port), self.handler_class()) as httpd:
            print(f"INDICE dashboards at http://{host}:{port}/ (Ctrl-C to stop)")
            httpd.serve_forever()
