"""Columnar shared-memory interchange for the parallel tier.

``ParallelMap.map`` ships every chunk as pickled Python objects: for an
8000-certificate cleaning pass that is megabytes of per-row strings
serialized in the parent, copied through a pipe, and deserialized in each
worker — the serialization tax behind the 2-worker scaling plateau that
A9 measured.  This module replaces the pickle payload with **one**
shared-memory block holding the table in columnar form; workers receive
only a bytes-sized :class:`TableSlice` descriptor ``(shm_name, col_specs,
row_range)`` and decode their row range straight out of the block.

Buffer layout (all parts packed back to back in one block):

* ``NUMERIC`` — the raw little-endian ``float64`` buffer (``NaN`` is
  preserved bit-for-bit, so missing values survive the round trip);
* ``CATEGORICAL`` — dictionary encoding: an ``int32`` code per row
  (``-1`` = missing) plus the vocabulary as ``int64`` offsets into one
  UTF-8 blob.  EPC vocabularies are tiny (energy classes, yes/no flags),
  so the dictionary collapses thousands of repeated strings into a
  4-byte code each — the reason categorical columns ship ~10x smaller
  than their pickled form;
* ``TEXT`` — ``int64`` offsets into a UTF-8 blob plus a ``uint8``
  validity byte per row (``0`` = missing), which keeps ``None``
  distinguishable from the empty string.

Lifecycle contract (PAR003-checked): the **creator** owns the segment —
``create`` then ``close``/``unlink`` in a ``finally`` (or use the
instance as a context manager); an **attacher** copies its slice out and
``close``-es immediately (:func:`attach_slice` does both).  Workers never
unlink: the parent's ``finally`` is the single point that releases the
name, so a crashed worker can never orphan a segment.

Round trip is deterministic and exact: ``decode(encode(column)) ==
column`` under :meth:`Column.__eq__` for every kind, including ``NaN``,
``None`` and non-ASCII street names.
"""

from __future__ import annotations

from dataclasses import dataclass
from multiprocessing import shared_memory

import numpy as np

from ..dataset.table import Column, ColumnKind, Table

__all__ = [
    "ColumnSpec",
    "TableSlice",
    "SharedTable",
    "attach_slice",
    "encode_table",
]

#: Part labels used in :class:`ColumnSpec.parts`.
_F8 = "f8"                # raw float64 values
_CODES = "codes"          # int32 dictionary codes (-1 = missing)
_VOCAB_OFFSETS = "vocab_offsets"  # int64 offsets into the vocab blob
_VOCAB_BLOB = "vocab_blob"        # UTF-8 vocabulary strings
_OFFSETS = "offsets"      # int64 offsets into the text blob (n_rows + 1)
_BLOB = "blob"            # UTF-8 text bytes
_VALIDITY = "validity"    # uint8 per row (0 = missing)


@dataclass(frozen=True)
class ColumnSpec:
    """Where one encoded column lives inside the shared block.

    ``parts`` maps a part label to its ``(byte_offset, byte_length)``
    window; the spec itself is a few dozen bytes when pickled, which is
    the whole point — it replaces the pickled column as IPC payload.
    """

    name: str
    kind: ColumnKind
    parts: tuple[tuple[str, int, int], ...]

    def window(self, label: str) -> tuple[int, int]:
        """The ``(offset, length)`` of part *label*."""
        for part, offset, length in self.parts:
            if part == label:
                return offset, length
        raise KeyError(f"column {self.name!r} has no part {label!r}")


@dataclass(frozen=True)
class TableSlice:
    """A picklable descriptor of a row range inside a shared block."""

    shm_name: str
    col_specs: tuple[ColumnSpec, ...]
    n_rows: int
    row_range: tuple[int, int]


def _encode_utf8(values) -> list[bytes]:
    """UTF-8 bytes per value (missing encodes as empty; validity is
    tracked separately so ``None`` and ``""`` stay distinct)."""
    return [
        b"" if v is None else str(v).encode("utf-8", "surrogatepass")
        for v in values
    ]


def _pack_offsets(encoded: list[bytes]) -> np.ndarray:
    """Cumulative ``int64`` offsets (length ``len(encoded) + 1``)."""
    offsets = np.zeros(len(encoded) + 1, dtype=np.int64)
    np.cumsum([len(b) for b in encoded], out=offsets[1:])
    return offsets


def _column_parts(column: Column) -> list[tuple[str, bytes]]:
    """The raw buffer parts of one column, in spec order."""
    if column.kind is ColumnKind.NUMERIC:
        arr = np.ascontiguousarray(column.values, dtype="<f8")
        return [(_F8, arr.tobytes())]
    values = column.values
    if column.kind is ColumnKind.CATEGORICAL:
        # first-appearance order keeps the dictionary deterministic
        vocab = list(dict.fromkeys(v for v in values if v is not None))
        code_of = {v: i for i, v in enumerate(vocab)}
        codes = np.fromiter(
            (-1 if v is None else code_of[v] for v in values),
            dtype=np.int32, count=len(values),
        )
        vocab_bytes = _encode_utf8(vocab)
        return [
            (_CODES, codes.tobytes()),
            (_VOCAB_OFFSETS, _pack_offsets(vocab_bytes).tobytes()),
            (_VOCAB_BLOB, b"".join(vocab_bytes)),
        ]
    encoded = _encode_utf8(values)
    validity = np.fromiter(
        (0 if v is None else 1 for v in values), dtype=np.uint8, count=len(values)
    )
    return [
        (_OFFSETS, _pack_offsets(encoded).tobytes()),
        (_BLOB, b"".join(encoded)),
        (_VALIDITY, validity.tobytes()),
    ]


def _decode_column(
    spec: ColumnSpec, buf: memoryview, lo: int, hi: int
) -> Column:
    """Decode rows ``[lo, hi)`` of one column, copying out of *buf*."""

    def part(label: str, dtype) -> np.ndarray:
        offset, length = spec.window(label)
        return np.frombuffer(buf, dtype=dtype, offset=offset,
                             count=length // np.dtype(dtype).itemsize)

    if spec.kind is ColumnKind.NUMERIC:
        return Column(spec.name, spec.kind, part(_F8, "<f8")[lo:hi].copy())
    if spec.kind is ColumnKind.CATEGORICAL:
        codes = part(_CODES, np.int32)[lo:hi]
        vocab_offsets = part(_VOCAB_OFFSETS, np.int64)
        blob_lo, blob_len = spec.window(_VOCAB_BLOB)
        blob = bytes(buf[blob_lo : blob_lo + blob_len])
        vocab = [
            blob[vocab_offsets[i] : vocab_offsets[i + 1]].decode(
                "utf-8", "surrogatepass"
            )
            for i in range(len(vocab_offsets) - 1)
        ]
        lookup = np.array([*vocab, None], dtype=object)  # code -1 -> None
        out = lookup[codes] if len(codes) else np.array([], dtype=object)
        return Column(spec.name, spec.kind, out)
    offsets = part(_OFFSETS, np.int64)
    validity = part(_VALIDITY, np.uint8)
    blob_lo, blob_len = spec.window(_BLOB)
    blob = bytes(buf[blob_lo : blob_lo + blob_len])
    values = np.array(
        [
            blob[offsets[i] : offsets[i + 1]].decode("utf-8", "surrogatepass")
            if validity[i]
            else None
            for i in range(lo, hi)
        ],
        dtype=object,
    )
    return Column(spec.name, spec.kind, values)


def encode_table(
    table: Table,
) -> tuple[tuple[ColumnSpec, ...], list[bytes], int]:
    """Encode *table* into its columnar wire form.

    Returns ``(specs, buffers, total_bytes)``: one :class:`ColumnSpec` per
    column, the raw part buffers in offset order (concatenating them
    yields the payload the specs' windows index into), and the payload
    size.  This is the single layout used by both transports — the
    shared-memory block (:class:`SharedTable`) and the on-disk spill file
    (:mod:`repro.perf.spill`) — so a table spilled by one and decoded by
    the other round-trips exactly.
    """
    buffers: list[bytes] = []
    spec_parts: list[list[tuple[str, int, int]]] = []
    cursor = 0
    for name in table.column_names:
        column = table.column(name)
        windows: list[tuple[str, int, int]] = []
        for label, raw in _column_parts(column):
            windows.append((label, cursor, len(raw)))
            buffers.append(raw)
            cursor += len(raw)
        spec_parts.append(windows)
    specs = tuple(
        ColumnSpec(name, table.kind(name), tuple(windows))
        for name, windows in zip(table.column_names, spec_parts)
    )
    return specs, buffers, cursor


class SharedTable:
    """A :class:`Table` encoded into one owned shared-memory block.

    The instance that called :meth:`create` owns the segment: it must
    ``close()`` and ``unlink()`` it (a ``finally`` block or the context
    manager form), after every worker holding a descriptor has finished.
    """

    def __init__(
        self,
        shm: shared_memory.SharedMemory,
        specs: tuple[ColumnSpec, ...],
        n_rows: int,
        nbytes: int,
    ):
        self._shm = shm
        self.specs = specs
        self.n_rows = n_rows
        #: Total encoded payload size (the block may be 1 byte larger for
        #: an empty table: shared memory cannot be zero-sized).
        self.nbytes = nbytes

    @property
    def name(self) -> str:
        """The segment name workers attach to."""
        return self._shm.name

    @classmethod
    def create(cls, table: Table) -> "SharedTable":
        """Encode *table* into a fresh shared-memory block."""
        specs, buffers, cursor = encode_table(table)
        shm = shared_memory.SharedMemory(create=True, size=max(cursor, 1))
        try:
            offset = 0
            for raw in buffers:
                shm.buf[offset : offset + len(raw)] = raw
                offset += len(raw)
            return cls(shm, specs, table.n_rows, cursor)
        except BaseException:
            shm.close()
            shm.unlink()
            raise

    def descriptor(self, row_range: tuple[int, int] | None = None) -> TableSlice:
        """A picklable slice descriptor (default: every row)."""
        lo, hi = row_range if row_range is not None else (0, self.n_rows)
        if not 0 <= lo <= hi <= self.n_rows:
            raise ValueError(
                f"row range {(lo, hi)} outside [0, {self.n_rows}]"
            )
        return TableSlice(self.name, self.specs, self.n_rows, (lo, hi))

    def close(self) -> None:
        """Release this process's mapping (idempotent)."""
        self._shm.close()

    def unlink(self) -> None:
        """Destroy the segment (creator only, after all workers closed)."""
        self._shm.unlink()

    def __enter__(self) -> "SharedTable":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
        self.unlink()


def attach_slice(table_slice: TableSlice) -> Table:
    """Decode the descriptor's row range into a regular :class:`Table`.

    Attaches to the named segment, copies the slice out, and closes the
    mapping before returning — the returned table owns plain arrays, so
    the caller never holds shared-memory references.
    """
    shm = shared_memory.SharedMemory(name=table_slice.shm_name)
    try:
        lo, hi = table_slice.row_range
        return Table(
            [
                _decode_column(spec, shm.buf, lo, hi)
                for spec in table_slice.col_specs
            ]
        )
    finally:
        shm.close()
