"""District/ZIP-keyed sharded execution of the INDICE pipeline.

The monolithic pipeline holds the whole collection (and every
intermediate) in memory and fingerprints it as one blob: a single dirty
row invalidates the world, and the 25k-scale memory ceiling blocks the
million-certificate tier.  This module turns the flow into the G-ETL
shape — extract → per-shard transform → deterministic merge → post-merge
aggregation:

* a :class:`ShardPlan` names the shards (one per Turin district or ZIP
  code, an ``other`` shard for the remaining towns, or ``N`` equal
  parts) and knows how to *extract* each one — either generated
  independently per shard key (:func:`repro.dataset.synthetic
  .generate_epc_shard`) or sliced out of an existing collection;
* the :class:`ShardRunner` cleans each shard with the same
  :class:`~repro.core.engine.Indice` machinery the monolithic path uses
  (same geocoder, same :class:`~repro.perf.parallel.ParallelMap` fan-out)
  and *spills* the cleaned shard to disk in the columnar codec of
  :mod:`repro.perf.spill` — so peak RSS stays bounded by the largest
  shard's working set, never the dataset;
* the global stages (univariate fences, optional DBSCAN, selection,
  K-means / discretization / rules) run on columns gathered back from
  the spills **in original row order**, which is what makes the merged
  output bit-identical (``Table.__eq__``) to the monolithic serial
  pipeline over the same rows;
* every per-shard transform is memoized under the shard-granular key
  ``(config_fingerprint, shard_key, shard_content_hash)``
  (:meth:`StageCache.shard_key`), so editing one district re-runs one
  shard plus the cheap post-merge stages only; the cache's
  ``shard_hits``/``shard_misses`` land in the provenance log.

Equivalence caveat: the geocoder quota is metered *per cleaning pass*,
so a sharded run gives each shard a fresh quota.  When the quota never
binds (the normal case) per-row cleaning is a pure function and sharded
output is bit-identical; a quota exhausted mid-shard is a logged
degradation in either mode, exactly like the monolithic path.
"""

from __future__ import annotations

import tempfile
import time
from dataclasses import dataclass, field, replace
from pathlib import Path

import numpy as np

from ..core.engine import Indice, PreprocessingOutcome, _PREPROCESS_FIELDS
from ..dataset.noise import NoiseConfig, apply_noise
from ..dataset.synthetic import (
    EpcCollection,
    ShardRecipe,
    SyntheticConfig,
    generate_epc_shard,
    generate_street_map,
    plan_generation_shards,
    shard_seed_sequence,
)
from ..dataset.table import Column, ColumnKind, Table
from ..faults.plan import InjectedIOError, TransientServiceError
from ..faults.policy import retry_with_backoff
from ..preprocessing.address_cleaner import CleaningReport
from ..preprocessing.dbscan import dbscan
from ..preprocessing.kdistance import estimate_dbscan_params
from ..preprocessing.outliers import OutlierResult, detect_outliers
from ..analytics.kmeans import standardize
from .cache import StageCache, fingerprint_table, fingerprint_value
from .spill import SpillError, SpillFile, write_spill

__all__ = [
    "ShardPlan",
    "ShardRunner",
    "ShardSpec",
    "ShardStat",
    "ShardedOutcome",
]


@dataclass(frozen=True)
class ShardSpec:
    """One shard of a plan: identity plus where its rows live globally.

    ``base`` is the shard's offset in the merged (original) row order;
    generator shards occupy ``[base, base + n_rows)``, partition shards
    carry their explicit original ``rows`` instead.
    """

    key: str
    n_rows: int
    base: int
    rows: np.ndarray | None = None
    recipe: ShardRecipe | None = None

    def original_rows(self) -> np.ndarray:
        """The merged-order row indices this shard owns."""
        if self.rows is not None:
            return self.rows
        return np.arange(self.base, self.base + self.n_rows, dtype=np.intp)


@dataclass
class ShardStat:
    """What one shard's transform cost (for the outcome and the log)."""

    key: str
    rows: int
    cache_hit: bool
    elapsed_s: float
    spill_bytes: int
    degradations: int = 0


@dataclass
class ShardedOutcome:
    """What :meth:`Indice.run_sharded` produced."""

    preprocessing: PreprocessingOutcome
    analytics: "object"  # AnalyticsOutcome (typed loosely to avoid re-import)
    shard_stats: list[ShardStat] = field(default_factory=list)
    spill_dir: str = ""
    #: The column projection the merge materialized (None = every column).
    columns: tuple[str, ...] | None = None


@dataclass
class _ShardRecord:
    """The picklable per-shard cache entry: where the cleaned bytes live.

    Deliberately tiny — the cleaned rows themselves stay in the spill
    file the record points at; a warm hit revalidates the spill (magic,
    size, payload checksum) before trusting it, so a deleted or corrupted
    spill degrades to an ordinary miss, never to wrong data.
    """

    key: str
    spill_name: str
    n_rows: int
    sha256: str
    city_rows: int
    resolution_rate: float
    geocoder_requests: int


class ShardPlan:
    """A deterministic decomposition of one collection into shards.

    Build one with :meth:`from_generator` (shards are *generated*
    independently per key — the million-certificate path) or
    :meth:`from_collection` (an existing in-memory table is partitioned
    by district / ZIP / count).  The plan owns everything the runner
    needs: the shard specs in merge order, the shared street map and
    hierarchy, and the per-shard extraction and fingerprinting logic.
    """

    def __init__(
        self,
        collection: EpcCollection,
        shards: tuple[ShardSpec, ...],
        scheme: str,
        generator: SyntheticConfig | None = None,
        noise: NoiseConfig | None = None,
        columns: tuple[str, ...] | None = None,
    ):
        self.collection = collection
        self.shards = shards
        self.scheme = scheme
        self.generator = generator
        self.noise = noise
        #: Optional column projection for the merged analytics table.
        #: ``None`` materializes every column (bit-identical to the
        #: monolithic pipeline); a narrow tuple bounds merge memory for
        #: million-row runs (it must cover the analysis + dashboard
        #: columns the downstream stages read).
        self.columns = columns

    @property
    def n_rows(self) -> int:
        """Total rows across every shard."""
        return sum(spec.n_rows for spec in self.shards)

    @classmethod
    def from_generator(
        cls,
        config: SyntheticConfig | None,
        by: str | int,
        noise: NoiseConfig | None = None,
        columns: tuple[str, ...] | None = None,
    ) -> "ShardPlan":
        """Plan sharded *generation*: every shard extracted from its key.

        *noise* (when given) dirties each shard with a seed derived from
        ``(noise.seed, shard key)``, so a shard's dirty bytes are as
        independent and reproducible as its clean ones.
        """
        cfg = config or SyntheticConfig()
        recipes = plan_generation_shards(cfg, by)
        street_map, hierarchy = generate_street_map(
            seed=cfg.seed,
            streets_per_neighbourhood=cfg.streets_per_neighbourhood,
        )
        # a zero-row recipe yields the full wide schema with shared maps:
        # the engine wants a collection even though rows arrive per shard
        base = generate_epc_shard(
            cfg, ShardRecipe("schema", 0, 0), street_map, hierarchy
        )
        specs = []
        offset = 0
        for recipe in recipes:
            specs.append(
                ShardSpec(
                    key=recipe.key,
                    n_rows=recipe.n_certificates,
                    base=offset,
                    recipe=recipe,
                )
            )
            offset += recipe.n_certificates
        scheme = by if isinstance(by, str) else str(by)
        return cls(
            base, tuple(specs), scheme,
            generator=cfg, noise=noise, columns=columns,
        )

    @classmethod
    def from_collection(
        cls,
        collection: EpcCollection,
        by: str | int,
        columns: tuple[str, ...] | None = None,
    ) -> "ShardPlan":
        """Plan sharding of an existing in-memory collection.

        ``"by-district"`` / ``"by-zip"`` group rows on the named column
        (missing values form their own ``other`` shard); an integer cuts
        the table into that many contiguous near-equal parts.  Any
        partitioning merges back to the same original row order, so the
        choice is purely a locality/caching decision.
        """
        table = collection.table
        n = table.n_rows
        if isinstance(by, int) or (isinstance(by, str) and by.isdigit()):
            count = max(1, int(by))
            bounds = [round(i * n / count) for i in range(count + 1)]
            specs = tuple(
                ShardSpec(
                    key=f"part:{i:02d}",
                    n_rows=bounds[i + 1] - bounds[i],
                    base=bounds[i],
                    rows=np.arange(bounds[i], bounds[i + 1], dtype=np.intp),
                )
                for i in range(count)
            )
            return cls(collection, specs, str(count), columns=columns)
        if by in ("by-district", "district"):
            column = "district"
        elif by in ("by-zip", "zip"):
            column = "zip_code"
        else:
            raise ValueError(
                f"unknown shard scheme {by!r}; use 'by-district', 'by-zip' "
                "or a shard count"
            )
        groups = table.group_indices(column)
        keys = sorted((k for k in groups if k is not None), key=str)
        specs = []
        for key in keys:
            rows = np.asarray(groups[key], dtype=np.intp)
            specs.append(
                ShardSpec(
                    key=f"{column}:{key}", n_rows=len(rows),
                    base=int(rows[0]) if len(rows) else 0, rows=rows,
                )
            )
        if None in groups:
            rows = np.asarray(groups[None], dtype=np.intp)
            specs.append(
                ShardSpec(
                    key="other", n_rows=len(rows),
                    base=int(rows[0]) if len(rows) else 0, rows=rows,
                )
            )
        return cls(collection, tuple(specs), str(by), columns=columns)

    # -- extraction ------------------------------------------------------

    def _shard_noise(self, key: str) -> NoiseConfig | None:
        """The per-shard noise config (seed derived from the shard key).

        Mixing the base noise seed and the shard key through the same
        :func:`shard_seed_sequence` the generator uses keeps a shard's
        dirty bytes independent of every other shard and stable across
        runs.
        """
        if self.noise is None:
            return None
        mixer = np.random.default_rng(
            shard_seed_sequence(self.noise.seed, key)
        )
        return replace(self.noise, seed=int(mixer.integers(0, 2**31)))

    def extract(self, spec: ShardSpec) -> Table:
        """Materialize one shard's input rows (generate or slice)."""
        if spec.recipe is not None:
            assert self.generator is not None
            shard = generate_epc_shard(
                self.generator, spec.recipe,
                self.collection.street_map, self.collection.hierarchy,
            )
            noise = self._shard_noise(spec.key)
            if noise is not None:
                return apply_noise(shard, noise).table
            return shard.table
        return self.collection.table.take(spec.original_rows())

    def shard_fingerprint(self, spec: ShardSpec, table: Table | None) -> str:
        """The shard's content hash for the shard-granular cache key.

        Generator shards are content-addressed by their *recipe* (the
        generation is deterministic, so the recipe **is** the content),
        which lets a warm run skip even the extraction.  Partition shards
        hash the extracted rows.
        """
        if spec.recipe is not None:
            return fingerprint_value(
                {
                    "generator": self.generator,
                    "recipe": spec.recipe,
                    "noise": self._shard_noise(spec.key),
                }
            )
        assert table is not None
        return fingerprint_table(table)

    def merged_input_table(self) -> Table:
        """The monolithic-equivalent input (all shards, original order).

        This is what the equivalence tests feed the monolithic serial
        pipeline; production runs never materialize it.
        """
        tables = [self.extract(spec) for spec in self.shards]
        merged = tables[0]
        for other in tables[1:]:
            merged = merged.vstack(other)
        order = np.argsort(
            np.concatenate([spec.original_rows() for spec in self.shards]),
            kind="stable",
        )
        return merged.take(order)


class _SpillPool:
    """An LRU of open spill maps bounding resident shards during merge.

    At most *max_open* :class:`SpillFile` handles stay mapped at once;
    column reads re-open evicted shards on demand (a header parse — the
    payload itself is only touched per requested column).  Always close
    the pool (``with`` / ``finally``): it owns every handle it opened.
    """

    def __init__(self, paths: dict[str, Path], max_open: int, injector=None):
        self._paths = paths
        self._max = max(1, max_open)
        self._injector = injector
        self._open: dict[str, SpillFile] = {}

    def handle(self, key: str) -> SpillFile:
        """The (possibly re-opened) spill of shard *key*, LRU-refreshed."""
        spill = self._open.pop(key, None)
        if spill is None:
            spill = SpillFile.open(self._paths[key], self._injector)
            try:
                while len(self._open) >= self._max:
                    oldest = next(iter(self._open))
                    self._open.pop(oldest).close()
            except BaseException:
                spill.close()
                raise
        self._open[key] = spill
        return spill

    def close(self) -> None:
        """Close every resident handle (idempotent)."""
        for spill in self._open.values():
            spill.close()
        self._open.clear()

    def __enter__(self) -> "_SpillPool":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


class ShardRunner:
    """Execute one :class:`ShardPlan` through an :class:`Indice` engine.

    The runner borrows the engine's config, cache, executor, fault
    injector and provenance log, so a sharded run reads exactly like a
    monolithic one in the log — plus the per-shard transform records and
    the shard-cache counters.
    """

    def __init__(self, engine: Indice, plan: ShardPlan):
        if plan.collection.street_map is not engine.collection.street_map:
            raise ValueError(
                "plan and engine must share one street map; build the "
                "engine from plan.collection"
            )
        self.engine = engine
        self.plan = plan

    # -- per-shard transform ----------------------------------------------

    def _spill_paths(self, spill_dir: Path, records: list[_ShardRecord]) -> dict[str, Path]:
        return {rec.key: spill_dir / rec.spill_name for rec in records}

    def _validate_spill(self, record: _ShardRecord, spill_dir: Path) -> bool:
        """Whether a warm record's spill is present and checksum-clean."""
        path = spill_dir / record.spill_name
        try:
            spill = SpillFile.open(path, self.engine.injector)
            try:
                spill.verify()
            finally:
                spill.close()
        except (SpillError, OSError):
            return False
        return True

    def _transform_shard(
        self, spec: ShardSpec, config_fp: str, spill_dir: Path
    ) -> tuple[_ShardRecord, ShardStat, str]:
        """Clean one shard and spill it, or reuse the warm spill.

        The cache key is ``(preprocess-config fingerprint, shard key,
        shard content hash)``; a record only counts as a hit when its
        spill file still verifies, so cache state and spill state can
        never disagree silently.  Returns the shard's content
        fingerprint too — :meth:`run` folds the ordered fingerprints
        into the post-merge memo key.
        """
        engine = self.engine
        cache = engine.cache
        started = time.perf_counter()
        table: Table | None = None
        if spec.recipe is None:
            table = self.plan.extract(spec)
        content_fp = self.plan.shard_fingerprint(spec, table)
        cache_key = None
        if cache is not None:
            cache_key = cache.shard_key(
                "preprocess", config_fp, spec.key, content_fp
            )
            found, record = engine._cache_get("sharding", cache_key)
            if found and self._validate_spill(record, spill_dir):
                cache.count_shard_hit()
                elapsed = time.perf_counter() - started
                stat = ShardStat(
                    spec.key, record.n_rows, True, elapsed,
                    (spill_dir / record.spill_name).stat().st_size,
                )
                return record, stat, content_fp
            cache.count_shard_miss()
        if table is None:
            table = self.plan.extract(spec)
        cleaned, report, city_rows = engine._clean_city_rows(table)
        spill_name = f"{cache_key or fingerprint_value((config_fp, spec.key, content_fp))[:32]}.spill"
        path = spill_dir / spill_name
        # a transiently failing spill write is retried against a
        # still-consistent world (the write is atomic), so a retry can
        # never duplicate or drop rows — re-spilling is idempotent
        retry = engine.config.resilience.retry_policy(seed=engine.config.seed)
        spill_bytes = retry_with_backoff(
            lambda: write_spill(cleaned, path, engine.injector),
            policy=retry,
            retry_on=(TransientServiceError, InjectedIOError),
        )
        record = _ShardRecord(
            key=spec.key,
            spill_name=spill_name,
            n_rows=cleaned.n_rows,
            sha256="",
            city_rows=len(city_rows),
            resolution_rate=report.resolution_rate(),
            geocoder_requests=report.geocoder_requests,
        )
        output_degraded = any(
            d["kind"].startswith("geocoder_") for d in report.degradations
        )
        if cache_key is not None and not output_degraded:
            engine._cache_put("sharding", cache_key, record)
        elapsed = time.perf_counter() - started
        stat = ShardStat(
            spec.key, cleaned.n_rows, False, elapsed, spill_bytes,
            degradations=len(report.degradations),
        )
        return record, stat, content_fp

    # -- merge-side gathers ----------------------------------------------

    def _gather_full_numeric(
        self, pool: _SpillPool, name: str, total: int
    ) -> np.ndarray:
        """One numeric column over every row, in original row order."""
        out = np.empty(total, dtype=np.float64)
        for spec in self.plan.shards:
            column = pool.handle(spec.key).column(name)
            out[spec.original_rows()] = column.values
        return out

    def _gather_selected(
        self,
        pool: _SpillPool,
        name: str,
        keep: np.ndarray,
        kept_sorted: np.ndarray,
    ) -> Column:
        """One column over the kept rows only, in original row order.

        *kept_sorted* is ``np.flatnonzero(keep)`` — the kept original
        indices in ascending order; each shard scatters its surviving
        values into their rank positions, so the result is exactly the
        monolithic ``column[keep]``.
        """
        kind = None
        out: np.ndarray | None = None
        for spec in self.plan.shards:
            spill = pool.handle(spec.key)
            column = spill.column(name)
            if out is None:
                kind = column.kind
                out = (
                    np.empty(len(kept_sorted), dtype=np.float64)
                    if kind is ColumnKind.NUMERIC
                    else np.empty(len(kept_sorted), dtype=object)
                )
            orig = spec.original_rows()
            inside = keep[orig]
            if inside.any():
                positions = np.searchsorted(kept_sorted, orig[inside])
                out[positions] = column.values[inside]
        assert out is not None and kind is not None
        return Column(name, kind, out)

    # -- the full sharded pipeline ----------------------------------------

    def run(self) -> ShardedOutcome:
        """extract → per-shard transform → merge → post-merge analytics."""
        engine = self.engine
        cfg = engine.config
        log = engine.log
        plan = self.plan
        total = plan.n_rows
        started = time.perf_counter()
        deadline = engine._stage_deadline()
        if cfg.spill_dir:
            spill_dir = Path(cfg.spill_dir)
            spill_dir.mkdir(parents=True, exist_ok=True)
        else:
            spill_dir = Path(tempfile.mkdtemp(prefix="repro-shards-"))
        log.record(
            "sharding", "plan",
            scheme=plan.scheme, shards=len(plan.shards), rows=total,
            spill_dir=str(spill_dir),
            max_resident_shards=cfg.max_resident_shards,
        )
        config_fp = engine._config_fingerprint(_PREPROCESS_FIELDS)

        records: list[_ShardRecord] = []
        stats: list[ShardStat] = []
        content_fps: list[str] = []
        for spec in plan.shards:
            record, stat, content_fp = self._transform_shard(
                spec, config_fp, spill_dir
            )
            records.append(record)
            stats.append(stat)
            content_fps.append(content_fp)
            log.record(
                "sharding", "shard_transform",
                shard=spec.key, rows=stat.rows, cache_hit=stat.cache_hit,
                elapsed_s=stat.elapsed_s, spill_bytes=stat.spill_bytes,
                resolution_rate=round(record.resolution_rate, 4),
            )
        if engine.cache is not None:
            log.record(
                "sharding", "shard_cache",
                hits=engine.cache.shard_hits,
                misses=engine.cache.shard_misses,
            )

        # post-merge memo: the merged outcome is a pure function of
        # (preprocess config, ordered shard contents, merge projection),
        # so when no shard's content changed the fences / DBSCAN / gather
        # phase is skipped entirely — editing one district re-runs one
        # shard plus the post-merge stages only, and re-running with
        # nothing edited re-runs nothing
        merge_key = None
        if engine.cache is not None:
            merge_key = StageCache.key(
                "sharded_merge",
                config_fp,
                fingerprint_value(
                    {
                        "scheme": plan.scheme,
                        "columns": (
                            list(plan.columns)
                            if plan.columns is not None
                            else None
                        ),
                        "shards": [
                            [spec.key, fp]
                            for spec, fp in zip(plan.shards, content_fps)
                        ],
                    }
                ),
            )
            found, cached = engine._cache_get("sharding", merge_key)
            if found:
                elapsed = time.perf_counter() - started
                log.record(
                    "sharding", "merge_cache",
                    hit=True, key=merge_key, elapsed_s=elapsed,
                )
                engine._preprocessed = cached
                selected = engine.select_case_study(table=cached.table)
                analytics = engine.analyze(table=selected)
                return ShardedOutcome(
                    preprocessing=cached,
                    analytics=analytics,
                    shard_stats=stats,
                    spill_dir=str(spill_dir),
                    columns=plan.columns,
                )

        paths = self._spill_paths(spill_dir, records)
        analysis_attributes = tuple(cfg.features) + (cfg.response,)
        keep = np.ones(total, dtype=bool)
        univariate: dict[str, OutlierResult] = {}
        merge_started = time.perf_counter()
        with _SpillPool(paths, cfg.max_resident_shards, engine.injector) as pool:
            # global univariate fences: the full column in original row
            # order is exactly what the monolithic pass sees, so fences
            # (and therefore the kept-row set) are bit-identical
            for name in analysis_attributes:
                method, params = cfg.outlier_overrides.get(
                    name, (cfg.outlier_method, cfg.outlier_params)
                )
                values = self._gather_full_numeric(pool, name, total)
                result = detect_outliers(values, method, **params)
                univariate[name] = result
                keep &= ~result.mask
                log.record(
                    "preprocessing", "univariate_outliers",
                    attribute=name, method=method.value,
                    flagged=result.n_outliers,
                )
            kept_sorted = np.flatnonzero(keep)

            noise_mask = None
            if cfg.run_multivariate_outliers and deadline.expired():
                log.record(
                    "preprocessing", "degradation",
                    kind="deadline_exceeded",
                    detail="stage budget spent; multivariate outlier pass "
                    "skipped (univariate filtering already applied)",
                    budget_s=cfg.resilience.stage_timeout_s,
                )
            elif cfg.run_multivariate_outliers:
                matrix = np.column_stack(
                    [
                        self._gather_selected(
                            pool, name, keep, kept_sorted
                        ).values
                        for name in cfg.features
                    ]
                ) if len(kept_sorted) else np.empty((0, len(cfg.features)))
                matrix, __ = standardize(matrix)
                estimate = estimate_dbscan_params(matrix)
                result = dbscan(matrix, estimate.eps, estimate.min_points)
                complete = ~np.isnan(matrix).any(axis=1)
                noise_mask = result.noise_mask & complete
                kept_sorted = kept_sorted[~noise_mask]
                keep = np.zeros(total, dtype=bool)
                keep[kept_sorted] = True
                log.record(
                    "preprocessing", "multivariate_outliers",
                    eps=round(estimate.eps, 4),
                    min_points=estimate.min_points,
                    flagged=int(noise_mask.sum()),
                )

            # deterministic ordered merge: only the configured columns are
            # ever resident, and only their kept rows
            first = pool.handle(plan.shards[0].key)
            names = (
                list(plan.columns)
                if plan.columns is not None
                else first.column_names
            )
            merged = Table(
                [
                    self._gather_selected(pool, name, keep, kept_sorted)
                    for name in names
                ]
            )
        merge_elapsed = time.perf_counter() - merge_started
        log.record(
            "sharding", "merge",
            rows_in=total, rows_out=merged.n_rows, columns=len(names),
            elapsed_s=merge_elapsed,
        )

        report = CleaningReport(
            table=merged.take(np.empty(0, dtype=np.intp)),
            geocoder_requests=sum(r.geocoder_requests for r in records),
        )
        preprocessing = PreprocessingOutcome(
            table=merged,
            cleaning_report=report,
            univariate_outliers=univariate,
            multivariate_noise=noise_mask,
            n_rows_in=total,
            n_rows_out=merged.n_rows,
            quality=None,
        )
        engine._preprocessed = preprocessing
        # a degraded merge (deadline-skipped DBSCAN, degraded shards) is
        # not a pure function of the inputs — never memoize it
        merge_degraded = (
            cfg.run_multivariate_outliers and noise_mask is None
        ) or any(stat.degradations for stat in stats)
        if merge_key is not None and not merge_degraded:
            engine._cache_put("sharding", merge_key, preprocessing)
        elapsed = time.perf_counter() - started
        log.record(
            "preprocessing", "stage_complete",
            elapsed_s=elapsed,
            rows_per_s=total / elapsed if elapsed > 0 else None,
            rows_in=total, rows_out=merged.n_rows,
        )

        # post-merge aggregation: the ordinary selection + analytics
        # stages over the merged table — same code, same caches, same log
        selected = engine.select_case_study(table=merged)
        analytics = engine.analyze(table=selected)
        return ShardedOutcome(
            preprocessing=preprocessing,
            analytics=analytics,
            shard_stats=stats,
            spill_dir=str(spill_dir),
            columns=plan.columns,
        )
