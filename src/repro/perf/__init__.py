"""Performance layer: parallel execution and stage-level artifact caching.

The INDICE pipeline must serve interactive dashboards over regional EPC
collections, so the hot tiers get two generic accelerators:

* :class:`~repro.perf.parallel.ParallelMap` — a process-pool executor with
  chunked sharding, per-worker initialized state and a serial fallback, used
  to fan the Levenshtein-heavy address resolution out across cores; its
  ``map_table`` path ships whole tables through one columnar shared-memory
  block (:mod:`repro.perf.shm`) instead of pickled row chunks;
* :class:`~repro.perf.cache.StageCache` — a content-hash memo for whole
  pipeline stages, keyed on (table fingerprint, config fingerprint), so
  repeated dashboard builds and the navigable drill-down never re-run
  cleaning or clustering.

Both are dependency-free (stdlib + NumPy) and deterministic: parallel and
cached paths return bit-identical results to the serial, uncached ones.
"""

from .cache import (
    StageCache,
    fingerprint_config,
    fingerprint_table,
    fingerprint_value,
)
from .parallel import ParallelMap
from .shm import ColumnSpec, SharedTable, TableSlice, attach_slice

__all__ = [
    "ColumnSpec",
    "ParallelMap",
    "SharedTable",
    "StageCache",
    "TableSlice",
    "attach_slice",
    "fingerprint_config",
    "fingerprint_table",
    "fingerprint_value",
]
