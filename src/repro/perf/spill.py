"""On-disk columnar spill files for the out-of-core sharded pipeline.

A :class:`~repro.perf.shards.ShardRunner` keeps peak RSS bounded by the
working set of a single shard: every cleaned shard is *spilled* to disk
and only re-materialized (whole, or one column at a time) when the merge
or the post-merge analytics needs it.  The file payload is the exact
columnar wire form of :func:`repro.perf.shm.encode_table` — the same
NUMERIC/CATEGORICAL/TEXT part layout the shared-memory transport uses —
so a table round-trips bit-identically through either transport.

File layout::

    b"RSPILL1\\n"               magic (8 bytes)
    uint64 little-endian        header length H
    H bytes of UTF-8 JSON       {n_rows, payload_bytes, sha256, columns}
    payload                     the concatenated column parts

``columns`` lists ``[name, kind, [[part, offset, length], ...]]`` per
column with offsets relative to the payload start, which is what makes
column-projection reads possible: decoding one column touches only that
column's byte windows of the memory-mapped payload.

Lifecycle contract (PAR004-checked): :meth:`SpillFile.open` hands back an
open file handle plus a memory map; the caller must ``close()`` it in a
``finally`` block, a re-raising ``except`` handler, or a ``with``
statement — a leaked map pins the spill file's pages for the life of the
process.  Writes are atomic (unique temp file + ``os.replace``), so a
crashed writer can never leave a half-written spill under the final name.

Failure story: truncated or corrupted files raise :class:`SpillError` at
open or decode time — never silently wrong data — and the sharded runner
treats that exactly like a cache miss: the shard is recomputed and
re-spilled.  The ``dataset.read`` / ``dataset.write`` fault sites make
both paths chaos-testable.
"""

from __future__ import annotations

import hashlib
import json
import mmap
import os
import struct
import tempfile
from pathlib import Path

from ..dataset.table import ColumnKind, Table
from ..faults.plan import DATASET_READ, DATASET_WRITE, FaultInjector, FaultKind
from .shm import ColumnSpec, _decode_column, encode_table

__all__ = ["SpillError", "SpillFile", "write_spill"]

#: File magic: spill format, version 1.
_MAGIC = b"RSPILL1\n"

#: ``<Q``: the uint64 little-endian header-length field after the magic.
_LEN_STRUCT = struct.Struct("<Q")


class SpillError(RuntimeError):
    """A spill file is missing, truncated, corrupted, or mis-versioned."""


def write_spill(
    table: Table, path: str | Path, injector: FaultInjector | None = None
) -> int:
    """Spill *table* to *path* atomically; returns the file size in bytes.

    The write goes to a unique temp file in the target directory first and
    is published with ``os.replace``, so readers can never observe a
    partial spill.  *injector* (when armed at ``dataset.write``) can raise
    an injected I/O failure before any byte is written — the caller's
    retry then re-runs a still-consistent world.
    """
    if injector is not None:
        injector.fire(DATASET_WRITE)
    specs, buffers, payload_bytes = encode_table(table)
    digest = hashlib.sha256()
    for raw in buffers:
        digest.update(raw)
    header = json.dumps(
        {
            "n_rows": table.n_rows,
            "payload_bytes": payload_bytes,
            "sha256": digest.hexdigest(),
            "columns": [
                [spec.name, spec.kind.value, [list(p) for p in spec.parts]]
                for spec in specs
            ],
        },
        sort_keys=True,
    ).encode("utf-8")
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    fd, tmp_name = tempfile.mkstemp(dir=path.parent, prefix=f"{path.name}.", suffix=".tmp")
    try:
        with os.fdopen(fd, "wb") as handle:
            handle.write(_MAGIC)
            handle.write(_LEN_STRUCT.pack(len(header)))
            handle.write(header)
            for raw in buffers:
                handle.write(raw)
        os.replace(tmp_name, path)
    except BaseException:
        try:
            os.unlink(tmp_name)
        except OSError:
            pass
        raise
    return len(_MAGIC) + _LEN_STRUCT.size + len(header) + payload_bytes


class SpillFile:
    """A spilled table, memory-mapped for column-projection reads.

    The instance returned by :meth:`open` owns an open file descriptor and
    a read-only memory map; the caller must :meth:`close` it on every path
    (``finally`` / re-raising ``except`` / ``with`` — the PAR004
    contract).  Decoding copies the requested rows out of the map, so
    returned tables stay valid after ``close()``.
    """

    def __init__(
        self,
        path: Path,
        handle,
        mapped: mmap.mmap,
        payload: memoryview,
        specs: tuple[ColumnSpec, ...],
        n_rows: int,
        sha256: str,
    ):
        self.path = path
        self._handle = handle
        self._mapped = mapped
        self._payload: memoryview | None = payload
        self.specs = specs
        self.n_rows = n_rows
        self.sha256 = sha256

    @classmethod
    def open(
        cls, path: str | Path, injector: FaultInjector | None = None
    ) -> "SpillFile":
        """Map the spill at *path*, validating magic, header and size.

        Raises :class:`SpillError` on any structural problem (missing,
        truncated, corrupted, wrong version) so callers can treat a bad
        spill exactly like a cache miss.  *injector* (armed at
        ``dataset.read``) can turn the open into an injected I/O error or
        hand the parser deterministically mangled header bytes.
        """
        path = Path(path)
        try:
            handle = path.open("rb")
        except OSError as exc:
            raise SpillError(f"spill {path} unreadable: {exc}") from exc
        try:
            prefix = handle.read(len(_MAGIC) + _LEN_STRUCT.size)
            if injector is not None:
                kind = injector.arrive(DATASET_READ)
                if kind is FaultKind.IO_ERROR:
                    raise SpillError(
                        f"spill {path}: injected I/O failure on read"
                    )
                if kind is not None:
                    prefix = FaultInjector.mangle(prefix, kind)
            if len(prefix) < len(_MAGIC) + _LEN_STRUCT.size:
                raise SpillError(f"spill {path} truncated before header")
            if prefix[: len(_MAGIC)] != _MAGIC:
                raise SpillError(f"spill {path} has wrong magic/version")
            (header_len,) = _LEN_STRUCT.unpack(prefix[len(_MAGIC) :])
            header_raw = handle.read(header_len)
            if len(header_raw) < header_len:
                raise SpillError(f"spill {path} truncated inside header")
            try:
                header = json.loads(header_raw.decode("utf-8"))
                specs = tuple(
                    ColumnSpec(
                        name,
                        ColumnKind(kind),
                        tuple((label, off, length) for label, off, length in parts),
                    )
                    for name, kind, parts in header["columns"]
                )
                n_rows = int(header["n_rows"])
                payload_bytes = int(header["payload_bytes"])
                sha256 = str(header["sha256"])
            except (ValueError, KeyError, TypeError, UnicodeDecodeError) as exc:
                raise SpillError(f"spill {path} header corrupt: {exc}") from exc
            payload_start = len(_MAGIC) + _LEN_STRUCT.size + header_len
            expected = payload_start + payload_bytes
            actual = path.stat().st_size
            if actual != expected:
                raise SpillError(
                    f"spill {path} is {actual} bytes, expected {expected}"
                )
            mapped = mmap.mmap(handle.fileno(), 0, access=mmap.ACCESS_READ)
            payload = memoryview(mapped)[payload_start:]
            return cls(path, handle, mapped, payload, specs, n_rows, sha256)
        except BaseException:
            handle.close()
            raise

    @property
    def column_names(self) -> list[str]:
        """Column names in spill (= original table) order."""
        return [spec.name for spec in self.specs]

    def _payload_view(self) -> memoryview:
        if self._payload is None:
            raise SpillError(f"spill {self.path} is closed")
        return self._payload

    def column(self, name: str):
        """Decode one full column (copied out of the map)."""
        buf = self._payload_view()
        for spec in self.specs:
            if spec.name == name:
                try:
                    return _decode_column(spec, buf, 0, self.n_rows)
                except (ValueError, IndexError, UnicodeDecodeError) as exc:
                    raise SpillError(
                        f"spill {self.path} column {name!r} corrupt: {exc}"
                    ) from exc
        raise KeyError(f"spill {self.path} has no column {name!r}")

    def to_table(self, columns: list[str] | None = None) -> Table:
        """Materialize the spilled table (optionally a column projection).

        ``columns=None`` decodes every column in spill order; a list
        decodes only those, in the requested order — the out-of-core merge
        reads just the analysis columns this way.
        """
        names = self.column_names if columns is None else list(columns)
        return Table([self.column(name) for name in names])

    def verify(self) -> None:
        """Hash the payload and compare with the stored checksum.

        Raises :class:`SpillError` on mismatch.  Cheap relative to a
        shard recompute, so the runner calls this before trusting a
        warm-cache spill.
        """
        digest = hashlib.sha256(self._payload_view()).hexdigest()
        if digest != self.sha256:
            raise SpillError(
                f"spill {self.path} payload checksum mismatch "
                f"({digest[:12]} != {self.sha256[:12]})"
            )

    def close(self) -> None:
        """Release the map and the file descriptor (idempotent)."""
        if self._payload is not None:
            self._payload.release()
            self._payload = None
            self._mapped.close()
            self._handle.close()

    def __enter__(self) -> "SpillFile":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
