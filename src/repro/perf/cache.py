"""Content-hash stage cache for pipeline outcomes.

Rebuilding a dashboard, switching stakeholders, or drilling through the
navigable tabs re-runs the same ``preprocess()`` / ``analyze()`` on the
same input — by far the most expensive part of an interactive session.
:class:`StageCache` memoizes whole stage outcomes keyed on *content*
fingerprints (SHA-256 over the table's cells and the analytic config
fields), so a hit is returned only when every input byte that can affect
the result is identical.  Perf-only knobs (``n_jobs``, cache settings)
are excluded from the config fingerprint: they change how fast a stage
runs, never what it returns.

The cache is in-memory by default; give it a directory and entries are
also pickled to disk, surviving across processes (e.g. repeated CLI runs
with ``--cache-dir``).
"""

from __future__ import annotations

import dataclasses
import enum
import hashlib
import json
import os
import pickle
import tempfile
import threading
from pathlib import Path
from typing import Any

import numpy as np

from ..checks import lockdep as _lockdep
from ..dataset.table import ColumnKind, Table
from ..faults.plan import CACHE_READ, CACHE_WRITE, FaultInjector, FaultKind

__all__ = [
    "StageCache",
    "fingerprint_table",
    "fingerprint_config",
    "fingerprint_value",
]

#: Config fields that affect performance (or failure handling) but never
#: the results of a successful run.
PERF_ONLY_FIELDS = (
    "n_jobs",
    "stage_cache",
    "cache_dir",
    "resilience",
    "shards",
    "spill_dir",
    "max_resident_shards",
)


def _canonical(obj: Any) -> Any:
    """A JSON-serializable canonical form of *obj* (stable across runs)."""
    if dataclasses.is_dataclass(obj) and not isinstance(obj, type):
        return {
            "__dataclass__": type(obj).__name__,
            **{
                f.name: _canonical(getattr(obj, f.name))
                for f in dataclasses.fields(obj)
            },
        }
    if isinstance(obj, enum.Enum):
        return f"{type(obj).__name__}.{obj.name}"
    if isinstance(obj, dict):
        return {
            str(k): _canonical(v)
            for k, v in sorted(obj.items(), key=lambda kv: str(kv[0]))
        }
    if isinstance(obj, (list, tuple)):
        return [_canonical(v) for v in obj]
    if obj is None or isinstance(obj, (str, int, float, bool)):
        return obj
    return repr(obj)


def fingerprint_value(obj: Any) -> str:
    """SHA-256 hex digest of the canonical form of any config-like value."""
    payload = json.dumps(_canonical(obj), sort_keys=True, ensure_ascii=True)
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


def fingerprint_table(table: Table) -> str:
    """SHA-256 over a table's schema and every cell.

    Numeric columns hash their raw float64 buffers; categorical / text
    columns hash their values joined on the ``\\x1f`` unit separator with
    ``\\x00`` marking missing (EPC attributes never contain control
    characters, so the separator cannot be forged by data).  One digest
    update per column keeps fingerprinting a ~130-attribute collection
    in the low milliseconds.
    """
    h = hashlib.sha256()
    h.update(str(table.n_rows).encode("ascii"))
    for name in table.column_names:
        col = table.column(name)
        h.update(b"\x1d")
        h.update(name.encode("utf-8"))
        h.update(col.kind.value.encode("ascii"))
        if col.kind is ColumnKind.NUMERIC:
            h.update(np.ascontiguousarray(col.values, dtype="<f8").tobytes())
        else:
            joined = "\x1f".join(
                "\x00" if v is None else str(v) for v in col.values
            )
            h.update(joined.encode("utf-8", "surrogatepass"))
    return h.hexdigest()


def fingerprint_config(config: Any, exclude: tuple[str, ...] = PERF_ONLY_FIELDS) -> str:
    """Fingerprint of a (dataclass) config, minus perf-only fields."""
    if dataclasses.is_dataclass(config) and not isinstance(config, type):
        payload = {
            f.name: _canonical(getattr(config, f.name))
            for f in dataclasses.fields(config)
            if f.name not in exclude
        }
        return fingerprint_value(payload)
    return fingerprint_value(config)


class StageCache:
    """Memoize stage outcomes under content-hash keys.

    Entries live in an in-process dictionary; when *directory* is given
    they are additionally pickled under ``<directory>/<key>.pkl`` and
    looked up there on a memory miss, which makes warm starts work across
    processes.  The cache never validates beyond the key — callers must
    build keys from fingerprints of *every* input that can change the
    outcome (that is what :func:`fingerprint_table` and
    :func:`fingerprint_config` are for).

    Disk entries are written atomically (unique temp file + ``os.replace``)
    so a crashed writer can never leave a half-written ``.pkl`` behind,
    and *every* disk failure is absorbed: an unreadable, truncated or
    corrupted entry counts as a miss (``read_errors``), a failed write
    keeps the value in memory only (``write_errors``).  A cache must never
    be able to abort the stage it accelerates.  The optional *injector*
    simulates exactly those failures at the ``cache.read`` /
    ``cache.write`` fault sites.
    """

    def __init__(
        self,
        directory: str | Path | None = None,
        injector: FaultInjector | None = None,
        lockdep: "_lockdep.LockDep | None" = None,
    ):
        self._memory: dict[str, Any] = {}
        # Guards the memory dict and the hit/miss counters now that the
        # serving tier renders from worker threads; disk IO (and the
        # injector) stay outside the lock so a slow or faulted read never
        # serializes sibling stages (LOCK004 discipline).
        self._lock = _lockdep.wrap(
            threading.Lock(), "stagecache.memory", _lockdep.resolve(lockdep)
        )
        self.directory = Path(directory) if directory else None
        if self.directory is not None:
            if self.directory.exists() and not self.directory.is_dir():
                raise NotADirectoryError(
                    f"cache directory {self.directory} exists and is not a directory"
                )
            self.directory.mkdir(parents=True, exist_ok=True)
        self._injector = injector
        self.hits = 0
        self.misses = 0
        self.read_errors = 0
        self.write_errors = 0
        #: Shard-granular traffic (see :meth:`get_shard`); counted apart
        #: from the whole-stage hits/misses so a provenance log can show
        #: "1 shard recomputed, 16 reused" after a single-district edit.
        self.shard_hits = 0
        self.shard_misses = 0

    @staticmethod
    def key(stage: str, *fingerprints: str) -> str:
        """A stable cache key combining a stage name and fingerprints."""
        h = hashlib.sha256(stage.encode("utf-8"))
        for fp in fingerprints:
            h.update(b"\x1f")
            h.update(fp.encode("utf-8"))
        return f"{stage}-{h.hexdigest()[:32]}"

    @staticmethod
    def shard_key(
        stage: str,
        config_fingerprint: str,
        shard: str,
        content_fingerprint: str,
    ) -> str:
        """The shard-granular cache key of one shard of a sharded stage.

        The triple ``(config_fingerprint, shard_key, shard_content_hash)``
        is the whole invalidation story: editing one district changes only
        that shard's content hash, so every sibling shard still hits —
        the fix for "one dirty row invalidates the world".
        """
        return StageCache.key(
            f"{stage}.shard", config_fingerprint, shard, content_fingerprint
        )

    def __len__(self) -> int:
        return len(self._memory)

    def __contains__(self, key: str) -> bool:
        return key in self._memory or self._disk_path(key) is not None

    def _disk_path(self, key: str) -> Path | None:
        if self.directory is None:
            return None
        path = self.directory / f"{key}.pkl"
        return path if path.exists() else None

    def _disk_read(self, key: str) -> tuple[bool, Any]:
        """``(found, value)`` from disk; every failure is a counted miss."""
        if self.directory is None:
            return False, None
        path = self.directory / f"{key}.pkl"
        try:
            data = path.read_bytes()
        except FileNotFoundError:
            return False, None
        except OSError:  # unreadable entry (permissions, disk error)
            self.read_errors += 1
            return False, None
        if self._injector is not None:
            kind = self._injector.arrive(CACHE_READ)
            if kind is FaultKind.IO_ERROR:
                self.read_errors += 1
                return False, None
            if kind is not None:
                data = FaultInjector.mangle(data, kind)
        try:
            return True, pickle.loads(data)
        # By contract a cache can never abort the stage it accelerates: any
        # unpickling failure is a counted miss (read_errors) and
        # Indice._cache_get records the provenance degradation.
        except Exception:  # repro: noqa[EXC001] — corrupt/truncated entry is a counted miss
            self.read_errors += 1
            return False, None

    def get(self, key: str) -> tuple[bool, Any]:
        """``(found, value)`` for *key*; counts a hit or a miss."""
        with self._lock:
            if key in self._memory:
                self.hits += 1
                return True, self._memory[key]
        found, value = self._disk_read(key)
        with self._lock:
            if found:
                self._memory[key] = value
                self.hits += 1
                return True, value
            self.misses += 1
            return False, None

    def count_shard_hit(self) -> None:
        """Count one reused shard (see :meth:`get_shard`)."""
        with self._lock:
            self.shard_hits += 1

    def count_shard_miss(self) -> None:
        """Count one recomputed shard (see :meth:`get_shard`)."""
        with self._lock:
            self.shard_misses += 1

    def get_shard(self, key: str) -> tuple[bool, Any]:
        """:meth:`get`, additionally counted in the shard-level counters.

        The sharded runner drives ``shard_hits``/``shard_misses`` so they
        measure exactly the incremental story (how many shards were reused
        vs. recomputed), independent of the whole-stage counters the
        monolithic path uses.  The runner counts through
        :meth:`count_shard_hit` / :meth:`count_shard_miss` directly
        because a found record whose spill file fails validation must be
        demoted to a miss.
        """
        found, value = self.get(key)
        if found:
            self.count_shard_hit()
        else:
            self.count_shard_miss()
        return found, value

    def put(self, key: str, value: Any) -> None:
        """Store *value* under *key* (memory, plus disk when configured).

        The disk write is atomic — a unique temp file in the cache
        directory, then ``os.replace`` — so readers (and crashed writers)
        can never observe a partial entry under the final name.  Disk
        failures are swallowed into ``write_errors``: the entry stays
        served from memory and the stage carries on.
        """
        with self._lock:
            self._memory[key] = value
        if self.directory is None:
            return
        data = pickle.dumps(value, protocol=pickle.HIGHEST_PROTOCOL)
        if self._injector is not None:
            kind = self._injector.arrive(CACHE_WRITE)
            if kind is FaultKind.IO_ERROR:
                self.write_errors += 1
                return
            if kind is not None:  # silently-corrupting write: caught on read
                data = FaultInjector.mangle(data, kind)
        tmp_name = None
        try:
            fd, tmp_name = tempfile.mkstemp(
                dir=self.directory, prefix=f"{key}.", suffix=".tmp"
            )
            with os.fdopen(fd, "wb") as handle:
                handle.write(data)
            os.replace(tmp_name, self.directory / f"{key}.pkl")
        except OSError:
            self.write_errors += 1
            if tmp_name is not None:
                try:
                    os.unlink(tmp_name)
                except OSError:
                    pass

    def clear(self) -> None:
        """Drop every in-memory entry (disk entries are left alone)."""
        with self._lock:
            self._memory.clear()
