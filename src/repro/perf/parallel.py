"""A chunked process-pool executor with a serial fallback.

:class:`ParallelMap` is the one place in the codebase that decides *how* a
row-wise computation is spread across cores.  Callers hand it a picklable
per-item function plus an optional worker initializer (for expensive
per-worker state such as a gazetteer index, built once per process instead
of once per item), and get the results back in input order.

Design points:

* **chunked sharding** — items are split into contiguous chunks so the
  pickling overhead is paid per chunk, not per item, and the output order
  is trivially the input order;
* **serial fallback** — with ``n_jobs <= 1`` or fewer items than
  ``min_parallel_items`` the map runs inline (after calling the
  initializer locally), so small inputs never pay process start-up costs
  and single-job configurations stay exactly as debuggable as before;
* **determinism** — the parallel path computes the same function on the
  same items; only scheduling changes, never results.
"""

from __future__ import annotations

import os
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass
from typing import Any, Callable, Iterable, Sequence

__all__ = ["ParallelMap"]

#: Below this many items the process pool costs more than it saves.
DEFAULT_MIN_PARALLEL_ITEMS = 512

#: Chunks per worker: >1 so uneven chunks still balance across the pool.
_CHUNKS_PER_JOB = 4


def _run_chunk(payload: tuple[Callable[[Any], Any], list]) -> list:
    """Apply ``func`` to every item of one chunk (runs inside a worker)."""
    func, chunk = payload
    return [func(item) for item in chunk]


@dataclass
class ParallelMap:
    """Map a function over items with an optional process pool.

    Parameters
    ----------
    n_jobs:
        Worker processes.  ``1`` (the default) runs serially; ``0`` or a
        negative value resolves to ``os.cpu_count()``.
    chunk_size:
        Items per shard; ``None`` sizes chunks so each worker receives
        about ``_CHUNKS_PER_JOB`` of them.
    min_parallel_items:
        Inputs smaller than this run serially even when ``n_jobs > 1``.
    """

    n_jobs: int = 1
    chunk_size: int | None = None
    min_parallel_items: int = DEFAULT_MIN_PARALLEL_ITEMS

    def resolve_jobs(self) -> int:
        """The effective worker count (``0``/negative -> all cores)."""
        if self.n_jobs <= 0:
            return os.cpu_count() or 1
        return self.n_jobs

    def should_parallelize(self, n_items: int) -> bool:
        """Whether *n_items* would actually be fanned out to a pool."""
        return self.resolve_jobs() > 1 and n_items >= self.min_parallel_items

    def shard(self, items: Sequence[Any]) -> list[list[Any]]:
        """Split *items* into contiguous, order-preserving chunks."""
        n = len(items)
        if n == 0:
            return []
        jobs = self.resolve_jobs()
        size = self.chunk_size or max(1, -(-n // (jobs * _CHUNKS_PER_JOB)))
        return [list(items[i : i + size]) for i in range(0, n, size)]

    def map(
        self,
        func: Callable[[Any], Any],
        items: Iterable[Any],
        initializer: Callable[..., None] | None = None,
        initargs: tuple = (),
    ) -> list:
        """``[func(x) for x in items]``, possibly across worker processes.

        *func* (and every item) must be picklable when the parallel path
        is taken; *initializer* runs once per worker before any chunk (and
        once inline on the serial path), so it is the place to build
        expensive shared state.  Results always come back in input order.
        """
        items = list(items)
        if not items or not self.should_parallelize(len(items)):
            if initializer is not None:
                initializer(*initargs)
            return [func(item) for item in items]
        chunks = self.shard(items)
        with ProcessPoolExecutor(
            max_workers=min(self.resolve_jobs(), len(chunks)),
            initializer=initializer,
            initargs=initargs,
        ) as pool:
            results = list(pool.map(_run_chunk, [(func, c) for c in chunks]))
        return [item for chunk in results for item in chunk]
