"""A chunked process-pool executor with a serial fallback.

:class:`ParallelMap` is the one place in the codebase that decides *how* a
row-wise computation is spread across cores.  Callers hand it a picklable
per-item function plus an optional worker initializer (for expensive
per-worker state such as a gazetteer index, built once per process instead
of once per item), and get the results back in input order.

Design points:

* **chunked sharding** — items are split into contiguous chunks so the
  pickling overhead is paid per chunk, not per item, and the output order
  is trivially the input order;
* **serial fallback** — with ``n_jobs <= 1`` or fewer items than
  ``min_parallel_items`` the map runs inline (after calling the
  initializer locally), so small inputs never pay process start-up costs
  and single-job configurations stay exactly as debuggable as before;
* **crash resilience** — a worker process dying (a broken pool, or an
  injected :class:`~repro.faults.plan.WorkerCrashError`) does not fail the
  map: the whole input is recomputed serially and the degradation is
  counted in ``fallbacks`` for the caller to log.  Exceptions raised by
  the *mapped function itself* still propagate unchanged — a crash of the
  infrastructure is recoverable, a bug in the computation is not;
* **determinism** — the parallel path computes the same function on the
  same items; only scheduling changes, never results.  The serial
  fallback therefore returns bit-identical output;
* **columnar dispatch** — :meth:`ParallelMap.map_table` ships a whole
  :class:`~repro.dataset.table.Table` through one shared-memory block
  (see :mod:`repro.perf.shm`) and sends workers only ``(shm_name,
  col_specs, row_range)`` descriptors, so the per-chunk IPC payload is a
  few hundred bytes regardless of row count — the fix for the pickle
  serialization tax that capped ``map`` at 2 useful workers.
"""

from __future__ import annotations

import functools
import os
import pickle
import time
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass
from typing import Any, Callable, Iterable, Sequence

import numpy as np

from ..dataset.table import ColumnKind, Table, TableError
from ..faults.plan import PARALLEL_WORKER, FaultInjector, FaultKind, WorkerCrashError
from .shm import SharedTable, TableSlice, attach_slice

__all__ = ["ParallelMap", "feature_matrix", "grouped_mean"]

#: Below this many items the process pool costs more than it saves.
DEFAULT_MIN_PARALLEL_ITEMS = 512

#: Chunks per worker: >1 so uneven chunks still balance across the pool.
_CHUNKS_PER_JOB = 4

#: Seconds an injected straggler chunk sleeps before doing its work.
_INJECTED_STRAGGLER_S = 0.05


def _run_chunk(payload: tuple[Callable[[Any], Any], list, str | None]) -> list:
    """Apply ``func`` to every item of one chunk (runs inside a worker).

    *fault* is the injected behaviour decided (deterministically) in the
    parent before dispatch: ``"crash"`` kills the chunk, ``"delay"`` makes
    it a straggler.  Keeping the decision in the parent means the injector
    never has to cross the process boundary.
    """
    func, chunk, fault = payload
    if fault == "crash":
        raise WorkerCrashError("injected worker crash")
    if fault == "delay":
        time.sleep(_INJECTED_STRAGGLER_S)
    return [func(item) for item in chunk]


def _matrix_rows_chunk(names: tuple[str, ...], chunk: Table) -> list:
    """One float feature row-vector per row of *chunk* (runs in a worker).

    Module-level (not a lambda/closure) so the parallel path can pickle
    it — the PAR001 contract.
    """
    return list(chunk.to_matrix(list(names)))


def _group_pairs_chunk(by: str, name: str, chunk: Table) -> list:
    """One ``(group key, value)`` pair per row of *chunk* (worker side).

    Key normalization mirrors :meth:`Table.group_indices` exactly (NaN
    numeric keys become ``None``), so the parent-side regroup reproduces
    :meth:`Table.aggregate` bit-for-bit.
    """
    key_col = chunk.column(by)
    if key_col.kind is ColumnKind.NUMERIC:
        keys = [None if np.isnan(v) else float(v) for v in key_col.values]
    else:
        keys = list(key_col.values)
    return list(zip(keys, chunk.column(name).values))


def feature_matrix(
    table: Table,
    names: Sequence[str],
    executor: "ParallelMap | None" = None,
) -> np.ndarray:
    """``table.to_matrix(names)`` through the columnar parallel path.

    Each worker decodes only its shared-memory row slice and returns its
    float rows; the parent stacks them back in row order, so the result is
    bit-identical to the serial ``to_matrix`` (same float64 copies, same
    layout).  With no executor — or below the parallel threshold — this
    *is* the serial ``to_matrix``.
    """
    if executor is None or not executor.should_parallelize(table.n_rows):
        return table.to_matrix(list(names))
    rows = executor.map_table(
        functools.partial(_matrix_rows_chunk, tuple(names)), table
    )
    return np.vstack(rows)


def grouped_mean(
    table: Table,
    by: str,
    name: str,
    executor: "ParallelMap | None" = None,
) -> dict:
    """``table.aggregate(by, name, np.mean)`` through the parallel path.

    Workers emit ``(group key, value)`` pairs per row; the parent regroups
    them in row order (so first-appearance key order is preserved), drops
    NaN values and takes one ``np.mean`` per group over the *whole* group
    — never a mean of partial means — which keeps the result bit-identical
    to the serial aggregate.  Empty groups map to ``nan``, like
    :meth:`Table.aggregate`.
    """
    if executor is None or not executor.should_parallelize(table.n_rows):
        return table.aggregate(by, name, np.mean)
    if table.column(name).kind is not ColumnKind.NUMERIC:
        # same contract as Table.aggregate
        raise TableError(f"aggregate expects a numeric column, got {name!r}")
    pairs = executor.map_table(
        functools.partial(_group_pairs_chunk, by, name), table
    )
    groups: dict[Any, list] = {}
    for key, value in pairs:
        groups.setdefault(key, []).append(value)
    out: dict[Any, float] = {}
    for key, values in groups.items():
        arr = np.asarray(values, dtype=np.float64)
        arr = arr[~np.isnan(arr)]
        out[key] = float(np.mean(arr)) if len(arr) else float("nan")
    return out


def _run_table_chunk(
    payload: tuple[Callable[[Any], Iterable[Any]], TableSlice, str | None]
) -> list:
    """Decode one shared-memory slice and apply ``chunk_func`` to it.

    Injected crashes fire *before* the worker attaches, so a crashed
    worker never holds a mapping — segment cleanup stays entirely with
    the creating parent.
    """
    chunk_func, table_slice, fault = payload
    if fault == "crash":
        raise WorkerCrashError("injected worker crash")
    if fault == "delay":
        time.sleep(_INJECTED_STRAGGLER_S)
    return list(chunk_func(attach_slice(table_slice)))


@dataclass
class ParallelMap:
    """Map a function over items with an optional process pool.

    Parameters
    ----------
    n_jobs:
        Worker processes.  ``1`` (the default) runs serially; ``0`` or a
        negative value resolves to ``os.cpu_count()``.
    chunk_size:
        Items per shard; ``None`` sizes chunks so each worker receives
        about ``_CHUNKS_PER_JOB`` of them.
    min_parallel_items:
        Inputs smaller than this run serially even when ``n_jobs > 1``.
    injector:
        Optional fault injector watching the ``parallel.worker`` site
        (one arrival per dispatched chunk).
    """

    n_jobs: int = 1
    chunk_size: int | None = None
    min_parallel_items: int = DEFAULT_MIN_PARALLEL_ITEMS
    injector: FaultInjector | None = None

    def __post_init__(self):
        #: Times the parallel path crashed and was recomputed serially.
        self.fallbacks = 0
        #: Human-readable reason of the most recent fallback (or None).
        self.last_fallback_reason: str | None = None
        #: Seconds spent encoding tables into shared memory (map_table).
        self.encode_seconds = 0.0
        #: Bytes placed in shared-memory blocks (map_table).
        self.shm_bytes = 0
        #: Pickled bytes actually shipped to workers as descriptors.
        self.descriptor_bytes = 0

    def resolve_jobs(self) -> int:
        """The effective worker count (``0``/negative -> all cores)."""
        if self.n_jobs <= 0:
            return os.cpu_count() or 1
        return self.n_jobs

    def should_parallelize(self, n_items: int) -> bool:
        """Whether *n_items* would actually be fanned out to a pool."""
        return self.resolve_jobs() > 1 and n_items >= self.min_parallel_items

    def shard(self, items: Sequence[Any]) -> list[list[Any]]:
        """Split *items* into contiguous, order-preserving chunks."""
        n = len(items)
        if n == 0:
            return []
        jobs = self.resolve_jobs()
        size = self.chunk_size or max(1, -(-n // (jobs * _CHUNKS_PER_JOB)))
        return [list(items[i : i + size]) for i in range(0, n, size)]

    def shard_ranges(self, n_rows: int) -> list[tuple[int, int]]:
        """Contiguous ``[lo, hi)`` row ranges, mirroring :meth:`shard`.

        Uses the exact same chunk-size arithmetic so a table map dispatches
        the same number of chunks as an item map over the same rows — which
        keeps ``parallel.worker`` fault arrival counts identical across the
        two code paths.
        """
        if n_rows == 0:
            return []
        jobs = self.resolve_jobs()
        size = self.chunk_size or max(
            1, -(-n_rows // (jobs * _CHUNKS_PER_JOB))
        )
        return [
            (lo, min(lo + size, n_rows)) for lo in range(0, n_rows, size)
        ]

    def _check_fork_safety(self) -> None:
        """Fail fast if this thread forks a pool while holding a lock.

        Only active when the lock sanitizer is armed (explicitly or via
        ``REPRO_SANITIZE_LOCKS``): a worker forked while the parent holds
        a sanitized lock inherits it locked forever.  The dynamic twin of
        the PAR001/PAR002 fork-safety rules.
        """
        from ..checks import lockdep as _lockdep

        dep = _lockdep.resolve(None)
        if dep is not None:
            dep.check_fork("ParallelMap pool spawn")

    def _chunk_fault(self) -> str | None:
        """The injected behaviour of the next dispatched chunk, if any."""
        if self.injector is None:
            return None
        kind = self.injector.arrive(PARALLEL_WORKER)
        if kind is FaultKind.CRASH:
            return "crash"
        if kind is FaultKind.DELAY:
            return "delay"
        return None

    def map(
        self,
        func: Callable[[Any], Any],
        items: Iterable[Any],
        initializer: Callable[..., None] | None = None,
        initargs: tuple = (),
    ) -> list:
        """``[func(x) for x in items]``, possibly across worker processes.

        *func* (and every item) must be picklable when the parallel path
        is taken; *initializer* runs once per worker before any chunk (and
        once inline on the serial path), so it is the place to build
        expensive shared state.  Results always come back in input order.

        If the pool itself fails — a worker process dies, the pool breaks —
        the whole map is recomputed serially (bit-identical results) and
        ``fallbacks`` is incremented so the caller can record the
        degradation.  Exceptions raised by *func* propagate unchanged.
        """
        items = list(items)
        if not items or not self.should_parallelize(len(items)):
            if initializer is not None:
                initializer(*initargs)
            return [func(item) for item in items]
        chunks = self.shard(items)
        payloads = [(func, chunk, self._chunk_fault()) for chunk in chunks]
        self._check_fork_safety()
        try:
            with ProcessPoolExecutor(
                max_workers=min(self.resolve_jobs(), len(chunks)),
                initializer=initializer,
                initargs=initargs,
            ) as pool:
                results = list(pool.map(_run_chunk, payloads))
        except (WorkerCrashError, BrokenProcessPool, OSError) as exc:
            self.fallbacks += 1
            self.last_fallback_reason = f"{type(exc).__name__}: {exc}"
            if initializer is not None:
                initializer(*initargs)
            return [func(item) for item in items]
        return [item for chunk in results for item in chunk]

    def _serial_table(self, chunk_func, table, initializer, initargs) -> list:
        """The inline path: one call over the whole table."""
        if initializer is not None:
            initializer(*initargs)
        return list(chunk_func(table))

    def map_table(
        self,
        chunk_func: Callable[[Any], Iterable[Any]],
        table,
        initializer: Callable[..., None] | None = None,
        initargs: tuple = (),
    ) -> list:
        """Fan *table* rows out through shared memory, one slice per chunk.

        *chunk_func* receives a :class:`~repro.dataset.table.Table` holding
        a contiguous row slice and must return one result per row, in row
        order; ``map_table`` returns the concatenation across slices — for
        a row-wise *chunk_func* this is exactly ``list(chunk_func(table))``.

        Unlike :meth:`map`, the rows are never pickled: the whole table is
        encoded once into a shared-memory block and workers receive only
        slice descriptors.  The serial path, fallback semantics, fault
        sites and ordering guarantees are identical to :meth:`map` — a pool
        failure recomputes the whole table inline (bit-identical) and
        counts in ``fallbacks``; the shared block is always closed and
        unlinked in a ``finally``, so no segment outlives the call even
        when workers crash.
        """
        n = table.n_rows
        if n == 0 or not self.should_parallelize(n):
            return self._serial_table(chunk_func, table, initializer, initargs)
        self._check_fork_safety()
        started = time.perf_counter()
        try:
            shared = SharedTable.create(table)
        except (OSError, ValueError) as exc:
            # /dev/shm full or unavailable: degrade to the serial path
            self.fallbacks += 1
            self.last_fallback_reason = f"{type(exc).__name__}: {exc}"
            return self._serial_table(chunk_func, table, initializer, initargs)
        self.encode_seconds += time.perf_counter() - started
        self.shm_bytes += shared.nbytes
        try:
            payloads = [
                (chunk_func, shared.descriptor(rng), self._chunk_fault())
                for rng in self.shard_ranges(n)
            ]
            self.descriptor_bytes += sum(
                len(pickle.dumps(slice_)) for __, slice_, __unused in payloads
            )
            try:
                with ProcessPoolExecutor(
                    max_workers=min(self.resolve_jobs(), len(payloads)),
                    initializer=initializer,
                    initargs=initargs,
                ) as pool:
                    results = list(pool.map(_run_table_chunk, payloads))
            except (WorkerCrashError, BrokenProcessPool, OSError) as exc:
                self.fallbacks += 1
                self.last_fallback_reason = f"{type(exc).__name__}: {exc}"
                return self._serial_table(
                    chunk_func, table, initializer, initargs
                )
        finally:
            shared.close()
            shared.unlink()
        return [item for chunk in results for item in chunk]
