"""Plain-language analysis reports.

Dashboards carry charts; non-expert stakeholders also need "human-readable
informative contents" (paper, Section 2.3).  This module renders a full
analysis session into a Markdown report: what was cleaned, what was
filtered, which groups of buildings exist and what distinguishes them,
which rules explain the demand, and — for the public administration — the
areas worth targeting.  Every number is pulled from the engine's outcome
objects, so the report never disagrees with the dashboard.
"""

from __future__ import annotations

import numpy as np

from ..analytics.profiles import profile_clusters
from ..analytics.rules import RuleMiner
from ..preprocessing.address_cleaner import MatchStatus
from .engine import AnalyticsOutcome, Indice, PreprocessingOutcome

__all__ = ["generate_report"]


def _cleaning_section(pre: PreprocessingOutcome) -> list[str]:
    report = pre.cleaning_report
    counts = {status: 0 for status in MatchStatus}
    for audit in report.audits:
        counts[audit.status] += 1
    repaired = sum(1 for a in report.audits if a.repaired_fields)
    return [
        "## Data cleaning",
        "",
        f"- {len(report.audits)} addresses checked against the referenced street map",
        f"- {counts[MatchStatus.EXACT]} matched exactly, "
        f"{counts[MatchStatus.MATCHED]} accepted by string similarity, "
        f"{counts[MatchStatus.GEOCODED]} recovered by the geocoding service, "
        f"{counts[MatchStatus.UNRESOLVED]} left unresolved",
        f"- {repaired} certificates had a field repaired "
        "(street name, civic number, ZIP code or coordinates)",
        f"- overall resolution rate: {report.resolution_rate():.1%}",
        "",
        f"Outlier filtering removed {pre.n_outlier_rows} of {pre.n_rows_in} "
        f"certificates ({pre.n_outlier_rows / max(pre.n_rows_in, 1):.1%}); "
        "these values deviate so strongly from the rest of the stock that "
        "they would distort the analysis.",
    ]


def _cluster_section(engine: Indice, analysis: AnalyticsOutcome) -> list[str]:
    profiles = profile_clusters(
        analysis.table,
        "cluster",
        list(engine.config.features),
        engine.config.response,
        categorical_attributes=["construction_period"],
    )
    lines = [
        "## Groups of similar buildings",
        "",
        f"K-means (K = {analysis.clustering.chosen_k}, selected automatically "
        "from the SSE elbow) found these groups, best performing first:",
        "",
    ]
    for p in profiles:
        period, share = p.dominant_categories.get("construction_period", (None, 0.0))
        period_text = f"; mostly built {period} ({share:.0%})" if period else ""
        lines.append(
            f"- **Group {p.cluster}** — {p.size} units ({p.share:.0%}), "
            f"average demand {p.response_mean:.0f} kWh/m²y: {p.tag}{period_text}"
        )
    return lines


def _rules_section(analysis: AnalyticsOutcome, response: str) -> list[str]:
    lines = ["## What drives the heating demand", ""]
    if not analysis.rules:
        lines.append("No association rule passed the configured thresholds.")
        return lines
    top = RuleMiner.top_k(analysis.rules, 5, by="lift")
    lines.append(
        "The strongest correlations extracted from the certificates "
        "(confidence = how often the pattern holds):"
    )
    lines.append("")
    for rule in top:
        antecedent = " and ".join(
            f"{item.attribute.replace('_', ' ')} is {item.value}"
            for item in rule.antecedent
        )
        consequent = " and ".join(
            f"{item.attribute.replace('_', ' ')} is {item.value}"
            for item in rule.consequent
        )
        lines.append(
            f"- when {antecedent}, then {consequent} "
            f"({rule.confidence:.0%} confidence, lift {rule.lift:.1f})"
        )
    return lines


def _target_section(engine: Indice, analysis: AnalyticsOutcome) -> list[str]:
    means = analysis.table.aggregate("district", engine.config.response, np.mean)
    means.pop(None, None)
    if not means:
        return []
    worst = sorted(means.items(), key=lambda kv: -kv[1])[:3]
    lines = [
        "## Where to act",
        "",
        "Districts with the highest average heating demand — the candidate "
        "targets for renovation incentives:",
        "",
    ]
    lines.extend(
        f"- {district}: {mean:.0f} kWh/m²y on average" for district, mean in worst
    )
    return lines


def generate_report(engine: Indice, title: str | None = None) -> str:
    """A Markdown report of a completed analysis session.

    Requires :meth:`Indice.preprocess` and :meth:`Indice.analyze` to have
    run.  The report is self-contained and written for a non-expert
    reader; dashboards carry the same numbers graphically.
    """
    pre = engine._require_preprocessed()
    analysis = engine._require_analyzed()
    cfg = engine.config

    corr = analysis.correlation
    eligibility = (
        "are weakly correlated, so each contributes independent information"
        if corr.is_eligible(cfg.correlation_threshold)
        else "show strong correlations; interpret the groups with care"
    )

    sections = [
        f"# {title or f'INDICE analysis report — {cfg.city}'}",
        "",
        f"Scope: certificates of type {cfg.building_type} in {cfg.city}; "
        f"{analysis.table.n_rows} certificates analyzed after cleaning.",
        "",
        *_cleaning_section(pre),
        "",
        "## Feature check",
        "",
        f"The analysis uses {len(cfg.features)} building characteristics "
        f"plus the heating demand ({cfg.response}). The characteristics "
        f"{eligibility} "
        f"(largest pairwise correlation: {corr.max_abs_off_diagonal():.2f}).",
        "",
        *_cluster_section(engine, analysis),
        "",
        *_rules_section(analysis, cfg.response),
    ]
    target = _target_section(engine, analysis)
    if target:
        sections += ["", *target]
    sections += [
        "",
        "---",
        "*Generated by INDICE (EDBT/BigVis 2019 reproduction). All figures "
        "come from the same pipeline run as the accompanying dashboard.*",
    ]
    return "\n".join(sections)
