"""Automatic analysis-configuration suggestions.

The paper's future work: "the analysis process should be empowered by an
automatic tool suggesting appropriate analysis configurations for the
considered datasets".  This module implements that advisor.  Given a
table, it inspects the distribution of each analysis attribute and the
collection size and proposes a full :class:`~repro.core.config.IndiceConfig`:

* **outlier method per attribute** — gESD for near-normal distributions
  (it is a parametric normal-theory test), MAD for skewed or heavy-tailed
  ones (it is distribution-free), boxplot when the sample is too small
  for either to be reliable;
* **discretization classes** — the number of detected density modes
  (clamped to [2, 4], the granularity the paper's dashboard labels
  support);
* **rule-mining support** — scaled to the collection size so expected
  absolute support stays meaningful;
* **K range** — widened for larger, more heterogeneous selections.

Suggestions are returned with human-readable justifications, and past
expert choices (the Section 2.1.2 store) take precedence when available.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np
from scipy import stats

from ..dataset.table import ColumnKind, Table
from ..preprocessing.expert_store import ExpertConfigStore
from ..preprocessing.outliers import OutlierMethod
from ..analytics.rules import RuleConstraints
from .config import IndiceConfig

__all__ = ["AttributeAdvice", "ConfigAdvice", "suggest_config"]

#: Below this many present values, distribution tests are unreliable.
_MIN_SAMPLE = 50


@dataclass(frozen=True)
class AttributeAdvice:
    """Per-attribute recommendation with its reasoning."""

    attribute: str
    method: OutlierMethod
    n_classes: int
    reason: str


@dataclass
class ConfigAdvice:
    """The advisor's full output."""

    config: IndiceConfig
    attribute_advice: dict[str, AttributeAdvice] = field(default_factory=dict)
    notes: list[str] = field(default_factory=list)

    def describe(self) -> str:
        """Human-readable multi-line description."""
        lines = list(self.notes)
        for advice in self.attribute_advice.values():
            lines.append(
                f"{advice.attribute}: {advice.method.value}, "
                f"{advice.n_classes} classes — {advice.reason}"
            )
        return "\n".join(lines)


def _count_modes(values: np.ndarray) -> int:
    """Rough mode count: prominent peaks of a smoothed histogram.

    The histogram is smoothed with a small kernel (applied repeatedly);
    candidate peaks must reach 20% of the maximum, and two peaks only
    count separately when the valley between them drops below 75% of the
    smaller peak — otherwise they are one noisy bump.
    """
    if len(values) < _MIN_SAMPLE:
        return 1
    counts, __ = np.histogram(values, bins=min(40, max(10, len(values) // 50)))
    smooth = counts.astype(np.float64)
    kernel = np.array([1.0, 2.0, 1.0]) / 4.0
    for __ in range(3):
        smooth = np.convolve(smooth, kernel, mode="same")
    floor = smooth.max() * 0.20

    candidates = [
        i
        for i in range(1, len(smooth) - 1)
        if smooth[i] > smooth[i - 1] and smooth[i] >= smooth[i + 1] and smooth[i] >= floor
    ]
    if not candidates:
        return 1
    peaks = [candidates[0]]
    for peak in candidates[1:]:
        previous = peaks[-1]
        valley = smooth[previous : peak + 1].min()
        if valley < 0.75 * min(smooth[previous], smooth[peak]):
            peaks.append(peak)
        elif smooth[peak] > smooth[previous]:
            peaks[-1] = peak  # same bump, keep its higher summit
    return max(len(peaks), 1)


def _advise_attribute(name: str, values: np.ndarray) -> AttributeAdvice:
    present = values[~np.isnan(values)]
    if len(present) < _MIN_SAMPLE:
        return AttributeAdvice(
            name, OutlierMethod.BOXPLOT, 2,
            f"only {len(present)} values — boxplot with manual review",
        )
    skewness = float(stats.skew(present))
    excess_kurtosis = float(stats.kurtosis(present))
    modes = _count_modes(present)
    n_classes = int(np.clip(modes, 2, 4))

    near_normal = abs(skewness) < 0.5 and abs(excess_kurtosis) < 1.0 and modes == 1
    if near_normal:
        return AttributeAdvice(
            name, OutlierMethod.GESD, n_classes,
            f"near-normal (skew {skewness:.2f}, excess kurtosis "
            f"{excess_kurtosis:.2f}) — parametric gESD applies",
        )
    return AttributeAdvice(
        name, OutlierMethod.MAD, n_classes,
        f"skewed/multi-modal (skew {skewness:.2f}, {modes} modes) — "
        "distribution-free MAD with the 3.5 cut-off",
    )


def suggest_config(
    table: Table,
    base: IndiceConfig | None = None,
    expert_store: ExpertConfigStore | None = None,
) -> ConfigAdvice:
    """Propose a full analysis configuration for *table*.

    Starts from *base* (or paper defaults), then adapts the outlier
    method, the discretization plan, the rule-support threshold and the
    K range to the data.  When *expert_store* holds history for an
    attribute, the experts' majority choice overrides the heuristic —
    the paper's preference order (Section 2.1.2).
    """
    cfg = base or IndiceConfig()
    n = table.n_rows
    advice: dict[str, AttributeAdvice] = {}
    notes: list[str] = [f"collection size: {n} rows"]

    analysis_attributes = tuple(cfg.features) + (cfg.response,)
    method_votes: dict[OutlierMethod, int] = {}
    plan: dict[str, int] = {}
    for name in analysis_attributes:
        if name not in table or table.kind(name) is not ColumnKind.NUMERIC:
            continue
        item = _advise_attribute(name, table[name])
        if expert_store is not None and expert_store.history(name):
            stored = expert_store.suggest(name)
            item = AttributeAdvice(
                name, stored.method, item.n_classes,
                f"expert history: {stored.method.value} chosen by past users",
            )
        advice[name] = item
        method_votes[item.method] = method_votes.get(item.method, 0) + 1
        if name in cfg.discretization_plan:
            plan[name] = (
                item.n_classes
                if name != cfg.response
                else cfg.discretization_plan[name]
            )

    dominant = max(method_votes, key=method_votes.get) if method_votes else cfg.outlier_method
    notes.append(f"dominant outlier method: {dominant.value}")

    # min-support: aim for >= ~30 supporting certificates per rule
    min_support = min(0.1, max(0.01, 30.0 / max(n, 1)))
    notes.append(f"rule min-support scaled to {min_support:.3f} (~30 rows)")

    k_hi = int(np.clip(4 + np.log10(max(n, 10)) * 2, 6, 12))
    notes.append(f"K range widened to (2, {k_hi}) for this size")

    merged_plan = dict(cfg.discretization_plan)
    merged_plan.update(plan)
    suggested = IndiceConfig(
        city=cfg.city,
        building_type=cfg.building_type,
        features=cfg.features,
        response=cfg.response,
        cleaning=cfg.cleaning,
        geocoder_quota=cfg.geocoder_quota,
        outlier_method=dominant,
        outlier_params=dict(cfg.outlier_params),
        run_multivariate_outliers=cfg.run_multivariate_outliers,
        k_range=(2, k_hi),
        kmeans_n_init=cfg.kmeans_n_init,
        seed=cfg.seed,
        discretization_plan=merged_plan,
        rule_constraints=RuleConstraints(
            min_support=min_support,
            min_confidence=cfg.rule_constraints.min_confidence,
            min_lift=cfg.rule_constraints.min_lift,
            min_conviction=cfg.rule_constraints.min_conviction,
        ),
        rule_template=cfg.rule_template,
        correlation_threshold=cfg.correlation_threshold,
    )
    return ConfigAdvice(config=suggested, attribute_advice=advice, notes=notes)
