"""Analysis sessions with a provenance log.

Every INDICE run records what each tier did — rows in / rows out, methods
and parameters applied, artifacts produced — so a dashboard can explain
its own numbers and experiments can audit the pipeline.  The log is
ordinal (step counter), so the *sequence* of steps stays reproducible;
each step may additionally carry wall-clock timing counters
(``elapsed_s`` and the derived ``rows_per_s``), which make every stage
report its throughput without perturbing the ordinal record.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from dataclasses import dataclass, field

__all__ = ["ProvenanceStep", "ProvenanceLog"]


@dataclass(frozen=True)
class ProvenanceStep:
    """One recorded pipeline step."""

    index: int
    stage: str  # "preprocessing" | "selection" | "analytics" | "visualization"
    action: str
    detail: dict = field(default_factory=dict)
    #: Wall-clock seconds the step took (None when not timed).
    elapsed_s: float | None = None
    #: Rows processed per second (None when not timed or row count unknown).
    rows_per_s: float | None = None

    def describe(self) -> str:
        """Human-readable multi-line description."""
        rendered = ", ".join(f"{k}={v}" for k, v in self.detail.items())
        out = f"[{self.index}] {self.stage}/{self.action}" + (
            f" ({rendered})" if rendered else ""
        )
        if self.elapsed_s is not None:
            timing = f"{self.elapsed_s * 1000:.0f} ms"
            if self.rows_per_s is not None:
                timing += f", {self.rows_per_s:.0f} rows/s"
            out += f" [{timing}]"
        return out


@dataclass
class ProvenanceLog:
    """Append-only record of an analysis session."""

    steps: list[ProvenanceStep] = field(default_factory=list)

    def record(
        self,
        stage: str,
        action: str,
        elapsed_s: float | None = None,
        rows_per_s: float | None = None,
        **detail,
    ) -> ProvenanceStep:
        """Append one step to the log and return it.

        ``elapsed_s`` / ``rows_per_s`` are reserved timing counters (kept
        out of ``detail`` so tooling can aggregate them uniformly).
        """
        step = ProvenanceStep(
            len(self.steps), stage, action, detail, elapsed_s, rows_per_s
        )
        self.steps.append(step)
        return step

    @contextmanager
    def timed(self, stage: str, action: str, rows: int | None = None, **detail):
        """Context manager recording *action* with its wall-clock timing.

        ``rows`` (when given) also derives a rows-per-second counter.  The
        step is appended when the block exits, after the timed work::

            with log.timed("preprocessing", "geospatial_cleaning", rows=n):
                ...
        """
        start = time.perf_counter()
        yield
        elapsed = time.perf_counter() - start
        rate = rows / elapsed if rows is not None and elapsed > 0 else None
        self.record(stage, action, elapsed_s=elapsed, rows_per_s=rate, **detail)

    def total_elapsed(self, stage: str | None = None) -> float:
        """Sum of the timed steps' wall-clock seconds (optionally per stage)."""
        return sum(
            s.elapsed_s
            for s in self.steps
            if s.elapsed_s is not None and (stage is None or s.stage == stage)
        )

    def stages(self) -> list[str]:
        """Distinct stages in execution order."""
        seen: list[str] = []
        for step in self.steps:
            if step.stage not in seen:
                seen.append(step.stage)
        return seen

    def for_stage(self, stage: str) -> list[ProvenanceStep]:
        """The steps recorded under *stage*, in order."""
        return [s for s in self.steps if s.stage == stage]

    def degradations(self) -> list[ProvenanceStep]:
        """Every recorded degradation (graceful fallbacks under faults).

        A pipeline run under fault injection must satisfy: outputs are
        bit-identical to the fault-free run, *or* this list is non-empty.
        Degradations are never silent.
        """
        return [s for s in self.steps if s.action == "degradation"]

    def describe(self) -> str:
        """Human-readable multi-line description."""
        return "\n".join(s.describe() for s in self.steps)

    def __len__(self) -> int:
        return len(self.steps)
