"""Analysis sessions with a provenance log.

Every INDICE run records what each tier did — rows in / rows out, methods
and parameters applied, artifacts produced — so a dashboard can explain
its own numbers and experiments can audit the pipeline.  The log is
ordinal (step counter), not wall-clock, which keeps runs reproducible.
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["ProvenanceStep", "ProvenanceLog"]


@dataclass(frozen=True)
class ProvenanceStep:
    """One recorded pipeline step."""

    index: int
    stage: str  # "preprocessing" | "selection" | "analytics" | "visualization"
    action: str
    detail: dict = field(default_factory=dict)

    def describe(self) -> str:
        """Human-readable multi-line description."""
        rendered = ", ".join(f"{k}={v}" for k, v in self.detail.items())
        return f"[{self.index}] {self.stage}/{self.action}" + (
            f" ({rendered})" if rendered else ""
        )


@dataclass
class ProvenanceLog:
    """Append-only record of an analysis session."""

    steps: list[ProvenanceStep] = field(default_factory=list)

    def record(self, stage: str, action: str, **detail) -> ProvenanceStep:
        """Append one step to the log and return it."""
        step = ProvenanceStep(len(self.steps), stage, action, detail)
        self.steps.append(step)
        return step

    def stages(self) -> list[str]:
        """Distinct stages in execution order."""
        seen: list[str] = []
        for step in self.steps:
            if step.stage not in seen:
                seen.append(step.stage)
        return seen

    def for_stage(self, stage: str) -> list[ProvenanceStep]:
        """The steps recorded under *stage*, in order."""
        return [s for s in self.steps if s.stage == stage]

    def describe(self) -> str:
        """Human-readable multi-line description."""
        return "\n".join(s.describe() for s in self.steps)

    def __len__(self) -> int:
        return len(self.steps)
