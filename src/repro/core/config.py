"""Configuration of an INDICE analysis run.

One object gathers every knob of the three tiers (pre-processing, data
selection & analytics, visualization), with defaults reproducing the
paper's Section 3 case study: Turin, housing units of type E.1.1, the five
thermo-physical features, EP_H as response, MAD outlier filtering with the
3.5 cut-off, elbow-selected K in [2, 10], footnote-4 discretization plan
and the default rule-quality thresholds.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..dataset.schema import PAPER_CLUSTERING_FEATURES, PAPER_RESPONSE
from ..faults.policy import ResiliencePolicy
from ..preprocessing.address_cleaner import CleaningConfig
from ..preprocessing.outliers import OutlierMethod
from ..analytics.rules import RuleConstraints, RuleTemplate

__all__ = ["IndiceConfig", "DEFAULT_DISCRETIZATION_PLAN"]

#: Footnote 4: U_w -> 4 classes, U_o -> 3 classes, ETAH -> 3 classes; the
#: response is discretized into 3 classes so it can appear in rules.
DEFAULT_DISCRETIZATION_PLAN = {
    "u_value_windows": 4,
    "u_value_opaque": 3,
    "eta_h": 3,
    PAPER_RESPONSE: 3,
}


@dataclass
class IndiceConfig:
    """All tunables of one analysis run (paper defaults)."""

    # -- selection (Section 3 case study) --
    city: str = "Turin"
    building_type: str = "E.1.1"
    features: tuple[str, ...] = PAPER_CLUSTERING_FEATURES
    response: str = PAPER_RESPONSE

    # -- pre-processing --
    cleaning: CleaningConfig = field(default_factory=CleaningConfig)
    geocoder_quota: int = 2500
    outlier_method: OutlierMethod = OutlierMethod.MAD
    outlier_params: dict = field(default_factory=dict)
    #: Per-attribute overrides of the global method, e.g. the stored
    #: expert choices of Section 2.1.2: {"eta_h": (OutlierMethod.GESD,
    #: {"alpha": 0.01})}.
    outlier_overrides: dict = field(default_factory=dict)
    run_multivariate_outliers: bool = True

    # -- analytics --
    k_range: tuple[int, int] = (2, 10)
    kmeans_n_init: int = 5
    seed: int = 0
    discretization_plan: dict = field(
        default_factory=lambda: dict(DEFAULT_DISCRETIZATION_PLAN)
    )
    rule_constraints: RuleConstraints = field(default_factory=RuleConstraints)
    rule_template: RuleTemplate | None = None
    correlation_threshold: float = 0.5

    # -- performance (never changes results, only how fast they arrive) --
    #: Worker processes for the parallelizable stages (1 = serial,
    #: 0 / negative = all cores).
    n_jobs: int = 1
    #: Memoize whole preprocess() / analyze() outcomes on content hashes.
    stage_cache: bool = True
    #: Optional directory persisting stage-cache entries across processes.
    cache_dir: str | None = None
    #: Shard scheme for :meth:`Indice.run_sharded` via the CLI:
    #: ``"by-district"``, ``"by-zip"`` or a shard count (as a string).
    #: ``None`` (the default) keeps the monolithic path.  Sharding never
    #: changes results — the merged output is bit-identical to the
    #: monolithic serial pipeline — so this is a perf-only knob.
    shards: str | None = None
    #: Directory for the per-shard columnar spill files (``None`` = a
    #: temporary directory per run).
    spill_dir: str | None = None
    #: Shards kept decoded in memory at once during the out-of-core
    #: merge; peak RSS scales with this, never with the dataset.
    max_resident_shards: int = 4

    # -- resilience (how failures are absorbed; never changes a successful
    # run's results, so excluded from stage-cache fingerprints like the
    # perf knobs) --
    resilience: ResiliencePolicy = field(default_factory=ResiliencePolicy)

    def __post_init__(self):
        if self.rule_template is None:
            # default template: explain the response variable
            self.rule_template = RuleTemplate(consequent_attributes=(self.response,))
        if self.response in self.features:
            raise ValueError("the response variable cannot be a clustering feature")
