"""The INDICE engine: the full Figure 1 pipeline behind one façade.

``Indice`` wires the three tiers together:

1. **Data pre-processing** — geospatial cleaning against the referenced
   street map (with the metered geocoder fallback), then univariate outlier
   filtering on the analysis attributes and optional DBSCAN multivariate
   filtering with auto-estimated parameters;
2. **Data selection and analytics** — the case-study selection (city +
   building type), correlation-eligibility check, K-means with
   elbow-selected K, CART discretization and association-rule mining;
3. **Data and knowledge visualization** — stakeholder-tailored dashboards
   combining the three energy maps, frequency distributions, the rules
   table and the correlation matrix.

Each phase returns a typed outcome object and appends to the session's
provenance log, so the pipeline can be run piecemeal (as the benchmarks
do) or end-to-end via :meth:`Indice.run`.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..analytics.correlation import CorrelationMatrix, correlation_matrix
from ..analytics.discretize import Discretization, discretize_table
from ..analytics.kmeans import AutoKMeansResult, kmeans_auto, standardize
from ..analytics.rules import AssociationRule, RuleMiner
from ..analytics.stats import grouped_histograms, summarize_table
from ..analytics.temporal import temporal_summary
from ..dashboard.charts import boxplot_chart
from ..dashboard.dashboard import Panel
from ..preprocessing.outliers import boxplot_outliers
from ..dataset.synthetic import EpcCollection
from ..dataset.table import Column, ColumnKind, Table
from ..dashboard.dashboard import Dashboard, DashboardBuilder, NavigableDashboard
from ..dashboard.maps import (
    choropleth_map,
    choropleth_with_scatter_map,
    cluster_marker_map,
    scatter_map,
)
from ..geo.regions import Granularity
from ..preprocessing.address_cleaner import AddressCleaner, CleaningReport
from ..preprocessing.dbscan import dbscan
from ..preprocessing.geocoder import SimulatedGeocoder
from ..preprocessing.kdistance import estimate_dbscan_params
from ..preprocessing.outliers import OutlierResult, detect_outliers
from ..preprocessing.quality import QualityProfile, assess_quality
from ..query.engine import Query, QueryEngine
from ..query.predicates import Comparison
from ..query.stakeholders import Stakeholder, profile_for
from .config import IndiceConfig
from .session import ProvenanceLog

__all__ = ["Indice", "PreprocessingOutcome", "AnalyticsOutcome"]


@dataclass
class PreprocessingOutcome:
    """What tier 1 produced."""

    table: Table
    cleaning_report: CleaningReport
    univariate_outliers: dict[str, OutlierResult] = field(default_factory=dict)
    multivariate_noise: np.ndarray | None = None
    n_rows_in: int = 0
    n_rows_out: int = 0
    quality: QualityProfile | None = None

    @property
    def n_outlier_rows(self) -> int:
        """Rows removed by the outlier filters."""
        return self.n_rows_in - self.n_rows_out


@dataclass
class AnalyticsOutcome:
    """What tier 2 produced."""

    table: Table  # analysis selection with the cluster column attached
    correlation: CorrelationMatrix
    clustering: AutoKMeansResult
    discretizations: dict[str, Discretization] = field(default_factory=dict)
    rules: list[AssociationRule] = field(default_factory=list)

    @property
    def cluster_column(self) -> str:
        """Name of the attached cluster-label column."""
        return "cluster"


class Indice:
    """INformative DynamiC dashboard Engine (reproduction).

    Parameters
    ----------
    collection:
        The EPC collection (table + referenced street map + hierarchy).
        The table may be dirty — that is the expected input.
    config:
        All pipeline knobs; defaults reproduce the Section 3 case study.
    """

    def __init__(self, collection: EpcCollection, config: IndiceConfig | None = None):
        self.collection = collection
        self.config = config or IndiceConfig()
        self.log = ProvenanceLog()
        self._preprocessed: PreprocessingOutcome | None = None
        self._analyzed: AnalyticsOutcome | None = None

    # ------------------------------------------------------------------
    # Tier 1: data pre-processing
    # ------------------------------------------------------------------

    def preprocess(self, table: Table | None = None) -> PreprocessingOutcome:
        """Clean geospatial attributes, then drop outlier rows.

        Rows flagged by the configured univariate detector on any analysis
        attribute are removed ("values labelled as outliers are not
        considered in the subsequent steps", Section 2.1.2); the optional
        DBSCAN pass then removes multivariate noise over the standardized
        analysis features.
        """
        cfg = self.config
        table = table if table is not None else self.collection.table
        n_in = table.n_rows

        # diagnostic pass first: how dirty is the input? (never mutates)
        quality = assess_quality(
            table,
            schema=self.collection.schema,
            hierarchy=self.collection.hierarchy,
            attributes=list(cfg.features)
            + [cfg.response, "certificate_id", "latitude", "longitude"],
        )
        self.log.record(
            "preprocessing", "quality_assessment",
            missing_rate=round(quality.overall_missing_rate(), 4),
            unlocated=quality.n_unlocated,
            outside_region=quality.n_outside_region,
            duplicates=quality.n_duplicate_certificates,
        )

        # The referenced street map covers the city under analysis (the paper
        # downloads it per city), so cleaning is scoped to that city's rows:
        # matching out-of-city addresses against it would mis-geocode them.
        city_mask = Comparison("city", "==", cfg.city).mask(table)
        city_rows = np.flatnonzero(city_mask)
        geocoder = SimulatedGeocoder(
            self.collection.street_map, quota=cfg.geocoder_quota
        )
        cleaner = AddressCleaner(self.collection.street_map, cfg.cleaning, geocoder)
        report = cleaner.clean_table(table.take(city_rows))
        self.log.record(
            "preprocessing", "geospatial_cleaning",
            city=cfg.city,
            phi=cfg.cleaning.phi,
            rows_cleaned=len(city_rows),
            resolution_rate=round(report.resolution_rate(), 4),
            geocoder_requests=report.geocoder_requests,
        )
        cleaned = self._scatter_cleaned(table, report.table, city_rows)

        analysis_attributes = tuple(cfg.features) + (cfg.response,)
        keep = np.ones(cleaned.n_rows, dtype=bool)
        univariate: dict[str, OutlierResult] = {}
        for name in analysis_attributes:
            method, params = cfg.outlier_overrides.get(
                name, (cfg.outlier_method, cfg.outlier_params)
            )
            result = detect_outliers(cleaned[name], method, **params)
            univariate[name] = result
            keep &= ~result.mask
            self.log.record(
                "preprocessing", "univariate_outliers",
                attribute=name, method=method.value,
                flagged=result.n_outliers,
            )
        filtered = cleaned.where(keep)

        noise_mask = None
        if cfg.run_multivariate_outliers:
            matrix, __ = standardize(filtered.to_matrix(list(cfg.features)))
            estimate = estimate_dbscan_params(matrix)
            result = dbscan(matrix, estimate.eps, estimate.min_points)
            complete = ~np.isnan(matrix).any(axis=1)
            noise_mask = result.noise_mask & complete  # missing rows are kept
            filtered = filtered.where(~noise_mask)
            self.log.record(
                "preprocessing", "multivariate_outliers",
                eps=round(estimate.eps, 4), min_points=estimate.min_points,
                flagged=int(noise_mask.sum()),
            )

        outcome = PreprocessingOutcome(
            table=filtered,
            cleaning_report=report,
            univariate_outliers=univariate,
            multivariate_noise=noise_mask,
            n_rows_in=n_in,
            n_rows_out=filtered.n_rows,
            quality=quality,
        )
        self._preprocessed = outcome
        return outcome

    # ------------------------------------------------------------------
    # Tier 2: data selection and analytics
    # ------------------------------------------------------------------

    def select_case_study(self, table: Table | None = None) -> Table:
        """The paper's selection: configured city + building type."""
        cfg = self.config
        table = table if table is not None else self._require_preprocessed().table
        query = Query(
            where=Comparison("city", "==", cfg.city)
            & Comparison("building_type", "==", cfg.building_type)
        )
        result = QueryEngine(table).execute(query)
        self.log.record(
            "selection", "case_study",
            city=cfg.city, building_type=cfg.building_type,
            rows=result.n_rows, selectivity=round(result.selectivity, 4),
        )
        return result.table

    def analyze(self, table: Table | None = None) -> AnalyticsOutcome:
        """Correlation check, clustering, discretization and rule mining."""
        cfg = self.config
        table = table if table is not None else self.select_case_study()

        correlation = correlation_matrix(table, list(cfg.features))
        self.log.record(
            "analytics", "correlation",
            max_abs_rho=round(correlation.max_abs_off_diagonal(), 4),
            eligible=correlation.is_eligible(cfg.correlation_threshold),
        )

        matrix, __ = standardize(table.to_matrix(list(cfg.features)))
        clustering = kmeans_auto(
            matrix, cfg.k_range, seed=cfg.seed, n_init=cfg.kmeans_n_init
        )
        self.log.record(
            "analytics", "kmeans",
            chosen_k=clustering.chosen_k,
            sse=round(clustering.result.sse, 2),
        )
        cluster_values = np.array(
            [str(c) if c >= 0 else None for c in clustering.result.labels],
            dtype=object,
        )
        with_clusters = table.with_column(
            Column("cluster", ColumnKind.CATEGORICAL, cluster_values)
        )

        plan = {
            name: classes
            for name, classes in cfg.discretization_plan.items()
            if name in table
        }
        discretized, discretizations = discretize_table(
            with_clusters, plan, response=cfg.response
        )
        self.log.record(
            "analytics", "discretization",
            plan={k: v for k, v in plan.items()},
        )

        miner = RuleMiner(cfg.rule_constraints, cfg.rule_template)
        rule_attributes = [n for n in plan if n != cfg.response] + [cfg.response]
        rules = miner.mine(discretized, rule_attributes)
        self.log.record("analytics", "rules", mined=len(rules))

        outcome = AnalyticsOutcome(
            table=with_clusters,
            correlation=correlation,
            clustering=clustering,
            discretizations=discretizations,
            rules=rules,
        )
        self._analyzed = outcome
        return outcome

    # ------------------------------------------------------------------
    # Tier 3: data and knowledge visualization
    # ------------------------------------------------------------------

    def build_dashboard(
        self,
        stakeholder: Stakeholder,
        granularity: Granularity | None = None,
        analytics: AnalyticsOutcome | None = None,
    ) -> Dashboard:
        """An informative dashboard for *stakeholder* at *granularity*.

        All dashboards combine the energy maps with the distribution /
        correlation / rules panels the stakeholder profile recommends.
        """
        cfg = self.config
        analytics = analytics or self._require_analyzed()
        profile = profile_for(stakeholder)
        granularity = granularity or profile.default_granularity
        table = analytics.table
        hierarchy = self.collection.hierarchy

        builder = DashboardBuilder(
            f"INDICE — {cfg.city} energy overview "
            f"({stakeholder.value.replace('_', ' ')})",
            f"{table.n_rows} certificates of type {cfg.building_type}; "
            f"{granularity.name.lower()} granularity",
        )

        lat, lon = table["latitude"], table["longitude"]
        response = table[cfg.response]

        if granularity in (Granularity.CITY, Granularity.DISTRICT, Granularity.NEIGHBOURHOOD):
            level = granularity if granularity != Granularity.CITY else Granularity.DISTRICT
            region_column = (
                "district" if level is Granularity.DISTRICT else "neighbourhood"
            )
            means = table.aggregate(region_column, cfg.response, np.mean)
            means.pop(None, None)
            if granularity is Granularity.NEIGHBOURHOOD:
                # Figure 2 (upper): area averages with per-certificate markers
                builder.add_map(
                    choropleth_with_scatter_map(
                        hierarchy, level, means, lat, lon, response, cfg.response,
                    ),
                    caption="Area averages (choropleth) with the scatter marker "
                            "of each single certificate on one shared scale.",
                )
            else:
                builder.add_map(
                    choropleth_map(hierarchy, level, means, cfg.response),
                    caption="Each area is colored by its average value "
                            "(choropleth energy map).",
                )
        builder.add_map(
            cluster_marker_map(
                lat, lon, response, cfg.response, granularity,
                hierarchy=hierarchy,
                cluster_labels=analytics.clustering.result.labels,
            ),
            caption="Marker size and inner label give the number of aggregated "
                    "certificates; fill encodes the mean response; stroke the "
                    "analytic cluster.",
        )
        if granularity in (Granularity.NEIGHBOURHOOD, Granularity.UNIT):
            builder.add_map(
                scatter_map(
                    lat, lon, response, cfg.response,
                    hierarchy=hierarchy, max_points=4000,
                ),
                caption="One point per certificate (housing-unit zoom).",
            )

        hists = grouped_histograms(table, cfg.response, by="cluster")
        hists.pop(None, None)
        builder.add_grouped_histogram(
            hists, cfg.response,
            caption="Response distribution inside each K-means cluster.",
        )
        builder.add_correlation_matrix(
            analytics.correlation,
            caption="Gray level encodes |Pearson rho|; a light matrix means the "
                    "feature set is eligible for clustering.",
        )
        builder.add_rules_table(
            RuleMiner.top_k(analytics.rules, 15, by="lift"),
            caption="Top correlations as association rules "
                    "(support / confidence / lift / conviction).",
        )
        builder.add_summary_table(
            summarize_table(table, list(cfg.features) + [cfg.response]),
            caption="Count, mean, standard deviation and quartiles of the "
                    "selected attributes.",
        )
        if stakeholder is Stakeholder.ENERGY_SCIENTIST:
            # the expert's whiskers plot of the response with its outliers
            box = boxplot_outliers(response)
            builder.dashboard.add(
                Panel(
                    f"Boxplot of {cfg.response}",
                    "Whiskers plot with Tukey fences; red points are values "
                    "the graphic method would filter.",
                    boxplot_chart(box, response, cfg.response),
                    kind="frequency_distribution",
                )
            )
        if stakeholder is Stakeholder.PUBLIC_ADMINISTRATION and "certificate_year" in table:
            timeline = temporal_summary(table, response=cfg.response)
            builder.add_bar_chart(
                [(str(s.year), s.n_certificates) for s in timeline.slices],
                "certificate_year",
                caption="Certificates issued per year in the selection "
                        f"(mean {cfg.response} trend: "
                        f"{timeline.response_trend():+.1f}/year).",
            )

        self.log.record(
            "visualization", "dashboard",
            stakeholder=stakeholder.value, granularity=granularity.name,
            panels=len(builder.dashboard.panels),
        )
        return builder.build()

    def mine_rules_by_group(
        self,
        by: str,
        analytics: AnalyticsOutcome | None = None,
        min_group_size: int = 100,
    ) -> dict[str, list[AssociationRule]]:
        """Rules mined separately per group ("Rules can be extracted at
        different granularity levels, e.g., for each city, neighbourhood or
        downstream of the clustering algorithm" — Section 2.3).

        *by* is a categorical column of the analyzed table, typically
        ``"district"``, ``"neighbourhood"`` or ``"cluster"``.  Groups
        smaller than *min_group_size* are skipped (their supports would be
        meaningless).
        """
        cfg = self.config
        analytics = analytics or self._require_analyzed()
        plan = {
            name: classes
            for name, classes in cfg.discretization_plan.items()
            if name in analytics.table
        }
        miner = RuleMiner(cfg.rule_constraints, cfg.rule_template)
        attributes = [n for n in plan if n != cfg.response] + [cfg.response]
        out: dict[str, list[AssociationRule]] = {}
        for key, group in analytics.table.group_by(by).items():
            if key is None or group.n_rows < min_group_size:
                continue
            discretized, __ = discretize_table(group, plan, response=cfg.response)
            out[str(key)] = miner.mine(discretized, attributes)
            self.log.record(
                "analytics", "rules_by_group",
                group=str(key), rows=group.n_rows, mined=len(out[str(key)]),
            )
        return out

    def build_navigable_dashboard(
        self,
        stakeholder: Stakeholder,
        granularities: tuple[Granularity, ...] = (
            Granularity.CITY,
            Granularity.DISTRICT,
            Granularity.NEIGHBOURHOOD,
            Granularity.UNIT,
        ),
        analytics: AnalyticsOutcome | None = None,
    ) -> NavigableDashboard:
        """The paper's navigable dashboard: one tab per zoom level.

        Each tab holds the full stakeholder dashboard rendered at that
        granularity; switching tabs is the drill-down of Section 2.3.
        """
        analytics = analytics or self._require_analyzed()
        nav = NavigableDashboard(
            title=f"INDICE — {self.config.city} navigable energy maps "
                  f"({stakeholder.value.replace('_', ' ')})",
            subtitle="Switch tabs to change the analysis zoom "
                     "(city → district → neighbourhood → housing unit).",
        )
        for granularity in granularities:
            dash = self.build_dashboard(stakeholder, granularity, analytics)
            nav.add_tab(granularity.name.title(), dash)
        return nav

    # ------------------------------------------------------------------

    def run(
        self,
        stakeholder: Stakeholder = Stakeholder.PUBLIC_ADMINISTRATION,
        granularity: Granularity | None = None,
    ) -> Dashboard:
        """The full pipeline: preprocess -> select -> analyze -> dashboard."""
        self.preprocess()
        self.analyze()
        return self.build_dashboard(stakeholder, granularity)

    @staticmethod
    def _scatter_cleaned(table: Table, cleaned_city: Table, city_rows: np.ndarray) -> Table:
        """Write the cleaned city rows back into the full table (the
        geospatial attributes only; everything else is untouched)."""
        out = table
        for name in ("address", "house_number", "zip_code", "latitude", "longitude"):
            column = table.column(name)
            values = column.values.copy()
            values[city_rows] = cleaned_city[name]
            out = out.with_column(Column(name, column.kind, values))
        return out.select(table.column_names)

    def _require_preprocessed(self) -> PreprocessingOutcome:
        if self._preprocessed is None:
            raise RuntimeError("call preprocess() first")
        return self._preprocessed

    def _require_analyzed(self) -> AnalyticsOutcome:
        if self._analyzed is None:
            raise RuntimeError("call analyze() first")
        return self._analyzed
