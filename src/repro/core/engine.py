"""The INDICE engine: the full Figure 1 pipeline behind one façade.

``Indice`` wires the three tiers together:

1. **Data pre-processing** — geospatial cleaning against the referenced
   street map (with the metered geocoder fallback), then univariate outlier
   filtering on the analysis attributes and optional DBSCAN multivariate
   filtering with auto-estimated parameters;
2. **Data selection and analytics** — the case-study selection (city +
   building type), correlation-eligibility check, K-means with
   elbow-selected K, CART discretization and association-rule mining;
3. **Data and knowledge visualization** — stakeholder-tailored dashboards
   combining the three energy maps, frequency distributions, the rules
   table and the correlation matrix.

Each phase returns a typed outcome object and appends to the session's
provenance log, so the pipeline can be run piecemeal (as the benchmarks
do) or end-to-end via :meth:`Indice.run`.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

import numpy as np

from ..analytics.correlation import CorrelationMatrix, correlation_matrix
from ..analytics.discretize import Discretization, discretize_table
from ..analytics.kmeans import AutoKMeansResult, kmeans_auto, standardize
from ..analytics.rules import AssociationRule, RuleMiner
from ..analytics.stats import grouped_histograms, summarize_table
from ..analytics.temporal import temporal_summary
from ..dashboard.charts import boxplot_chart
from ..dashboard.dashboard import Panel
from ..preprocessing.outliers import boxplot_outliers
from ..dataset.synthetic import EpcCollection
from ..dataset.table import Column, ColumnKind, Table
from ..dashboard.dashboard import Dashboard, DashboardBuilder, NavigableDashboard
from ..dashboard.maps import (
    choropleth_map,
    choropleth_with_scatter_map,
    cluster_marker_map,
    scatter_map,
)
from ..checks import effectaudit as _effectaudit
from ..faults.plan import FaultInjector
from ..faults.policy import Deadline
from ..geo.regions import Granularity
from ..perf.cache import StageCache, fingerprint_table, fingerprint_value
from ..perf.parallel import ParallelMap, feature_matrix, grouped_mean
from ..preprocessing.address_cleaner import AddressCleaner, CleaningReport
from ..preprocessing.dbscan import dbscan
from ..preprocessing.geocoder import SimulatedGeocoder
from ..preprocessing.kdistance import estimate_dbscan_params
from ..preprocessing.outliers import OutlierResult, detect_outliers
from ..preprocessing.quality import QualityProfile, assess_quality
from ..query.engine import Query, QueryEngine
from ..query.predicates import Comparison
from ..query.stakeholders import Stakeholder, profile_for
from .config import IndiceConfig
from .session import ProvenanceLog

__all__ = ["Indice", "PreprocessingOutcome", "AnalyticsOutcome"]

#: Config fields the preprocessing outcome depends on.  Stage-cache keys
#: fingerprint only these, so changing an analytics knob (e.g. ``k_range``)
#: never invalidates a cached preprocessing result — and vice versa.
#: Perf-only knobs (``n_jobs``, cache settings) appear in neither.
_PREPROCESS_FIELDS = (
    "city",
    "features",
    "response",
    "cleaning",
    "geocoder_quota",
    "outlier_method",
    "outlier_params",
    "outlier_overrides",
    "run_multivariate_outliers",
)

#: Config fields the analytics outcome depends on.
_ANALYZE_FIELDS = (
    "city",
    "building_type",
    "features",
    "response",
    "k_range",
    "kmeans_n_init",
    "seed",
    "discretization_plan",
    "rule_constraints",
    "rule_template",
    "correlation_threshold",
)


@dataclass
class PreprocessingOutcome:
    """What tier 1 produced."""

    table: Table
    cleaning_report: CleaningReport
    univariate_outliers: dict[str, OutlierResult] = field(default_factory=dict)
    multivariate_noise: np.ndarray | None = None
    n_rows_in: int = 0
    n_rows_out: int = 0
    quality: QualityProfile | None = None

    @property
    def n_outlier_rows(self) -> int:
        """Rows removed by the outlier filters."""
        return self.n_rows_in - self.n_rows_out


@dataclass
class AnalyticsOutcome:
    """What tier 2 produced."""

    table: Table  # analysis selection with the cluster column attached
    correlation: CorrelationMatrix
    clustering: AutoKMeansResult
    discretizations: dict[str, Discretization] = field(default_factory=dict)
    rules: list[AssociationRule] = field(default_factory=list)
    #: Memo for the dashboard invariants below (not part of the outcome's
    #: value; excluded from comparison so cached outcomes stay equal).
    _memo: dict = field(default_factory=dict, repr=False, compare=False)

    @property
    def cluster_column(self) -> str:
        """Name of the attached cluster-label column."""
        return "cluster"

    # -- per-outcome dashboard invariants ------------------------------------
    #
    # Every tab of the navigable dashboard renders the same analytics table;
    # the aggregates below depend only on (outcome, response), never on the
    # tab's granularity, so they are computed once and memoized here instead
    # of once per tab.

    def region_means(
        self, region_column: str, response: str, executor=None
    ) -> dict:
        """Mean *response* per region (memoized; missing regions dropped).

        *executor* (a :class:`~repro.perf.parallel.ParallelMap`, as the
        engine passes when building dashboards) routes the aggregation
        through the columnar parallel path; results are bit-identical
        either way, so the memo never cares which path filled it.
        """
        key = ("region_means", region_column, response)
        if key not in self._memo:
            means = grouped_mean(self.table, region_column, response, executor)
            means.pop(None, None)
            self._memo[key] = means
        return self._memo[key]

    def response_histograms(self, response: str, by: str = "cluster") -> dict:
        """Histogram of *response* per *by* group (memoized; no-key dropped)."""
        key = ("histograms", response, by)
        if key not in self._memo:
            hists = grouped_histograms(self.table, response, by=by)
            hists.pop(None, None)
            self._memo[key] = hists
        return self._memo[key]

    def summary(self, attributes: tuple[str, ...]):
        """Descriptive statistics of *attributes* (memoized)."""
        key = ("summary", attributes)
        if key not in self._memo:
            self._memo[key] = summarize_table(self.table, list(attributes))
        return self._memo[key]


class Indice:
    """INformative DynamiC dashboard Engine (reproduction).

    Parameters
    ----------
    collection:
        The EPC collection (table + referenced street map + hierarchy).
        The table may be dirty — that is the expected input.
    config:
        All pipeline knobs; defaults reproduce the Section 3 case study.
    cache:
        Optional externally-shared :class:`StageCache`.  By default the
        engine builds its own when ``config.stage_cache`` is on (backed by
        ``config.cache_dir`` when set); pass an instance to share cached
        stage outcomes across engines, or ``config.stage_cache=False`` to
        disable memoization entirely.
    injector:
        Optional :class:`~repro.faults.plan.FaultInjector` threaded
        through every fault site the engine owns (geocoder, stage cache,
        parallel executor).  ``None`` (the default) leaves the hooks
        dormant at the cost of one identity comparison each.
    """

    def __init__(
        self,
        collection: EpcCollection,
        config: IndiceConfig | None = None,
        cache: StageCache | None = None,
        injector: FaultInjector | None = None,
    ):
        self.collection = collection
        self.config = config or IndiceConfig()
        self.log = ProvenanceLog()
        self.injector = injector
        self.cache = cache
        if self.cache is None and self.config.stage_cache:
            self.cache = StageCache(self.config.cache_dir, injector=injector)
        self.executor = ParallelMap(n_jobs=self.config.n_jobs, injector=injector)
        self._preprocessed: PreprocessingOutcome | None = None
        self._analyzed: AnalyticsOutcome | None = None

    def _config_fingerprint(self, fields: tuple[str, ...]) -> str:
        """Fingerprint of the config fields a cached stage depends on."""
        return fingerprint_value(
            {name: getattr(self.config, name) for name in fields}
        )

    # -- resilient cache access (degradations logged, never raised) -------

    def _cache_get(self, stage: str, key: str):
        """``cache.get`` with read failures recorded as degradations."""
        errors_before = self.cache.read_errors
        found, value = self.cache.get(key)
        if self.cache.read_errors > errors_before:
            self.log.record(
                stage, "degradation",
                kind="cache_read_failed",
                detail="corrupt or unreadable stage-cache entry treated "
                "as a miss; stage recomputed (results unchanged)",
            )
        return found, value

    def _cache_put(self, stage: str, key: str, value) -> None:
        """``cache.put`` with write failures recorded as degradations."""
        errors_before = self.cache.write_errors
        self.cache.put(key, value)
        if self.cache.write_errors > errors_before:
            self.log.record(
                stage, "degradation",
                kind="cache_write_failed",
                detail="stage-cache entry could not be persisted; "
                "kept in memory only",
            )

    def _stage_deadline(self) -> Deadline:
        """A fresh deadline from the configured per-stage budget."""
        return Deadline(self.config.resilience.stage_timeout_s)

    # ------------------------------------------------------------------
    # Tier 1: data pre-processing
    # ------------------------------------------------------------------

    @_effectaudit.audited("preprocess")
    def preprocess(self, table: Table | None = None) -> PreprocessingOutcome:
        """Clean geospatial attributes, then drop outlier rows.

        Rows flagged by the configured univariate detector on any analysis
        attribute are removed ("values labelled as outliers are not
        considered in the subsequent steps", Section 2.1.2); the optional
        DBSCAN pass then removes multivariate noise over the standardized
        analysis features.
        """
        cfg = self.config
        table = table if table is not None else self.collection.table
        n_in = table.n_rows
        start = time.perf_counter()
        deadline = self._stage_deadline()

        cache_key = None
        if self.cache is not None:
            cache_key = StageCache.key(
                "preprocess",
                fingerprint_table(table),
                self._config_fingerprint(_PREPROCESS_FIELDS),
            )
            found, cached = self._cache_get("preprocessing", cache_key)
            if found:
                elapsed = time.perf_counter() - start
                self.log.record(
                    "preprocessing", "stage_cache",
                    hit=True, key=cache_key,
                    elapsed_s=elapsed,
                    rows_per_s=n_in / elapsed if elapsed > 0 else None,
                )
                self._preprocessed = cached
                return cached

        # diagnostic pass first: how dirty is the input? (never mutates)
        quality = assess_quality(
            table,
            schema=self.collection.schema,
            hierarchy=self.collection.hierarchy,
            attributes=list(cfg.features)
            + [cfg.response, "certificate_id", "latitude", "longitude"],
        )
        self.log.record(
            "preprocessing", "quality_assessment",
            missing_rate=round(quality.overall_missing_rate(), 4),
            unlocated=quality.n_unlocated,
            outside_region=quality.n_outside_region,
            duplicates=quality.n_duplicate_certificates,
        )

        cleaned, report, city_rows = self._clean_city_rows(table)

        analysis_attributes = tuple(cfg.features) + (cfg.response,)
        keep = np.ones(cleaned.n_rows, dtype=bool)
        univariate: dict[str, OutlierResult] = {}
        for name in analysis_attributes:
            method, params = cfg.outlier_overrides.get(
                name, (cfg.outlier_method, cfg.outlier_params)
            )
            result = detect_outliers(cleaned[name], method, **params)
            univariate[name] = result
            keep &= ~result.mask
            self.log.record(
                "preprocessing", "univariate_outliers",
                attribute=name, method=method.value,
                flagged=result.n_outliers,
            )
        filtered = cleaned.where(keep)

        #: Degradations that change what the stage outputs (as opposed to
        #: recoveries like a cache miss or serial fallback).  A degraded
        #: outcome is never cached: the cache key promises the fault-free
        #: result, and serving a degraded one from cache would be silent.
        output_degraded = any(
            d["kind"].startswith("geocoder_") for d in report.degradations
        )

        noise_mask = None
        if cfg.run_multivariate_outliers and deadline.expired():
            output_degraded = True
            # the optional DBSCAN pass is the first thing shed under time
            # pressure; the mandatory cleaning/filtering above always runs
            self.log.record(
                "preprocessing", "degradation",
                kind="deadline_exceeded",
                detail="stage budget spent; multivariate outlier pass "
                "skipped (univariate filtering already applied)",
                budget_s=cfg.resilience.stage_timeout_s,
            )
        elif cfg.run_multivariate_outliers:
            matrix, __ = standardize(
                feature_matrix(filtered, cfg.features, self.executor)
            )
            estimate = estimate_dbscan_params(matrix)
            result = dbscan(matrix, estimate.eps, estimate.min_points)
            complete = ~np.isnan(matrix).any(axis=1)
            noise_mask = result.noise_mask & complete  # missing rows are kept
            filtered = filtered.where(~noise_mask)
            self.log.record(
                "preprocessing", "multivariate_outliers",
                eps=round(estimate.eps, 4), min_points=estimate.min_points,
                flagged=int(noise_mask.sum()),
            )

        outcome = PreprocessingOutcome(
            table=filtered,
            cleaning_report=report,
            univariate_outliers=univariate,
            multivariate_noise=noise_mask,
            n_rows_in=n_in,
            n_rows_out=filtered.n_rows,
            quality=quality,
        )
        elapsed = time.perf_counter() - start
        self.log.record(
            "preprocessing", "stage_complete",
            elapsed_s=elapsed,
            rows_per_s=n_in / elapsed if elapsed > 0 else None,
            rows_in=n_in, rows_out=filtered.n_rows,
        )
        if cache_key is not None and not output_degraded:
            self._cache_put("preprocessing", cache_key, outcome)
        self._preprocessed = outcome
        return outcome

    def _clean_city_rows(
        self, table: Table
    ) -> tuple[Table, CleaningReport, np.ndarray]:
        """Clean the configured city's rows of *table*, scatter them back.

        The referenced street map covers the city under analysis (the
        paper downloads it per city), so cleaning is scoped to that
        city's rows: matching out-of-city addresses against it would
        mis-geocode them.  Shared by the monolithic :meth:`preprocess`
        and the per-shard transform of :meth:`run_sharded` — which is
        what makes the two paths row-for-row identical.  Returns the
        full-width cleaned table, the cleaning report and the cleaned
        row indices.
        """
        cfg = self.config
        city_mask = Comparison("city", "==", cfg.city).mask(table)
        city_rows = np.flatnonzero(city_mask)
        geocoder = SimulatedGeocoder(
            self.collection.street_map, quota=cfg.geocoder_quota,
            injector=self.injector,
        )
        cleaner = AddressCleaner(
            self.collection.street_map, cfg.cleaning, geocoder,
            executor=self.executor,
            retry=cfg.resilience.retry_policy(seed=cfg.seed),
            breaker=cfg.resilience.breaker(),
        )
        clean_start = time.perf_counter()
        report = cleaner.clean_table(table.take(city_rows))
        clean_elapsed = time.perf_counter() - clean_start
        self.log.record(
            "preprocessing", "geospatial_cleaning",
            elapsed_s=clean_elapsed,
            rows_per_s=(
                len(city_rows) / clean_elapsed if clean_elapsed > 0 else None
            ),
            city=cfg.city,
            phi=cfg.cleaning.phi,
            n_jobs=self.executor.resolve_jobs(),
            rows_cleaned=len(city_rows),
            resolution_rate=round(report.resolution_rate(), 4),
            geocoder_requests=report.geocoder_requests,
        )
        for degradation in report.degradations:
            self.log.record("preprocessing", "degradation", **degradation)
        cleaned = self._scatter_cleaned(table, report.table, city_rows)
        return cleaned, report, city_rows

    def run_sharded(self, plan) -> "object":
        """Run the pipeline sharded per *plan* (out-of-core merge).

        The sharded tier extracts, cleans and spills one shard at a time
        (peak memory bounded by the largest shard), memoizes each shard
        under a shard-granular cache key, and runs the global stages on
        columns gathered back in original row order — so the outcome is
        bit-identical to the monolithic pipeline over the same rows.  See
        :mod:`repro.perf.shards`; returns its ``ShardedOutcome``.
        """
        # function-scope import: repro.perf.shards imports this module at
        # top level, so the reverse edge must stay out of the module graph
        from ..perf.shards import ShardRunner

        return ShardRunner(self, plan).run()

    # ------------------------------------------------------------------
    # Tier 2: data selection and analytics
    # ------------------------------------------------------------------

    def select_case_study(self, table: Table | None = None) -> Table:
        """The paper's selection: configured city + building type."""
        cfg = self.config
        table = table if table is not None else self._require_preprocessed().table
        query = Query(
            where=Comparison("city", "==", cfg.city)
            & Comparison("building_type", "==", cfg.building_type)
        )
        result = QueryEngine(table).execute(query)
        self.log.record(
            "selection", "case_study",
            city=cfg.city, building_type=cfg.building_type,
            rows=result.n_rows, selectivity=round(result.selectivity, 4),
        )
        return result.table

    @_effectaudit.audited("analyze")
    def analyze(self, table: Table | None = None) -> AnalyticsOutcome:
        """Correlation check, clustering, discretization and rule mining."""
        cfg = self.config
        table = table if table is not None else self.select_case_study()
        start = time.perf_counter()
        deadline = self._stage_deadline()

        cache_key = None
        if self.cache is not None:
            cache_key = StageCache.key(
                "analyze",
                fingerprint_table(table),
                self._config_fingerprint(_ANALYZE_FIELDS),
            )
            found, cached = self._cache_get("analytics", cache_key)
            if found:
                elapsed = time.perf_counter() - start
                self.log.record(
                    "analytics", "stage_cache",
                    hit=True, key=cache_key,
                    elapsed_s=elapsed,
                    rows_per_s=(
                        table.n_rows / elapsed if elapsed > 0 else None
                    ),
                )
                self._analyzed = cached
                return cached

        correlation = correlation_matrix(table, list(cfg.features))
        self.log.record(
            "analytics", "correlation",
            max_abs_rho=round(correlation.max_abs_off_diagonal(), 4),
            eligible=correlation.is_eligible(cfg.correlation_threshold),
        )

        kmeans_start = time.perf_counter()
        matrix, __ = standardize(
            feature_matrix(table, cfg.features, self.executor)
        )
        clustering = kmeans_auto(
            matrix, cfg.k_range, seed=cfg.seed, n_init=cfg.kmeans_n_init
        )
        kmeans_elapsed = time.perf_counter() - kmeans_start
        self.log.record(
            "analytics", "kmeans",
            elapsed_s=kmeans_elapsed,
            rows_per_s=(
                table.n_rows / kmeans_elapsed if kmeans_elapsed > 0 else None
            ),
            chosen_k=clustering.chosen_k,
            sse=round(clustering.result.sse, 2),
        )
        cluster_values = np.array(
            [str(c) if c >= 0 else None for c in clustering.result.labels],
            dtype=object,
        )
        with_clusters = table.with_column(
            Column("cluster", ColumnKind.CATEGORICAL, cluster_values)
        )

        plan = {
            name: classes
            for name, classes in cfg.discretization_plan.items()
            if name in table
        }
        discretized, discretizations = discretize_table(
            with_clusters, plan, response=cfg.response
        )
        self.log.record(
            "analytics", "discretization",
            plan={k: v for k, v in plan.items()},
        )

        output_degraded = False
        if deadline.expired():
            # rule mining is the sheddable tail of the analytics stage;
            # clustering and correlation (which every dashboard panel
            # needs) always run
            rules: list[AssociationRule] = []
            output_degraded = True
            self.log.record(
                "analytics", "degradation",
                kind="deadline_exceeded",
                detail="stage budget spent; association-rule mining "
                "skipped (dashboards render an empty rules table)",
                budget_s=cfg.resilience.stage_timeout_s,
            )
        else:
            miner = RuleMiner(cfg.rule_constraints, cfg.rule_template)
            rule_attributes = [n for n in plan if n != cfg.response] + [cfg.response]
            rules = miner.mine(discretized, rule_attributes)
            self.log.record("analytics", "rules", mined=len(rules))

        outcome = AnalyticsOutcome(
            table=with_clusters,
            correlation=correlation,
            clustering=clustering,
            discretizations=discretizations,
            rules=rules,
        )
        elapsed = time.perf_counter() - start
        self.log.record(
            "analytics", "stage_complete",
            elapsed_s=elapsed,
            rows_per_s=table.n_rows / elapsed if elapsed > 0 else None,
            rows=table.n_rows,
        )
        if cache_key is not None and not output_degraded:
            self._cache_put("analytics", cache_key, outcome)
        self._analyzed = outcome
        return outcome

    # ------------------------------------------------------------------
    # Tier 3: data and knowledge visualization
    # ------------------------------------------------------------------

    def build_dashboard(
        self,
        stakeholder: Stakeholder,
        granularity: Granularity | None = None,
        analytics: AnalyticsOutcome | None = None,
    ) -> Dashboard:
        """An informative dashboard for *stakeholder* at *granularity*.

        All dashboards combine the energy maps with the distribution /
        correlation / rules panels the stakeholder profile recommends.
        """
        cfg = self.config
        analytics = analytics or self._require_analyzed()
        profile = profile_for(stakeholder)
        granularity = granularity or profile.default_granularity
        table = analytics.table
        hierarchy = self.collection.hierarchy

        builder = DashboardBuilder(
            f"INDICE — {cfg.city} energy overview "
            f"({stakeholder.value.replace('_', ' ')})",
            f"{table.n_rows} certificates of type {cfg.building_type}; "
            f"{granularity.name.lower()} granularity",
        )

        lat, lon = table["latitude"], table["longitude"]
        response = table[cfg.response]

        if granularity in (Granularity.CITY, Granularity.DISTRICT, Granularity.NEIGHBOURHOOD):
            level = granularity if granularity != Granularity.CITY else Granularity.DISTRICT
            region_column = (
                "district" if level is Granularity.DISTRICT else "neighbourhood"
            )
            means = analytics.region_means(
                region_column, cfg.response, self.executor
            )
            if granularity is Granularity.NEIGHBOURHOOD:
                # Figure 2 (upper): area averages with per-certificate markers
                builder.add_map(
                    choropleth_with_scatter_map(
                        hierarchy, level, means, lat, lon, response, cfg.response,
                    ),
                    caption="Area averages (choropleth) with the scatter marker "
                            "of each single certificate on one shared scale.",
                )
            else:
                builder.add_map(
                    choropleth_map(hierarchy, level, means, cfg.response),
                    caption="Each area is colored by its average value "
                            "(choropleth energy map).",
                )
        builder.add_map(
            cluster_marker_map(
                lat, lon, response, cfg.response, granularity,
                hierarchy=hierarchy,
                cluster_labels=analytics.clustering.result.labels,
            ),
            caption="Marker size and inner label give the number of aggregated "
                    "certificates; fill encodes the mean response; stroke the "
                    "analytic cluster.",
        )
        if granularity in (Granularity.NEIGHBOURHOOD, Granularity.UNIT):
            builder.add_map(
                scatter_map(
                    lat, lon, response, cfg.response,
                    hierarchy=hierarchy, max_points=4000,
                ),
                caption="One point per certificate (housing-unit zoom).",
            )

        builder.add_grouped_histogram(
            analytics.response_histograms(cfg.response),
            cfg.response,
            caption="Response distribution inside each K-means cluster.",
        )
        builder.add_correlation_matrix(
            analytics.correlation,
            caption="Gray level encodes |Pearson rho|; a light matrix means the "
                    "feature set is eligible for clustering.",
        )
        builder.add_rules_table(
            RuleMiner.top_k(analytics.rules, 15, by="lift"),
            caption="Top correlations as association rules "
                    "(support / confidence / lift / conviction).",
        )
        builder.add_summary_table(
            analytics.summary(tuple(cfg.features) + (cfg.response,)),
            caption="Count, mean, standard deviation and quartiles of the "
                    "selected attributes.",
        )
        if stakeholder is Stakeholder.ENERGY_SCIENTIST:
            # the expert's whiskers plot of the response with its outliers
            box = boxplot_outliers(response)
            builder.dashboard.add(
                Panel(
                    f"Boxplot of {cfg.response}",
                    "Whiskers plot with Tukey fences; red points are values "
                    "the graphic method would filter.",
                    boxplot_chart(box, response, cfg.response),
                    kind="frequency_distribution",
                )
            )
        if stakeholder is Stakeholder.PUBLIC_ADMINISTRATION and "certificate_year" in table:
            timeline = temporal_summary(table, response=cfg.response)
            builder.add_bar_chart(
                [(str(s.year), s.n_certificates) for s in timeline.slices],
                "certificate_year",
                caption="Certificates issued per year in the selection "
                        f"(mean {cfg.response} trend: "
                        f"{timeline.response_trend():+.1f}/year).",
            )

        self.log.record(
            "visualization", "dashboard",
            stakeholder=stakeholder.value, granularity=granularity.name,
            panels=len(builder.dashboard.panels),
        )
        return builder.build()

    def mine_rules_by_group(
        self,
        by: str,
        analytics: AnalyticsOutcome | None = None,
        min_group_size: int = 100,
    ) -> dict[str, list[AssociationRule]]:
        """Rules mined separately per group ("Rules can be extracted at
        different granularity levels, e.g., for each city, neighbourhood or
        downstream of the clustering algorithm" — Section 2.3).

        *by* is a categorical column of the analyzed table, typically
        ``"district"``, ``"neighbourhood"`` or ``"cluster"``.  Groups
        smaller than *min_group_size* are skipped (their supports would be
        meaningless).
        """
        cfg = self.config
        analytics = analytics or self._require_analyzed()
        plan = {
            name: classes
            for name, classes in cfg.discretization_plan.items()
            if name in analytics.table
        }
        miner = RuleMiner(cfg.rule_constraints, cfg.rule_template)
        attributes = [n for n in plan if n != cfg.response] + [cfg.response]
        out: dict[str, list[AssociationRule]] = {}
        for key, group in analytics.table.group_by(by).items():
            if key is None or group.n_rows < min_group_size:
                continue
            discretized, __ = discretize_table(group, plan, response=cfg.response)
            out[str(key)] = miner.mine(discretized, attributes)
            self.log.record(
                "analytics", "rules_by_group",
                group=str(key), rows=group.n_rows, mined=len(out[str(key)]),
            )
        return out

    def build_navigable_dashboard(
        self,
        stakeholder: Stakeholder,
        granularities: tuple[Granularity, ...] = (
            Granularity.CITY,
            Granularity.DISTRICT,
            Granularity.NEIGHBOURHOOD,
            Granularity.UNIT,
        ),
        analytics: AnalyticsOutcome | None = None,
    ) -> NavigableDashboard:
        """The paper's navigable dashboard: one tab per zoom level.

        Each tab holds the full stakeholder dashboard rendered at that
        granularity; switching tabs is the drill-down of Section 2.3.
        """
        analytics = analytics or self._require_analyzed()
        nav = NavigableDashboard(
            title=f"INDICE — {self.config.city} navigable energy maps "
                  f"({stakeholder.value.replace('_', ' ')})",
            subtitle="Switch tabs to change the analysis zoom "
                     "(city → district → neighbourhood → housing unit).",
        )
        for granularity in granularities:
            dash = self.build_dashboard(stakeholder, granularity, analytics)
            nav.add_tab(granularity.name.title(), dash)
        return nav

    # ------------------------------------------------------------------

    def run(
        self,
        stakeholder: Stakeholder = Stakeholder.PUBLIC_ADMINISTRATION,
        granularity: Granularity | None = None,
    ) -> Dashboard:
        """The full pipeline: preprocess -> select -> analyze -> dashboard."""
        self.preprocess()
        self.analyze()
        return self.build_dashboard(stakeholder, granularity)

    @staticmethod
    def _scatter_cleaned(table: Table, cleaned_city: Table, city_rows: np.ndarray) -> Table:
        """Write the cleaned city rows back into the full table (the
        geospatial attributes only; everything else is untouched)."""
        out = table
        for name in ("address", "house_number", "zip_code", "latitude", "longitude"):
            column = table.column(name)
            values = column.values.copy()
            values[city_rows] = cleaned_city[name]
            out = out.with_column(Column(name, column.kind, values))
        return out.select(table.column_names)

    def analysis_version(self) -> str:
        """Content-addressed version of the current analyzed outcome.

        The serving tier keys its immutable artifact store on this: the
        same (analyzed table, analytics config) always yields the same
        version, so pre-rendered artifacts can be reused across restarts,
        while any change that could alter a dashboard re-keys the store —
        which is what makes a graceful reload safe to skip when nothing
        actually changed.  Raises like :meth:`_require_analyzed` when the
        session has not been analyzed yet.
        """
        outcome = self._require_analyzed()
        return fingerprint_value(
            {
                "table": fingerprint_table(outcome.table),
                "analytics_config": self._config_fingerprint(_ANALYZE_FIELDS),
                "n_rules": len(outcome.rules),
            }
        )[:16]

    def _require_preprocessed(self) -> PreprocessingOutcome:
        if self._preprocessed is None:
            raise RuntimeError("call preprocess() first")
        return self._preprocessed

    def _require_analyzed(self) -> AnalyticsOutcome:
        if self._analyzed is None:
            raise RuntimeError("call analyze() first")
        return self._analyzed
