"""INDICE core: configuration, sessions and the pipeline engine."""

from .config import DEFAULT_DISCRETIZATION_PLAN, IndiceConfig
from .engine import AnalyticsOutcome, Indice, PreprocessingOutcome
from .session import ProvenanceLog, ProvenanceStep
from .autoconfig import AttributeAdvice, ConfigAdvice, suggest_config
from .report import generate_report

__all__ = [
    "DEFAULT_DISCRETIZATION_PLAN",
    "IndiceConfig",
    "AnalyticsOutcome",
    "Indice",
    "PreprocessingOutcome",
    "ProvenanceLog",
    "ProvenanceStep",
    "AttributeAdvice",
    "ConfigAdvice",
    "suggest_config",
    "generate_report",
]
