"""Incremental analysis cache: per-file summaries keyed by content hash.

Same discipline as :mod:`repro.perf.cache` (the stage cache): a cache
entry is valid iff a fingerprint of *everything that influenced it*
matches — here the file's bytes plus an analysis fingerprint covering
the analyzer's own source and the selected rule set, so editing a rule
(or this module) invalidates every summary at once.  Writes are atomic
(temp file + ``os.replace``) and a corrupt or version-skewed cache file
degrades to a full re-analysis, never to an error: the cache must not
be able to change or break an analysis, only speed it up.

The payload is the path-free side of :class:`~repro.checks.project.FileSummary`
(facts, per-file findings, pragmas, parse error), so a warm run rebuilds
the whole :class:`~repro.checks.project.ProjectIndex` — and re-checks
every cross-module contract — without parsing a single unchanged file.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
from pathlib import Path
from typing import Sequence

from .model import Rule

__all__ = ["AnalysisCache", "analysis_fingerprint", "content_hash"]

#: Bump when the cache file layout changes.
CACHE_VERSION = 1


def content_hash(data: bytes) -> str:
    """The cache key of one file's bytes."""
    return hashlib.sha256(data).hexdigest()


def analysis_fingerprint(rules: Sequence[Rule]) -> str:
    """A digest of the analyzer itself: its source plus the rule set.

    Any edit to the ``repro.checks`` package or a different ``--select``
    changes the fingerprint, which invalidates the whole cache — the
    per-file entries only ever need to match bytes against bytes.
    """
    digest = hashlib.sha256()
    package_root = Path(__file__).parent
    for source in sorted(package_root.rglob("*.py")):
        digest.update(source.name.encode())
        digest.update(source.read_bytes())
    for code in sorted(rule.code for rule in rules):
        digest.update(code.encode())
    return digest.hexdigest()


class AnalysisCache:
    """One JSON file of per-file analysis summaries.

    Parameters
    ----------
    path:
        The cache file location (created on :meth:`save`).
    fingerprint:
        The :func:`analysis_fingerprint` of the running analyzer; a file
        written under a different fingerprint is discarded wholesale.
    """

    def __init__(self, path: str | Path, fingerprint: str):
        self.path = Path(path)
        self.fingerprint = fingerprint
        self.hits = 0
        self.misses = 0
        self._entries: dict[str, dict] = {}
        self._dirty = False
        self._load()

    def _load(self) -> None:
        try:
            payload = json.loads(self.path.read_text(encoding="utf-8"))
        except FileNotFoundError:
            return
        except Exception:  # repro: noqa[EXC001] — corrupt cache degrades to a full re-analysis, never an error
            return
        if not isinstance(payload, dict):
            return
        if payload.get("version") != CACHE_VERSION:
            return
        if payload.get("fingerprint") != self.fingerprint:
            return  # analyzer or rule set changed: all entries are stale
        entries = payload.get("entries")
        if isinstance(entries, dict):
            self._entries = entries

    def get(self, digest: str) -> dict | None:
        """The cached summary entry for one content hash, if fresh."""
        entry = self._entries.get(digest)
        if entry is None:
            self.misses += 1
            return None
        self.hits += 1
        return entry

    def put(self, digest: str, entry: dict) -> None:
        """Record the summary entry of one analyzed file."""
        self._entries[digest] = entry
        self._dirty = True

    def save(self) -> None:
        """Atomically persist the cache (temp file + rename)."""
        if not self._dirty:
            return
        payload = {
            "version": CACHE_VERSION,
            "fingerprint": self.fingerprint,
            "entries": self._entries,
        }
        self.path.parent.mkdir(parents=True, exist_ok=True)
        handle, tmp_name = tempfile.mkstemp(
            dir=self.path.parent, suffix=".tmp"
        )
        try:
            with os.fdopen(handle, "w", encoding="utf-8") as tmp:
                json.dump(payload, tmp)
            os.replace(tmp_name, self.path)
        except OSError:
            # a failed write leaves the old cache intact; drop the temp
            try:
                os.unlink(tmp_name)
            except OSError:
                pass
            raise
        self._dirty = False

    def __len__(self) -> int:
        return len(self._entries)
