"""Runtime lock-order sanitizer — the dynamic half of the LOCK rules.

The static rules (LOCK002–LOCK004, SEM001) prove ordering over the
*code*; this module proves it over an actual *run*.  A
:class:`SanitizedLock` wraps any lock-like primitive and reports every
acquisition to a shared :class:`LockDep`, which keeps a per-thread stack
of held locks and folds each (held → acquiring) pair into an observed
order graph.  An acquisition that would close a cycle in that graph — a
lock-order inversion, the dynamic shadow of LOCK002 — raises
:class:`LockOrderError` at the acquisition site, deterministically, on
the *first* inverted attempt: no need for the unlucky interleaving that
turns the inversion into a real deadlock.  Forking while any sanitized
lock is held is recorded too (the child inherits a lock nobody will ever
release); ``os.register_at_fork`` swallows hook exceptions, so fork
violations land in :attr:`LockDep.violations` for the harness to assert
on rather than propagating.

Everything is opt-in: production constructs plain primitives unless the
``REPRO_SANITIZE_LOCKS`` environment flag (or ``repro serve
--sanitize-locks``, which sets it) is on, so the serving hot path pays
nothing by default.  The concurrency tests run their bursts under an
explicit :class:`LockDep` instance and assert the run was silent —
turning the A14-style load tests into a dynamic race detector.
"""

from __future__ import annotations

import os
import threading

__all__ = [
    "ENV_FLAG",
    "LockDep",
    "LockOrderError",
    "SanitizedLock",
    "enabled",
    "resolve",
    "wrap",
]

#: Environment flag that arms the shared default sanitizer.
ENV_FLAG = "REPRO_SANITIZE_LOCKS"


def enabled() -> bool:
    """True when the environment opts into lock sanitizing."""
    return os.environ.get(ENV_FLAG, "") not in ("", "0")


class LockOrderError(RuntimeError):
    """An acquisition that inverts the observed lock order."""


class LockDep:
    """Observed lock-order graph + per-thread held stacks.

    One instance is shared by every :class:`SanitizedLock` it watches;
    all graph state is guarded by its own internal lock (which is a
    plain primitive — the watcher does not watch itself).
    """

    def __init__(self, name: str = "lockdep"):
        self.name = name
        self._graph_lock = threading.Lock()
        #: observed order edges: ``outer name -> set of inner names``.
        self.order: dict[str, set[str]] = {}
        #: ``(outer, inner)`` pairs in first-observed order (stable).
        self.edges: list[tuple[str, str]] = []
        #: violations recorded instead of raised (fork-while-held).
        self.violations: list[str] = []
        self.n_acquires = 0
        self._local = threading.local()
        self._fork_armed = False

    # -- per-thread stack ----------------------------------------------------

    def _stack(self) -> list[str]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        return stack

    def held(self) -> tuple[str, ...]:
        """Names of sanitized locks the calling thread holds, outermost first."""
        return tuple(self._stack())

    # -- acquisition protocol ------------------------------------------------

    def _reaches(self, start: str, goal: str) -> bool:
        """Is *goal* reachable from *start* in the observed order graph?"""
        seen = {start}
        frontier = [start]
        while frontier:
            node = frontier.pop()
            if node == goal:
                return True
            for nxt in self.order.get(node, ()):
                if nxt not in seen:
                    seen.add(nxt)
                    frontier.append(nxt)
        return False

    def before_acquire(self, name: str) -> None:
        """Record intent; raise if the edge would invert the order."""
        stack = self._stack()
        if not stack:
            return
        with self._graph_lock:
            for outer in stack:
                if outer == name:
                    continue  # re-entrant wrappers police themselves
                if self._reaches(name, outer):
                    chain = " -> ".join(stack + [name])
                    raise LockOrderError(
                        f"[{self.name}] lock-order inversion acquiring "
                        f"'{name}' while holding {chain!r}: the observed "
                        f"order already requires '{name}' before '{outer}'"
                    )
                if name not in self.order.get(outer, ()):
                    self.order.setdefault(outer, set()).add(name)
                    self.edges.append((outer, name))

    def after_acquire(self, name: str) -> None:
        """The acquisition succeeded: push it on this thread's stack."""
        self._stack().append(name)
        with self._graph_lock:
            self.n_acquires += 1

    def after_release(self, name: str) -> None:
        """Pop the most recent holding of *name* (release order is free)."""
        stack = self._stack()
        for position in range(len(stack) - 1, -1, -1):
            if stack[position] == name:
                del stack[position]
                return

    # -- fork safety ---------------------------------------------------------

    def arm_fork_check(self) -> None:
        """Record a violation if this thread ever forks while holding."""
        if self._fork_armed or not hasattr(os, "register_at_fork"):
            return
        self._fork_armed = True
        os.register_at_fork(before=self._before_fork)

    def _before_fork(self) -> None:
        """The registered before-fork hook (also callable directly in tests).

        ``os.register_at_fork`` swallows exceptions from hooks (the fork
        proceeds and the error is merely printed), so the violation is
        durably recorded first; the raise still surfaces in direct calls
        and in interpreter stderr.
        """
        self.check_fork("fork()")

    def check_fork(self, context: str) -> None:
        """Record + raise if the calling thread holds any sanitized lock.

        Called by the before-fork hook and explicitly by pool spawners
        (``ParallelMap``) right before they fork workers: a child process
        inherits a locked lock that no child thread will ever release.
        """
        held = self.held()
        if not held:
            return
        message = (
            f"[{self.name}] {context} while holding sanitized lock(s) "
            f"{', '.join(repr(name) for name in held)}: the child "
            "inherits a locked lock that no child thread will release"
        )
        with self._graph_lock:
            self.violations.append(message)
        raise LockOrderError(message)

    def assert_clean(self) -> None:
        """Raise the first recorded (non-raising) violation, if any."""
        with self._graph_lock:
            if self.violations:
                raise LockOrderError(self.violations[0])


class SanitizedLock:
    """A lock-like proxy reporting acquisitions to a :class:`LockDep`.

    Wraps anything with ``acquire``/``release`` — ``Lock``, ``RLock``,
    ``(Bounded)Semaphore``, ``Condition`` — and forwards every other
    attribute untouched, so it drops into code expecting the raw
    primitive.  Only *successful* acquisitions are pushed on the held
    stack (a timed-out semaphore acquire holds nothing); order edges are
    recorded at the attempt, which is when the inversion exists.
    """

    __slots__ = ("_inner", "name", "_dep")

    def __init__(self, inner, name: str, dep: LockDep):
        self._inner = inner
        self.name = name
        self._dep = dep

    def acquire(self, *args, **kwargs):
        """Forward to the primitive, recording order around the attempt."""
        self._dep.before_acquire(self.name)
        # The wrapper *is* the primitive: its caller (or __exit__) owns
        # the release, exactly as for the raw lock it stands in for.
        got = self._inner.acquire(*args, **kwargs)  # repro: noqa[LOCK001] — forwarding proxy
        if got or got is None:  # Condition.wait-style APIs return None
            self._dep.after_acquire(self.name)
        return got

    def release(self, *args, **kwargs):
        """Forward to the primitive, then pop the held stack."""
        result = self._inner.release(*args, **kwargs)
        self._dep.after_release(self.name)
        return result

    def locked(self):
        """Forward ``locked()`` where the primitive has it."""
        return self._inner.locked()

    def __enter__(self):
        # context-manager protocol: __exit__ is the provable release
        self.acquire()  # repro: noqa[LOCK001] — released by __exit__
        return self

    def __exit__(self, exc_type, exc, tb):
        self.release()
        return False

    def __getattr__(self, attr):
        return getattr(self._inner, attr)

    def __repr__(self):  # pragma: no cover — debugging aid
        return f"SanitizedLock({self.name!r}, {self._inner!r})"


#: The process-wide sanitizer the env flag arms.
DEFAULT = LockDep("default")


def resolve(dep: "LockDep | None") -> "LockDep | None":
    """The sanitizer to use: an explicit one, else the armed default.

    Constructors thread their ``lockdep=`` parameter through here so an
    explicit instance (tests) always wins, the shared :data:`DEFAULT` is
    used when :func:`enabled`, and otherwise instrumentation is off.
    """
    if dep is not None:
        return dep
    if enabled():
        DEFAULT.arm_fork_check()
        return DEFAULT
    return None


def wrap(primitive, name: str, dep: "LockDep | None"):
    """*primitive* unchanged when *dep* is None, else sanitized."""
    if dep is None:
        return primitive
    dep.arm_fork_check()
    return SanitizedLock(primitive, name, dep)
