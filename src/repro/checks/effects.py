"""Per-function effect summaries and the interprocedural effect model.

The DET/CACHE rules up to PR 9 are per-file and syntactic; the cache
layers added since (stage entries, the post-merge memo, artifact
renders) fail *interprocedurally*: a cached stage is unsound because a
helper three calls away reads ``os.environ``, not because the stage
body does.  This module adds whole-program effect inference in the same
two-layer shape as :mod:`.concurrency`:

1. :func:`extract_effects` walks one parsed file and distils a plain
   JSON-serializable dict of effect facts per function: ``os.environ``
   reads/writes (with the key when it is a literal or a module string
   constant), wall-clock and entropy/RNG calls, filesystem IO split by
   mode (read / write / append), socket IO, reads and writes of
   *mutable* module globals, mutation of parameters, plus the raw
   material the rules resolve later — outgoing call tokens, serialized
   sinks with their argument tokens, ``retry_with_backoff`` regions,
   return-value taint, and cache roots (``StageCache.key`` callers and
   ``ArtifactStore`` constructors).  Lambdas and nested defs are folded
   into their enclosing function (``build_store``'s renderer closures
   *are* the render effect), except that their ``return`` statements
   never count as the encloser's.  Facts hold no AST nodes, so they
   cache per content hash like every other fact family.
2. :class:`EffectModel` aggregates the facts of a whole
   :class:`~repro.checks.project.ProjectIndex`: call tokens are
   resolved through the index's import bindings (the one-call-deep
   machinery of :class:`~repro.checks.concurrency.ConcurrencyModel`,
   extended to *iterate*), and per-function summaries are propagated to
   a fixpoint over the resulting call graph, keeping the originating
   function of every effect for the rule messages.  Unresolvable calls
   (attribute chains through instance state, dynamic dispatch)
   contribute nothing — the same pragmatic soundness boundary the
   concurrency model draws.

Identities are ``module:qual`` where ``qual`` is ``name`` for
module-level functions and ``Class.method`` for methods.  Effect tokens
are ``category:detail`` strings (``env_read:EPC_MODE``,
``clock:time.time``, ``global_write:repro.x._CACHE``); rules match on
the category and print the detail.
"""

from __future__ import annotations

import ast

from .imports import ImportTable

# NOTE: annotations naming ProjectIndex stay strings — importing
# .project here (even under TYPE_CHECKING) closes an import cycle,
# because project.extract_facts calls extract_effects.  The DET001/
# DET002 call lists are duplicated from rules.determinism for the same
# reason (importing any rules module executes the whole rule registry).

__all__ = [
    "EffectModel",
    "INSTRUMENTATION_ENV",
    "extract_effects",
]

#: Environment keys that arm behaviour-neutral observers (the lock
#: sanitizer, the effect audit itself).  Reading them never changes a
#: pipeline *result* — the runtime audit cross-checks exactly that — so
#: CACHE002 and the audit treat them as fingerprint-exempt.
INSTRUMENTATION_ENV = frozenset(
    {"REPRO_SANITIZE_LOCKS", "REPRO_AUDIT_EFFECTS"}
)

#: Wall-clock / OS-entropy reads (kept in sync with DET002;
#: ``perf_counter``/``monotonic`` feed timing counters, never results).
_CLOCK_CALLS = frozenset(
    {
        "time.time",
        "time.time_ns",
        "time.ctime",
        "time.localtime",
        "time.gmtime",
        "datetime.datetime.now",
        "datetime.datetime.utcnow",
        "datetime.datetime.today",
        "datetime.date.today",
        "uuid.uuid1",
        "uuid.uuid4",
        "os.urandom",
        "os.getrandom",
        "random.SystemRandom",
    }
)

#: Seeded-construction entry points (kept in sync with DET001): fine
#: with arguments, an entropy draw without.
_SEEDED_CONSTRUCTORS = frozenset(
    {
        "random.Random",
        "numpy.random.default_rng",
        "numpy.random.Generator",
        "numpy.random.SeedSequence",
        "numpy.random.RandomState",
        "numpy.random.PCG64",
        "numpy.random.Philox",
        "numpy.random.MT19937",
        "numpy.random.SFC64",
    }
)

#: In-place container mutators (duplicated from project._MUTATOR_METHODS
#: to avoid a cycle).
_MUTATOR_METHODS = frozenset(
    {
        "append", "extend", "insert", "add", "update", "setdefault",
        "pop", "popitem", "remove", "discard", "clear", "appendleft",
    }
)

#: Dotted calls that write the filesystem regardless of mode.
_FS_WRITE_DOTTED = frozenset(
    {
        "os.replace", "os.rename", "os.unlink", "os.remove",
        "os.makedirs", "os.mkdir", "os.rmdir", "os.link", "os.symlink",
        "shutil.rmtree", "shutil.copy", "shutil.copy2", "shutil.move",
        "shutil.copytree", "tempfile.mkstemp", "tempfile.mkdtemp",
    }
)
_FS_READ_DOTTED = frozenset({"os.stat", "os.listdir", "os.scandir"})
_FS_READ_ATTRS = frozenset({"read_text", "read_bytes"})
_FS_WRITE_ATTRS = frozenset(
    {"write_text", "write_bytes", "mkdir", "touch", "unlink", "rmdir"}
)

#: Socket / network IO.
_NET_DOTTED = frozenset(
    {"socket.socket", "socket.create_connection", "urllib.request.urlopen"}
)
_NET_ATTRS = frozenset({"sendall", "recv", "accept", "connect"})

#: Serialized sinks (DET004): bytes that land in a spill, a shm segment,
#: an artifact body / ETag, or any dumped payload must be replayable.
_SINK_DOTTED = frozenset(
    {
        "json.dump", "json.dumps",
        "pickle.dump", "pickle.dumps",
        "marshal.dump", "marshal.dumps",
    }
)
_SINK_LOCAL = frozenset({"write_spill", "encode_table", "Artifact.build"})

#: Cache roots (CACHE002): the callables whose transitive reads the
#: stage / artifact fingerprints must cover.
_STAGE_ROOT_TOKENS = frozenset({"StageCache.key", "StageCache.shard_key"})
_STORE_ROOT_TOKENS = frozenset({"ArtifactStore"})


def _call_token(func: ast.expr) -> str | None:
    """A resolution token for a call target, or None.

    ``name`` for plain calls, ``a.b`` (the full chain) for attribute
    calls; ``self.x`` / ``cls.x`` keep the marker so the extractor can
    substitute the enclosing class.
    """
    parts: list[str] = []
    node = func
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if not isinstance(node, ast.Name):
        return None
    return ".".join([node.id, *reversed(parts)])


def _mode_effect(call: ast.Call, position: int) -> str:
    """The fs effect of an ``open``-style call (mode at *position*)."""
    mode: ast.expr | None = None
    if len(call.args) > position:
        mode = call.args[position]
    for kw in call.keywords:
        if kw.arg == "mode":
            mode = kw.value
    if mode is None:
        return "fs_read"
    if isinstance(mode, ast.Constant) and isinstance(mode.value, str):
        if "a" in mode.value:
            return "fs_append"
        if any(ch in mode.value for ch in "wx+"):
            return "fs_write"
        return "fs_read"
    return "fs_write"  # dynamic mode: assume the stronger effect


class _EffectExtractor:
    """Effect facts of one parsed file (see module docstring)."""

    def __init__(self, tree: ast.Module):
        self.tree = tree
        self.imports = ImportTable(tree)
        self.functions: list[tuple[str, str | None, ast.AST]] = []
        self.module_consts: dict[str, str] = {}
        self.data_names: set[str] = set()
        self.mutated: set[str] = set()
        self.facts: dict = {"functions": {}, "mutated_globals": []}
        self._collect_module_level()
        for qual, cls, node in self.functions:
            self.facts["functions"][qual] = self._walk(qual, cls, node)
        self.facts["mutated_globals"] = sorted(self.mutated)

    # -- module level --------------------------------------------------------

    def _collect_module_level(self) -> None:
        for node in self.tree.body:
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                self.functions.append((node.name, None, node))
            elif isinstance(node, ast.ClassDef):
                for sub in node.body:
                    if isinstance(sub, (ast.FunctionDef, ast.AsyncFunctionDef)):
                        self.functions.append(
                            (f"{node.name}.{sub.name}", node.name, sub)
                        )
            elif isinstance(node, ast.Assign):
                for target in node.targets:
                    if isinstance(target, ast.Name):
                        self.data_names.add(target.id)
                        if isinstance(node.value, ast.Constant) and isinstance(
                            node.value.value, str
                        ):
                            self.module_consts[target.id] = node.value.value
            elif isinstance(node, ast.AnnAssign) and isinstance(
                node.target, ast.Name
            ):
                self.data_names.add(node.target.id)

    # -- helpers -------------------------------------------------------------

    def _is_environ(self, node: ast.expr) -> bool:
        return self.imports.resolve(node) == "os.environ"

    def _env_key(self, arg: ast.expr | None) -> str:
        """The env key of an access: literal, module constant, or ``*``."""
        if isinstance(arg, ast.Constant) and isinstance(arg.value, str):
            return arg.value
        if isinstance(arg, ast.Name) and arg.id in self.module_consts:
            return self.module_consts[arg.id]
        return "*"

    @staticmethod
    def _own_scope(node: ast.AST):
        """Walk *node* without descending into nested defs / lambdas."""
        stack: list[ast.AST] = [node]
        while stack:
            current = stack.pop()
            yield current
            for child in ast.iter_child_nodes(current):
                if isinstance(
                    child,
                    (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda),
                ):
                    continue
                stack.append(child)

    # -- one function --------------------------------------------------------

    def _walk(self, qual: str, cls: str | None, func: ast.AST) -> dict:
        rec: dict = {
            "lineno": func.lineno,
            "effects": [],
            "calls": [],
            "returns": {"reasons": [], "calls": []},
            "sinks": [],
            "retries": [],
            "roots": [],
        }
        effects: dict[str, int] = {}
        calls: dict[str, int] = {}

        # scoping: any name stored anywhere in the (folded) function is
        # local everywhere, matching Python's binding rule; `global`
        # declarations re-export the name.
        bound: set[str] = set()
        global_decls: set[str] = set()
        params = {a.arg for a in func.args.args + func.args.kwonlyargs}
        params |= {a.arg for a in func.args.posonlyargs}
        if func.args.vararg is not None:
            params.add(func.args.vararg.arg)
        if func.args.kwarg is not None:
            params.add(func.args.kwarg.arg)
        for sub in ast.walk(func):
            if isinstance(sub, ast.Name) and isinstance(
                sub.ctx, (ast.Store, ast.Del)
            ):
                bound.add(sub.id)
            elif isinstance(sub, ast.arg):
                bound.add(sub.arg)
            elif isinstance(sub, (ast.FunctionDef, ast.AsyncFunctionDef)):
                bound.add(sub.name)
            elif isinstance(sub, ast.Global):
                global_decls.update(sub.names)
            elif isinstance(sub, ast.ExceptHandler) and sub.name:
                bound.add(sub.name)
            elif isinstance(sub, (ast.Import, ast.ImportFrom)):
                for alias in sub.names:
                    bound.add((alias.asname or alias.name).split(".", 1)[0])
        bound -= global_decls
        bound |= params

        def add_effect(token: str, lineno: int) -> None:
            effects.setdefault(token, lineno)

        def is_global(name: str) -> bool:
            return (
                name in global_decls
                or (name in self.data_names and name not in bound)
            )

        def token_of(node_func: ast.expr) -> str | None:
            token = _call_token(node_func)
            if token is None:
                return None
            head, dot, tail = token.partition(".")
            if head in ("self", "cls") and cls is not None and tail:
                return f"{cls}.{tail}"
            return token

        # -- pass 1: every call in the folded body -------------------------
        for node in ast.walk(func):
            if isinstance(node, ast.Call):
                self._classify_call(
                    node, qual, cls, rec, add_effect, calls,
                    params, is_global, token_of,
                )
            elif isinstance(node, ast.Subscript) and self._is_environ(
                node.value
            ):
                key = self._env_key(node.slice)
                kind = (
                    "env_read"
                    if isinstance(node.ctx, ast.Load)
                    else "env_write"
                )
                add_effect(f"{kind}:{key}", node.lineno)
            elif isinstance(node, ast.Compare) and any(
                isinstance(op, (ast.In, ast.NotIn)) for op in node.ops
            ):
                if any(self._is_environ(c) for c in node.comparators):
                    add_effect(
                        f"env_read:{self._env_key(node.left)}",
                        node.lineno,
                    )

        # -- pass 2: writes to globals / parameters ------------------------
        for node in ast.walk(func):
            targets: list[ast.expr] = []
            if isinstance(node, ast.Assign):
                targets = list(node.targets)
            elif isinstance(node, (ast.AugAssign, ast.AnnAssign)):
                targets = [node.target]
            elif isinstance(node, ast.Delete):
                targets = list(node.targets)
            for target in targets:
                if isinstance(target, ast.Name):
                    if target.id in global_decls:
                        add_effect(f"global_write:{target.id}", node.lineno)
                        self.mutated.add(target.id)
                    continue
                root = target
                while isinstance(root, (ast.Subscript, ast.Attribute)):
                    root = root.value
                if not isinstance(root, ast.Name) or root is target:
                    continue
                if is_global(root.id):
                    add_effect(f"global_write:{root.id}", node.lineno)
                    self.mutated.add(root.id)
                elif root.id in params and root.id not in ("self", "cls"):
                    add_effect(f"arg_mutate:{root.id}", node.lineno)

        # -- pass 3: reads of module globals -------------------------------
        for node in ast.walk(func):
            if (
                isinstance(node, ast.Name)
                and isinstance(node.ctx, ast.Load)
                and (node.id in global_decls or node.id in self.data_names)
                and node.id not in bound
            ):
                add_effect(f"global_read:{node.id}", node.lineno)

        # -- pass 4: local taint flow and returns --------------------------
        tainted: dict[str, str] = {}
        origin: dict[str, str] = {}
        set_named: set[str] = set()
        assigns = sorted(
            (
                n
                for n in ast.walk(func)
                if isinstance(n, ast.Assign)
                and len(n.targets) == 1
                and isinstance(n.targets[0], ast.Name)
            ),
            key=lambda n: n.lineno,
        )
        for _round in range(2):  # one retry lets chained flows settle
            for node in assigns:
                name = node.targets[0].id
                reasons = self._expr_taint(node.value, tainted, token_of)
                if reasons:
                    tainted.setdefault(name, sorted(reasons)[0])
                if self._is_set_expr(node.value, set_named, token_of):
                    set_named.add(name)
                for sub in ast.walk(node.value):
                    if isinstance(sub, ast.Call):
                        token = token_of(sub.func)
                        if token is not None:
                            origin.setdefault(name, token)
                            break

        return_reasons: dict[str, int] = {}
        return_calls: set[str] = set()
        for node in self._own_scope(func):
            if not isinstance(node, ast.Return) or node.value is None:
                continue
            for reason in self._expr_taint(node.value, tainted, token_of):
                return_reasons.setdefault(reason, node.lineno)
            if self._is_set_expr(node.value, set_named, token_of):
                return_reasons.setdefault("set-order", node.lineno)
            for sub in ast.walk(node.value):
                if isinstance(sub, ast.Call):
                    token = token_of(sub.func)
                    if token is not None:
                        return_calls.add(token)
                elif isinstance(sub, ast.Name) and sub.id in origin:
                    return_calls.add(origin[sub.id])
        rec["returns"]["reasons"] = sorted(
            [r, ln] for r, ln in return_reasons.items()
        )
        rec["returns"]["calls"] = sorted(return_calls)

        # -- pass 5: sink arguments ----------------------------------------
        for sink in rec["sinks"]:
            call = sink.pop("_call")
            args: list[list] = []
            local_reasons: dict[str, int] = {}
            exprs = list(call.args) + [kw.value for kw in call.keywords]
            for expr in exprs:
                for token, wrapped in self._arg_tokens(expr, token_of):
                    args.append([token, int(wrapped)])
                for sub in ast.walk(expr):
                    if isinstance(sub, ast.Name) and sub.id in tainted:
                        local_reasons.setdefault(tainted[sub.id], sub.lineno)
                    elif isinstance(sub, ast.Name) and sub.id in origin:
                        args.append([origin[sub.id], 0])
            seen: set[tuple] = set()
            sink["args"] = [
                a for a in args if tuple(a) not in seen and not seen.add(tuple(a))
            ]
            sink["local_reasons"] = sorted(
                [r, ln] for r, ln in local_reasons.items()
            )

        rec["effects"] = sorted([t, ln] for t, ln in effects.items())
        rec["calls"] = sorted([t, ln] for t, ln in calls.items())
        return rec

    # -- call classification -------------------------------------------------

    def _classify_call(
        self, node, qual, cls, rec, add_effect, calls, params,
        is_global, token_of,
    ) -> None:
        token = token_of(node.func)
        dotted = self.imports.resolve(node.func)
        attr = (
            node.func.attr if isinstance(node.func, ast.Attribute) else None
        )
        if token is not None:
            calls.setdefault(token, node.lineno)

        # environment
        if dotted in ("os.environ.get", "os.getenv"):
            arg = node.args[0] if node.args else None
            add_effect(
                f"env_read:{self._env_key(arg)}", node.lineno
            )
        elif dotted in ("os.environ.setdefault",):
            arg = node.args[0] if node.args else None
            key = self._env_key(arg)
            add_effect(f"env_read:{key}", node.lineno)
            add_effect(f"env_write:{key}", node.lineno)
        elif dotted in ("os.environ.pop", "os.environ.update", "os.putenv"):
            arg = node.args[0] if node.args else None
            add_effect(
                f"env_write:{self._env_key(arg)}", node.lineno
            )
        elif dotted in (
            "os.environ.copy", "os.environ.items", "os.environ.keys",
            "os.environ.values",
        ):
            add_effect("env_read:*", node.lineno)

        # wall clock / entropy / RNG
        if dotted in _CLOCK_CALLS:
            add_effect(f"clock:{dotted}", node.lineno)
        elif dotted is not None:
            if dotted in _SEEDED_CONSTRUCTORS:
                if not node.args and not node.keywords:
                    add_effect(f"rng:{dotted}", node.lineno)
            elif dotted.startswith("numpy.random.") or (
                dotted.startswith("random.") and dotted.count(".") == 1
            ):
                add_effect(f"rng:{dotted}", node.lineno)

        # filesystem
        if token == "open" or dotted == "os.fdopen" or attr == "fdopen":
            add_effect(_mode_effect(node, 1), node.lineno)
        elif dotted in _FS_WRITE_DOTTED:
            add_effect("fs_write", node.lineno)
        elif dotted in _FS_READ_DOTTED:
            add_effect("fs_read", node.lineno)
        elif attr in _FS_WRITE_ATTRS:
            add_effect("fs_write", node.lineno)
        elif attr in _FS_READ_ATTRS:
            add_effect("fs_read", node.lineno)

        # sockets
        if dotted in _NET_DOTTED or attr in _NET_ATTRS:
            add_effect("net", node.lineno)

        # in-place mutation of globals / parameters through methods
        if (
            attr in _MUTATOR_METHODS
            and isinstance(node.func, ast.Attribute)
            and isinstance(node.func.value, ast.Name)
        ):
            receiver = node.func.value.id
            if is_global(receiver):
                add_effect(f"global_write:{receiver}", node.lineno)
                self.mutated.add(receiver)
            elif receiver in params and receiver not in ("self", "cls"):
                add_effect(f"arg_mutate:{receiver}", node.lineno)

        # serialized sinks (argument tokens are filled in pass 5)
        if token in _SINK_LOCAL or dotted in _SINK_DOTTED:
            rec["sinks"].append(
                {
                    "token": token or dotted,
                    "lineno": node.lineno,
                    "col": node.col_offset,
                    "_call": node,
                }
            )

        # retry regions
        if token == "retry_with_backoff" or (
            dotted is not None and dotted.endswith(".retry_with_backoff")
        ):
            self._record_retry(node, rec, params, is_global, token_of)

        # cache roots
        if token in _STAGE_ROOT_TOKENS:
            rec["roots"].append(["stage", node.lineno, node.col_offset])
        elif token in _STORE_ROOT_TOKENS:
            rec["roots"].append(["store", node.lineno, node.col_offset])

    def _record_retry(
        self, node, rec, params, is_global, token_of
    ) -> None:
        target: ast.expr | None = node.args[0] if node.args else None
        for kw in node.keywords:
            if kw.arg == "func":
                target = kw.value
        token = ""
        inline_tokens: set[str] = set()
        inline_effects: dict[str, int] = {}
        if isinstance(target, ast.Lambda):
            # the thunk idiom: classify the lambda body on its own so the
            # retry region knows what one attempt re-executes
            for sub in ast.walk(target.body):
                if isinstance(sub, ast.Call):
                    t = token_of(sub.func)
                    if t is not None:
                        inline_tokens.add(t)
                    if (
                        isinstance(sub.func, ast.Attribute)
                        and sub.func.attr in _MUTATOR_METHODS
                        and isinstance(sub.func.value, ast.Name)
                    ):
                        receiver = sub.func.value.id
                        if is_global(receiver):
                            inline_effects.setdefault(
                                f"global_write:{receiver}", sub.lineno
                            )
        elif target is not None and isinstance(target, ast.Call):
            # functools.partial(f, ...) unwraps to f
            ptoken = token_of(target.func)
            if ptoken in ("partial", "functools.partial") and target.args:
                inner = token_of(target.args[0]) if isinstance(
                    target.args[0], (ast.Name, ast.Attribute)
                ) else None
                if inner is None and isinstance(target.args[0], ast.Name):
                    inner = target.args[0].id
                token = inner or ""
        elif target is not None:
            token = token_of(target) or ""
        rec["retries"].append(
            {
                "token": token,
                "lineno": node.lineno,
                "col": node.col_offset,
                "inline_calls": sorted(inline_tokens),
                "inline_effects": sorted(
                    [t, ln] for t, ln in inline_effects.items()
                ),
            }
        )

    # -- taint helpers -------------------------------------------------------

    def _expr_taint(self, expr, tainted: dict[str, str], token_of) -> set[str]:
        """Direct taint reasons of one expression."""
        reasons: set[str] = set()
        for sub in ast.walk(expr):
            if isinstance(sub, ast.Call):
                dotted = self.imports.resolve(sub.func)
                if dotted in _CLOCK_CALLS:
                    reasons.add("wall-clock")
                elif dotted is not None:
                    if dotted in _SEEDED_CONSTRUCTORS:
                        if not sub.args and not sub.keywords:
                            reasons.add("rng")
                    elif dotted.startswith("numpy.random.") or (
                        dotted.startswith("random.")
                        and dotted.count(".") == 1
                    ):
                        reasons.add("rng")
            elif isinstance(sub, ast.Name) and sub.id in tainted:
                reasons.add(tainted[sub.id])
        return reasons

    @staticmethod
    def _is_set_expr(expr, set_named: set[str], token_of) -> bool:
        """Does *expr* evaluate to a raw (iteration-order) set?"""
        if isinstance(expr, (ast.Set, ast.SetComp)):
            return True
        if isinstance(expr, ast.Name):
            return expr.id in set_named
        if isinstance(expr, ast.Call):
            return token_of(expr.func) in ("set", "frozenset")
        return False

    def _arg_tokens(self, expr, token_of):
        """``(call token, sorted_wrapped)`` pairs inside a sink argument.

        ``sorted(...)`` pins an order, so set-order taint does not
        survive it — the flag lets the rule drop that reason while a
        wall-clock value stays tainted through any wrapper.
        """
        out: list[tuple[str, bool]] = []

        def visit(node, wrapped: bool) -> None:
            for child in ast.iter_child_nodes(node):
                inner = wrapped
                if isinstance(child, ast.Call):
                    token = token_of(child.func)
                    if token is not None and token not in (
                        "sorted", "list", "tuple", "len", "str", "repr",
                    ):
                        out.append((token, wrapped))
                    if token == "sorted":
                        inner = True
                visit(child, inner)

        visit(ast.Module(body=[ast.Expr(value=expr)], type_ignores=[]), False)
        return out


def extract_effects(tree: ast.Module) -> dict:
    """The JSON-serializable effect facts of one parsed file."""
    return _EffectExtractor(tree).facts


#: Effect categories whose transitive presence un-fingerprints a cache
#: root (CACHE002): hidden reads the stage / content fingerprints can
#: never cover.
UNFINGERPRINTED_READS = ("env_read", "global_read", "clock", "rng")

#: Effect categories that make one retry attempt observable beyond the
#: attempt itself (FAULT002): replaying them is not idempotent.
NON_IDEMPOTENT_WRITES = ("fs_append", "env_write", "global_write")


class EffectModel:
    """Fixpoint-propagated effect summaries over the project call graph.

    Build one per analysis (rules share it through :meth:`of`); the
    fixpoint is dict/set merging over cached facts — a warm incremental
    run pays microseconds here.
    """

    def __init__(self, index: "ProjectIndex"):
        #: direct per-function records, keyed ``module:qual``.
        self.functions: dict[str, dict] = {}
        self.displays: dict[str, str] = {}
        #: ``module.NAME`` globals some function in *module* mutates.
        self.mutated: set[str] = set()
        self._module_functions: dict[str, dict] = {}
        self._edges: dict[str, tuple[str, ...]] = {}
        self._taint_edges: dict[str, tuple[str, ...]] = {}
        #: transitive ``token -> (origin gid, lineno)``, origin-first.
        self._effects: dict[str, dict[str, tuple[str, int]]] = {}
        self._taints: dict[str, dict[str, tuple[str, int]]] = {}
        self._build(index)

    @classmethod
    def of(cls, index: "ProjectIndex") -> "EffectModel":
        """The (memoized) model of one index."""
        model = getattr(index, "_effect_model", None)
        if model is None:
            model = cls(index)
            index._effect_model = model
        return model

    # -- construction --------------------------------------------------------

    def _build(self, index: "ProjectIndex") -> None:
        for summary in index.summaries:
            facts = summary.facts.get("effects") or {}
            module = summary.module
            self.displays[module] = summary.display
            functions = facts.get("functions", {})
            self._module_functions[module] = functions
            for name in facts.get("mutated_globals", ()):
                self.mutated.add(f"{module}.{name}")
        for summary in index.summaries:
            module = summary.module
            for qual, rec in self._module_functions[module].items():
                gid = f"{module}:{qual}"
                self.functions[gid] = rec
                direct: dict[str, tuple[str, int]] = {}
                for token, lineno in rec.get("effects", ()):
                    category, __, detail = token.partition(":")
                    if category in ("global_read", "global_write"):
                        qualified = f"{module}.{detail}"
                        if (
                            category == "global_read"
                            and qualified not in self.mutated
                        ):
                            # reads of never-mutated globals are constant
                            # folding, not state; pruning them here keeps
                            # the fixpoint's token sets small
                            continue
                        token = f"{category}:{qualified}"
                    direct[token] = (gid, lineno)
                self._effects[gid] = direct
                edges: list[str] = []
                for token, __ in rec.get("calls", ()):
                    edges.extend(self.resolve_call(index, module, token))
                self._edges[gid] = tuple(dict.fromkeys(edges))
                taints: dict[str, tuple[str, int]] = {}
                for reason, lineno in rec["returns"].get("reasons", ()):
                    taints[reason] = (gid, lineno)
                self._taints[gid] = taints
                tedges: list[str] = []
                for token in rec["returns"].get("calls", ()):
                    tedges.extend(self.resolve_call(index, module, token))
                self._taint_edges[gid] = tuple(dict.fromkeys(tedges))
        self._fixpoint(self._effects, self._edges)
        self._fixpoint(self._taints, self._taint_edges)

    @staticmethod
    def _fixpoint(
        state: dict[str, dict[str, tuple[str, int]]],
        edges: dict[str, tuple[str, ...]],
    ) -> None:
        """Propagate summaries along call edges until nothing changes.

        Effect sets are finite and union is monotone, so iteration
        terminates; cycles in the call graph simply converge to the
        component-wide union.
        """
        changed = True
        while changed:
            changed = False
            for gid, callees in edges.items():
                mine = state[gid]
                for callee in callees:
                    for token, site in state.get(callee, {}).items():
                        if token not in mine:
                            mine[token] = site
                            changed = True

    # -- call resolution -----------------------------------------------------

    def resolve_call(
        self, index: "ProjectIndex", module: str, token: str
    ) -> list[str]:
        """Global function ids a call *token* in *module* can reach.

        Same-module quals win; otherwise the head of the token resolves
        through the index's import bindings, one symbol deep — exactly
        the boundary :class:`ConcurrencyModel` draws, but applied at
        every fixpoint edge.  A bare class name resolves to its
        ``__init__`` / ``__post_init__`` (constructing is calling).
        """
        functions = self._module_functions.get(module, {})
        if token in functions:
            return [f"{module}:{token}"]
        head, __, tail = token.partition(".")
        resolved = index._resolve_binding(module, head if tail else token)
        if resolved is None:
            return []
        owner, symbol = resolved
        remote = self._module_functions.get(owner, {})
        if tail:
            qual = f"{symbol}.{tail}"
            if qual in remote:
                return [f"{owner}:{qual}"]
            # `from ..checks import lockdep as _lockdep` binds a module:
            # the tail then resolves inside that module's own functions
            submodule = f"{owner}.{symbol}"
            sub_functions = self._module_functions.get(submodule, {})
            if tail in sub_functions:
                return [f"{submodule}:{tail}"]
            return []
        if symbol in remote:
            return [f"{owner}:{symbol}"]
        kind = (
            index.by_module[owner]
            .facts.get("symbols", {})
            .get(symbol, {})
            .get("kind")
        )
        if kind == "class":
            return [
                f"{owner}:{symbol}.{method}"
                for method in ("__init__", "__post_init__")
                if f"{symbol}.{method}" in remote
            ]
        return []

    # -- queries -------------------------------------------------------------

    def effects(self, gid: str) -> dict[str, tuple[str, int]]:
        """Transitive ``token -> (origin gid, lineno)`` of one function."""
        return self._effects.get(gid, {})

    def returns_taint(self, gid: str) -> dict[str, tuple[str, int]]:
        """Transitive return-value taint reasons of one function."""
        return self._taints.get(gid, {})

    def site(self, gid: str) -> tuple[str, int]:
        """``(display path, lineno)`` of a function id, for messages."""
        module, __, qual = gid.partition(":")
        rec = self.functions.get(gid, {})
        return self.displays.get(module, module), rec.get("lineno", 0)

    def roots(self) -> list[tuple[str, str, int, int]]:
        """``(gid, kind, lineno, col)`` of every cache root, sorted."""
        out = []
        for gid in sorted(self.functions):
            for kind, lineno, col in self.functions[gid].get("roots", ()):
                out.append((gid, kind, lineno, col))
        return out
