"""``repro.checks`` — an AST-based invariant linter for the pipeline.

The reproduction's value rests on three contracts that code review alone
cannot hold: every analytic stage is **deterministic** (seeded, replayable
— the paper's INDICE pipeline end-to-end), every stage-cache fingerprint
**covers exactly** the config fields that affect outcomes (PR 1), and
every failure either recovers **bit-identically or logs a degradation**
(PR 2).  This package walks the project's own AST and fails the build
when any of them drifts:

=========  ==========================  =========================================
code       name                        contract
=========  ==========================  =========================================
DET001     unseeded-rng                determinism: no hidden global RNG state
DET002     wall-clock                  determinism: no entropy/wall-clock inputs
DET003     unordered-iteration         determinism: no hash-order in outputs
CACHE001   cache-fingerprint-coverage  cache: config fields fingerprinted or
                                       declared perf-only — no silent drift
FAULT001   fault-site-parity           faults: registered sites <-> inject hooks
EXC001     silent-broad-except         faults: recover loudly or re-raise
MUT001     mutable-default             determinism: no cross-call shared state
FLOAT001   float-equality              analytics: no exact float comparison
=========  ==========================  =========================================

Run it with ``python -m repro.checks src/repro`` (or ``repro check``);
suppress an intentional site with ``# repro: noqa[RULE] — justification``.
"""

from .baseline import Baseline
from .checker import Checker, CheckResult, check_tree, collect_python_files
from .cli import main
from .model import Finding, Rule, SourceFile, all_rules, register, rule_codes
from .pragmas import PragmaIndex, parse_pragmas

__all__ = [
    "Baseline",
    "Checker",
    "CheckResult",
    "Finding",
    "PragmaIndex",
    "Rule",
    "SourceFile",
    "all_rules",
    "check_tree",
    "collect_python_files",
    "main",
    "parse_pragmas",
    "register",
    "rule_codes",
]
