"""``repro.checks`` — an AST-based project analyzer for the pipeline.

The reproduction's value rests on contracts that code review alone
cannot hold: every analytic stage is **deterministic** (seeded,
replayable — the paper's INDICE pipeline end-to-end), every stage-cache
fingerprint **covers exactly** the config fields that affect outcomes
(PR 1), every failure either recovers **bit-identically or logs a
degradation** (PR 2), and — because the pipeline is a fixed chain of
stages — the **cross-module contracts** hold: columns flow schema →
stages → dashboards, state crosses the ``ParallelMap`` process boundary
only via ``initializer``/``initargs``, config fields and CLI flags stay
in lockstep, and the module graph stays acyclic.  This package walks
the project's own AST (with a content-hash incremental cache, see
:mod:`.cache`) and fails the build when any of them drifts:

=========  ===========================  =========================================
code       name                         contract
=========  ===========================  =========================================
DET001     unseeded-rng                 determinism: no hidden global RNG state
DET002     wall-clock                   determinism: no entropy/wall-clock inputs
DET003     unordered-iteration          determinism: no hash-order in outputs
CACHE001   cache-fingerprint-coverage   cache: config fields fingerprinted or
                                        declared perf-only — no silent drift
FAULT001   fault-site-parity            faults: registered sites <-> inject hooks
EXC001     silent-broad-except          faults: recover loudly or re-raise
MUT001     mutable-default              determinism: no cross-call shared state
FLOAT001   float-equality               analytics: no exact float comparison
COL001     column-read-without-producer lineage: every read column has a producer
COL002     column-dead-write            lineage: every produced column is read
COL003     spec-references-unknown-col  lineage: specs only name schema columns
PAR001     unpicklable-or-stale-capture fork-safety: workers pickle cleanly and
                                        receive state via initializer/initargs
PAR002     worker-side-mutation         fork-safety: workers return, never write
CFG001     config-cli-parity            config: fields <-> argparse destinations
IMP001     import-cycle                 architecture: the module graph is a DAG
LOCK001    acquire-without-release      resources: every acquire has a provable
                                        release on all paths
PAR003     shm-leak                     resources: shared memory is closed and
                                        unlinked on every path
PAR004     spill-lifecycle              resources: every opened spill map is
                                        closed on every path
LOCK002    lock-order-cycle             concurrency: the cross-module lock graph
                                        is acyclic (no ABBA deadlock)
LOCK003    inconsistent-guard           concurrency: attributes mutated under a
                                        lock are never mutated outside it
LOCK004    blocking-call-under-lock     concurrency: no IO/sleep/render while
                                        holding a lock (latency convoy)
SEM001     semaphore-imbalance          concurrency: acquire/release balance on
                                        every early return
CACHE002   unfingerprinted-cache-read   effects: a cached stage or render never
                                        reads state its key did not fingerprint
DET004     tainted-serialized-sink      effects: no clock/RNG/set-order taint
                                        reaches a serialized sink interprocedurally
FAULT002   non-idempotent-retry         effects: retried callables are replay-safe
                                        (no appends or global writes)
PURE001    impure-worker                effects: pool workers return values, never
                                        write state across a module boundary
=========  ===========================  =========================================

The static story has a dynamic twin: :mod:`.lockdep` wraps the serving
tier's real locks (``REPRO_SANITIZE_LOCKS=1`` or ``repro serve
--sanitize-locks``) and raises on the first *attempted* lock-order
inversion or fork-while-held at runtime — the observed order graph
cross-checks what LOCK002 proved statically.  The effect rules have the
same twin: :mod:`.effectaudit` (``REPRO_AUDIT_EFFECTS=1`` or ``repro run
--audit-effects``) records every ambient read inside the cached-stage
and render regions, raises on the first un-fingerprinted ``os.environ``
read, and the recorded sets are asserted to be a subset of what the
:class:`~repro.checks.effects.EffectModel` summarized statically.

Run it with ``python -m repro.checks src/repro`` (or ``repro check``);
suppress an intentional site with ``# repro: noqa[RULE] — justification``.
Exit codes distinguish findings (1) from analyzer errors (2).
"""

from .baseline import Baseline
from .cache import AnalysisCache, analysis_fingerprint
from .checker import Checker, CheckResult, check_tree, collect_python_files
from .cli import main
from .concurrency import ConcurrencyModel, extract_concurrency
from .effectaudit import EffectAudit, EffectAuditError
from .effects import EffectModel, extract_effects
from .lockdep import LockDep, LockOrderError, SanitizedLock
from .model import Finding, Rule, SourceFile, all_rules, register, rule_codes
from .pragmas import PragmaIndex, parse_pragmas
from .project import FileSummary, ProjectIndex, extract_facts, module_name_for
from .sarif import to_sarif

__all__ = [
    "AnalysisCache",
    "Baseline",
    "Checker",
    "CheckResult",
    "ConcurrencyModel",
    "EffectAudit",
    "EffectAuditError",
    "EffectModel",
    "FileSummary",
    "Finding",
    "LockDep",
    "LockOrderError",
    "SanitizedLock",
    "PragmaIndex",
    "ProjectIndex",
    "Rule",
    "SourceFile",
    "all_rules",
    "analysis_fingerprint",
    "check_tree",
    "collect_python_files",
    "extract_concurrency",
    "extract_effects",
    "extract_facts",
    "main",
    "module_name_for",
    "parse_pragmas",
    "register",
    "rule_codes",
    "to_sarif",
]
