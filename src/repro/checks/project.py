"""Whole-program view: module naming, facts, import graph, symbol table.

Per-file rules prove local invariants; the pipeline's *contracts between
modules* (column lineage, fork-safety of parallel workers, config/CLI
parity, import acyclicity) need a project-wide model.  This module builds
it in two layers:

1. :func:`extract_facts` walks one parsed file and distils everything the
   cross-module rules need into a plain JSON-serializable dict — imports,
   module-level symbols, dataclass fields, fault-hook call sites,
   per-function global reads/mutations and local call edges, executor
   submissions, config attribute writes, argparse destinations and the
   column-lineage sites of :mod:`.lineage`.  Facts never hold AST nodes,
   so they can be cached per file (content-hash keyed, see
   :mod:`.cache`) and a warm incremental run re-parses nothing.
2. :class:`ProjectIndex` aggregates one :class:`FileSummary` per file
   into the whole-program structures: the module map, the import graph
   (with Tarjan SCC cycle detection), a project symbol table with
   cross-module string-constant resolution, and a lightweight intra-module
   call graph used to close worker functions over their helpers.

Rules consume the index through :meth:`~repro.checks.model.Rule.check_index`.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path

from .concurrency import extract_concurrency
from .effects import extract_effects
from .lineage import extract_lineage

__all__ = [
    "FileSummary",
    "ProjectIndex",
    "extract_facts",
    "module_name_for",
    "FACTS_VERSION",
]

#: Bump when the facts schema changes so cached summaries invalidate.
FACTS_VERSION = 3

#: Attribute methods whose first argument names a fault-injection site.
_HOOK_METHODS = ("arrive", "fire")

#: Method names / types that mark a receiver as a process-pool executor.
_EXECUTOR_TYPES = frozenset({"ParallelMap", "ProcessPoolExecutor"})
#: Attribute/name convention for the engine-owned executor instance.
_EXECUTOR_NAMES = frozenset({"executor"})

#: Container methods that mutate their receiver in place.
_MUTATOR_METHODS = frozenset(
    {
        "append", "extend", "insert", "add", "update", "setdefault",
        "pop", "popitem", "remove", "discard", "clear", "appendleft",
    }
)


def module_name_for(path: Path) -> str:
    """The dotted module name of *path*, walking up ``__init__.py`` parents.

    ``src/repro/core/engine.py`` -> ``repro.core.engine``; a file outside
    any package (no ``__init__.py`` beside it) is just its stem.
    """
    path = Path(path)
    parts = [] if path.stem == "__init__" else [path.stem]
    parent = path.parent
    while (parent / "__init__.py").exists():
        parts.insert(0, parent.name)
        parent = parent.parent
    return ".".join(parts) if parts else path.stem


def _annotation_names(node: ast.expr | None) -> set[str]:
    """Every plain name appearing in an annotation (handles ``X | None``)."""
    if node is None:
        return set()
    out: set[str] = set()
    for sub in ast.walk(node):
        if isinstance(sub, ast.Name):
            out.add(sub.id)
        elif isinstance(sub, ast.Constant) and isinstance(sub.value, str):
            out.add(sub.value)  # string annotation "IndiceConfig"
    return out


def _contains_call_to(node: ast.expr, names: frozenset[str] | set[str]) -> bool:
    """Whether any sub-expression calls one of *names* (``X()`` / ``m.X()``)."""
    for sub in ast.walk(node):
        if isinstance(sub, ast.Call):
            func = sub.func
            target = func.id if isinstance(func, ast.Name) else (
                func.attr if isinstance(func, ast.Attribute) else None
            )
            if target in names:
                return True
    return False


def _string_or_none(node: ast.expr) -> str | None:
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        return node.value
    return None


def _default_kind(node: ast.expr | None) -> str:
    """Classify a dataclass field default: literal, factory or none."""
    if node is None:
        return "none"
    if isinstance(node, ast.Call):
        func = node.func
        name = func.id if isinstance(func, ast.Name) else (
            func.attr if isinstance(func, ast.Attribute) else None
        )
        if name == "field":
            for kw in node.keywords:
                if kw.arg == "default_factory":
                    return "factory"
                if kw.arg == "default":
                    return _default_kind(kw.value)
            return "factory"
        return "factory"
    if isinstance(node, ast.Constant):
        return "literal"
    return "literal" if isinstance(node, (ast.Tuple, ast.UnaryOp)) else "factory"


def _is_dataclass_def(node: ast.ClassDef) -> bool:
    for decorator in node.decorator_list:
        target = decorator.func if isinstance(decorator, ast.Call) else decorator
        name = target.id if isinstance(target, ast.Name) else (
            target.attr if isinstance(target, ast.Attribute) else None
        )
        if name == "dataclass":
            return True
    return False


class _FunctionFacts(ast.NodeVisitor):
    """Reads, mutations and local calls of one function body."""

    def __init__(self, params: set[str]):
        self.local: set[str] = set(params)
        self.declared_global: set[str] = set()
        self.reads: set[str] = set()
        self.mutates: set[str] = set()
        self.calls: set[str] = set()
        self.nested_defs: set[str] = set()

    # -- scope bookkeeping --------------------------------------------------

    def visit_Global(self, node: ast.Global) -> None:
        """``global X`` makes X a module binding inside this scope."""
        self.declared_global.update(node.names)

    def _visit_nested(self, node) -> None:
        self.nested_defs.add(node.name)
        self.local.add(node.name)
        # nested scopes still read/mutate the same module globals
        inner = _FunctionFacts(
            {a.arg for a in node.args.args + node.args.kwonlyargs}
        )
        for stmt in node.body:
            inner.visit(stmt)
        self.reads |= inner.reads
        self.mutates |= inner.mutates
        self.calls |= inner.calls

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        """Record the nested def and fold its global accesses in."""
        self._visit_nested(node)

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        """Async nested defs behave exactly like sync ones here."""
        self._visit_nested(node)

    # -- reads, writes, mutations ------------------------------------------

    def _assign_target(self, target: ast.expr) -> None:
        if isinstance(target, ast.Name):
            if target.id in self.declared_global:
                self.mutates.add(target.id)
            else:
                self.local.add(target.id)
        elif isinstance(target, (ast.Tuple, ast.List)):
            for elt in target.elts:
                self._assign_target(elt)
        elif isinstance(target, (ast.Subscript, ast.Attribute)):
            base = target.value
            while isinstance(base, (ast.Subscript, ast.Attribute)):
                base = base.value
            if isinstance(base, ast.Name) and base.id not in self.local:
                self.mutates.add(base.id)

    def visit_Assign(self, node: ast.Assign) -> None:
        """Classify each target as a local bind or a global mutation."""
        self.visit(node.value)
        for target in node.targets:
            self._assign_target(target)

    def visit_AugAssign(self, node: ast.AugAssign) -> None:
        """``X += ...`` mutates X when X is not local."""
        self.visit(node.value)
        self._assign_target(node.target)

    def visit_AnnAssign(self, node: ast.AnnAssign) -> None:
        """Annotated assignment: same classification as a plain one."""
        if node.value is not None:
            self.visit(node.value)
        self._assign_target(node.target)

    def visit_For(self, node: ast.For) -> None:
        """Loop variables are locals of this scope."""
        self.visit(node.iter)
        self._assign_target(node.target)
        for stmt in node.body + node.orelse:
            self.visit(stmt)

    def visit_withitem(self, node: ast.withitem) -> None:
        """``with ... as X`` binds X locally."""
        self.visit(node.context_expr)
        if node.optional_vars is not None:
            self._assign_target(node.optional_vars)

    def visit_comprehension(self, node: ast.comprehension) -> None:
        """Comprehension variables are locals of this scope."""
        self.visit(node.iter)
        self._assign_target(node.target)
        for cond in node.ifs:
            self.visit(cond)

    def visit_Name(self, node: ast.Name) -> None:
        """A loaded name outside the local set is a module-global read."""
        if isinstance(node.ctx, ast.Load) and node.id not in self.local:
            self.reads.add(node.id)

    def visit_Call(self, node: ast.Call) -> None:
        """Record plain-name call edges and in-place mutator methods."""
        if isinstance(node.func, ast.Name):
            self.calls.add(node.func.id)
        elif isinstance(node.func, ast.Attribute):
            if node.func.attr in _MUTATOR_METHODS and isinstance(
                node.func.value, ast.Name
            ):
                name = node.func.value.id
                if name not in self.local:
                    self.mutates.add(name)
        self.generic_visit(node)


def _argparse_dest(call: ast.Call) -> str | None:
    """The namespace destination of one ``add_argument`` call."""
    for kw in call.keywords:
        if kw.arg == "dest":
            return _string_or_none(kw.value)
    longest: str | None = None
    positional: str | None = None
    for arg in call.args:
        text = _string_or_none(arg)
        if text is None:
            continue
        if text.startswith("--"):
            candidate = text[2:].replace("-", "_")
            if longest is None or len(candidate) > len(longest):
                longest = candidate
        elif not text.startswith("-"):
            positional = text
    return longest or positional


def extract_facts(tree: ast.Module) -> dict:
    """The JSON-serializable whole-program facts of one parsed file."""
    facts: dict = {
        "version": FACTS_VERSION,
        "raw_imports": [],
        "symbols": {},
        "string_consts": {},
        "string_tuples": {},
        "dataclasses": {},
        "hook_calls": [],
        "functions": {},
        "map_calls": [],
        "map_table_calls": [],
        "config_writes": [],
        "config_ctor_kwargs": [],
        "argparse_dests": [],
        "args_reads": [],
        "lineage": extract_lineage(tree),
        "concurrency": extract_concurrency(tree),
        "effects": extract_effects(tree),
    }

    # -- module-exec-time imports (skip function bodies: lazy imports are a
    #    legitimate cycle breaker and never run at import time) ------------
    def walk_exec(stmts) -> None:
        for stmt in stmts:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            if isinstance(stmt, ast.Import):
                for alias in stmt.names:
                    facts["raw_imports"].append(
                        [0, alias.name, alias.asname or "", stmt.lineno]
                    )
            elif isinstance(stmt, ast.ImportFrom):
                for alias in stmt.names:
                    facts["raw_imports"].append(
                        [
                            stmt.level,
                            f"{stmt.module or ''}:{alias.name}",
                            alias.asname or "",
                            stmt.lineno,
                        ]
                    )
            else:
                for child in ast.iter_child_nodes(stmt):
                    if isinstance(child, ast.stmt):
                        walk_exec([child])
                    elif isinstance(child, ast.ExceptHandler):
                        walk_exec(child.body)

    walk_exec(tree.body)

    # -- module-level symbols, constants, dataclasses ----------------------
    for node in tree.body:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            facts["symbols"][node.name] = {"kind": "function", "lineno": node.lineno}
        elif isinstance(node, ast.ClassDef):
            facts["symbols"][node.name] = {"kind": "class", "lineno": node.lineno}
            if _is_dataclass_def(node):
                fields = []
                for stmt in node.body:
                    if not isinstance(stmt, ast.AnnAssign):
                        continue
                    if not isinstance(stmt.target, ast.Name):
                        continue
                    if "ClassVar" in ast.unparse(stmt.annotation):
                        continue
                    fields.append(
                        [
                            stmt.target.id,
                            stmt.lineno,
                            _default_kind(stmt.value),
                        ]
                    )
                facts["dataclasses"][node.name] = {
                    "lineno": node.lineno,
                    "fields": fields,
                }
        elif isinstance(node, ast.Assign) and len(node.targets) == 1:
            target = node.targets[0]
            if not isinstance(target, ast.Name):
                continue
            facts["symbols"][target.id] = {"kind": "assign", "lineno": node.lineno}
            value = _string_or_none(node.value)
            if value is not None:
                facts["string_consts"][target.id] = value
            elif isinstance(node.value, ast.Tuple):
                strings = [
                    s
                    for s in (_string_or_none(e) for e in node.value.elts)
                    if s is not None
                ]
                names = [
                    e.id for e in node.value.elts if isinstance(e, ast.Name)
                ]
                facts["string_tuples"][target.id] = {
                    "lineno": node.lineno,
                    "values": strings,
                    "name_refs": names,
                }

    # -- fault-hook call sites ---------------------------------------------
    for node in ast.walk(tree):
        if not isinstance(node, ast.Call) or not node.args:
            continue
        func = node.func
        if not isinstance(func, ast.Attribute) or func.attr not in _HOOK_METHODS:
            continue
        arg = node.args[0]
        site = _string_or_none(arg)
        ref = arg.id if isinstance(arg, ast.Name) else None
        if site is None and ref is None:
            continue
        facts["hook_calls"].append(
            [func.attr, site or "", ref or "", node.lineno, node.col_offset]
        )

    # -- per-function global reads / mutations / local call edges ----------
    for node in ast.walk(tree):
        if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue
        params = {a.arg for a in node.args.args + node.args.kwonlyargs}
        if node.args.vararg is not None:
            params.add(node.args.vararg.arg)
        if node.args.kwarg is not None:
            params.add(node.args.kwarg.arg)
        flow = _FunctionFacts(params)
        for stmt in node.body:
            flow.visit(stmt)
        facts["functions"].setdefault(
            node.name,
            {
                "lineno": node.lineno,
                "reads": sorted(flow.reads),
                "mutates": sorted(flow.mutates),
                "calls": sorted(flow.calls),
                "nested": sorted(flow.nested_defs),
            },
        )

    _extract_executor_facts(tree, facts)
    _extract_config_facts(tree, facts)
    return facts


def _extract_executor_facts(tree: ast.Module, facts: dict) -> None:
    """Executor submissions: ``<executor>.map`` / ``.map_table`` calls."""
    executor_names: set[str] = set(_EXECUTOR_NAMES)
    for node in ast.walk(tree):
        targets: list[ast.expr] = []
        if isinstance(node, ast.Assign):
            if _contains_call_to(node.value, _EXECUTOR_TYPES):
                targets = node.targets
        elif isinstance(node, ast.AnnAssign) and node.value is not None:
            if _contains_call_to(node.value, _EXECUTOR_TYPES):
                targets = [node.target]
        elif isinstance(node, ast.withitem):
            if node.optional_vars is not None and _contains_call_to(
                node.context_expr, _EXECUTOR_TYPES
            ):
                targets = [node.optional_vars]
        for target in targets:
            if isinstance(target, ast.Name):
                executor_names.add(target.id)
            elif isinstance(target, ast.Attribute):
                executor_names.add(target.attr)

    #: function name -> lineno of its enclosing def, for nested detection
    nesting: dict[str, bool] = {}
    for node in ast.walk(tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            for child in ast.walk(node):
                if (
                    child is not node
                    and isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef))
                ):
                    nesting[child.name] = True

    for node in ast.walk(tree):
        if not isinstance(node, ast.Call) or not node.args:
            continue
        func = node.func
        if not isinstance(func, ast.Attribute) or func.attr not in (
            "map", "map_table"
        ):
            continue
        receiver = func.value
        receiver_name = receiver.id if isinstance(receiver, ast.Name) else (
            receiver.attr if isinstance(receiver, ast.Attribute) else None
        )
        if receiver_name not in executor_names:
            continue
        submitted = node.args[0]
        entry = {
            "lineno": node.lineno,
            "col": node.col_offset,
            "func": "",
            "kind": "unknown",
            "initializer": "",
        }
        if isinstance(submitted, ast.Lambda):
            entry["kind"] = "lambda"
        elif isinstance(submitted, ast.Name):
            entry["func"] = submitted.id
            entry["kind"] = "nested" if nesting.get(submitted.id) else "name"
        elif (
            isinstance(submitted, ast.Call)
            and isinstance(
                submitted.func, (ast.Name, ast.Attribute)
            )
            and (
                submitted.func.id
                if isinstance(submitted.func, ast.Name)
                else submitted.func.attr
            )
            == "partial"
            and submitted.args
            and isinstance(submitted.args[0], ast.Name)
        ):
            # `functools.partial(worker, ...)` submits `worker` with bound
            # leading arguments — the effect rules treat it as the worker
            entry["func"] = submitted.args[0].id
            entry["kind"] = "partial"
        for kw in node.keywords:
            if kw.arg == "initializer" and isinstance(kw.value, ast.Name):
                entry["initializer"] = kw.value.id
        facts[
            "map_calls" if func.attr == "map" else "map_table_calls"
        ].append(entry)


#: The config dataclass whose writes / CLI parity CFG001 proves.
_CONFIG_CLASS = "IndiceConfig"


def _extract_config_facts(tree: ast.Module, facts: dict) -> None:
    """Writes to config objects, ctor keywords, argparse dests, args reads."""
    for node in ast.walk(tree):
        if isinstance(node, ast.Call):
            func = node.func
            name = func.id if isinstance(func, ast.Name) else (
                func.attr if isinstance(func, ast.Attribute) else None
            )
            if name == "add_argument":
                dest = _argparse_dest(node)
                if dest is not None:
                    facts["argparse_dests"].append(dest)
            elif name == _CONFIG_CLASS:
                for kw in node.keywords:
                    if kw.arg is not None:
                        facts["config_ctor_kwargs"].append(
                            [kw.arg, node.lineno, node.col_offset]
                        )

    def config_bound_names(func: ast.FunctionDef | ast.AsyncFunctionDef) -> set[str]:
        bound: set[str] = set()
        for arg in func.args.args + func.args.kwonlyargs:
            if _CONFIG_CLASS in _annotation_names(arg.annotation):
                bound.add(arg.arg)
        for stmt in ast.walk(func):
            if isinstance(stmt, ast.Assign) and _contains_call_to(
                stmt.value, {_CONFIG_CLASS}
            ):
                for target in stmt.targets:
                    if isinstance(target, ast.Name):
                        bound.add(target.id)
                    elif isinstance(target, ast.Attribute) and isinstance(
                        target.value, ast.Name
                    ):
                        bound.add(f"{target.value.id}.{target.attr}")
        return bound

    def record_writes(scope: ast.AST, bound: set[str]) -> bool:
        """Record config attribute writes under *scope*; True when any."""
        wrote = False
        for stmt in ast.walk(scope):
            if not isinstance(stmt, (ast.Assign, ast.AugAssign)):
                continue
            targets = stmt.targets if isinstance(stmt, ast.Assign) else [stmt.target]
            for target in targets:
                if not isinstance(target, ast.Attribute):
                    continue
                base = target.value
                base_name = None
                if isinstance(base, ast.Name):
                    base_name = base.id
                elif isinstance(base, ast.Attribute) and isinstance(
                    base.value, ast.Name
                ):
                    base_name = f"{base.value.id}.{base.attr}"
                if base_name in bound:
                    facts["config_writes"].append(
                        [target.attr, target.lineno, target.col_offset]
                    )
                    wrote = True
        return wrote

    for node in ast.walk(tree):
        if isinstance(node, ast.ClassDef) and node.name == _CONFIG_CLASS:
            # inside the dataclass itself, ``self`` is a config instance
            for sub in node.body:
                if isinstance(sub, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    record_writes(sub, {"self"})
        elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            bound = config_bound_names(node)
            if not bound:
                continue
            if record_writes(node, bound):
                for sub in ast.walk(node):
                    if (
                        isinstance(sub, ast.Attribute)
                        and isinstance(sub.ctx, ast.Load)
                        and isinstance(sub.value, ast.Name)
                        and sub.value.id == "args"
                    ):
                        facts["args_reads"].append(
                            [sub.attr, sub.lineno, sub.col_offset]
                        )


@dataclass
class FileSummary:
    """Everything one analysis learned about one file.

    Path-free in its cached form (:meth:`to_cache_entry`): findings and
    facts carry only line/column anchors, so a cache entry survives a
    checkout moving or the analysis running from a different directory.
    ``display`` and ``module`` are recomputed on load.
    """

    path: Path
    display: str
    module: str
    content_hash: str
    facts: dict = field(default_factory=dict)
    #: Per-file rule findings as path-free dicts (line/col/rule/message).
    findings: list = field(default_factory=list)
    #: ``{"line_codes": {lineno: [codes]}, "file_codes": [codes]}``.
    pragmas: dict = field(default_factory=dict)
    error: str | None = None
    from_cache: bool = False

    def to_cache_entry(self) -> dict:
        """The JSON cache payload (no absolute paths)."""
        return {
            "facts": self.facts,
            "findings": self.findings,
            "pragmas": self.pragmas,
            "error": self.error,
        }

    @classmethod
    def from_cache_entry(
        cls,
        entry: dict,
        path: Path,
        display: str,
        module: str,
        content_hash: str,
    ) -> "FileSummary":
        """Rehydrate a cached entry for the current checkout location."""
        return cls(
            path=path,
            display=display,
            module=module,
            content_hash=content_hash,
            facts=entry.get("facts", {}),
            findings=list(entry.get("findings", ())),
            pragmas=entry.get("pragmas", {}),
            error=entry.get("error"),
            from_cache=True,
        )


class ProjectIndex:
    """The whole-program model the cross-module rules run against."""

    def __init__(self, summaries: list[FileSummary]):
        self.summaries = [s for s in summaries if s.error is None]
        self.by_module: dict[str, FileSummary] = {}
        for summary in self.summaries:
            # first one wins on a (pathological) duplicate module name
            self.by_module.setdefault(summary.module, summary)
        self._bindings: dict[str, dict[str, str]] = {}
        self._graph: dict[str, dict[str, int]] = {}
        self._build_imports()

    # -- import graph -------------------------------------------------------

    def _resolve_relative(self, module: str, is_package: bool, level: int, stem: str) -> str:
        base = module.split(".") if is_package else module.split(".")[:-1]
        if level > 1:
            base = base[: len(base) - (level - 1)]
        return ".".join(base + ([stem] if stem else []))

    def _build_imports(self) -> None:
        for summary in self.summaries:
            module = summary.module
            is_package = summary.path.stem == "__init__"
            bindings: dict[str, str] = {}
            edges: dict[str, int] = {}
            for level, spec, asname, lineno in summary.facts.get("raw_imports", ()):
                if ":" in spec:  # a ``from X import name`` entry
                    stem, leaf = spec.split(":", 1)
                    if level:
                        stem = self._resolve_relative(module, is_package, level, stem)
                    if leaf == "*":
                        continue
                    dotted = f"{stem}.{leaf}" if stem else leaf
                    bindings[asname or leaf] = dotted
                    for candidate in (dotted, stem):
                        if candidate in self.by_module and candidate != module:
                            edges.setdefault(candidate, lineno)
                            break
                else:  # a plain ``import X[.Y]`` entry
                    if asname:
                        bindings[asname] = spec
                    else:
                        root = spec.split(".", 1)[0]
                        bindings[root] = root
                    if spec in self.by_module and spec != module:
                        edges.setdefault(spec, lineno)
            self._bindings[module] = bindings
            self._graph[module] = edges

    @property
    def import_graph(self) -> dict[str, dict[str, int]]:
        """``{module: {imported_module: first_import_lineno}}`` (in-set only)."""
        return self._graph

    def import_cycles(self) -> list[list[str]]:
        """Strongly connected components of size > 1, plus self-loops.

        Iterative Tarjan keeps the analysis safe on arbitrarily deep
        graphs; each cycle comes back sorted for stable reporting.
        """
        index: dict[str, int] = {}
        low: dict[str, int] = {}
        on_stack: set[str] = set()
        stack: list[str] = []
        counter = 0
        cycles: list[list[str]] = []

        for root in sorted(self._graph):
            if root in index:
                continue
            work: list[tuple[str, list[str], int]] = [
                (root, sorted(self._graph.get(root, ())), 0)
            ]
            index[root] = low[root] = counter
            counter += 1
            stack.append(root)
            on_stack.add(root)
            while work:
                node, targets, position = work.pop()
                if position < len(targets):
                    work.append((node, targets, position + 1))
                    child = targets[position]
                    if child not in index:
                        index[child] = low[child] = counter
                        counter += 1
                        stack.append(child)
                        on_stack.add(child)
                        work.append(
                            (child, sorted(self._graph.get(child, ())), 0)
                        )
                    elif child in on_stack:
                        low[node] = min(low[node], index[child])
                    continue
                if low[node] == index[node]:
                    component = []
                    while True:
                        leaf = stack.pop()
                        on_stack.discard(leaf)
                        component.append(leaf)
                        if leaf == node:
                            break
                    if len(component) > 1 or node in self._graph.get(node, ()):
                        cycles.append(sorted(component))
                if work:
                    parent = work[-1][0]
                    low[parent] = min(low[parent], low[node])
        return sorted(cycles)

    # -- project symbol resolution -----------------------------------------

    def _resolve_binding(self, module: str, name: str) -> tuple[str, str] | None:
        """``(module, symbol)`` a local *name* stands for, following imports."""
        summary = self.by_module.get(module)
        if summary is None:
            return None
        if name in summary.facts.get("symbols", {}):
            return module, name
        dotted = self._bindings.get(module, {}).get(name)
        if dotted is None:
            return None
        owner, _, symbol = dotted.rpartition(".")
        if owner in self.by_module and symbol:
            return owner, symbol
        return None

    def resolve_string(self, module: str, name: str) -> str | None:
        """The string constant a (possibly imported) *name* resolves to."""
        resolved = self._resolve_binding(module, name)
        if resolved is None:
            return None
        owner, symbol = resolved
        return self.by_module[owner].facts.get("string_consts", {}).get(symbol)

    def resolve_string_seq(self, module: str, name: str) -> list[str] | None:
        """The string-tuple values a (possibly imported) *name* names."""
        resolved = self._resolve_binding(module, name)
        if resolved is None:
            return None
        owner, symbol = resolved
        entry = self.by_module[owner].facts.get("string_tuples", {}).get(symbol)
        if entry is None:
            return None
        values = list(entry.get("values", ()))
        for ref in entry.get("name_refs", ()):
            nested = self.resolve_string(owner, ref)
            if nested is not None:
                values.append(nested)
        return values

    # -- worker-function closure -------------------------------------------

    def function_closure(self, module: str, func: str) -> tuple[set[str], set[str]]:
        """``(reads, mutates)`` of *func* plus its same-module callees."""
        summary = self.by_module.get(module)
        if summary is None:
            return set(), set()
        functions = summary.facts.get("functions", {})
        reads: set[str] = set()
        mutates: set[str] = set()
        pending = [func]
        seen: set[str] = set()
        while pending:
            name = pending.pop()
            if name in seen or name not in functions:
                continue
            seen.add(name)
            info = functions[name]
            reads.update(info.get("reads", ()))
            mutates.update(info.get("mutates", ()))
            pending.extend(info.get("calls", ()))
        return reads, mutates

    def module_mutated_globals(self, module: str) -> dict[str, list[str]]:
        """``{global: [mutating functions]}`` for one module."""
        summary = self.by_module.get(module)
        if summary is None:
            return {}
        out: dict[str, list[str]] = {}
        functions = summary.facts.get("functions", {})
        for name in sorted(functions):
            for target in functions[name].get("mutates", ()):
                out.setdefault(target, []).append(name)
        return out
