"""Column lineage: where column names are declared, produced and consumed.

The pipeline moves data through :class:`repro.dataset.table.Table`, whose
columns are addressed by string literals. Those literals are the
project's de-facto column namespace: the schema declares them
(``_num``/``_cat``/``_txt``/``AttributeSpec``), stages produce them
(``Column(...)`` constructions, ``rename`` targets), and downstream
stages consume them (subscripts, ``group_by``/``sort_by``/``aggregate``,
projection lists, ``by=``/``response=`` keywords) or reference them from
dashboard/query specs (``Comparison``, ``RecommendedReport``,
stakeholder attribute tuples, discretization plans).

This module extracts those four site classes from one parsed file into a
JSON-serializable dict; :class:`~repro.checks.project.ProjectIndex`
aggregates them across files and the COL00x rules check the flow.

Every site records ``[name, lineno, col]`` (spec sites may instead carry
a ``ref`` to a module-level constant, resolved cross-module at rule
time). Bare ``x["k"]`` subscripts are only treated as column reads when
the receiver is recognizably a table (named ``table``/``*_table`` or a
``.table`` attribute) — otherwise every dict lookup in the codebase
would masquerade as lineage.
"""

from __future__ import annotations

import ast

__all__ = ["extract_lineage"]

#: Schema-declaration constructors: first string argument declares a column.
_DECLARING_CALLS = frozenset({"_num", "_cat", "_txt", "AttributeSpec"})

#: ``Column`` classmethods that construct a named column.
_COLUMN_FACTORIES = frozenset({"numeric", "categorical", "text", "from_kind"})

#: Table methods whose first string argument reads one column.
_SINGLE_CONSUMERS = frozenset(
    {"column", "kind", "sort_by", "group_by", "group_indices"}
)

#: Table methods whose first list/tuple argument reads several columns.
_LIST_CONSUMERS = frozenset({"select", "drop", "drop_missing", "to_matrix"})

#: Keyword (or parameter-default) names that carry a column name.
_COLUMN_KEYWORDS = frozenset({"by", "on", "response", "region_column"})

#: ``by``/``on`` are column names only on table-aware callables — e.g.
#: ``RuleMiner.top_k(rules, 5, by="lift")`` ranks by a rule-quality
#: index, not a Table column, and must stay out of the lineage.
_GROUPING_KEYWORDS = frozenset({"by", "on"})
_GROUPING_CALLABLES = frozenset(
    {
        "aggregate", "group_by", "group_indices", "sort_by", "join",
        "grouped_histograms", "response_histograms", "temporal_summary",
        "profile_clusters",
    }
)


def _string(node: ast.expr) -> str | None:
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        return node.value
    return None


def _is_table_receiver(node: ast.expr) -> bool:
    if isinstance(node, ast.Name):
        return node.id == "table" or node.id.endswith("_table")
    if isinstance(node, ast.Attribute):
        return node.attr == "table" or node.attr.endswith("_table")
    return False


def _site(name: str, node: ast.AST) -> list:
    return [name, node.lineno, node.col_offset]


def _ref_site(ref: str, node: ast.AST) -> dict:
    return {"ref": ref, "lineno": node.lineno, "col": node.col_offset}


def _callable_name(func: ast.expr) -> str | None:
    if isinstance(func, ast.Name):
        return func.id
    if isinstance(func, ast.Attribute):
        return func.attr
    return None


def _spec_value(node: ast.expr, out: list) -> None:
    """A spec argument: literal string, constant ref, or a sequence of them."""
    text = _string(node)
    if text is not None:
        out.append(_site(text, node))
    elif isinstance(node, ast.Name):
        out.append(_ref_site(node.id, node))
    elif isinstance(node, (ast.Tuple, ast.List)):
        for elt in node.elts:
            _spec_value(elt, out)
    elif isinstance(node, ast.BinOp):  # BASE + ("extra",) concatenations
        _spec_value(node.left, out)
        _spec_value(node.right, out)


def extract_lineage(tree: ast.Module) -> dict:
    """``{declared, produced, consumed, spec_refs}`` site lists for one file."""
    declared: list = []
    produced: list = []
    consumed: list = []
    spec_refs: list = []

    def consume_single(node: ast.expr) -> None:
        text = _string(node)
        if text is not None:
            consumed.append(_site(text, node))

    def consume_list(node: ast.expr) -> None:
        if isinstance(node, (ast.List, ast.Tuple)):
            for elt in node.elts:
                consume_single(elt)

    for node in ast.walk(tree):
        if isinstance(node, ast.Subscript) and isinstance(node.ctx, ast.Load):
            if _is_table_receiver(node.value):
                consume_single(node.slice)

        elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            # ``def f(..., by: str = "cluster")`` consumes "cluster" —
            # but only in table-aware functions for the by/on params

            def param_is_column(param: str) -> bool:
                if param not in _COLUMN_KEYWORDS:
                    return False
                return (
                    param not in _GROUPING_KEYWORDS
                    or node.name in _GROUPING_CALLABLES
                )

            positional = node.args.args
            defaults = node.args.defaults
            for arg, default in zip(positional[len(positional) - len(defaults):], defaults):
                if param_is_column(arg.arg):
                    consume_single(default)
            for arg, default in zip(node.args.kwonlyargs, node.args.kw_defaults):
                if default is not None and param_is_column(arg.arg):
                    consume_single(default)

        elif isinstance(node, ast.Assign) and len(node.targets) == 1:
            target = node.targets[0]
            if (
                isinstance(target, ast.Name)
                and "DISCRETIZATION_PLAN" in target.id
                and isinstance(node.value, ast.Dict)
            ):
                for key in node.value.keys:
                    if key is not None:
                        _spec_value(key, spec_refs)

        elif isinstance(node, ast.Call):
            name = _callable_name(node.func)
            if name is None:
                continue

            if name in _DECLARING_CALLS and node.args:
                text = _string(node.args[0])
                if text is not None:
                    declared.append(_site(text, node.args[0]))

            elif name == "Column" and node.args:
                text = _string(node.args[0])
                if text is not None:
                    produced.append(_site(text, node.args[0]))

            elif (
                name in _COLUMN_FACTORIES
                and isinstance(node.func, ast.Attribute)
                and isinstance(node.func.value, ast.Name)
                and node.func.value.id == "Column"
                and node.args
            ):
                text = _string(node.args[0])
                if text is not None:
                    produced.append(_site(text, node.args[0]))

            elif name in ("from_columns", "from_rows") and node.args:
                if isinstance(node.args[0], ast.Dict):
                    for key in node.args[0].keys:
                        if key is not None and _string(key) is not None:
                            produced.append(_site(_string(key), key))

            elif name == "rename" and node.args:
                # keys are read from the old table, values are new columns
                if isinstance(node.args[0], ast.Dict):
                    for key, value in zip(node.args[0].keys, node.args[0].values):
                        if key is not None:
                            consume_single(key)
                        text = _string(value)
                        if text is not None:
                            produced.append(_site(text, value))

            elif name in _SINGLE_CONSUMERS and node.args:
                consume_single(node.args[0])

            elif name in _LIST_CONSUMERS and node.args:
                consume_list(node.args[0])
                if node.args[0] is not None and _string(node.args[0]) is not None:
                    consume_single(node.args[0])

            elif name == "aggregate":
                # aggregate(by, name, func) reads both named columns
                for arg in node.args[:2]:
                    consume_single(arg)

            elif name == "Comparison" and node.args:
                _spec_value(node.args[0], spec_refs)

            elif name == "RecommendedReport":
                if len(node.args) > 4:
                    _spec_value(node.args[4], spec_refs)

            elif name == "StakeholderProfile":
                pass  # attributes arrive via the default_attributes keyword

            if isinstance(node, ast.Call):
                for kw in node.keywords:
                    if kw.arg == "attribute" and name == "RecommendedReport":
                        _spec_value(kw.value, spec_refs)
                    elif kw.arg == "default_attributes":
                        _spec_value(kw.value, spec_refs)
                    elif kw.arg in _COLUMN_KEYWORDS and (
                        kw.arg not in _GROUPING_KEYWORDS
                        or name in _GROUPING_CALLABLES
                        or name in _SINGLE_CONSUMERS
                    ):
                        consume_single(kw.value)

    return {
        "declared": declared,
        "produced": produced,
        "consumed": consumed,
        "spec_refs": spec_refs,
    }
