"""``# repro: noqa[RULE]`` suppression pragmas.

Two scopes:

* **line** — a trailing pragma on the line a finding is anchored to
  suppresses that rule there::

      except Exception:  # repro: noqa[EXC001] — cache must never abort a stage

  Several codes may share one pragma (``noqa[EXC001,FLOAT001]``) and any
  text after the bracket is a free-form justification (encouraged — a
  pragma with no written reason is a review smell).

* **file** — a pragma on a comment-only line *above the first statement*
  (i.e. in the header comment block, before even the module docstring)
  suppresses the rule for the whole file.

The pragma parser is purely lexical so it works on any parseable file,
and it deliberately does not support a bare ``noqa`` (suppress
everything): every suppression names the contract it waives.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass
from typing import Mapping

from .model import Finding

__all__ = [
    "PragmaIndex",
    "parse_pragmas",
    "pragma_index_to_dict",
    "pragma_index_from_dict",
    "PRAGMA_RE",
]


def pragma_index_to_dict(index: "PragmaIndex") -> dict:
    """The JSON-cacheable form of a :class:`PragmaIndex`."""
    return {
        "line_codes": {
            str(lineno): sorted(codes)
            for lineno, codes in sorted(index.line_codes.items())
        },
        "file_codes": sorted(index.file_codes),
    }


def pragma_index_from_dict(payload: dict) -> "PragmaIndex":
    """Rebuild a :class:`PragmaIndex` from its cached form."""
    return PragmaIndex(
        line_codes={
            int(lineno): frozenset(codes)
            for lineno, codes in payload.get("line_codes", {}).items()
        },
        file_codes=frozenset(payload.get("file_codes", ())),
    )

#: Matches ``# repro: noqa[CODE,CODE...]`` anywhere in a line.
PRAGMA_RE = re.compile(r"#\s*repro:\s*noqa\[(?P<codes>[A-Za-z0-9_]+(?:\s*,\s*[A-Za-z0-9_]+)*)\]")


@dataclass(frozen=True)
class PragmaIndex:
    """The suppressions of one file, queryable per finding."""

    #: 1-based line number -> rule codes suppressed on that line.
    line_codes: Mapping[int, frozenset[str]]
    #: Rule codes suppressed for the whole file.
    file_codes: frozenset[str]

    def suppresses(self, finding: Finding) -> bool:
        """Whether *finding* is silenced by a pragma in this file."""
        if finding.rule in self.file_codes:
            return True
        return finding.rule in self.line_codes.get(finding.line, frozenset())

    def __bool__(self) -> bool:
        return bool(self.line_codes) or bool(self.file_codes)


def _codes(match: re.Match[str]) -> frozenset[str]:
    return frozenset(
        code.strip().upper() for code in match["codes"].split(",") if code.strip()
    )


def parse_pragmas(text: str, tree: ast.Module | None = None) -> PragmaIndex:
    """Build the :class:`PragmaIndex` of one file's source *text*.

    *tree* (when available) locates the first statement, bounding the
    header block in which a comment-only pragma acquires file scope.
    """
    first_stmt_line = len(text.splitlines()) + 1
    if tree is not None and tree.body:
        first_stmt_line = tree.body[0].lineno

    line_codes: dict[int, frozenset[str]] = {}
    file_codes: set[str] = set()
    for lineno, line in enumerate(text.splitlines(), start=1):
        match = PRAGMA_RE.search(line)
        if match is None:
            continue
        codes = _codes(match)
        if lineno < first_stmt_line and line.lstrip().startswith("#"):
            file_codes |= codes
        else:
            line_codes[lineno] = line_codes.get(lineno, frozenset()) | codes
    return PragmaIndex(line_codes=line_codes, file_codes=frozenset(file_codes))
