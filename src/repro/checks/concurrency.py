"""Lock-identity facts and the cross-module concurrency model.

The serving tier (PR 6) made the reproduction genuinely concurrent —
per-key single-flight locks, semaphore admission, a fixed worker pool —
and LOCK001 only proves lock *lifecycle* (every acquire has a release
path).  This module adds the *ordering* and *coverage* half, in the same
two-layer shape as :mod:`.project`:

1. :func:`extract_concurrency` walks one parsed file and distils a plain
   JSON-serializable dict of concurrency facts: lock-object identities
   (module globals, ``self.X = Lock()`` class attributes, and dict-of-
   locks attributes like the store's per-key table), acquisition regions
   (``with lock:`` and ``.acquire()`` forms, including aliases through
   lock-returning helpers such as ``ArtifactStore._lock_for``), the
   nested-acquisition order edges observed inside each function, calls
   made while holding a lock, attribute writes inside vs. outside lock
   regions, blocking calls under a lock, per-function semaphore
   balance flows, and ``threading.Thread`` targets.  Facts hold no AST
   nodes, so they cache per content hash like every other fact family.
2. :class:`ConcurrencyModel` aggregates the facts of a whole
   :class:`~repro.checks.project.ProjectIndex` into the global
   structures the LOCK002/LOCK003/LOCK004/SEM001 rules consume: a
   cross-module lock-order graph (intra-function nesting plus
   interprocedural edges one call deep, resolved through the index's
   import bindings), Tarjan SCC cycle detection over it, and guarded-by
   inference (the *majority lock* of each shared attribute, against
   which unguarded writes are judged).

Identities are namespaced ``module:ident`` where the local ``ident`` is
``name`` for module globals, ``Class.attr`` for instance locks and
``Class.attr[]`` for a dict of locks keyed at runtime.
"""

from __future__ import annotations

import ast
from typing import Iterator

# NOTE: annotations naming ProjectIndex stay strings — importing
# .project here (even under TYPE_CHECKING) closes an import cycle,
# because project.extract_facts calls extract_concurrency.

__all__ = ["ConcurrencyModel", "LOCK_CLASSES", "extract_concurrency"]

#: Constructor names that create a lockable primitive, with the kind the
#: order analysis needs (``rlock`` is reentrant: self-edges are legal).
LOCK_CLASSES = {
    "Lock": "lock",
    "RLock": "rlock",
    "Semaphore": "semaphore",
    "BoundedSemaphore": "semaphore",
    "Condition": "condition",
}

#: Plain-name calls that block (or render) — forbidden while holding a lock.
_BLOCKING_NAMES = frozenset({"sleep", "open", "urlopen"})
#: Attribute calls that block: sleeps, socket ops, file IO, HTTP waits.
_BLOCKING_ATTRS = frozenset(
    {
        "sleep", "accept", "connect", "recv", "recv_into", "send",
        "sendall", "wait", "getresponse", "select", "urlopen",
        "read_text", "read_bytes", "write_text", "write_bytes",
    }
)
#: In-place container mutators (kept in sync with project._MUTATOR_METHODS
#: where it matters for attribute writes; duplicated to avoid a cycle).
_MUTATORS = frozenset(
    {
        "append", "extend", "insert", "add", "update", "setdefault",
        "pop", "popitem", "remove", "discard", "clear", "appendleft",
    }
)
#: Methods whose writes run before any thread can see the instance.
_INIT_METHODS = frozenset({"__init__", "__post_init__"})

#: Path-explosion cap for the semaphore balance engine.
_MAX_STATES = 64


def _lock_kind(node: ast.expr | None) -> str | None:
    """The lock kind a value expression creates, or None.

    Sees through wrappers (``maybe_wrap(threading.Lock(), ...)``): any
    sub-call to a lock class marks the whole expression as creating one.
    """
    if node is None:
        return None
    for sub in ast.walk(node):
        if isinstance(sub, ast.Call):
            func = sub.func
            name = func.id if isinstance(func, ast.Name) else (
                func.attr if isinstance(func, ast.Attribute) else None
            )
            if name in LOCK_CLASSES:
                return LOCK_CLASSES[name]
    return None


def _annotation_lock_kind(node: ast.expr | None) -> str | None:
    """The lock kind named inside a (container) annotation, or None."""
    if node is None:
        return None
    for sub in ast.walk(node):
        name = None
        if isinstance(sub, ast.Name):
            name = sub.id
        elif isinstance(sub, ast.Attribute):
            name = sub.attr
        if name in LOCK_CLASSES:
            return LOCK_CLASSES[name]
    return None


def _self_attr(node: ast.expr) -> str | None:
    """``X`` for a ``self.X`` attribute expression, else None."""
    if (
        isinstance(node, ast.Attribute)
        and isinstance(node.value, ast.Name)
        and node.value.id == "self"
    ):
        return node.attr
    return None


def _scan(node: ast.AST) -> Iterator[ast.AST]:
    """Walk *node* without descending into deferred scopes (defs/lambdas)."""
    stack: list[ast.AST] = [node]
    while stack:
        current = stack.pop()
        yield current
        for child in ast.iter_child_nodes(current):
            if isinstance(
                child,
                (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda, ast.ClassDef),
            ):
                continue
            stack.append(child)


class _Extractor:
    """Concurrency facts of one parsed file (see module docstring)."""

    def __init__(self, tree: ast.Module):
        self.tree = tree
        self.locks: dict[str, str] = {}
        self.lock_lines: dict[str, int] = {}
        self.functions: list[tuple[str, str | None, ast.AST]] = []
        self.returns_lock: dict[str, str] = {}
        self.facts: dict = {
            "locks": [],
            "edges": [],
            "entry_acquires": {},
            "region_calls": [],
            "blocking": [],
            "attr_writes": [],
            "sem_flows": [],
            "thread_targets": [],
        }
        self._collect_functions()
        self._collect_identities()
        self._collect_returns_lock()
        for qual, cls, node in self.functions:
            self._walk_function(qual, cls, node)
            self._sem_function(qual, cls, node)
        self.facts["locks"] = sorted(
            [ident, kind, self.lock_lines[ident]]
            for ident, kind in self.locks.items()
        )

    # -- identities ---------------------------------------------------------

    def _collect_functions(self) -> None:
        for node in self.tree.body:
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                self.functions.append((node.name, None, node))
            elif isinstance(node, ast.ClassDef):
                for sub in node.body:
                    if isinstance(sub, (ast.FunctionDef, ast.AsyncFunctionDef)):
                        self.functions.append(
                            (f"{node.name}.{sub.name}", node.name, sub)
                        )

    def _register(self, ident: str, kind: str, lineno: int) -> None:
        self.locks.setdefault(ident, kind)
        self.lock_lines.setdefault(ident, lineno)

    def _collect_identities(self) -> None:
        for node in self.tree.body:
            if isinstance(node, ast.Assign) and len(node.targets) == 1:
                target = node.targets[0]
                kind = _lock_kind(node.value)
                if isinstance(target, ast.Name) and kind:
                    self._register(target.id, kind, node.lineno)
            elif isinstance(node, ast.AnnAssign) and isinstance(
                node.target, ast.Name
            ):
                kind = _lock_kind(node.value)
                if kind:
                    self._register(node.target.id, kind, node.lineno)
        for qual, cls, func in self.functions:
            if cls is None:
                continue
            for stmt in ast.walk(func):
                if isinstance(stmt, ast.Assign):
                    targets, value = stmt.targets, stmt.value
                elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
                    targets, value = [stmt.target], stmt.value
                    attr = _self_attr(stmt.target)
                    if attr and _lock_kind(value) is None:
                        ann_kind = _annotation_lock_kind(stmt.annotation)
                        if ann_kind:  # dict-of-locks: `self.X: dict[str, Lock] = {}`
                            self._register(
                                f"{cls}.{attr}[]", ann_kind, stmt.lineno
                            )
                            continue
                else:
                    continue
                kind = _lock_kind(value)
                if not kind:
                    continue
                for target in targets:
                    attr = _self_attr(target)
                    if attr is not None:
                        self._register(f"{cls}.{attr}", kind, stmt.lineno)
                    elif isinstance(target, ast.Subscript):
                        attr = _self_attr(target.value)
                        if attr is not None:
                            self._register(f"{cls}.{attr}[]", kind, stmt.lineno)

    # -- expression -> lock identity ----------------------------------------

    def _resolve(
        self, node: ast.expr, aliases: dict[str, str], cls: str | None
    ) -> str | None:
        if isinstance(node, ast.Name):
            if node.id in aliases:
                return aliases[node.id]
            return node.id if node.id in self.locks else None
        attr = _self_attr(node)
        if attr is not None and cls is not None:
            ident = f"{cls}.{attr}"
            return ident if ident in self.locks else None
        if isinstance(node, ast.Subscript):
            attr = _self_attr(node.value)
            if attr is not None and cls is not None:
                ident = f"{cls}.{attr}[]"
                return ident if ident in self.locks else None
        if isinstance(node, ast.Call):
            func = node.func
            # `self._locks.get(path)` on a dict-of-locks attribute
            if isinstance(func, ast.Attribute) and func.attr == "get":
                attr = _self_attr(func.value)
                if attr is not None and cls is not None:
                    ident = f"{cls}.{attr}[]"
                    if ident in self.locks:
                        return ident
            # `self._lock_for(path)` through a lock-returning helper
            if isinstance(func, ast.Attribute):
                attr = _self_attr(func)
                if attr is not None and cls is not None:
                    return self.returns_lock.get(f"{cls}.{attr}")
            elif isinstance(func, ast.Name):
                return self.returns_lock.get(func.id)
        return None

    def _alias_map(self, qual: str, cls: str | None, func: ast.AST) -> dict[str, str]:
        """Local names bound to a lock identity inside one function."""
        aliases: dict[str, str] = {}
        for _round in range(2):  # one retry lets chained aliases settle
            for stmt in ast.walk(func):
                if not isinstance(stmt, ast.Assign):
                    continue
                ident = self._resolve(stmt.value, aliases, cls)
                if ident is None and _lock_kind(stmt.value):
                    # `lock = self._locks[p] = Lock()`: prefer the dict slot
                    for target in stmt.targets:
                        if isinstance(target, ast.Subscript):
                            slot = _self_attr(target.value)
                            if slot is not None and cls is not None:
                                ident = f"{cls}.{slot}[]"
                                break
                    if ident is None:
                        name = next(
                            (
                                t.id
                                for t in stmt.targets
                                if isinstance(t, ast.Name)
                            ),
                            None,
                        )
                        if name is not None:
                            ident = f"{qual}.{name}"
                            self._register(
                                ident, _lock_kind(stmt.value) or "lock", stmt.lineno
                            )
                if ident is not None:
                    for target in stmt.targets:
                        if isinstance(target, ast.Name):
                            aliases[target.id] = ident
        return aliases

    def _collect_returns_lock(self) -> None:
        for _round in range(2):  # helpers may chain one level deep
            for qual, cls, func in self.functions:
                aliases = self._alias_map(qual, cls, func)
                for stmt in ast.walk(func):
                    if isinstance(stmt, ast.Return) and stmt.value is not None:
                        ident = self._resolve(stmt.value, aliases, cls)
                        if ident is not None:
                            self.returns_lock.setdefault(qual, ident)

    # -- acquisition regions -----------------------------------------------

    def _walk_function(self, qual: str, cls: str | None, func: ast.AST) -> None:
        aliases = self._alias_map(qual, cls, func)
        held: list[str] = []
        facts = self.facts

        def enter(ident: str, lineno: int, col: int) -> None:
            if held:
                for outer in held:
                    if outer != ident:
                        facts["edges"].append([outer, ident, lineno, col])
                    else:  # re-acquisition of a held primitive: a self-edge
                        facts["edges"].append([ident, ident, lineno, col])
            else:
                facts["entry_acquires"].setdefault(qual, []).append(
                    [ident, lineno]
                )

        def handle_call(node: ast.Call, pushes: list, pops: list) -> None:
            fn = node.func
            attr = fn.attr if isinstance(fn, ast.Attribute) else None
            name = fn.id if isinstance(fn, ast.Name) else None
            if attr == "acquire":
                ident = self._resolve(fn.value, aliases, cls)
                if ident is not None:
                    enter(ident, node.lineno, node.col_offset)
                    pushes.append(ident)
                return
            if attr == "release":
                ident = self._resolve(fn.value, aliases, cls)
                if ident is not None:
                    pops.append(ident)
                return
            if (name or attr) == "Thread":
                for kw in node.keywords:
                    if kw.arg != "target":
                        continue
                    token = None
                    if isinstance(kw.value, ast.Name):
                        token = kw.value.id
                    else:
                        target_attr = _self_attr(kw.value)
                        if target_attr is not None and cls is not None:
                            token = f"{cls}.{target_attr}"
                    if token is not None:
                        facts["thread_targets"].append([token, node.lineno])
            if not held:
                return
            blocking = None
            if name is not None and (
                name in _BLOCKING_NAMES or name.startswith("render")
            ):
                blocking = f"{name}()"
            elif attr is not None and (
                attr in _BLOCKING_ATTRS or attr.startswith("render")
            ):
                receiver = self._resolve(fn.value, aliases, cls)
                # waiting on the very primitive you hold is the condition-
                # variable protocol, not a blocking call under a lock
                if receiver is None or receiver not in held:
                    blocking = f".{attr}()"
            if blocking is not None:
                facts["blocking"].append(
                    [held[-1], blocking, node.lineno, node.col_offset]
                )
            token = None
            if name is not None:
                token = name
            elif attr is not None and attr not in _MUTATORS:
                base = fn.value
                if isinstance(base, ast.Name):
                    token = (
                        f"{cls}.{attr}"
                        if base.id == "self" and cls is not None
                        else f"{base.id}.{attr}"
                    )
            if token is not None:
                facts["region_calls"].append(
                    [held[-1], token, node.lineno, node.col_offset]
                )

        def record_writes(stmt: ast.stmt) -> None:
            if cls is None:
                return
            targets: list[ast.expr] = []
            if isinstance(stmt, ast.Assign):
                targets = list(stmt.targets)
            elif isinstance(stmt, (ast.AugAssign, ast.AnnAssign)):
                targets = [stmt.target]
            for target in targets:
                attr = _self_attr(target)
                if attr is None and isinstance(target, ast.Subscript):
                    attr = _self_attr(target.value)
                if attr is not None:
                    facts["attr_writes"].append(
                        [
                            f"{cls}.{attr}",
                            held[-1] if held else "",
                            qual,
                            target.lineno,
                            target.col_offset,
                        ]
                    )

        def scan(node: ast.AST) -> tuple[list, list]:
            pushes: list[str] = []
            pops: list[str] = []
            for sub in _scan(node):
                if isinstance(sub, ast.Call):
                    handle_call(sub, pushes, pops)
                elif isinstance(sub, ast.Attribute) and cls is not None:
                    # mutator calls handled above; in-place container writes
                    pass
            if isinstance(sub_stmt := node, ast.stmt):
                record_writes(sub_stmt)
            # mutator method calls are attribute writes too
            if cls is not None:
                for sub in _scan(node):
                    if (
                        isinstance(sub, ast.Call)
                        and isinstance(sub.func, ast.Attribute)
                        and sub.func.attr in _MUTATORS
                    ):
                        attr = _self_attr(sub.func.value)
                        if attr is not None:
                            facts["attr_writes"].append(
                                [
                                    f"{cls}.{attr}",
                                    held[-1] if held else "",
                                    qual,
                                    sub.lineno,
                                    sub.col_offset,
                                ]
                            )
            return pushes, pops

        def apply(pushes: list, pops: list) -> None:
            for ident in pops:
                if ident in held:
                    held.remove(ident)
            held.extend(pushes)

        def visit_block(stmts: list[ast.stmt]) -> None:
            for stmt in stmts:
                visit_stmt(stmt)

        def visit_stmt(stmt: ast.stmt) -> None:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
                return
            if isinstance(stmt, (ast.With, ast.AsyncWith)):
                entered = 0
                for item in stmt.items:
                    apply(*scan(item.context_expr))
                    ident = self._resolve(item.context_expr, aliases, cls)
                    if ident is not None:
                        enter(
                            ident,
                            item.context_expr.lineno,
                            item.context_expr.col_offset,
                        )
                        held.append(ident)
                        entered += 1
                visit_block(stmt.body)
                for __ in range(entered):
                    held.pop()
                return
            if isinstance(stmt, ast.If):
                pend = scan(stmt.test)
                visit_block(stmt.body)
                visit_block(stmt.orelse)
                apply(*pend)
                return
            if isinstance(stmt, ast.While):
                pend = scan(stmt.test)
                visit_block(stmt.body)
                visit_block(stmt.orelse)
                apply(*pend)
                return
            if isinstance(stmt, ast.For):
                pend = scan(stmt.iter)
                visit_block(stmt.body)
                visit_block(stmt.orelse)
                apply(*pend)
                return
            if isinstance(stmt, ast.Try):
                visit_block(stmt.body)
                for handler in stmt.handlers:
                    visit_block(handler.body)
                visit_block(stmt.orelse)
                visit_block(stmt.finalbody)
                return
            apply(*scan(stmt))

        visit_block(list(func.body))

    # -- semaphore balance flows ---------------------------------------------

    def _sem_function(self, qual: str, cls: str | None, func: ast.AST) -> None:
        aliases = self._alias_map(qual, cls, func)
        idents: set[str] = set()
        for node in _scan(func):
            if (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr in ("acquire", "release")
            ):
                ident = self._resolve(node.func.value, aliases, cls)
                if ident is not None and self.locks.get(ident) == "semaphore":
                    idents.add(ident)
        for ident in sorted(idents):
            self.facts["sem_flows"].extend(
                self._sem_flows(func, aliases, cls, ident)
            )

    def _sem_flows(
        self, func: ast.AST, aliases: dict[str, str], cls: str | None, ident: str
    ) -> list:
        """``[ident, kind, lineno, col]`` imbalances of one semaphore."""

        exits: list[tuple[int, bool, int, int]] = []

        def matches(node: ast.AST, method: str) -> ast.Call | None:
            for sub in _scan(node):
                if (
                    isinstance(sub, ast.Call)
                    and isinstance(sub.func, ast.Attribute)
                    and sub.func.attr == method
                    and self._resolve(sub.func.value, aliases, cls) == ident
                ):
                    return sub
            return None

        def fork_states(states: list[dict], var: str | None) -> tuple[list, list]:
            """(acquired, failed) successor states of one timed acquire."""
            acquired, failed = [], []
            for state in states:
                taken = dict(state, count=state["count"] + 1, acq=True)
                missed = dict(state)
                if var is not None:
                    taken = dict(taken, vars=dict(state["vars"], **{var: True}))
                    missed = dict(missed, vars=dict(state["vars"], **{var: False}))
                acquired.append(taken)
                failed.append(missed)
            return acquired, failed

        def record_exit(states: list[dict], finallies, lineno: int, col: int) -> None:
            for state in states:
                for settled in apply_finallies(state, finallies):
                    exits.append((settled["count"], settled["acq"], lineno, col))

        def apply_finallies(state: dict, finallies) -> list[dict]:
            states = [state]
            for body in reversed(finallies):
                states = run(list(body), states, [])
            return states

        def run(stmts: list[ast.stmt], states: list[dict], finallies) -> list[dict]:
            for stmt in stmts:
                if not states:
                    return []
                states = step(stmt, states, finallies)[:_MAX_STATES]
            return states

        def step(stmt: ast.stmt, states: list[dict], finallies) -> list[dict]:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
                return states
            if isinstance(stmt, ast.Return):
                record_exit(states, finallies, stmt.lineno, stmt.col_offset)
                return []
            if isinstance(stmt, ast.Raise):
                return []  # exception paths are LOCK001's domain
            if isinstance(stmt, ast.If):
                acquire = matches(stmt.test, "acquire")
                if acquire is not None:
                    negated = isinstance(stmt.test, ast.UnaryOp) and isinstance(
                        stmt.test.op, ast.Not
                    )
                    acquired, failed = fork_states(states, None)
                    into_body = failed if negated else acquired
                    past_test = acquired if negated else failed
                    return (
                        run(list(stmt.body), into_body, finallies)
                        + run(list(stmt.orelse), past_test, finallies)
                    )
                test_var = None
                test_negated = False
                if isinstance(stmt.test, ast.Name):
                    test_var = stmt.test.id
                elif (
                    isinstance(stmt.test, ast.UnaryOp)
                    and isinstance(stmt.test.op, ast.Not)
                    and isinstance(stmt.test.operand, ast.Name)
                ):
                    test_var = stmt.test.operand.id
                    test_negated = True
                into_body, into_else = [], []
                for state in states:
                    known = state["vars"].get(test_var) if test_var else None
                    if known is None:
                        into_body.append(state)
                        into_else.append(state)
                    elif known != test_negated:
                        into_body.append(state)
                    else:
                        into_else.append(state)
                return (
                    run(list(stmt.body), into_body, finallies)
                    + run(list(stmt.orelse), into_else, finallies)
                )
            if isinstance(stmt, (ast.While, ast.For)):
                once = run(list(stmt.body), states, finallies)
                return states + once
            if isinstance(stmt, (ast.With, ast.AsyncWith)):
                # `with sem:` is balanced by __exit__ on every path
                return run(list(stmt.body), states, finallies)
            if isinstance(stmt, ast.Try):
                inner = finallies + ([stmt.finalbody] if stmt.finalbody else [])
                states = run(list(stmt.body), states, inner)
                states = run(list(stmt.orelse), states, inner)
                if stmt.finalbody:
                    states = run(list(stmt.finalbody), states, finallies)
                return states
            if isinstance(stmt, ast.Assign):
                acquire = matches(stmt.value, "acquire")
                if acquire is not None and len(stmt.targets) == 1 and isinstance(
                    stmt.targets[0], ast.Name
                ):
                    acquired, failed = fork_states(states, stmt.targets[0].id)
                    return acquired + failed
            out = states
            if matches(stmt, "acquire") is not None:
                out = [dict(s, count=s["count"] + 1, acq=True) for s in out]
            if matches(stmt, "release") is not None:
                out = [dict(s, count=s["count"] - 1) for s in out]
            return out

        initial = {"count": 0, "acq": False, "vars": {}}
        final = run(list(func.body), [initial], [])
        anchor = getattr(func, "lineno", 0)
        for state in final:
            exits.append((state["count"], state["acq"], anchor, 0))

        flows: list = []
        seen: set[tuple] = set()
        balanced = any(count == 0 and acq for count, acq, __, ___ in exits)
        for count, acq, lineno, col in exits:
            if count < 0:
                key = (ident, "over", lineno)
                if key not in seen:
                    seen.add(key)
                    flows.append([ident, "over", lineno, col])
            elif count > 0 and acq and balanced:
                key = (ident, "leak", lineno)
                if key not in seen:
                    seen.add(key)
                    flows.append([ident, "leak", lineno, col])
        return flows


def extract_concurrency(tree: ast.Module) -> dict:
    """The JSON-serializable concurrency facts of one parsed file."""
    return _Extractor(tree).facts


class ConcurrencyModel:
    """Cross-module lock-order graph and guarded-by inference.

    Build one per analysis (rules share it through :meth:`of`); all the
    heavy lifting is dict/set merging over cached facts, so a warm
    incremental run pays microseconds here.
    """

    def __init__(self, index: "ProjectIndex"):
        self.kinds: dict[str, str] = {}
        self.lock_sites: dict[str, tuple[str, int]] = {}
        #: ``(outer, inner) -> (display, lineno, col)`` — first site wins.
        self.edges: dict[tuple[str, str], tuple[str, int, int]] = {}
        self.blocking: list[tuple[str, str, str, int, int]] = []
        self.sem_flows: list[tuple[str, str, str, int, int]] = []
        self._writes: dict[str, dict[str, list]] = {}
        self._threaded_classes: set[str] = set()
        self._build(index)

    @classmethod
    def of(cls, index: "ProjectIndex") -> "ConcurrencyModel":
        """The (memoized) model of one index."""
        model = getattr(index, "_concurrency_model", None)
        if model is None:
            model = cls(index)
            index._concurrency_model = model
        return model

    # -- construction --------------------------------------------------------

    def _build(self, index: "ProjectIndex") -> None:
        for summary in index.summaries:
            facts = summary.facts.get("concurrency") or {}
            module = summary.module
            for ident, kind, lineno in facts.get("locks", ()):
                gid = f"{module}:{ident}"
                self.kinds.setdefault(gid, kind)
                self.lock_sites.setdefault(gid, (summary.display, lineno))
            for outer, inner, lineno, col in facts.get("edges", ()):
                self._edge(
                    f"{module}:{outer}", f"{module}:{inner}",
                    summary.display, lineno, col,
                )
            for holder, what, lineno, col in facts.get("blocking", ()):
                self.blocking.append(
                    (f"{module}:{holder}", what, summary.display, lineno, col)
                )
            for ident, kind, lineno, col in facts.get("sem_flows", ()):
                self.sem_flows.append(
                    (f"{module}:{ident}", kind, summary.display, lineno, col)
                )
            for ident, lock, qual, lineno, col in facts.get("attr_writes", ()):
                entry = self._writes.setdefault(
                    f"{module}:{ident}", {"locked": [], "bare": []}
                )
                if lock:
                    entry["locked"].append(
                        (f"{module}:{lock}", qual, summary.display, lineno, col)
                    )
                else:
                    entry["bare"].append((qual, summary.display, lineno, col))
            for token, __ in facts.get("thread_targets", ()):
                if "." in token:
                    self._threaded_classes.add(
                        f"{module}:{token.rsplit('.', 1)[0]}"
                    )
        for summary in index.summaries:
            facts = summary.facts.get("concurrency") or {}
            for holder, token, lineno, col in facts.get("region_calls", ()):
                for callee_gid in self._entry_locks(index, summary, token):
                    self._edge(
                        f"{summary.module}:{holder}", callee_gid,
                        summary.display, lineno, col,
                    )

    def _edge(
        self, outer: str, inner: str, display: str, lineno: int, col: int
    ) -> None:
        self.edges.setdefault((outer, inner), (display, lineno, col))

    def _entry_locks(self, index, summary, token: str) -> list[str]:
        """Global idents a called function acquires at its top level."""
        facts = summary.facts.get("concurrency") or {}
        entries = facts.get("entry_acquires", {})
        if token in entries:
            return [f"{summary.module}:{ident}" for ident, __ in entries[token]]
        head, _, tail = token.partition(".")
        resolved = index._resolve_binding(summary.module, head)
        if resolved is None:
            return []
        owner, symbol = resolved
        target = index.by_module.get(owner)
        if target is None:
            return []
        remote = (target.facts.get("concurrency") or {}).get("entry_acquires", {})
        qual = f"{symbol}.{tail}" if tail else symbol
        return [f"{owner}:{ident}" for ident, __ in remote.get(qual, ())]

    # -- lock-order cycles (LOCK002) -----------------------------------------

    def order_cycles(self) -> list[dict]:
        """Each cycle: ``{"ring": [...], "display": ..., "lineno", "col"}``."""
        graph: dict[str, set[str]] = {}
        for outer, inner in self.edges:
            graph.setdefault(outer, set())
            graph.setdefault(inner, set())
            if outer != inner:
                graph[outer].add(inner)
        cycles: list[list[str]] = [
            component for component in self._tarjan(graph) if len(component) > 1
        ]
        for outer, inner in self.edges:
            if outer == inner and self.kinds.get(outer) != "rlock":
                cycles.append([outer])
        out = []
        for ring in sorted(cycles):
            members = set(ring)
            sites = sorted(
                (site, pair)
                for pair, site in self.edges.items()
                if pair[0] in members and pair[1] in members
            )
            if not sites:  # pragma: no cover — a cycle always has edges
                continue
            (display, lineno, col), __ = sites[0]
            out.append(
                {"ring": sorted(ring), "display": display,
                 "lineno": lineno, "col": col}
            )
        return out

    @staticmethod
    def _tarjan(graph: dict[str, set[str]]) -> list[list[str]]:
        """Strongly connected components, iteratively (no recursion limit)."""
        index: dict[str, int] = {}
        low: dict[str, int] = {}
        on_stack: set[str] = set()
        stack: list[str] = []
        counter = 0
        components: list[list[str]] = []
        for root in sorted(graph):
            if root in index:
                continue
            work: list[tuple[str, list[str], int]] = [
                (root, sorted(graph.get(root, ())), 0)
            ]
            index[root] = low[root] = counter
            counter += 1
            stack.append(root)
            on_stack.add(root)
            while work:
                node, targets, position = work.pop()
                if position < len(targets):
                    work.append((node, targets, position + 1))
                    child = targets[position]
                    if child not in index:
                        index[child] = low[child] = counter
                        counter += 1
                        stack.append(child)
                        on_stack.add(child)
                        work.append((child, sorted(graph.get(child, ())), 0))
                    elif child in on_stack:
                        low[node] = min(low[node], index[child])
                    continue
                if low[node] == index[node]:
                    component = []
                    while True:
                        leaf = stack.pop()
                        on_stack.discard(leaf)
                        component.append(leaf)
                        if leaf == node:
                            break
                    components.append(sorted(component))
                if work:
                    parent = work[-1][0]
                    low[parent] = min(low[parent], low[node])
        return components

    # -- guarded-by inference (LOCK003) --------------------------------------

    def is_concurrent_class(self, class_gid: str) -> bool:
        """Thread-reachability seed: the class spawns threads or owns a lock.

        ``module:Class`` owning any lock identity counts — locks exist
        because threads do, so its methods are presumed thread-reachable
        (``PooledHTTPServer`` workers, ``ParallelMap`` initializers and
        ``threading.Thread`` targets all land on such classes).
        """
        if class_gid in self._threaded_classes:
            return True
        prefix = class_gid + "."
        module, __, cls = class_gid.partition(":")
        return any(
            gid.startswith(f"{module}:{cls}.") for gid in self.kinds
        )

    def guard_violations(self) -> list[dict]:
        """Unguarded writes to attributes that have a majority lock."""
        out = []
        for attr_gid in sorted(self._writes):
            entry = self._writes[attr_gid]
            locked = entry["locked"]
            if not locked:
                continue
            module, __, attr = attr_gid.partition(":")
            class_gid = f"{module}:{attr.rsplit('.', 1)[0]}"
            if not self.is_concurrent_class(class_gid):
                continue
            counts: dict[str, int] = {}
            for lock_gid, *__rest in locked:
                counts[lock_gid] = counts.get(lock_gid, 0) + 1
            majority = max(sorted(counts), key=lambda gid: counts[gid])
            for qual, display, lineno, col in entry["bare"]:
                method = qual.rsplit(".", 1)[-1]
                if method in _INIT_METHODS:
                    continue
                out.append(
                    {
                        "attr": attr_gid,
                        "lock": majority,
                        "n_guarded": len(locked),
                        "qual": qual,
                        "display": display,
                        "lineno": lineno,
                        "col": col,
                    }
                )
        return out
