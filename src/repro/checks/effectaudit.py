"""Runtime effect auditor — the dynamic half of the effect rules.

The static analyzer (:mod:`.effects`, CACHE002/DET004) proves over the
*code* that no cached stage or artifact render depends on state missing
from its cache key.  This module proves the same contract over an actual
*run*: under ``REPRO_AUDIT_EFFECTS=1`` (or ``repro run
--audit-effects``, which sets it) the process-level ambient inputs —
``os.environ``, the wall clock, the global ``random`` generator — are
wrapped with recording proxies, and the cached-stage and render regions
(``Indice.preprocess``/``analyze``, ``ArtifactStore.get``) declare
themselves on a per-thread region stack.  Every ambient read observed
inside a region lands in that region's observed effect set, and an
``os.environ`` read of a key that is not an allowlisted instrumentation
flag raises :class:`EffectAuditError` at the read site, deterministically,
on the *first* offending access — the dynamic shadow of CACHE002, with
no need for the cache hit that would later replay the stale value.

The observed sets are the ground truth the static model is checked
against: a test runs the real pipeline audited and asserts every
observed effect *category* appears in the static
:class:`~repro.checks.effects.EffectModel` summary of the matching root
(observed ⊆ static) — an unsound summary would show up as an observed
effect the model missed.  Everything is opt-in and mirrors
:mod:`.lockdep`: production code pays nothing unless the flag (or an
explicit :class:`EffectAudit` instance) arms the instrumentation.
"""

from __future__ import annotations

import contextlib
import functools
import os
import random
import threading
import time
from collections.abc import MutableMapping

from .effects import INSTRUMENTATION_ENV

__all__ = [
    "ENV_FLAG",
    "EffectAudit",
    "EffectAuditError",
    "audited",
    "enabled",
    "region",
    "resolve",
]

#: Environment flag that arms the shared default auditor.
ENV_FLAG = "REPRO_AUDIT_EFFECTS"


def enabled() -> bool:
    """True when the environment opts into effect auditing."""
    return os.environ.get(ENV_FLAG, "") not in ("", "0")


class EffectAuditError(RuntimeError):
    """An un-fingerprinted ambient read inside an audited region."""


def categories(tokens) -> set[str]:
    """The effect categories of ``category:detail`` tokens."""
    return {token.partition(":")[0] for token in tokens}


class _AuditedEnviron(MutableMapping):
    """``os.environ`` stand-in reporting reads to an :class:`EffectAudit`.

    Writes pass straight through (and are recorded): mutating the
    environment inside a region is FAULT002/PURE001 territory, not a
    cache-soundness violation.  Reads of non-instrumentation keys inside
    a region raise — a cached stage just consumed state its key never
    fingerprinted.
    """

    def __init__(self, inner, audit: "EffectAudit"):
        self._inner = inner
        self._audit = audit

    # -- reads (recorded, possibly raising) ---------------------------------

    def __getitem__(self, key):
        self._audit.record_env_read(key)
        return self._inner[key]

    def get(self, key, default=None):
        """Recorded twin of ``os.environ.get`` (the hot read path)."""
        self._audit.record_env_read(key)
        return self._inner.get(key, default)

    def __contains__(self, key):
        self._audit.record_env_read(key)
        return key in self._inner

    def __iter__(self):
        self._audit.record_env_read("*")
        return iter(self._inner)

    def __len__(self):
        return len(self._inner)

    # -- writes (recorded, never raising) -----------------------------------

    def __setitem__(self, key, value):
        self._audit.record(f"env_write:{key}")
        self._inner[key] = value

    def __delitem__(self, key):
        self._audit.record(f"env_write:{key}")
        del self._inner[key]

    def __getattr__(self, attr):
        return getattr(self._inner, attr)


#: module-level patch owner: only one audit may hold the proxies.
_active: "EffectAudit | None" = None
_active_lock = threading.Lock()


class EffectAudit:
    """Per-region observed effect sets + the ambient-input proxies.

    One instance owns the process-wide patches while installed; regions
    are tracked per thread, so concurrent renders attribute their reads
    to their own region (the innermost one on the calling thread).
    """

    def __init__(self, name: str = "effectaudit"):
        self.name = name
        self._state_lock = threading.Lock()
        #: region name -> observed ``category:detail`` tokens.
        self.observed: dict[str, set[str]] = {}
        #: violations recorded before raising (stable for harness asserts).
        self.violations: list[str] = []
        self._local = threading.local()
        self._saved: dict[str, object] = {}

    # -- per-thread region stack --------------------------------------------

    def _stack(self) -> list[str]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        return stack

    def active_region(self) -> str | None:
        """The innermost audited region on the calling thread, if any."""
        stack = self._stack()
        return stack[-1] if stack else None

    def enter(self, name: str) -> None:
        """Open an audited region on this thread (installs the proxies)."""
        self.install()
        self._stack().append(name)
        with self._state_lock:
            self.observed.setdefault(name, set())

    def exit(self, name: str) -> None:
        """Close the innermost holding of *name* on this thread."""
        stack = self._stack()
        for position in range(len(stack) - 1, -1, -1):
            if stack[position] == name:
                del stack[position]
                return

    # -- recording -----------------------------------------------------------

    def record(self, token: str) -> None:
        """Attribute *token* to the calling thread's innermost region."""
        name = self.active_region()
        if name is None:
            return
        with self._state_lock:
            self.observed.setdefault(name, set()).add(token)

    def record_env_read(self, key: str) -> None:
        """Record an environment read; raise if it is un-fingerprinted.

        Instrumentation flags (the sanitizer/auditor's own switches) are
        behaviour-neutral by contract and allowlisted — everything else
        read inside a cached region is state the cache key never saw.
        """
        name = self.active_region()
        if name is None:
            return
        self.record(f"env_read:{key}")
        if key in INSTRUMENTATION_ENV:
            return
        message = (
            f"[{self.name}] un-fingerprinted os.environ read of {key!r} "
            f"inside audited region '{name}': a cache hit would replay a "
            "result computed under a different environment"
        )
        with self._state_lock:
            self.violations.append(message)
        raise EffectAuditError(message)

    # -- cross-check against the static model --------------------------------

    def observed_categories(self, name: str) -> set[str]:
        """Effect categories observed inside region *name*."""
        with self._state_lock:
            return categories(self.observed.get(name, ()))

    def assert_subset_of(self, name: str, static_tokens) -> None:
        """Raise unless observed categories ⊆ the static summary's.

        The comparison is at category level: the static summary
        qualifies details differently (``global_read:module.NAME``) than
        the runtime can observe, but a whole *category* the model missed
        is an unsound summary.
        """
        extra = self.observed_categories(name) - categories(static_tokens)
        if extra:
            raise EffectAuditError(
                f"[{self.name}] region '{name}' observed effect "
                f"categories {sorted(extra)} absent from its static "
                "summary: the effect model is unsound for this root"
            )

    def describe(self) -> str:
        """One human line per audited region, stable order."""
        with self._state_lock:
            lines = [
                f"{name}: {', '.join(sorted(tokens)) or '(pure)'}"
                for name, tokens in sorted(self.observed.items())
            ]
        return "\n".join(lines) or "(no audited regions ran)"

    def reset(self) -> None:
        """Drop observed state (patches stay; regions are per-thread)."""
        with self._state_lock:
            self.observed.clear()
            self.violations.clear()

    # -- patch management ----------------------------------------------------

    def install(self) -> None:
        """Take ownership of the ambient-input proxies (idempotent)."""
        global _active
        with _active_lock:
            if _active is self:
                return
            if _active is not None:
                raise EffectAuditError(
                    f"[{self.name}] cannot install: audit "
                    f"'{_active.name}' already owns the instrumentation"
                )
            self._saved = {
                "environ": os.environ,
                "getenv": os.getenv,
                "time": time.time,
                "time_ns": time.time_ns,
                "random": random.random,
            }
            proxy = _AuditedEnviron(os.environ, self)
            os.environ = proxy

            def audited_getenv(key, default=None, _proxy=proxy):
                return _proxy.get(key, default)

            os.getenv = audited_getenv

            def make_clock(original, token):
                @functools.wraps(original)
                def wrapper(*args, **kwargs):
                    self.record(token)
                    return original(*args, **kwargs)
                return wrapper

            time.time = make_clock(self._saved["time"], "clock:time.time")
            time.time_ns = make_clock(
                self._saved["time_ns"], "clock:time.time_ns"
            )
            random.random = make_clock(
                self._saved["random"], "rng:random.random"
            )
            _active = self

    def uninstall(self) -> None:
        """Restore the original ambient inputs (no-op if not installed)."""
        global _active
        with _active_lock:
            if _active is not self:
                return
            os.environ = self._saved["environ"]
            os.getenv = self._saved["getenv"]
            time.time = self._saved["time"]
            time.time_ns = self._saved["time_ns"]
            random.random = self._saved["random"]
            self._saved = {}
            _active = None


#: The process-wide auditor the env flag arms.
DEFAULT = EffectAudit("default")


def resolve(audit: "EffectAudit | None") -> "EffectAudit | None":
    """The auditor to use: an explicit one, else the armed default.

    Instrumentation sites thread their ``effectaudit=`` parameter through
    here so an explicit instance (tests) always wins, the shared
    :data:`DEFAULT` is used when :func:`enabled`, and otherwise the
    region is free (no proxies, no recording).
    """
    if audit is not None:
        return audit
    if enabled():
        return DEFAULT
    return None


@contextlib.contextmanager
def region(audit: "EffectAudit | None", name: str):
    """Audited-region context: a no-op when *audit* is None."""
    if audit is None:
        yield
        return
    audit.enter(name)
    try:
        yield
    finally:
        audit.exit(name)


def audited(stage: str):
    """Decorator: run the function as an audited region named *stage*.

    Resolution happens per call, so decorating a cached stage costs one
    env lookup when auditing is off — the decorated body never pays for
    instrumentation it did not opt into.
    """
    def decorate(func):
        @functools.wraps(func)
        def wrapper(*args, **kwargs):
            audit = resolve(None)
            if audit is None:
                return func(*args, **kwargs)
            with region(audit, stage):
                return func(*args, **kwargs)
        return wrapper
    return decorate
