"""Core model of the invariant linter: findings, rules and the registry.

A :class:`Rule` encodes one machine-checkable contract of the pipeline
(determinism, cache-fingerprint coverage, fault-site parity, exception
hygiene).  Rules are registered by decorating the class with
:func:`register`; :func:`all_rules` instantiates every registered rule in
stable (code-sorted) order.  A rule inspects parsed source files and
yields :class:`Finding` objects — it never mutates anything and never
imports the code under analysis unless explicitly documented (CACHE001's
runtime cross-check is the one exception).
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from pathlib import Path
from typing import TYPE_CHECKING, Iterator, Sequence

if TYPE_CHECKING:  # pragma: no cover — import cycle guard, types only
    from .project import ProjectIndex

__all__ = [
    "Finding",
    "SourceFile",
    "Rule",
    "register",
    "all_rules",
    "rule_codes",
]


@dataclass(frozen=True, order=True)
class Finding:
    """One contract violation, anchored to a source location."""

    path: str
    line: int
    col: int
    rule: str
    message: str

    def render(self) -> str:
        """The clickable one-line form: ``file:line:col: RULE message``."""
        return f"{self.path}:{self.line}:{self.col}: {self.rule} {self.message}"

    def signature(self) -> tuple[str, str, str]:
        """Line-independent identity used by baseline files.

        Excludes the line/column so a baseline survives unrelated edits
        above the grandfathered finding.
        """
        return (self.path, self.rule, self.message)

    def to_dict(self) -> dict[str, object]:
        """The JSON-output form."""
        return {
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "rule": self.rule,
            "message": self.message,
        }


@dataclass(frozen=True)
class SourceFile:
    """One parsed file handed to the rules."""

    path: Path
    #: The path as reported in findings (repo-relative where possible).
    display: str
    text: str
    tree: ast.Module

    def lines(self) -> list[str]:
        """The physical source lines (1-based access via ``lines()[n-1]``)."""
        return self.text.splitlines()


class Rule:
    """Base class of every check.

    Subclasses set the class attributes and override :meth:`check_file`
    (runs once per file; results are cacheable per content hash),
    :meth:`check_index` (runs once per analysis over the aggregated
    :class:`~repro.checks.project.ProjectIndex` facts — the preferred
    form for cross-file contracts, because it never needs the ASTs of
    cached files), or the legacy :meth:`check_project` (runs over the
    parsed file set; forces a parse of every file, so new cross-file
    rules should use :meth:`check_index` instead).
    """

    #: Stable identifier, e.g. ``DET001`` (used in findings and pragmas).
    code: str = ""
    #: Short human name, e.g. ``unseeded-rng``.
    name: str = ""
    #: One-line rationale tying the rule to a pipeline contract.
    rationale: str = ""
    #: SARIF reporting level: ``error`` (contract violation), ``warning``
    #: (latent hazard) or ``note`` — drives code-scanning display only;
    #: every finding still fails the sweep with exit 1.
    severity: str = "error"

    def check_file(self, file: SourceFile) -> Iterator[Finding]:
        """Findings of this rule in one file (default: none)."""
        return iter(())

    def check_index(self, index: "ProjectIndex") -> Iterator[Finding]:
        """Findings over the whole-program fact index (default: none)."""
        return iter(())

    def check_project(self, files: Sequence[SourceFile]) -> Iterator[Finding]:
        """Findings of this rule over the whole file set (default: none)."""
        return iter(())


_REGISTRY: dict[str, type[Rule]] = {}


def register(cls: type[Rule]) -> type[Rule]:
    """Class decorator adding a rule to the global registry."""
    if not cls.code:
        raise ValueError(f"rule {cls.__name__} has no code")
    if cls.code in _REGISTRY:
        raise ValueError(f"duplicate rule code {cls.code}")
    _REGISTRY[cls.code] = cls
    return cls


def all_rules() -> tuple[Rule, ...]:
    """One instance of every registered rule, in code order."""
    # importing the rules package populates the registry
    from . import rules as _rules  # noqa: F401  (import for side effect)

    return tuple(_REGISTRY[code]() for code in sorted(_REGISTRY))


def rule_codes() -> tuple[str, ...]:
    """The registered rule codes, sorted."""
    from . import rules as _rules  # noqa: F401  (import for side effect)

    return tuple(sorted(_REGISTRY))
