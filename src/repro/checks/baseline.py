"""Baseline files: grandfathering findings so new rules can land safely.

A baseline is a JSON document listing finding *signatures* — ``(path,
rule, message)`` triples, deliberately line-independent so unrelated
edits above a grandfathered finding do not un-baseline it.  Checking with
a baseline subtracts each signature once per recorded occurrence: fixing
one of two identical findings keeps the other grandfathered, and a *new*
occurrence of an old signature still fails the build.

The project contract is an **empty baseline** on ``src/repro`` (every
finding fixed or pragma'd with a justification); the mechanism exists so
a future, stricter rule can ship enforcing only new code while the
backlog is burned down.
"""

from __future__ import annotations

import json
from collections import Counter
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Sequence

from .model import Finding

__all__ = ["Baseline", "BASELINE_VERSION"]

BASELINE_VERSION = 1


@dataclass
class Baseline:
    """A multiset of grandfathered finding signatures."""

    counts: Counter = field(default_factory=Counter)

    @classmethod
    def from_findings(cls, findings: Iterable[Finding]) -> "Baseline":
        """The baseline that grandfathers exactly *findings*."""
        return cls(counts=Counter(f.signature() for f in findings))

    @classmethod
    def load(cls, path: str | Path) -> "Baseline":
        """Read a baseline written by :meth:`save`."""
        payload = json.loads(Path(path).read_text(encoding="utf-8"))
        version = payload.get("version")
        if version != BASELINE_VERSION:
            raise ValueError(
                f"unsupported baseline version {version!r} "
                f"(expected {BASELINE_VERSION})"
            )
        counts: Counter = Counter()
        for entry in payload.get("findings", ()):
            signature = (entry["path"], entry["rule"], entry["message"])
            counts[signature] += int(entry.get("count", 1))
        return cls(counts=counts)

    def save(self, path: str | Path) -> Path:
        """Write the JSON form (stable ordering, round-trips via load)."""
        entries = [
            {"path": p, "rule": r, "message": m, "count": c}
            for (p, r, m), c in sorted(self.counts.items())
        ]
        payload = {"version": BASELINE_VERSION, "findings": entries}
        out = Path(path)
        out.write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")
        return out

    def __len__(self) -> int:
        return sum(self.counts.values())

    def apply(self, findings: Sequence[Finding]) -> tuple[list[Finding], int]:
        """``(fresh, n_baselined)``: subtract each signature once per entry.

        Findings are consumed in order, so with N grandfathered
        occurrences of a signature the first N current occurrences are
        absorbed and any further one is fresh.
        """
        remaining = Counter(self.counts)
        fresh: list[Finding] = []
        baselined = 0
        for finding in findings:
            signature = finding.signature()
            if remaining.get(signature, 0) > 0:
                remaining[signature] -= 1
                baselined += 1
            else:
                fresh.append(finding)
        return fresh, baselined
