"""Command line of the invariant linter: ``python -m repro.checks``.

Usage::

    python -m repro.checks src/repro                 # text findings, exit 1 if any
    python -m repro.checks src/ --format=json        # machine-readable output
    python -m repro.checks src/repro --baseline b.json
    python -m repro.checks src/repro --write-baseline b.json
    python -m repro.checks --list-rules

Exit codes: 0 clean, 1 findings (or unparseable files), 2 usage errors.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Sequence, TextIO

from .baseline import Baseline
from .checker import Checker, CheckResult
from .model import all_rules

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    """The ``python -m repro.checks`` argument parser."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.checks",
        description=(
            "AST-based invariant linter proving the pipeline's determinism, "
            "cache-fingerprint and fault-site contracts"
        ),
    )
    parser.add_argument(
        "paths", nargs="*", default=["src/repro"],
        help="files or directories to analyze (default: src/repro)",
    )
    parser.add_argument(
        "--format", choices=("text", "json"), default="text",
        help="findings as clickable file:line lines (text) or one JSON document",
    )
    parser.add_argument(
        "--select", metavar="RULES", default=None,
        help="comma-separated rule codes to run (default: all)",
    )
    parser.add_argument(
        "--baseline", metavar="PATH", default=None,
        help="subtract the grandfathered findings recorded in this JSON file",
    )
    parser.add_argument(
        "--write-baseline", metavar="PATH", default=None,
        help="write the current findings as a new baseline and exit 0",
    )
    parser.add_argument(
        "--list-rules", action="store_true",
        help="print the rule table (code, name, rationale) and exit",
    )
    return parser


def _print_rules(out: TextIO) -> None:
    for rule in all_rules():
        out.write(f"{rule.code}  {rule.name}\n    {rule.rationale}\n")


def _select_rules(spec: str) -> list:
    wanted = {code.strip().upper() for code in spec.split(",") if code.strip()}
    rules = [rule for rule in all_rules() if rule.code in wanted]
    known = {rule.code for rule in all_rules()}
    unknown = sorted(wanted - known)
    if unknown:
        raise SystemExit(
            f"unknown rule code(s): {', '.join(unknown)} "
            f"(known: {', '.join(sorted(known))})"
        )
    return rules


def _render_text(result: CheckResult, out: TextIO) -> None:
    for path, message in result.errors:
        out.write(f"{path}:0:0: PARSE {message}\n")
    for finding in result.findings:
        out.write(finding.render() + "\n")
    summary = (
        f"{result.n_files} files: {len(result.findings)} finding(s), "
        f"{result.n_suppressed} pragma-suppressed, "
        f"{result.n_baselined} baselined"
    )
    if result.errors:
        summary += f", {len(result.errors)} unparseable"
    out.write(summary + "\n")


def main(argv: Sequence[str] | None = None, out: TextIO | None = None) -> int:
    """Entry point; returns the process exit code."""
    out = out if out is not None else sys.stdout
    args = build_parser().parse_args(argv)

    if args.list_rules:
        _print_rules(out)
        return 0

    rules = _select_rules(args.select) if args.select else None
    baseline = Baseline.load(args.baseline) if args.baseline else None
    checker = Checker(rules=rules, baseline=baseline)
    result = checker.run(args.paths)

    if args.write_baseline:
        path = Baseline.from_findings(result.findings).save(args.write_baseline)
        out.write(
            f"wrote baseline with {len(result.findings)} finding(s) to {path}\n"
        )
        return 0

    if args.format == "json":
        out.write(json.dumps(result.to_dict(), indent=2) + "\n")
    else:
        _render_text(result, out)
    return 0 if result.ok else 1


if __name__ == "__main__":
    sys.exit(main())
