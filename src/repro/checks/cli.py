"""Command line of the invariant analyzer: ``python -m repro.checks``.

Usage::

    python -m repro.checks src/repro                 # text findings, exit 1 if any
    python -m repro.checks src/ --format=json        # machine-readable output
    python -m repro.checks src/ --format=sarif       # CI code-scanning output
    python -m repro.checks src/repro --cache .checks-cache.json
    python -m repro.checks src/repro --changed-only  # git-aware fast path
    python -m repro.checks src/repro --baseline b.json
    python -m repro.checks src/repro --write-baseline b.json
    python -m repro.checks --all                     # sweep + ruff + mypy
    python -m repro.checks --list-rules

Exit codes: **0** clean, **1** findings (or unparseable files), **2**
usage errors and internal analyzer errors — so CI can distinguish "the
code has violations" from "the analyzer itself broke".
"""

from __future__ import annotations

import argparse
import json
import shutil
import subprocess
import sys
from pathlib import Path
from typing import Sequence, TextIO

from .baseline import Baseline
from .cache import AnalysisCache, analysis_fingerprint
from .checker import Checker, CheckResult
from .model import all_rules
from .sarif import to_sarif

__all__ = ["main", "build_parser", "UsageError"]


class UsageError(Exception):
    """A command-line usage problem (exit code 2)."""


def build_parser() -> argparse.ArgumentParser:
    """The ``python -m repro.checks`` argument parser."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.checks",
        description=(
            "AST-based project analyzer proving the pipeline's determinism, "
            "cache-fingerprint, fault-site, column-lineage, fork-safety and "
            "config-parity contracts"
        ),
    )
    parser.add_argument(
        "paths", nargs="*", default=["src/repro"],
        help="files or directories to analyze (default: src/repro)",
    )
    parser.add_argument(
        "--format", choices=("text", "json", "sarif"), default="text",
        help="clickable file:line lines (text), one JSON document, or SARIF 2.1.0",
    )
    parser.add_argument(
        "--select", metavar="RULES", default=None,
        help="comma-separated rule codes to run (default: all)",
    )
    parser.add_argument(
        "--cache", metavar="PATH", default=None,
        help="incremental analysis cache file (content-hash keyed)",
    )
    parser.add_argument(
        "--changed-only", action="store_true",
        help=(
            "report per-file findings only for files changed vs. git HEAD "
            "(cross-module findings are always reported)"
        ),
    )
    parser.add_argument(
        "--baseline", metavar="PATH", default=None,
        help="subtract the grandfathered findings recorded in this JSON file",
    )
    parser.add_argument(
        "--write-baseline", metavar="PATH", default=None,
        help="write the current findings as a new baseline and exit 0",
    )
    parser.add_argument(
        "--all", action="store_true",
        help="run the AST sweep plus ruff and mypy (each skipped if missing)",
    )
    parser.add_argument(
        "--list-rules", action="store_true",
        help="print the rule table (code, name, rationale) and exit",
    )
    parser.add_argument(
        "--explain", metavar="RULE", default=None,
        help=(
            "print one rule's documentation, rationale and its good/bad "
            "fixture pair, then exit"
        ),
    )
    return parser


def _print_rules(out: TextIO) -> None:
    for rule in all_rules():
        out.write(f"{rule.code}  {rule.name}\n    {rule.rationale}\n")


def _fixture_pair(code: str) -> list[tuple[str, Path]]:
    """``(label, path)`` fixture files of one rule, bad first.

    Fixtures live in the source checkout (``tests/checks_fixtures``); an
    installed package without tests simply has none to show.  Directory
    fixtures (e.g. the import-cycle corpus) contribute every module.
    """
    root = Path(__file__).resolve().parents[3] / "tests" / "checks_fixtures"
    if not root.is_dir():
        return []
    stem = code.lower()
    pairs: list[tuple[str, Path]] = []
    for label, suffix in (("bad", "_bad"), ("good", "_good")):
        base = root / f"{stem}{suffix}"
        file = base.with_suffix(".py")
        if file.is_file():
            pairs.append((label, file))
        elif base.is_dir():
            pairs.extend(
                (label, module) for module in sorted(base.glob("*.py"))
            )
    return pairs


def _explain_rule(code: str, out: TextIO) -> None:
    """Print one rule's doc, rationale and fixture pair (or UsageError).

    Lookup is forgiving: codes match case-insensitively, and a unique
    prefix works too (``--explain lock004``, ``--explain cache``).  An
    ambiguous prefix or an unknown code raises :class:`UsageError`
    naming the candidates — with near-miss suggestions for typos.
    """
    wanted = code.strip().upper()
    rules = list(all_rules())
    rule = next((r for r in rules if r.code == wanted), None)
    if rule is None and wanted:
        by_prefix = [r for r in rules if r.code.startswith(wanted)]
        if len(by_prefix) == 1:
            rule = by_prefix[0]
        elif len(by_prefix) > 1:
            raise UsageError(
                f"ambiguous rule prefix: {code} matches "
                f"{', '.join(r.code for r in by_prefix)}"
            )
    if rule is None:
        import difflib

        known = [r.code for r in rules]
        close = difflib.get_close_matches(wanted, known, n=3, cutoff=0.5)
        hint = f" — did you mean {', '.join(close)}?" if close else ""
        raise UsageError(
            f"unknown rule code: {code}{hint} (valid: {', '.join(known)})"
        )
    out.write(f"{rule.code} — {rule.name}\n")
    doc = (type(rule).__doc__ or "").strip()
    if doc:
        out.write(f"\n{doc}\n")
    out.write(f"\nRationale:\n    {rule.rationale}\n")
    pairs = _fixture_pair(rule.code)
    if not pairs:
        out.write(
            "\n(no fixture corpus found — examples ship with the source "
            "checkout under tests/checks_fixtures)\n"
        )
        return
    for label, path in pairs:
        marker = "flagged" if label == "bad" else "clean"
        out.write(f"\n--- {label} example ({marker}): {path.name} ---\n")
        out.write(path.read_text(encoding="utf-8"))


def _select_rules(spec: str) -> list:
    """Rules named by a comma-separated spec; each entry may be a glob.

    ``--select LOCK001,DET002`` names codes exactly; ``--select 'LOCK*'``
    or ``--select '*002'`` selects by ``fnmatch`` pattern.  An entry that
    matches nothing — literal or pattern — is a :class:`UsageError`
    listing the valid codes, so a typo never silently runs zero rules.
    """
    import fnmatch

    known = {rule.code: rule for rule in all_rules()}
    selected: dict[str, object] = {}
    unknown: list[str] = []
    for entry in spec.split(","):
        pattern = entry.strip().upper()
        if not pattern:
            continue
        hits = fnmatch.filter(known, pattern)
        if not hits:
            unknown.append(entry.strip())
            continue
        for code in hits:
            selected[code] = known[code]
    if unknown:
        raise UsageError(
            f"unknown rule code(s) or pattern(s): {', '.join(unknown)} "
            f"(valid: {', '.join(sorted(known))})"
        )
    # registry order, so output ordering matches the full-sweep default
    return [rule for code, rule in known.items() if code in selected]


def _changed_files() -> set[Path]:
    """Files changed vs. HEAD (tracked modifications plus untracked)."""
    try:
        top = subprocess.run(
            ["git", "rev-parse", "--show-toplevel"],
            capture_output=True, text=True, check=True, timeout=30,
        ).stdout.strip()
        diff = subprocess.run(
            ["git", "diff", "--name-only", "HEAD"],
            capture_output=True, text=True, check=True, timeout=30,
        ).stdout
        untracked = subprocess.run(
            ["git", "ls-files", "--others", "--exclude-standard"],
            capture_output=True, text=True, check=True, timeout=30,
        ).stdout
    except (OSError, subprocess.SubprocessError) as exc:
        raise UsageError(f"--changed-only needs a working git checkout: {exc}")
    root = Path(top)
    return {
        (root / line).resolve()
        for line in (diff + untracked).splitlines()
        if line.strip()
    }


def _render_text(result: CheckResult, out: TextIO) -> None:
    for path, message in result.errors:
        out.write(f"{path}:0:0: PARSE {message}\n")
    for finding in result.findings:
        out.write(finding.render() + "\n")
    summary = (
        f"{result.n_files} files: {len(result.findings)} finding(s), "
        f"{result.n_suppressed} pragma-suppressed, "
        f"{result.n_baselined} baselined"
    )
    if result.n_from_cache:
        summary += f", {result.n_from_cache} from cache"
    if result.errors:
        summary += f", {len(result.errors)} unparseable"
    out.write(summary + "\n")


def _run_lint_tools(out: TextIO) -> int:
    """Run ruff and mypy when available; 0 when both pass or are absent."""
    worst = 0
    if shutil.which("ruff") is not None:
        proc = subprocess.run(
            ["ruff", "check", "src", "tests"],
            capture_output=True, text=True, timeout=600,
        )
        out.write(proc.stdout + proc.stderr)
        out.write(f"ruff: exit {proc.returncode}\n")
        worst = max(worst, 1 if proc.returncode else 0)
    else:
        out.write("ruff: not installed, skipped\n")
    try:
        import mypy  # noqa: F401
    except ImportError:
        out.write("mypy: not installed, skipped\n")
        return worst
    proc = subprocess.run(
        [sys.executable, "-m", "mypy"],
        capture_output=True, text=True, timeout=600,
    )
    out.write(proc.stdout + proc.stderr)
    out.write(f"mypy: exit {proc.returncode}\n")
    return max(worst, 1 if proc.returncode else 0)


def main(argv: Sequence[str] | None = None, out: TextIO | None = None) -> int:
    """Entry point; returns the process exit code (0/1/2, see module doc)."""
    out = out if out is not None else sys.stdout
    args = build_parser().parse_args(argv)

    if args.list_rules:
        _print_rules(out)
        return 0

    if args.explain:
        try:
            _explain_rule(args.explain, out)
        except UsageError as exc:
            out.write(f"error: {exc}\n")
            return 2
        return 0

    try:
        rules = _select_rules(args.select) if args.select else list(all_rules())
        changed = _changed_files() if args.changed_only else None
        baseline = Baseline.load(args.baseline) if args.baseline else None
        cache = (
            AnalysisCache(args.cache, analysis_fingerprint(rules))
            if args.cache
            else None
        )
    except (UsageError, ValueError, OSError) as exc:
        out.write(f"error: {exc}\n")
        return 2

    checker = Checker(rules=rules, baseline=baseline, cache=cache)
    try:
        result = checker.run(args.paths, changed_only=changed)
    except Exception as exc:  # repro: noqa[EXC001] — boundary: an analyzer crash must exit 2, not a traceback
        out.write(f"internal analyzer error: {exc!r}\n")
        return 2

    if args.write_baseline:
        path = Baseline.from_findings(result.findings).save(args.write_baseline)
        out.write(
            f"wrote baseline with {len(result.findings)} finding(s) to {path}\n"
        )
        return 0

    if args.format == "json":
        out.write(json.dumps(result.to_dict(), indent=2) + "\n")
    elif args.format == "sarif":
        out.write(json.dumps(to_sarif(result, rules), indent=2) + "\n")
    else:
        _render_text(result, out)
    code = 0 if result.ok else 1

    if args.all:
        code = max(code, _run_lint_tools(out))
    return code


if __name__ == "__main__":
    sys.exit(main())
