"""Concurrency contract rules: lock ordering, guard coverage, balance.

Four rules over :class:`~repro.checks.concurrency.ConcurrencyModel`, the
cross-module aggregate of the per-file lock facts (so a warm incremental
run pays nothing beyond a dict merge):

* **LOCK002** — lock-order cycles.  The model joins every observed
  nested acquisition (``with a:`` … ``with b:`` plus ``.acquire()``
  regions) into one global order graph, interprocedural one call deep
  (calls made under a lock are resolved through the import bindings to
  the callee's top-level acquisitions).  Tarjan SCCs of size > 1 — and
  self-edges on non-reentrant primitives — are deadlocks waiting for the
  right interleaving.
* **LOCK003** — inconsistent guard.  If an attribute is mutated under a
  lock anywhere, that lock is its inferred *majority guard*; a bare
  mutation of the same attribute from a thread-reachable class (one that
  owns locks or spawns ``threading.Thread`` — the serving pool workers,
  ``ParallelMap`` initializers and explicit thread targets all land
  there) is a race.  ``__init__``/``__post_init__`` writes are exempt:
  no second thread can hold the instance yet.
* **LOCK004** — blocking call under lock.  ``sleep``/socket/file-IO/
  HTTP-wait/``render*`` calls inside an acquisition region serialize
  every sibling on IO latency.  Waiting on the held primitive itself
  (the ``Condition.wait`` protocol) is exempt; the intentional
  single-flight coalescing render is sanctioned via a justified
  ``# repro: noqa[LOCK004]`` pragma rather than silently allowlisted.
* **SEM001** — semaphore acquire/release imbalance.  A path-sensitive
  walk of every function touching a ``(Bounded)Semaphore``: an early
  return that leaks an acquired slot (while a sibling path releases it,
  so the function is *meant* to be balanced) or a path releasing more
  than it acquired (double-release corrupts the admission count).
  Functions whose every exit transfers ownership to the caller are not
  flagged — that is a protocol, not a bug.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterator

from ..concurrency import ConcurrencyModel
from ..model import Finding, Rule, register

if TYPE_CHECKING:  # pragma: no cover — import cycle guard, types only
    from ..project import ProjectIndex

__all__ = [
    "LockOrderCycle",
    "InconsistentGuard",
    "BlockingCallUnderLock",
    "SemaphoreImbalance",
]


def _short(gid: str) -> str:
    """``module:Class.attr`` → ``Class.attr`` for message brevity."""
    return gid.partition(":")[2] or gid


@register
class LockOrderCycle(Rule):
    """LOCK002 — a cycle in the cross-module lock acquisition order."""

    code = "LOCK002"
    name = "lock-order-cycle"
    rationale = (
        "two code paths acquiring the same locks in opposite orders "
        "deadlock under the right interleaving; the acquisition graph "
        "(nested with/.acquire() regions, one call deep across modules) "
        "must stay acyclic, and non-reentrant locks must never be "
        "re-acquired while held"
    )

    def check_index(self, index: "ProjectIndex") -> Iterator[Finding]:
        """One finding per SCC (or non-reentrant self-edge), first site."""
        model = ConcurrencyModel.of(index)
        for cycle in model.order_cycles():
            ring = cycle["ring"]
            if len(ring) == 1:
                message = (
                    f"non-reentrant lock '{_short(ring[0])}' is acquired "
                    "while already held on this path; a Lock (unlike an "
                    "RLock) self-deadlocks on re-acquisition"
                )
            else:
                # drop the module prefix only when the whole ring shares it
                modules = {gid.partition(":")[0] for gid in ring}
                label = _short if len(modules) == 1 else (lambda gid: gid)
                shown = " -> ".join(label(gid) for gid in ring + ring[:1])
                message = (
                    f"lock-order cycle {shown}: paths acquire these locks "
                    "in conflicting orders and can deadlock; pick one "
                    "global order and restructure the inner acquisition"
                )
            yield Finding(
                cycle["display"], cycle["lineno"], cycle["col"],
                self.code, message,
            )


@register
class InconsistentGuard(Rule):
    """LOCK003 — an attribute mutated both under and outside its lock."""

    code = "LOCK003"
    name = "inconsistent-guard"
    rationale = (
        "an attribute mutated under a lock on some paths and bare on "
        "others is only protected on the slow path; the bare write races "
        "with every locked reader once worker threads (serving pool, "
        "ParallelMap initializers, threading.Thread targets) touch the "
        "instance"
    )

    def check_index(self, index: "ProjectIndex") -> Iterator[Finding]:
        """Flag bare writes to attributes that have a majority lock."""
        model = ConcurrencyModel.of(index)
        for violation in model.guard_violations():
            yield Finding(
                violation["display"], violation["lineno"], violation["col"],
                self.code,
                f"attribute '{_short(violation['attr'])}' is written "
                f"{violation['n_guarded']}x under lock "
                f"'{_short(violation['lock'])}' but bare in "
                f"{violation['qual']}; guard every mutation with the same "
                "lock (or document why this write cannot race)",
            )


@register
class BlockingCallUnderLock(Rule):
    """LOCK004 — sleep/IO/socket/render call inside an acquisition region."""

    code = "LOCK004"
    name = "blocking-call-under-lock"
    rationale = (
        "a blocking call (sleep, socket op, file IO, render) while "
        "holding a lock serializes every thread contending for it on IO "
        "latency — the admission semaphore and single-flight locks exist "
        "to bound concurrency, not to queue it behind the disk; move the "
        "blocking work outside the region, or sanction an intentional "
        "coalescing render with '# repro: noqa[LOCK004]' and a reason"
    )

    def check_index(self, index: "ProjectIndex") -> Iterator[Finding]:
        """Every blocking-call-under-lock fact becomes a finding."""
        model = ConcurrencyModel.of(index)
        for holder, what, display, lineno, col in sorted(
            model.blocking, key=lambda site: (site[2], site[3], site[4])
        ):
            yield Finding(
                display, lineno, col, self.code,
                f"blocking call {what} while holding lock "
                f"'{_short(holder)}'; every contender queues behind this "
                "IO — hoist it out of the locked region",
            )


@register
class SemaphoreImbalance(Rule):
    """SEM001 — semaphore acquire/release imbalance across early returns."""

    code = "SEM001"
    name = "semaphore-imbalance"
    rationale = (
        "an early return that skips the release of an acquired semaphore "
        "slot permanently shrinks the admission pool (the server sheds "
        "load it could carry), and a path releasing more than it acquired "
        "inflates it (BoundedSemaphore raises, a plain one over-admits); "
        "every path through a balanced function must release exactly what "
        "it acquired"
    )

    def check_index(self, index: "ProjectIndex") -> Iterator[Finding]:
        """Leaked-slot and over-release flows become findings."""
        model = ConcurrencyModel.of(index)
        for ident, kind, display, lineno, col in sorted(
            model.sem_flows, key=lambda site: (site[2], site[3], site[4])
        ):
            if kind == "leak":
                message = (
                    f"this path returns without releasing the slot "
                    f"acquired from semaphore '{_short(ident)}' while "
                    "sibling paths release it; the admission pool shrinks "
                    "by one forever"
                )
            else:
                message = (
                    f"this path releases semaphore '{_short(ident)}' more "
                    "often than it acquired it; a BoundedSemaphore raises "
                    "ValueError here and a plain Semaphore over-admits"
                )
            yield Finding(display, lineno, col, self.code, message)
