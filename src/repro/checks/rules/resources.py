"""Resource-lifecycle rules for the shared-memory parallel tier.

* **PAR003** — a ``multiprocessing.shared_memory`` segment (or a
  ``SharedTable``) created without a matching ``close``/``unlink`` in a
  ``finally`` block, a re-raising ``except`` handler, or a
  context-manager ``with``.  A leaked segment survives the process on
  Linux (``/dev/shm``), so every creation site must prove its cleanup
  path statically.
"""

from __future__ import annotations

import ast
from typing import Iterator

from ..imports import ImportTable
from ..model import Finding, Rule, SourceFile, register

__all__ = ["SharedMemoryLifecycle"]

_SHM_CLASS = "multiprocessing.shared_memory.SharedMemory"

#: Factory attribute names that hand back an owned segment wrapper.  The
#: import table cannot resolve relative imports (``from .shm import
#: SharedTable``), so the wrapper is matched textually by name.
_WRAPPER_FACTORIES = frozenset({("SharedTable", "create")})


def _creates_segment(call: ast.Call, table: ImportTable) -> str | None:
    """``"create"``/``"attach"`` when *call* produces a segment, else None.

    ``SharedMemory(create=True, ...)`` and ``SharedTable.create(...)``
    are creators (the caller owns the name and must ``unlink`` it);
    ``SharedMemory(name=...)`` is an attacher (must only ``close``).
    """
    func = call.func
    if table.resolve(func) == _SHM_CLASS:
        for keyword in call.keywords:
            if (
                keyword.arg == "create"
                and isinstance(keyword.value, ast.Constant)
                and keyword.value.value is True
            ):
                return "create"
        return "attach"
    if (
        isinstance(func, ast.Attribute)
        and isinstance(func.value, ast.Name)
        and (func.value.id, func.attr) in _WRAPPER_FACTORIES
    ):
        return "create"
    return None


def _calls_method(nodes: list[ast.stmt], target: str, method: str) -> bool:
    """Whether any statement calls ``<target>.<method>(...)``."""
    for stmt in nodes:
        for node in ast.walk(stmt):
            if (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr == method
                and isinstance(node.func.value, ast.Name)
                and node.func.value.id == target
            ):
                return True
    return False


def _reraises(nodes: list[ast.stmt]) -> bool:
    return any(
        isinstance(node, ast.Raise)
        for stmt in nodes
        for node in ast.walk(stmt)
    )


def _required_methods(mode: str) -> tuple[str, ...]:
    return ("close", "unlink") if mode == "create" else ("close",)


def _scope_guards(scope: ast.AST, name: str, mode: str) -> bool:
    """Whether *scope* provably releases the segment bound to *name*.

    Accepted shapes:

    * a ``try``/``finally`` whose ``finally`` calls the required methods;
    * an ``except`` handler that calls them and re-raises (the
      cleanup-then-propagate factory pattern);
    * a ``with`` statement over the bound name (the object's own
      ``__exit__`` owns the cleanup).
    """
    methods = _required_methods(mode)
    for node in ast.walk(scope):
        if isinstance(node, ast.Try):
            if node.finalbody and all(
                _calls_method(node.finalbody, name, m) for m in methods
            ):
                return True
            for handler in node.handlers:
                if _reraises(handler.body) and all(
                    _calls_method(handler.body, name, m) for m in methods
                ):
                    return True
        if isinstance(node, ast.With):
            for item in node.items:
                ctx = item.context_expr
                if isinstance(ctx, ast.Name) and ctx.id == name:
                    return True
    return False


@register
class SharedMemoryLifecycle(Rule):
    """PAR003 — shared-memory create without provable close/unlink."""

    code = "PAR003"
    name = "shm-lifecycle"
    rationale = (
        "a shared_memory segment outlives the process unless it is "
        "unlinked; every creation must close/unlink in a finally, a "
        "re-raising except, or a with-statement, or the segment leaks "
        "into /dev/shm"
    )

    def check_file(self, file: SourceFile) -> Iterator[Finding]:
        """Flag segment creations whose cleanup cannot be proven."""
        table = ImportTable(file.tree)
        parents: dict[ast.AST, ast.AST] = {
            child: parent
            for parent in ast.walk(file.tree)
            for child in ast.iter_child_nodes(parent)
        }
        for node in ast.walk(file.tree):
            if not isinstance(node, ast.Call):
                continue
            mode = _creates_segment(node, table)
            if mode is None:
                continue
            if self._is_guarded(node, mode, parents):
                continue
            what = (
                "created without a matching close()+unlink()"
                if mode == "create"
                else "attached without a matching close()"
            )
            yield Finding(
                file.display, node.lineno, node.col_offset, self.code,
                f"shared-memory segment {what} in a finally block, a "
                "re-raising except handler, or a with-statement; a "
                "crashed caller would leak the segment into /dev/shm",
            )

    def _is_guarded(
        self, call: ast.Call, mode: str, parents: dict[ast.AST, ast.AST]
    ) -> bool:
        parent = parents.get(call)
        # `with SharedTable.create(t) as s:` — __exit__ owns the cleanup
        if isinstance(parent, ast.withitem):
            return True
        # `s = SharedTable.create(t)` — the binding's scope must release it
        if (
            isinstance(parent, ast.Assign)
            and parent.value is call
            and len(parent.targets) == 1
            and isinstance(parent.targets[0], ast.Name)
        ):
            name = parent.targets[0].id
            scope: ast.AST | None = parent
            while scope is not None and not isinstance(
                scope, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Module)
            ):
                scope = parents.get(scope)
            return scope is not None and _scope_guards(scope, name, mode)
        return False
