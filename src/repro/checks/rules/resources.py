"""Resource-lifecycle rules: shared memory and concurrency primitives.

* **PAR003** — a ``multiprocessing.shared_memory`` segment (or a
  ``SharedTable``) created without a matching ``close``/``unlink`` in a
  ``finally`` block, a re-raising ``except`` handler, or a
  context-manager ``with``.  A leaked segment survives the process on
  Linux (``/dev/shm``), so every creation site must prove its cleanup
  path statically.
* **PAR004** — an on-disk columnar spill map (``SpillFile.open``) with no
  matching ``close()`` in a ``finally`` block, a re-raising ``except``
  handler, or a ``with`` statement.  A leaked map holds an open file
  descriptor and pins the spill's pages for the life of the process —
  with hundreds of shards that exhausts descriptors long before memory.
* **LOCK001** — an explicit ``.acquire(...)`` on a lock / semaphore with
  no matching ``.release()`` in a ``finally`` block (or re-raising
  ``except``, or ``with`` over the same primitive) in the same scope.
  The serving tier's single-flight and admission-control contract says a
  failed request must never wedge the primitive it holds; an acquire
  whose release can be skipped by an exception deadlocks every later
  contender.
"""

from __future__ import annotations

import ast
from typing import Iterator

from ..imports import ImportTable
from ..model import Finding, Rule, SourceFile, register

__all__ = ["LockLifecycle", "SharedMemoryLifecycle", "SpillLifecycle"]


def _dotted_name(node: ast.expr) -> str | None:
    """``a.b.c`` for a Name/Attribute chain, else None."""
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        base = _dotted_name(node.value)
        return f"{base}.{node.attr}" if base else None
    return None

_SHM_CLASS = "multiprocessing.shared_memory.SharedMemory"

#: Factory attribute names that hand back an owned segment wrapper.  The
#: import table cannot resolve relative imports (``from .shm import
#: SharedTable``), so the wrapper is matched textually by name.
_WRAPPER_FACTORIES = frozenset({("SharedTable", "create")})


def _creates_segment(call: ast.Call, table: ImportTable) -> str | None:
    """``"create"``/``"attach"`` when *call* produces a segment, else None.

    ``SharedMemory(create=True, ...)`` and ``SharedTable.create(...)``
    are creators (the caller owns the name and must ``unlink`` it);
    ``SharedMemory(name=...)`` is an attacher (must only ``close``).
    """
    func = call.func
    if table.resolve(func) == _SHM_CLASS:
        for keyword in call.keywords:
            if (
                keyword.arg == "create"
                and isinstance(keyword.value, ast.Constant)
                and keyword.value.value is True
            ):
                return "create"
        return "attach"
    if (
        isinstance(func, ast.Attribute)
        and isinstance(func.value, ast.Name)
        and (func.value.id, func.attr) in _WRAPPER_FACTORIES
    ):
        return "create"
    return None


def _calls_method(nodes: list[ast.stmt], target: str, method: str) -> bool:
    """Whether any statement calls ``<target>.<method>(...)``.

    *target* may be dotted (``self._slots``), matching the same
    Name/Attribute chain at the call site.
    """
    for stmt in nodes:
        for node in ast.walk(stmt):
            if (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr == method
                and _dotted_name(node.func.value) == target
            ):
                return True
    return False


def _reraises(nodes: list[ast.stmt]) -> bool:
    return any(
        isinstance(node, ast.Raise)
        for stmt in nodes
        for node in ast.walk(stmt)
    )


def _required_methods(mode: str) -> tuple[str, ...]:
    return ("close", "unlink") if mode == "create" else ("close",)


def _scope_guards(scope: ast.AST, name: str, mode: str) -> bool:
    """Whether *scope* provably releases the segment bound to *name*.

    Accepted shapes:

    * a ``try``/``finally`` whose ``finally`` calls the required methods;
    * an ``except`` handler that calls them and re-raises (the
      cleanup-then-propagate factory pattern);
    * a ``with`` statement over the bound name (the object's own
      ``__exit__`` owns the cleanup).
    """
    methods = _required_methods(mode)
    for node in ast.walk(scope):
        if isinstance(node, ast.Try):
            if node.finalbody and all(
                _calls_method(node.finalbody, name, m) for m in methods
            ):
                return True
            for handler in node.handlers:
                if _reraises(handler.body) and all(
                    _calls_method(handler.body, name, m) for m in methods
                ):
                    return True
        if isinstance(node, ast.With):
            for item in node.items:
                if _dotted_name(item.context_expr) == name:
                    return True
    return False


@register
class SharedMemoryLifecycle(Rule):
    """PAR003 — shared-memory create without provable close/unlink."""

    code = "PAR003"
    name = "shm-lifecycle"
    rationale = (
        "a shared_memory segment outlives the process unless it is "
        "unlinked; every creation must close/unlink in a finally, a "
        "re-raising except, or a with-statement, or the segment leaks "
        "into /dev/shm"
    )

    def check_file(self, file: SourceFile) -> Iterator[Finding]:
        """Flag segment creations whose cleanup cannot be proven."""
        table = ImportTable(file.tree)
        parents: dict[ast.AST, ast.AST] = {
            child: parent
            for parent in ast.walk(file.tree)
            for child in ast.iter_child_nodes(parent)
        }
        for node in ast.walk(file.tree):
            if not isinstance(node, ast.Call):
                continue
            mode = _creates_segment(node, table)
            if mode is None:
                continue
            if self._is_guarded(node, mode, parents):
                continue
            what = (
                "created without a matching close()+unlink()"
                if mode == "create"
                else "attached without a matching close()"
            )
            yield Finding(
                file.display, node.lineno, node.col_offset, self.code,
                f"shared-memory segment {what} in a finally block, a "
                "re-raising except handler, or a with-statement; a "
                "crashed caller would leak the segment into /dev/shm",
            )

    def _is_guarded(
        self, call: ast.Call, mode: str, parents: dict[ast.AST, ast.AST]
    ) -> bool:
        parent = parents.get(call)
        # `with SharedTable.create(t) as s:` — __exit__ owns the cleanup
        if isinstance(parent, ast.withitem):
            return True
        # `s = SharedTable.create(t)` — the binding's scope must release it
        if (
            isinstance(parent, ast.Assign)
            and parent.value is call
            and len(parent.targets) == 1
            and isinstance(parent.targets[0], ast.Name)
        ):
            name = parent.targets[0].id
            scope: ast.AST | None = parent
            while scope is not None and not isinstance(
                scope, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Module)
            ):
                scope = parents.get(scope)
            return scope is not None and _scope_guards(scope, name, mode)
        return False


#: Factory attribute names returning an owned spill map.  Matched
#: textually like the shm wrappers (the import table cannot resolve the
#: relative ``from .spill import SpillFile``).
_SPILL_FACTORIES = frozenset({("SpillFile", "open")})


@register
class SpillLifecycle(Rule):
    """PAR004 — spill map opened without provable close on every path."""

    code = "PAR004"
    name = "spill-lifecycle"
    rationale = (
        "SpillFile.open returns an owned file descriptor plus a memory "
        "map; a close() an exception can skip pins the spill's pages and "
        "leaks the descriptor for the life of the process — with "
        "hundreds of shards that exhausts the fd table; every open must "
        "close in a finally, a re-raising except, or a with-statement"
    )

    def check_file(self, file: SourceFile) -> Iterator[Finding]:
        """Flag ``SpillFile.open(...)`` calls whose cleanup is unproven."""
        parents: dict[ast.AST, ast.AST] = {
            child: parent
            for parent in ast.walk(file.tree)
            for child in ast.iter_child_nodes(parent)
        }
        for node in ast.walk(file.tree):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            if not (
                isinstance(func, ast.Attribute)
                and isinstance(func.value, ast.Name)
                and (func.value.id, func.attr) in _SPILL_FACTORIES
            ):
                continue
            if self._is_guarded(node, parents):
                continue
            yield Finding(
                file.display, node.lineno, node.col_offset, self.code,
                "spill map opened without a matching close() in a finally "
                "block, a re-raising except handler, or a with-statement; "
                "a failed caller would pin the spill's pages and leak its "
                "file descriptor for the life of the process",
            )

    def _is_guarded(
        self, call: ast.Call, parents: dict[ast.AST, ast.AST]
    ) -> bool:
        """Same proof shapes as PAR003, with ``close()`` the only duty
        (spills are regular files — deletion is the spill directory's
        job, not the reader's)."""
        parent = parents.get(call)
        # `with SpillFile.open(p) as spill:` — __exit__ owns the cleanup
        if isinstance(parent, ast.withitem):
            return True
        # `spill = SpillFile.open(p)` — the binding's scope must close it
        if (
            isinstance(parent, ast.Assign)
            and parent.value is call
            and len(parent.targets) == 1
            and isinstance(parent.targets[0], ast.Name)
        ):
            name = parent.targets[0].id
            scope: ast.AST | None = parent
            while scope is not None and not isinstance(
                scope, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Module)
            ):
                scope = parents.get(scope)
            return scope is not None and _scope_guards(scope, name, "attach")
        return False


def _lock_released(scope: ast.AST, receiver: str) -> bool:
    """Whether *scope* provably releases the primitive named *receiver*.

    Accepted shapes mirror :func:`_scope_guards`: a ``finally`` calling
    ``<receiver>.release()``, an ``except`` handler that releases and
    re-raises, or a ``with`` statement over the same primitive (its
    ``__exit__`` owns the release).
    """
    for node in ast.walk(scope):
        if isinstance(node, ast.Try):
            if node.finalbody and _calls_method(
                node.finalbody, receiver, "release"
            ):
                return True
            for handler in node.handlers:
                if _reraises(handler.body) and _calls_method(
                    handler.body, receiver, "release"
                ):
                    return True
        if isinstance(node, ast.With):
            for item in node.items:
                if _dotted_name(item.context_expr) == receiver:
                    return True
    return False


@register
class LockLifecycle(Rule):
    """LOCK001 — lock/semaphore acquire without a provable release."""

    code = "LOCK001"
    name = "lock-lifecycle"
    rationale = (
        "an acquire() whose release() an exception can skip wedges the "
        "lock or semaphore for every later contender; releases must live "
        "in a finally (or re-raising except), or the primitive must be "
        "held via a with-statement"
    )

    def check_file(self, file: SourceFile) -> Iterator[Finding]:
        """Flag ``.acquire(...)`` calls with no provable release path."""
        parents: dict[ast.AST, ast.AST] = {
            child: parent
            for parent in ast.walk(file.tree)
            for child in ast.iter_child_nodes(parent)
        }
        for node in ast.walk(file.tree):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            if not isinstance(func, ast.Attribute) or func.attr != "acquire":
                continue
            receiver = _dotted_name(func.value)
            if receiver is None:
                continue
            scope: ast.AST | None = node
            while scope is not None and not isinstance(
                scope, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Module)
            ):
                scope = parents.get(scope)
            if scope is not None and _lock_released(scope, receiver):
                continue
            yield Finding(
                file.display, node.lineno, node.col_offset, self.code,
                f"{receiver}.acquire() has no {receiver}.release() in a "
                "finally block, re-raising except handler, or with-"
                "statement in this scope; an exception here wedges the "
                "primitive for every later contender",
            )
