"""Cross-module contract rules: lineage, fork-safety, config drift, cycles.

All seven rules run against the :class:`~repro.checks.project.ProjectIndex`
facts, so they see the whole program at once and cost nothing extra on a
warm incremental run:

* **COL001/COL002/COL003** — the column-lineage contract.  Column names
  are string literals flowing schema → stages → dashboards; a read with
  no producer is a typo or a stage-ordering bug, a produced-but-unread
  column is a dead write, and a dashboard/query spec naming an
  undeclared column renders an empty widget.  The three rules only
  activate when the analyzed file set contains schema declarations
  (``AttributeSpec``/``_num``/``_cat``/``_txt``), so single-file corpora
  without a schema are exempt.
* **PAR001/PAR002** — the fork-safety contract of ``ParallelMap``.
  Work crosses the process boundary by pickling; lambdas and nested
  functions do not pickle, and module globals are *copied* at fork — a
  worker reading a parent-mutated global sees a stale copy (PAR001) and
  a worker writing one mutates a copy that is thrown away (PAR002).
  The sanctioned pattern — an ``initializer=`` callback populating a
  module global per worker — is recognized and exempt.
* **CFG001** — ``IndiceConfig`` ↔ CLI parity, extending CACHE001's
  registry-diff technique to the argparse layer: attribute writes must
  hit declared fields, ``args.X`` reads while wiring a config must match
  a declared argparse destination, and every literal-default field named
  in ``PERF_ONLY_FIELDS`` must actually be wired from the CLI.
* **IMP001** — import acyclicity among the analyzed modules.  A cycle
  makes import order load-bearing and breaks partial re-use of the
  pipeline's layers; function-scope (lazy) imports are deliberately not
  counted, because they are the sanctioned cycle breaker.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterator

from ..model import Finding, Rule, register
from .contracts import EXCLUSION_TUPLE

if TYPE_CHECKING:  # pragma: no cover — import cycle guard, types only
    from ..project import FileSummary, ProjectIndex

__all__ = [
    "ColumnReadWithoutProducer",
    "ColumnDeadWrite",
    "SpecReferencesUnknownColumn",
    "UnpicklableOrStaleCapture",
    "WorkerSideMutation",
    "ConfigCliParity",
    "ImportCycle",
]


def _lineage_sites(index: "ProjectIndex", key: str) -> list:
    """``(name, summary, lineno, col)`` for one lineage site class."""
    out = []
    for summary in index.summaries:
        for name, lineno, col in summary.facts.get("lineage", {}).get(key, ()):
            out.append((name, summary, lineno, col))
    return out


def _spec_sites(index: "ProjectIndex") -> list:
    """Spec-reference sites with cross-module constant refs resolved."""
    out = []
    for summary in index.summaries:
        for site in summary.facts.get("lineage", {}).get("spec_refs", ()):
            if isinstance(site, dict):
                lineno, col = site["lineno"], site["col"]
                value = index.resolve_string(summary.module, site["ref"])
                if value is not None:
                    out.append((value, summary, lineno, col))
                    continue
                values = index.resolve_string_seq(summary.module, site["ref"])
                for value in values or ():
                    out.append((value, summary, lineno, col))
            else:
                name, lineno, col = site
                out.append((name, summary, lineno, col))
    return out


class _LineageRule(Rule):
    """Shared aggregation for the COL00x rules."""

    def _universe(self, index: "ProjectIndex"):
        declared = {name for name, __, ___, ____ in _lineage_sites(index, "declared")}
        produced = _lineage_sites(index, "produced")
        consumed = _lineage_sites(index, "consumed")
        specs = _spec_sites(index)
        return declared, produced, consumed, specs


@register
class ColumnReadWithoutProducer(_LineageRule):
    """COL001 — a column is read that no stage produces or schema declares."""

    code = "COL001"
    name = "column-read-without-producer"
    rationale = (
        "a Table column read whose name no schema attribute declares and "
        "no stage produces is a typo or a stage-ordering bug; it raises "
        "KeyError (or returns empty) only at run time"
    )

    def check_index(self, index: "ProjectIndex") -> Iterator[Finding]:
        """Every consumed name must have a declaring or producing site."""
        declared, produced, consumed, __ = self._universe(index)
        if not declared:
            return  # no schema in this file set: lineage gate is off
        known = declared | {name for name, *___ in produced}
        for name, summary, lineno, col in consumed:
            if name not in known:
                yield Finding(
                    summary.display, lineno, col, self.code,
                    f"column '{name}' is read but never produced by any "
                    "stage nor declared by the schema (typo or missing "
                    "producer upstream)",
                )


@register
class ColumnDeadWrite(_LineageRule):
    """COL002 — a column is produced that nothing downstream reads."""

    code = "COL002"
    name = "column-dead-write"
    rationale = (
        "a produced column that no stage, query or spec ever reads is "
        "dead weight in every downstream copy/cache and usually marks an "
        "abandoned feature or a renamed consumer"
    )
    severity = "warning"  # latent waste, not incorrect output

    def check_index(self, index: "ProjectIndex") -> Iterator[Finding]:
        """Every produced (non-schema) name must have a consuming site."""
        declared, produced, consumed, specs = self._universe(index)
        if not declared:
            return  # no schema in this file set: lineage gate is off
        used = {name for name, *__ in consumed} | {name for name, *__ in specs}
        seen: set[str] = set()
        for name, summary, lineno, col in produced:
            if name in declared or name in used or name in seen:
                continue
            seen.add(name)  # one finding per dead column, at its first site
            yield Finding(
                summary.display, lineno, col, self.code,
                f"column '{name}' is produced but never consumed by any "
                "stage, query or spec (dead write)",
            )


@register
class SpecReferencesUnknownColumn(_LineageRule):
    """COL003 — a dashboard/query spec names a column the schema lacks."""

    code = "COL003"
    name = "spec-references-unknown-column"
    rationale = (
        "a Comparison / report / discretization spec naming a column "
        "absent from dataset/schema.py renders an empty widget or a "
        "never-matching filter in every dashboard built from it"
    )

    def check_index(self, index: "ProjectIndex") -> Iterator[Finding]:
        """Every spec-referenced name must be declared or produced."""
        declared, produced, __, specs = self._universe(index)
        if not declared:
            return  # no schema in this file set: lineage gate is off
        known = declared | {name for name, *___ in produced}
        for name, summary, lineno, col in specs:
            if name not in known:
                yield Finding(
                    summary.display, lineno, col, self.code,
                    f"spec references column '{name}' which is absent from "
                    "the declared schema and produced by no stage",
                )


@register
class UnpicklableOrStaleCapture(Rule):
    """PAR001 — a submitted callable won't pickle or sees stale globals."""

    code = "PAR001"
    name = "unpicklable-or-stale-capture"
    rationale = (
        "process pools pickle the callable and fork module state: "
        "lambdas/nested functions fail to pickle, and a worker reading a "
        "parent-mutated module global sees a stale fork-time copy unless "
        "the state arrives via initializer/initargs"
    )

    def check_index(self, index: "ProjectIndex") -> Iterator[Finding]:
        """Audit every executor ``.map`` submission in the file set."""
        for summary in index.summaries:
            mutated = index.module_mutated_globals(summary.module)
            for call in summary.facts.get("map_calls", ()):
                lineno, col = call["lineno"], call["col"]
                if call["kind"] == "lambda":
                    yield Finding(
                        summary.display, lineno, col, self.code,
                        "lambda submitted to a process-pool map is not "
                        "picklable; define a module-level function",
                    )
                    continue
                if call["kind"] == "nested":
                    yield Finding(
                        summary.display, lineno, col, self.code,
                        f"nested function '{call['func']}' submitted to a "
                        "process-pool map is not picklable; move it to "
                        "module level",
                    )
                    continue
                if call["kind"] != "name":
                    continue
                reads, worker_mutates = index.function_closure(
                    summary.module, call["func"]
                )
                init_mutates: set[str] = set()
                if call["initializer"]:
                    __, init_mutates = index.function_closure(
                        summary.module, call["initializer"]
                    )
                for name in sorted(reads):
                    if name not in mutated:
                        continue
                    if name in init_mutates or name in worker_mutates:
                        continue  # initializer-fed (sanctioned) or PAR002's
                    yield Finding(
                        summary.display, lineno, col, self.code,
                        f"worker '{call['func']}' reads module global "
                        f"'{name}' which {'/'.join(mutated[name])} mutates; "
                        "workers fork a stale copy — pass the state via "
                        "initializer/initargs instead",
                    )


@register
class WorkerSideMutation(Rule):
    """PAR002 — a worker mutates module state that dies with the worker."""

    code = "PAR002"
    name = "worker-side-mutation"
    rationale = (
        "a worker-side write to a module global mutates the worker "
        "process's copy only; the parent never sees it, so the write is "
        "either dead or a latent correctness bug — return values instead"
    )

    def check_index(self, index: "ProjectIndex") -> Iterator[Finding]:
        """Flag module-global mutations reachable from submitted workers."""
        for summary in index.summaries:
            symbols = summary.facts.get("symbols", {})
            for call in summary.facts.get("map_calls", ()):
                if call["kind"] != "name":
                    continue
                __, worker_mutates = index.function_closure(
                    summary.module, call["func"]
                )
                for name in sorted(worker_mutates):
                    if name not in symbols:
                        continue  # not a module-level binding of this file
                    yield Finding(
                        summary.display, call["lineno"], call["col"], self.code,
                        f"worker '{call['func']}' mutates module global "
                        f"'{name}'; the write happens in the worker "
                        "process's copy and is lost — return the value to "
                        "the parent instead",
                    )


@register
class ConfigCliParity(Rule):
    """CFG001 — IndiceConfig fields and CLI flags must stay in lockstep."""

    code = "CFG001"
    name = "config-cli-parity"
    rationale = (
        "a config attribute write to an undeclared field, an args read "
        "with no argparse destination, or a perf-only field the CLI never "
        "wires is config drift: the flag and the behavior silently diverge"
    )

    config_class = "IndiceConfig"

    def check_index(self, index: "ProjectIndex") -> Iterator[Finding]:
        """Diff config writes and args reads against fields and dests."""
        config_summary: "FileSummary | None" = None
        fields: list = []
        for summary in index.summaries:
            entry = summary.facts.get("dataclasses", {}).get(self.config_class)
            if entry is not None:
                config_summary, fields = summary, entry["fields"]
                break
        if config_summary is None:
            return  # no config dataclass in this file set
        field_names = {name for name, __, ___ in fields}

        dests: set[str] = set()
        for summary in index.summaries:
            dests.update(summary.facts.get("argparse_dests", ()))

        written: set[str] = set()
        for summary in index.summaries:
            for attr, lineno, col in summary.facts.get("config_writes", ()):
                written.add(attr)
                if attr not in field_names:
                    yield Finding(
                        summary.display, lineno, col, self.code,
                        f"write to unknown {self.config_class} field "
                        f"'{attr}' (misspelled or undeclared); dataclass "
                        "fields are the config contract",
                    )
            for attr, lineno, col in summary.facts.get(
                "config_ctor_kwargs", ()
            ):
                if attr not in field_names:
                    yield Finding(
                        summary.display, lineno, col, self.code,
                        f"unknown {self.config_class} constructor keyword "
                        f"'{attr}'; it would raise TypeError at run time",
                    )
            if dests:
                for attr, lineno, col in summary.facts.get("args_reads", ()):
                    if attr not in dests:
                        yield Finding(
                            summary.display, lineno, col, self.code,
                            f"args.{attr} is read while wiring "
                            f"{self.config_class} but no argparse option "
                            f"declares dest '{attr}'",
                        )

        if not dests:
            return  # no CLI in this file set: parity gate is off
        perf_fields: list[str] = []
        for summary in index.summaries:
            entry = summary.facts.get("string_tuples", {}).get(EXCLUSION_TUPLE)
            if entry is not None:
                perf_fields = list(entry["values"])
        literal_defaults = {
            name for name, __, kind in fields if kind == "literal"
        }
        for name in perf_fields:
            if name in literal_defaults and name not in written:
                lineno = next(
                    (ln for fname, ln, __ in fields if fname == name), 1
                )
                yield Finding(
                    config_summary.display, lineno, 0, self.code,
                    f"perf-only field '{name}' is never written from "
                    "parsed CLI arguments; the flag and the config have "
                    "drifted apart",
                )


@register
class ImportCycle(Rule):
    """IMP001 — module-exec-time import cycles among analyzed modules."""

    code = "IMP001"
    name = "import-cycle"
    rationale = (
        "an import cycle makes module initialization order load-bearing "
        "and blocks reusing pipeline layers in isolation; break it with a "
        "function-scope import or an interface module"
    )

    def check_index(self, index: "ProjectIndex") -> Iterator[Finding]:
        """One finding per strongly connected import component."""
        for cycle in index.import_cycles():
            anchor = cycle[0]
            summary = index.by_module[anchor]
            edges = index.import_graph.get(anchor, {})
            lineno = min(
                (edges[target] for target in sorted(edges) if target in cycle),
                default=1,
            )
            ring = " -> ".join(cycle + [anchor])
            yield Finding(
                summary.display, lineno, 0, self.code,
                f"import cycle among {ring}; break it with a lazy "
                "(function-scope) import or an interface module",
            )
