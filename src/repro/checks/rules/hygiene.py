"""Hygiene rules: failure handling and numeric comparisons.

* **EXC001** — a bare / ``except Exception`` / ``except BaseException``
  handler that neither re-raises nor records a provenance degradation
  swallows failures silently, breaking PR 2's contract that every fault
  either recovers bit-identically or leaves a logged degradation;
* **MUT001** — mutable default arguments alias state across calls, the
  classic source of run-order-dependent results;
* **FLOAT001** — ``==`` / ``!=`` between float expressions is
  representation-dependent; analytics code must compare with tolerances
  (``math.isclose`` / ``numpy.isclose``) or on exact integer surrogates.
"""

from __future__ import annotations

import ast
from typing import Iterator

from ..model import Finding, Rule, SourceFile, register

__all__ = ["BroadExcept", "MutableDefault", "FloatEquality"]

_BROAD_NAMES = frozenset({"Exception", "BaseException"})


def _is_broad(handler: ast.ExceptHandler) -> bool:
    """Bare ``except:`` or catching Exception/BaseException."""
    node = handler.type
    if node is None:
        return True
    if isinstance(node, ast.Name):
        return node.id in _BROAD_NAMES
    if isinstance(node, ast.Tuple):
        return any(
            isinstance(elt, ast.Name) and elt.id in _BROAD_NAMES
            for elt in node.elts
        )
    return False


def _handler_accounts_for_failure(handler: ast.ExceptHandler) -> bool:
    """Whether the handler re-raises or records a provenance degradation."""
    for node in ast.walk(handler):
        if isinstance(node, ast.Raise):
            return True
        if (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and node.func.attr == "record"
        ):
            return True
    return False


@register
class BroadExcept(Rule):
    """EXC001 — broad except handlers that swallow failures silently."""

    code = "EXC001"
    name = "silent-broad-except"
    rationale = (
        "every failure must either re-raise or leave a ProvenanceLog "
        "degradation; a silent broad except hides faults from the "
        "bit-identical-or-logged recovery contract"
    )

    def check_file(self, file: SourceFile) -> Iterator[Finding]:
        """Flag broad handlers with no re-raise and no ``.record(...)``."""
        for node in ast.walk(file.tree):
            if not isinstance(node, ast.ExceptHandler):
                continue
            if _is_broad(node) and not _handler_accounts_for_failure(node):
                caught = "bare except" if node.type is None else "broad except"
                yield Finding(
                    file.display, node.lineno, node.col_offset, self.code,
                    f"{caught} neither re-raises nor records a provenance "
                    "degradation; narrow the exception type, re-raise, or "
                    "call ProvenanceLog.record(..., 'degradation', ...)",
                )


_MUTABLE_CALLS = frozenset(
    {"list", "dict", "set", "bytearray", "defaultdict", "Counter", "OrderedDict", "deque"}
)


def _is_mutable_default(node: ast.expr) -> bool:
    if isinstance(node, (ast.List, ast.Dict, ast.Set, ast.ListComp, ast.DictComp, ast.SetComp)):
        return True
    if isinstance(node, ast.Call):
        func = node.func
        name = func.id if isinstance(func, ast.Name) else (
            func.attr if isinstance(func, ast.Attribute) else None
        )
        return name in _MUTABLE_CALLS
    return False


@register
class MutableDefault(Rule):
    """MUT001 — mutable default arguments (cross-call shared state)."""

    code = "MUT001"
    name = "mutable-default"
    rationale = (
        "a mutable default argument is shared across calls, so results "
        "depend on call history instead of (data, config, seed)"
    )

    def check_file(self, file: SourceFile) -> Iterator[Finding]:
        """Flag literal/constructor mutables in default positions."""
        for node in ast.walk(file.tree):
            if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            defaults = list(node.args.defaults) + [
                d for d in node.args.kw_defaults if d is not None
            ]
            for default in defaults:
                if _is_mutable_default(default):
                    yield Finding(
                        file.display, default.lineno, default.col_offset,
                        self.code,
                        f"mutable default argument in {node.name}(); use "
                        "None and create the object inside the function "
                        "(or a dataclass field(default_factory=...))",
                    )


def _is_floatish(node: ast.expr) -> bool:
    """Whether *node* syntactically looks like a float-valued expression."""
    if isinstance(node, ast.Constant):
        return isinstance(node.value, float)
    if isinstance(node, ast.UnaryOp):
        return _is_floatish(node.operand)
    if isinstance(node, ast.BinOp):
        if isinstance(node.op, ast.Div):
            return True
        return _is_floatish(node.left) or _is_floatish(node.right)
    if isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
        return node.func.id == "float"
    return False


@register
class FloatEquality(Rule):
    """FLOAT001 — exact ``==``/``!=`` between float expressions."""

    code = "FLOAT001"
    name = "float-equality"
    rationale = (
        "exact ==/!= between floats is representation-dependent; analytics "
        "must compare with a tolerance or on exact integer surrogates"
    )

    def check_file(self, file: SourceFile) -> Iterator[Finding]:
        """Flag equality comparisons with a float-looking operand."""
        for node in ast.walk(file.tree):
            if not isinstance(node, ast.Compare):
                continue
            operands = [node.left, *node.comparators]
            for index, op in enumerate(node.ops):
                if not isinstance(op, (ast.Eq, ast.NotEq)):
                    continue
                left, right = operands[index], operands[index + 1]
                if _is_floatish(left) or _is_floatish(right):
                    yield Finding(
                        file.display, node.lineno, node.col_offset, self.code,
                        "==/!= between float expressions; use math.isclose/"
                        "numpy.isclose, an ordered comparison, or compare "
                        "exact integer surrogates",
                    )
